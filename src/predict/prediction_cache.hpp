// Sharded cache of Predict(task, R) evaluations.
//
// The scheduling hot path evaluates the same (task, host, input-size)
// triple over and over: every consulted site scores every eligible host
// for every AFG node, and consecutive schedule() calls re-score the
// same testbed.  Each evaluation walks string-keyed repository maps
// under their locks, so memoising the finished Prediction is the
// cheapest large win (Jupiter caches per-node profiling data for the
// same reason).
//
// Staleness is handled by *epochs*, not by explicit invalidation hooks:
// the repository databases and the load forecaster each keep a
// monotonic version counter bumped on every mutation that can change a
// prediction (monitoring updates, liveness flips, trial-run weights,
// new forecaster observations).  The predictor sums them into the
// lookup epoch; an entry written under an older epoch can never be
// returned, so stale loads never leak into placements.
//
// Thread-safe: the table is split into shards, each behind its own
// mutex, so the parallel multicast and the parallel Predict scoring
// loop can hit the cache from many threads without serialising on one
// lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "predict/predictor.hpp"

namespace vdce::predict {

/// Consistent snapshot of the cache counters: stats() quiesces every
/// shard, so the invariants hold on EVERY snapshot, including ones
/// taken while other threads are mid-lookup.  Every lookup is exactly
/// one hit or one miss; a miss caused by an entry written under an
/// older epoch additionally counts as an invalidation, so
///   lookups == hits + misses   and   invalidations <= misses.
struct PredictionCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
};

/// Thread-safe sharded memo table for Predict() results.
class PredictionCache {
 public:
  using Epoch = std::uint64_t;

  /// `shards` independent lock domains, each holding at most
  /// `capacity_per_shard` entries (a full shard is dropped wholesale --
  /// the cache is advisory, correctness never depends on residency).
  explicit PredictionCache(std::size_t shards = 16,
                           std::size_t capacity_per_shard = 4096);

  /// The cached prediction for (task, host, input_size) if present and
  /// written under exactly `epoch`; nullopt (and a recorded miss)
  /// otherwise.
  [[nodiscard]] std::optional<Prediction> find(std::string_view task,
                                               common::HostId host,
                                               double input_size, Epoch epoch);

  /// Memoises a freshly computed prediction under `epoch`.
  void put(std::string_view task, common::HostId host, double input_size,
           Epoch epoch, const Prediction& prediction);

  /// Consistent counter snapshot (takes every shard lock briefly, so
  /// concurrent lookups can never tear the documented invariants).
  [[nodiscard]] PredictionCacheStats stats() const;

  /// Drops every entry (counters are kept).
  void clear();

  [[nodiscard]] std::size_t size() const;

 private:
  struct Key {
    std::string task;
    std::uint32_t host = 0;
    double input_size = 0.0;

    [[nodiscard]] bool operator==(const Key& other) const {
      return host == other.host && input_size == other.input_size &&
             task == other.task;
    }
  };
  struct KeyHash {
    [[nodiscard]] std::size_t operator()(const Key& k) const;
  };
  struct Entry {
    Epoch epoch = 0;
    Prediction prediction;
  };
  struct Shard {
    std::mutex mu;
    std::unordered_map<Key, Entry, KeyHash> entries;
  };

  [[nodiscard]] Shard& shard_for(const Key& key);

  std::size_t capacity_per_shard_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> lookups_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> invalidations_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace vdce::predict
