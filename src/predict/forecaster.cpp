#include "predict/forecaster.hpp"

namespace vdce::predict {

LoadForecaster::LoadForecaster(std::size_t window, ForecastMethod method,
                               double ewma_alpha)
    : window_(window), method_(method), ewma_alpha_(ewma_alpha) {}

void LoadForecaster::observe(HostId host, double load) {
  std::lock_guard lk(mu_);
  version_.fetch_add(1, std::memory_order_release);
  auto it = windows_.find(host);
  if (it == windows_.end()) {
    it = windows_.emplace(host, common::SlidingWindowStats(window_)).first;
  }
  it->second.add(load);
}

std::optional<double> LoadForecaster::forecast(HostId host) const {
  std::lock_guard lk(mu_);
  double bias = 0.0;
  if (const auto b = bias_.find(host); b != bias_.end()) bias = b->second;
  const auto it = windows_.find(host);
  if (it == windows_.end() || it->second.empty()) {
    if (bias != 0.0) return bias;
    return std::nullopt;
  }
  return common::forecast(it->second, method_, ewma_alpha_) + bias;
}

void LoadForecaster::add_load_bias(HostId host, double delta) {
  std::lock_guard lk(mu_);
  version_.fetch_add(1, std::memory_order_release);
  double& bias = bias_[host];
  bias += delta;
  // Commitments are releases of earlier additions; clamp float dust so
  // a fully released host reads exactly unbiased again.
  if (bias > -1e-12 && bias < 1e-12) bias_.erase(host);
}

double LoadForecaster::load_bias(HostId host) const {
  std::lock_guard lk(mu_);
  const auto it = bias_.find(host);
  return it == bias_.end() ? 0.0 : it->second;
}

std::size_t LoadForecaster::count(HostId host) const {
  std::lock_guard lk(mu_);
  const auto it = windows_.find(host);
  return it == windows_.end() ? 0 : it->second.count();
}

void LoadForecaster::forget(HostId host) {
  std::lock_guard lk(mu_);
  version_.fetch_add(1, std::memory_order_release);
  windows_.erase(host);
}

}  // namespace vdce::predict
