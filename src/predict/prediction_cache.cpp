#include "predict/prediction_cache.hpp"

#include <algorithm>
#include <bit>
#include <functional>

#include "common/error.hpp"

namespace vdce::predict {

PredictionCache::PredictionCache(std::size_t shards,
                                 std::size_t capacity_per_shard)
    : capacity_per_shard_(std::max<std::size_t>(1, capacity_per_shard)) {
  const std::size_t n = std::max<std::size_t>(1, shards);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::size_t PredictionCache::KeyHash::operator()(const Key& k) const {
  std::size_t h = std::hash<std::string_view>{}(k.task);
  const auto mix = [&h](std::uint64_t v) {
    h ^= std::hash<std::uint64_t>{}(v) + 0x9E3779B97F4A7C15ull + (h << 6) +
         (h >> 2);
  };
  mix(k.host);
  mix(std::bit_cast<std::uint64_t>(k.input_size));
  return h;
}

PredictionCache::Shard& PredictionCache::shard_for(const Key& key) {
  return *shards_[KeyHash{}(key) % shards_.size()];
}

std::optional<Prediction> PredictionCache::find(std::string_view task,
                                                common::HostId host,
                                                double input_size,
                                                Epoch epoch) {
  Key key{std::string(task), host.value(), input_size};
  Shard& shard = shard_for(key);
  std::lock_guard lk(shard.mu);
  // All counter updates of one lookup happen under the shard lock, so
  // stats() (which holds every shard lock) sees lookups == hits + misses.
  lookups_.fetch_add(1, std::memory_order_relaxed);
  const auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  if (it->second.epoch != epoch) {
    // Written before a monitoring/forecaster/repository update: the
    // load figures behind it are stale, so it must not be served.
    shard.entries.erase(it);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.prediction;
}

void PredictionCache::put(std::string_view task, common::HostId host,
                          double input_size, Epoch epoch,
                          const Prediction& prediction) {
  Key key{std::string(task), host.value(), input_size};
  Shard& shard = shard_for(key);
  std::lock_guard lk(shard.mu);
  if (!shard.entries.contains(key) &&
      shard.entries.size() >= capacity_per_shard_) {
    evictions_.fetch_add(shard.entries.size(), std::memory_order_relaxed);
    shard.entries.clear();
  }
  shard.entries[std::move(key)] = Entry{epoch, prediction};
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

PredictionCacheStats PredictionCache::stats() const {
  // Consistent snapshot: every find()/put() holds its shard lock across
  // all of its counter increments, so holding every shard lock at once
  // means no lookup is mid-update and the documented invariants hold on
  // every snapshot, even under concurrent traffic.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) locks.emplace_back(shard->mu);
  PredictionCacheStats s;
  s.lookups = lookups_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  return s;
}

void PredictionCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard lk(shard->mu);
    shard->entries.clear();
  }
}

std::size_t PredictionCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lk(shard->mu);
    total += shard->entries.size();
  }
  return total;
}

}  // namespace vdce::predict
