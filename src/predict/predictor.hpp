// Performance prediction: the core of the built-in scheduling algorithms.
//
// "we provide separate function evaluations, Predict(task_i, R_j), to
//  predict the performance of each task, task_i, on each resource, R_j.
//  The performance prediction functions are based on a combination of
//  analytical modeling and measurements of experimental runs. ... The
//  input parameters of the prediction functions include:
//  Measured_Time(task_i, R_base) ... Weight(task_i, R_j) ...
//  Mem_Req(task_i) ... Memory_Avail(R_j) ... and CPU_load(R_j)."
//  (Section 2.2.1)
//
// Every input comes from the site repository (task-performance and
// resource-performance databases); the current load is forecast from the
// monitoring window when a LoadForecaster is attached, else the
// repository's most recent measurement is used.
#pragma once

#include <optional>
#include <string>

#include "common/clock.hpp"
#include "predict/forecaster.hpp"
#include "repository/repository.hpp"

namespace vdce::predict {

using common::Duration;
using common::HostId;

/// Breakdown of one prediction (for the visualization services and the
/// prediction-accuracy experiments).
struct Prediction {
  Duration time_s = 0.0;       // the final Predict(task, R) value
  Duration dedicated_s = 0.0;  // base_time * size / weight
  double weight = 1.0;         // the computing-power weight used
  double load = 0.0;           // forecast load used
  double memory_penalty = 1.0; // multiplier applied for memory pressure
};

/// Predict(task, R) evaluator bound to one site repository.
class PerformancePredictor {
 public:
  /// `forecaster` may be null (fall back to the repository's last
  /// monitored load); both references must outlive the predictor.
  explicit PerformancePredictor(const repo::SiteRepository& repository,
                                const LoadForecaster* forecaster = nullptr)
      : repo_(&repository), forecaster_(forecaster) {}

  /// Full prediction with its breakdown.  Throws NotFoundError for an
  /// unknown task or host.
  [[nodiscard]] Prediction predict_detailed(const std::string& task_name,
                                            double input_size,
                                            HostId host) const;

  /// Predict(task, R): predicted execution time in seconds.
  [[nodiscard]] Duration predict(const std::string& task_name,
                                 double input_size, HostId host) const {
    return predict_detailed(task_name, input_size, host).time_s;
  }

  [[nodiscard]] const repo::SiteRepository& repository() const {
    return *repo_;
  }

 private:
  const repo::SiteRepository* repo_;
  const LoadForecaster* forecaster_;
};

}  // namespace vdce::predict
