// Performance prediction: the core of the built-in scheduling algorithms.
//
// "we provide separate function evaluations, Predict(task_i, R_j), to
//  predict the performance of each task, task_i, on each resource, R_j.
//  The performance prediction functions are based on a combination of
//  analytical modeling and measurements of experimental runs. ... The
//  input parameters of the prediction functions include:
//  Measured_Time(task_i, R_base) ... Weight(task_i, R_j) ...
//  Mem_Req(task_i) ... Memory_Avail(R_j) ... and CPU_load(R_j)."
//  (Section 2.2.1)
//
// Every input comes from the site repository (task-performance and
// resource-performance databases); the current load is forecast from the
// monitoring window when a LoadForecaster is attached, else the
// repository's most recent measurement is used.
//
// Two hot-path accelerations sit on top of the plain evaluation:
//   * an optional PredictionCache memoises finished predictions under
//     an epoch derived from the repository/forecaster version counters
//     (see prediction_cache.hpp), and
//   * prepare() snapshots one task's record and weight table so a loop
//     scoring many hosts pays the string-keyed database lookups once
//     per graph instead of once per (task, host) pair.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/clock.hpp"
#include "predict/forecaster.hpp"
#include "repository/repository.hpp"

namespace vdce::predict {

using common::Duration;
using common::HostId;

class PredictionCache;

/// Breakdown of one prediction (for the visualization services and the
/// prediction-accuracy experiments).
struct Prediction {
  Duration time_s = 0.0;       // the final Predict(task, R) value
  Duration dedicated_s = 0.0;  // base_time * size / weight
  double weight = 1.0;         // the computing-power weight used
  double load = 0.0;           // forecast load used
  double memory_penalty = 1.0; // multiplier applied for memory pressure
};

/// One task's prefetched prediction inputs: the performance record and
/// the full weight table, copied out of the databases in one pass.
struct PreparedTask {
  std::string name;
  repo::TaskPerformanceRecord record;
  repo::TaskWeightTable weights;
};

/// Predict(task, R) evaluator bound to one site repository.
class PerformancePredictor {
 public:
  /// `forecaster` and `cache` may be null (no forecast fallback / no
  /// memoisation); all referenced objects must outlive the predictor.
  explicit PerformancePredictor(const repo::SiteRepository& repository,
                                const LoadForecaster* forecaster = nullptr,
                                PredictionCache* cache = nullptr)
      : repo_(&repository), forecaster_(forecaster), cache_(cache) {}

  /// Full prediction with its breakdown.  Throws NotFoundError for an
  /// unknown task or host.
  [[nodiscard]] Prediction predict_detailed(const std::string& task_name,
                                            double input_size,
                                            HostId host) const;

  /// Predict(task, R): predicted execution time in seconds.
  [[nodiscard]] Duration predict(const std::string& task_name,
                                 double input_size, HostId host) const {
    return predict_detailed(task_name, input_size, host).time_s;
  }

  /// Snapshots `task_name`'s record and weights for repeated scoring.
  /// Throws NotFoundError for an unknown task.
  [[nodiscard]] PreparedTask prepare(const std::string& task_name) const;

  /// Predict() against a prepared task and an already-fetched host
  /// record: no string-keyed database lookups on this path.
  [[nodiscard]] Prediction predict_detailed(const PreparedTask& task,
                                            double input_size,
                                            const repo::HostRecord& host)
      const;

  /// The cache epoch for the current repository + forecaster state (the
  /// sum of their version counters; monotonic).
  [[nodiscard]] std::uint64_t epoch() const;

  [[nodiscard]] const repo::SiteRepository& repository() const {
    return *repo_;
  }

  [[nodiscard]] PredictionCache* cache() const { return cache_; }

 private:
  [[nodiscard]] Prediction evaluate(const repo::TaskPerformanceRecord& task,
                                    double weight, double input_size,
                                    const repo::HostRecord& machine) const;

  const repo::SiteRepository* repo_;
  const LoadForecaster* forecaster_;
  PredictionCache* cache_;
};

}  // namespace vdce::predict
