// Workload forecasting.
//
// "The current workload parameters are computed using forecasting
//  techniques based on a window of most recent workload measurements."
//  (Section 2.2.1)
//
// The LoadForecaster keeps one sliding window per host, fed by the
// monitoring pipeline, and produces the load figure Predict() consumes.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "common/ids.hpp"
#include "common/stats.hpp"

namespace vdce::predict {

using common::ForecastMethod;
using common::HostId;

/// Per-host sliding-window load forecaster.  Thread-safe: monitors push
/// while the scheduler reads.
class LoadForecaster {
 public:
  /// `window` is the number of retained measurements per host.
  explicit LoadForecaster(std::size_t window = 8,
                          ForecastMethod method = ForecastMethod::kWindowMean,
                          double ewma_alpha = 0.5);

  /// Records a new load measurement for a host.
  void observe(HostId host, double load);

  /// Forecast for a host; nullopt when no measurement has been seen.
  /// When a load commitment is registered for the host (admitted
  /// applications, see add_load_bias), the committed load is added to
  /// the windowed forecast -- and is returned on its own even for a
  /// host with no measurements yet.
  [[nodiscard]] std::optional<double> forecast(HostId host) const;

  /// Adds `delta` to the host's committed load: the submission service
  /// registers the predicted load contribution of an admitted
  /// application here (and removes it with a negative delta when the
  /// application finishes), so Predict() sees admitted-but-running work
  /// before the Monitors measure it.  Bumps version() so cached
  /// predictions against the old commitment are never served.
  void add_load_bias(HostId host, double delta);

  /// The host's current committed load (0 when none).
  [[nodiscard]] double load_bias(HostId host) const;

  /// Number of measurements currently windowed for a host.
  [[nodiscard]] std::size_t count(HostId host) const;

  /// Drops a host's window (host decommissioned).
  void forget(HostId host);

  [[nodiscard]] ForecastMethod method() const { return method_; }

  /// Monotonic counter bumped by every observe()/forget().  Feeds the
  /// PredictionCache epoch so predictions cached against an older
  /// forecast are never served.
  [[nodiscard]] std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

 private:
  std::size_t window_;
  ForecastMethod method_;
  double ewma_alpha_;
  std::atomic<std::uint64_t> version_{0};
  mutable std::mutex mu_;
  std::unordered_map<HostId, common::SlidingWindowStats> windows_;
  /// Committed load of admitted-but-running applications, per host.
  std::unordered_map<HostId, double> bias_;
};

}  // namespace vdce::predict
