#include "predict/predictor.hpp"

#include "common/error.hpp"
#include "predict/prediction_cache.hpp"

namespace vdce::predict {

Prediction PerformancePredictor::evaluate(
    const repo::TaskPerformanceRecord& task, double weight,
    double input_size, const repo::HostRecord& machine) const {
  Prediction p;
  p.weight = weight;
  p.dedicated_s = task.base_time_s * input_size / p.weight;

  // CPU_load(R_j): forecast from the monitoring window if available,
  // else the most recent monitored value in the repository.
  std::optional<double> forecast;
  if (forecaster_ != nullptr) forecast = forecaster_->forecast(machine.host);
  p.load = forecast.value_or(machine.dynamic_attrs.cpu_load);

  // Mem_Req(task_i) vs Memory_Avail(R_j): thrashing multiplier mirrors
  // the environment's behaviour when the task does not fit.
  const double need = task.memory_req_mb * input_size;
  const double avail = machine.dynamic_attrs.available_memory_mb;
  p.memory_penalty = 1.0;
  if (need > avail && avail > 0.0) {
    p.memory_penalty = 1.0 + 4.0 * (need / avail - 1.0);
  }

  p.time_s = p.dedicated_s * (1.0 + p.load) * p.memory_penalty;
  return p;
}

std::uint64_t PerformancePredictor::epoch() const {
  return repo_->resources().version() + repo_->tasks().version() +
         (forecaster_ != nullptr ? forecaster_->version() : 0);
}

Prediction PerformancePredictor::predict_detailed(
    const std::string& task_name, double input_size, HostId host) const {
  common::expects(input_size > 0.0, "input size must be positive");
  std::uint64_t at = 0;
  if (cache_ != nullptr) {
    at = epoch();
    if (const auto hit = cache_->find(task_name, host, input_size, at)) {
      return *hit;
    }
  }
  const repo::TaskPerformanceRecord task = repo_->tasks().get(task_name);
  const repo::HostRecord machine = repo_->resources().get(host);
  const double weight = repo_->tasks().power_weight(
      task_name, host, machine.static_attrs.arch);
  const Prediction p = evaluate(task, weight, input_size, machine);
  if (cache_ != nullptr) cache_->put(task_name, host, input_size, at, p);
  return p;
}

PreparedTask PerformancePredictor::prepare(
    const std::string& task_name) const {
  PreparedTask out;
  out.name = task_name;
  out.record = repo_->tasks().get(task_name);
  out.weights = repo_->tasks().weight_table(task_name);
  return out;
}

Prediction PerformancePredictor::predict_detailed(
    const PreparedTask& task, double input_size,
    const repo::HostRecord& host) const {
  common::expects(input_size > 0.0, "input size must be positive");
  std::uint64_t at = 0;
  if (cache_ != nullptr) {
    at = epoch();
    if (const auto hit =
            cache_->find(task.name, host.host, input_size, at)) {
      return *hit;
    }
  }
  const double weight =
      task.weights.resolve(host.host, host.static_attrs.arch);
  const Prediction p = evaluate(task.record, weight, input_size, host);
  if (cache_ != nullptr) cache_->put(task.name, host.host, input_size, at, p);
  return p;
}

}  // namespace vdce::predict
