#include "predict/predictor.hpp"

#include "common/error.hpp"

namespace vdce::predict {

Prediction PerformancePredictor::predict_detailed(
    const std::string& task_name, double input_size, HostId host) const {
  common::expects(input_size > 0.0, "input size must be positive");
  const repo::TaskPerformanceRecord task = repo_->tasks().get(task_name);
  const repo::HostRecord machine = repo_->resources().get(host);

  Prediction p;
  p.weight = repo_->tasks().power_weight(task_name, host,
                                         machine.static_attrs.arch);
  p.dedicated_s = task.base_time_s * input_size / p.weight;

  // CPU_load(R_j): forecast from the monitoring window if available,
  // else the most recent monitored value in the repository.
  std::optional<double> forecast;
  if (forecaster_ != nullptr) forecast = forecaster_->forecast(host);
  p.load = forecast.value_or(machine.dynamic_attrs.cpu_load);

  // Mem_Req(task_i) vs Memory_Avail(R_j): thrashing multiplier mirrors
  // the environment's behaviour when the task does not fit.
  const double need = task.memory_req_mb * input_size;
  const double avail = machine.dynamic_attrs.available_memory_mb;
  p.memory_penalty = 1.0;
  if (need > avail && avail > 0.0) {
    p.memory_penalty = 1.0 + 4.0 * (need / avail - 1.0);
  }

  p.time_s = p.dedicated_s * (1.0 + p.load) * p.memory_penalty;
  return p;
}

}  // namespace vdce::predict
