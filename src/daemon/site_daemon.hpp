// The site daemon: one site's control plane in its own OS process
// (designs D14 + D17).
//
// "At each site, the VDCE Server runs the server software, called site
//  manager" (Section 2) -- and a server is a PROCESS, not an object in
// the coordinator's address space.  `vdce_site_daemon` hosts exactly
// the per-site stack the in-process wiring builds (SiteRepository +
// LoadForecaster + SiteManager + ControlManager with its Group
// Managers and Monitors) and speaks the wire.hpp protocol:
//
//   * an RPC listener on a kernel-assigned port serves one coordinator
//     connection at a time (tick / host-selection / reselection /
//     task-time / task-failure / shutdown); after a coordinator
//     disconnect it accepts the next connection, which is how a
//     restarted coordinator -- or a coordinator reattaching to a
//     restarted daemon -- resumes;
//   * a heartbeat connection beats into the watchdog, announcing the
//     RPC and gossip ports; losing that connection terminates the
//     daemon (an orphan without a supervisor must not linger);
//   * in gossip mode (D17) a second listener answers peer probes
//     (gossip ping), indirect probe requests (ping-req: probe a third
//     site over THIS daemon's network path) and roster pushes, while a
//     prober thread pings every rostered peer each round, piggybacks a
//     peer-health digest on the heartbeat channel, and immediately
//     refutes the suspicion of any peer it still hears.
//
// Chaos partitions reach daemon mode through a partition spec
// (ChaosSchedule::partition_spec with absolute steady-clock windows):
// while an edge is partitioned the daemon suppresses heartbeats to a
// partitioned coordinator and drops pings/ping-reqs from partitioned
// origins -- the network is simulated, the processes are real.
//
// Determinism: the daemon rebuilds its testbed from (preset seed)
// alone, and the coordinator drives Control Manager ticks explicitly
// over RPC, so a daemon-mode deployment reproduces the in-process
// repository state tick for tick; the gossip layer never touches the
// scheduling stack.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "datamgr/tcp.hpp"
#include "netsim/chaos.hpp"
#include "netsim/testbed.hpp"
#include "predict/forecaster.hpp"
#include "repository/repository.hpp"
#include "runtime/control_manager.hpp"
#include "runtime/liveness.hpp"
#include "runtime/site_manager.hpp"
#include "runtime/wire.hpp"
#include "tasklib/registry.hpp"

namespace vdce::daemon {

struct SiteDaemonConfig {
  common::SiteId site;
  /// Campus-testbed seed; must match the coordinator's.
  std::uint64_t seed = 13;
  /// Watchdog heartbeat port; 0 = unsupervised (tests drive the RPC
  /// port directly).
  std::uint16_t heartbeat_port = 0;
  double heartbeat_period_s = 0.05;
  std::uint32_t incarnation = 1;
  /// D17: serve the gossip listener and run the peer prober.
  bool gossip = false;
  /// Peer probe round period.
  double gossip_period_s = 0.05;
  /// Budget for one outbound peer probe (must stay under the
  /// watchdog's ping-req timeout).
  double probe_timeout_s = 0.15;
  /// The coordinator's vantage id in partition specs.
  common::SiteId coordinator_site = rt::LivenessDirectory::watchdog_witness();
  /// Chaos partitions (ChaosSchedule::partition_spec, absolute
  /// steady-clock windows); empty = none.
  std::string partition_spec;
};

/// One site's out-of-process control plane.
class SiteDaemon {
 public:
  /// Rebuilds the site stack and binds the RPC listener.
  explicit SiteDaemon(SiteDaemonConfig config);
  ~SiteDaemon();

  SiteDaemon(const SiteDaemon&) = delete;
  SiteDaemon& operator=(const SiteDaemon&) = delete;

  [[nodiscard]] std::uint16_t rpc_port() const { return listener_.port(); }
  /// The gossip listener port (0 when gossip is off).
  [[nodiscard]] std::uint16_t gossip_port() const {
    return config_.gossip ? gossip_listener_.port() : 0;
  }
  [[nodiscard]] rt::SiteManager& manager() { return *manager_; }
  [[nodiscard]] rt::ControlManager& control() { return *control_; }

  /// Serves coordinator connections until a shutdown RPC arrives (or
  /// the heartbeat link dies).  Returns the process exit code.
  int serve();

  /// Asks a serve() loop (possibly on another thread) to wind down
  /// after its current session.
  void request_stop();

 private:
  /// A rostered peer and what we last heard from it.
  struct Peer {
    common::SiteId site;
    std::uint16_t gossip_port = 0;
    std::uint32_t incarnation = 0;
    bool suspected = false;
  };
  struct Heard {
    std::uint32_t incarnation = 0;
    double when_s = 0.0;
    bool reachable = false;
  };

  /// Serves one coordinator session; returns false when the daemon
  /// should exit.
  bool session(dm::TcpChannel& channel);
  void heartbeat_loop();
  void gossip_accept_loop();
  /// Serves one inbound gossip connection (pings, ping-reqs, rosters).
  void gossip_session(std::shared_ptr<dm::TcpChannel> channel);
  /// One probe round over the roster, then the digest piggyback.
  void prober_loop();
  /// Probes `port` with a gossip ping; fills `incarnation` on success.
  [[nodiscard]] bool probe_peer(std::uint16_t port,
                                std::uint32_t& incarnation);
  /// Sends a frame on the heartbeat channel (prober and heartbeat
  /// threads share it); drops silently when the channel is gone.
  void send_to_watchdog(const std::vector<std::byte>& frame);
  /// True while a chaos partition separates this site from `other`.
  [[nodiscard]] bool partitioned_from(common::SiteId other) const;
  [[nodiscard]] static double now_s();

  SiteDaemonConfig config_;
  netsim::VirtualTestbed testbed_;
  tasklib::TaskRegistry registry_;
  std::unique_ptr<repo::SiteRepository> repository_;
  std::unique_ptr<predict::LoadForecaster> forecaster_;
  std::unique_ptr<rt::SiteManager> manager_;
  std::unique_ptr<rt::ControlManager> control_;
  netsim::ChaosSchedule partitions_;
  dm::TcpListener listener_;
  dm::TcpListener gossip_listener_;
  std::atomic<bool> stop_{false};

  std::mutex beat_mu_;
  std::shared_ptr<dm::TcpChannel> beat_channel_;

  std::mutex gossip_mu_;
  std::vector<Peer> peers_;
  std::map<common::SiteId, Heard> last_heard_;
  std::vector<std::shared_ptr<dm::TcpChannel>> gossip_channels_;
  std::vector<std::thread> gossip_handlers_;

  std::thread heartbeat_;
  std::thread gossip_acceptor_;
  std::thread prober_;
};

}  // namespace vdce::daemon
