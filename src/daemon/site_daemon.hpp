// The site daemon: one site's control plane in its own OS process
// (design D14).
//
// "At each site, the VDCE Server runs the server software, called site
//  manager" (Section 2) -- and a server is a PROCESS, not an object in
// the coordinator's address space.  `vdce_site_daemon` hosts exactly
// the per-site stack the in-process wiring builds (SiteRepository +
// LoadForecaster + SiteManager + ControlManager with its Group
// Managers and Monitors) and speaks the wire.hpp protocol:
//
//   * an RPC listener on a kernel-assigned port serves one coordinator
//     connection at a time (tick / host-selection / reselection /
//     task-time / task-failure / shutdown); after a coordinator
//     disconnect it accepts the next connection, which is how a
//     restarted coordinator -- or a coordinator reattaching to a
//     restarted daemon -- resumes;
//   * a heartbeat connection beats into the watchdog, announcing the
//     RPC port; losing that connection terminates the daemon (an
//     orphan without a supervisor must not linger).
//
// Determinism: the daemon rebuilds its testbed from (preset seed)
// alone, and the coordinator drives Control Manager ticks explicitly
// over RPC, so a daemon-mode deployment reproduces the in-process
// repository state tick for tick.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "datamgr/tcp.hpp"
#include "netsim/testbed.hpp"
#include "predict/forecaster.hpp"
#include "repository/repository.hpp"
#include "runtime/control_manager.hpp"
#include "runtime/site_manager.hpp"
#include "tasklib/registry.hpp"

namespace vdce::daemon {

struct SiteDaemonConfig {
  common::SiteId site;
  /// Campus-testbed seed; must match the coordinator's.
  std::uint64_t seed = 13;
  /// Watchdog heartbeat port; 0 = unsupervised (tests drive the RPC
  /// port directly).
  std::uint16_t heartbeat_port = 0;
  double heartbeat_period_s = 0.05;
  std::uint32_t incarnation = 1;
};

/// One site's out-of-process control plane.
class SiteDaemon {
 public:
  /// Rebuilds the site stack and binds the RPC listener.
  explicit SiteDaemon(SiteDaemonConfig config);
  ~SiteDaemon();

  SiteDaemon(const SiteDaemon&) = delete;
  SiteDaemon& operator=(const SiteDaemon&) = delete;

  [[nodiscard]] std::uint16_t rpc_port() const { return listener_.port(); }
  [[nodiscard]] rt::SiteManager& manager() { return *manager_; }
  [[nodiscard]] rt::ControlManager& control() { return *control_; }

  /// Serves coordinator connections until a shutdown RPC arrives (or
  /// the heartbeat link dies).  Returns the process exit code.
  int serve();

  /// Asks a serve() loop (possibly on another thread) to wind down
  /// after its current session.
  void request_stop();

 private:
  /// Serves one coordinator session; returns false when the daemon
  /// should exit.
  bool session(dm::TcpChannel& channel);
  void heartbeat_loop();

  SiteDaemonConfig config_;
  netsim::VirtualTestbed testbed_;
  tasklib::TaskRegistry registry_;
  std::unique_ptr<repo::SiteRepository> repository_;
  std::unique_ptr<predict::LoadForecaster> forecaster_;
  std::unique_ptr<rt::SiteManager> manager_;
  std::unique_ptr<rt::ControlManager> control_;
  dm::TcpListener listener_;
  std::atomic<bool> stop_{false};
  std::thread heartbeat_;
};

}  // namespace vdce::daemon
