#include "daemon/site_daemon.hpp"

#include <unistd.h>

#include <chrono>

#include "afg/serialize.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "netsim/config.hpp"
#include "runtime/wire.hpp"

namespace vdce::daemon {

namespace wire = rt::wire;
using common::TransportError;

SiteDaemon::SiteDaemon(SiteDaemonConfig config)
    : config_(config),
      testbed_(netsim::make_campus_testbed(config.seed)) {
  // Mirror the in-process per-site wiring exactly (the integration
  // fixture's recipe): same repository contents, same forecaster, same
  // Group Manager layout -- determinism depends on it.
  for (const auto& name : tasklib::builtin_registry().all_tasks()) {
    registry_.add(tasklib::builtin_registry().get(name));
  }
  repository_ = std::make_unique<repo::SiteRepository>(config_.site);
  registry_.install_defaults(repository_->tasks());
  testbed_.populate_repository(*repository_, config_.site);
  repository_->users().add_user("hpdc", "nynet", 1, "wan");
  forecaster_ = std::make_unique<predict::LoadForecaster>();
  manager_ = std::make_unique<rt::SiteManager>(config_.site, *repository_,
                                               *forecaster_);
  control_ = std::make_unique<rt::ControlManager>(testbed_, config_.site,
                                                  *manager_);
  if (config_.heartbeat_port != 0) {
    heartbeat_ = std::thread([this] { heartbeat_loop(); });
  }
}

SiteDaemon::~SiteDaemon() {
  request_stop();
  if (heartbeat_.joinable()) heartbeat_.join();
}

void SiteDaemon::request_stop() {
  if (!stop_.exchange(true)) listener_.close();
}

void SiteDaemon::heartbeat_loop() {
  try {
    auto channel = dm::tcp_connect(config_.heartbeat_port);
    wire::Heartbeat beat;
    beat.site = config_.site;
    beat.pid = static_cast<std::int64_t>(::getpid());
    beat.rpc_port = listener_.port();
    beat.incarnation = config_.incarnation;
    while (!stop_.load(std::memory_order_acquire)) {
      ++beat.seq;
      channel->send(wire::encode(beat));
      std::this_thread::sleep_for(
          std::chrono::duration<double>(config_.heartbeat_period_s));
    }
  } catch (const TransportError& e) {
    // The watchdog is gone: a daemon without a supervisor must not
    // linger as an orphan.  Unblock serve() and exit.
    common::log_warn("site_daemon", "heartbeat link lost (", e.what(),
                     "), shutting down");
    request_stop();
  }
}

bool SiteDaemon::session(dm::TcpChannel& channel) {
  for (;;) {
    std::optional<std::vector<std::byte>> frame;
    try {
      frame = channel.receive();
    } catch (const TransportError&) {
      return true;  // coordinator vanished mid-frame: await the next one
    }
    if (!frame) return true;  // orderly disconnect: accept a successor
    std::vector<std::byte> reply;
    try {
      switch (wire::peek_type(*frame)) {
        case wire::MsgType::kTickRequest: {
          const wire::TickRequest req = wire::decode_tick_request(*frame);
          control_->tick(req.now);
          reply = wire::encode(wire::Ack{});
          break;
        }
        case wire::MsgType::kHostSelectionRequest: {
          const wire::HostSelectionRequest req =
              wire::decode_host_selection_request(*frame);
          const afg::FlowGraph graph = afg::from_text(req.graph_text);
          wire::HostSelectionResponse resp;
          resp.selection =
              manager_->host_selection_request(graph, req.threads);
          reply = wire::encode(resp);
          break;
        }
        case wire::MsgType::kReselectionRequest: {
          const wire::ReselectionRequest req =
              wire::decode_reselection_request(*frame);
          afg::TaskNode node;
          node.id = req.task;
          node.library_task = req.library_task;
          node.label = req.label;
          node.props.input_size = req.input_size;
          node.props.num_processors = req.num_processors;
          node.props.mode = req.parallel ? afg::ComputeMode::kParallel
                                         : afg::ComputeMode::kSequential;
          wire::ReselectionResponse resp;
          resp.selection = manager_->reschedule_request(node, req.excluded);
          reply = wire::encode(resp);
          break;
        }
        case wire::MsgType::kRecordTaskTime: {
          const wire::RecordTaskTime req =
              wire::decode_record_task_time(*frame);
          manager_->record_task_time(req.library_task, req.elapsed_s);
          reply = wire::encode(wire::Ack{});
          break;
        }
        case wire::MsgType::kRescheduleRequest: {
          control_->report_task_failure(
              wire::decode_reschedule_request(*frame));
          reply = wire::encode(wire::Ack{});
          break;
        }
        case wire::MsgType::kShutdownRequest:
          channel.send(wire::encode(wire::Ack{}));
          return false;
        default:
          reply = wire::encode(wire::ErrorReply{
              std::string("unexpected RPC message type: ") +
              wire::to_string(wire::peek_type(*frame))});
          break;
      }
    } catch (const common::VdceError& e) {
      // Garbage frames, truncated payloads, and handler failures all
      // surface to the coordinator as an ErrorReply; the session
      // itself survives (one bad request must not take the site down).
      reply = wire::encode(wire::ErrorReply{e.what()});
    }
    try {
      channel.send(reply);
    } catch (const TransportError&) {
      return true;  // coordinator vanished between request and reply
    }
  }
}

int SiteDaemon::serve() {
  common::log_info("site_daemon", "site ", config_.site.value(),
                   " incarnation ", config_.incarnation, " serving on port ",
                   listener_.port());
  while (!stop_.load(std::memory_order_acquire)) {
    std::unique_ptr<dm::TcpChannel> channel;
    try {
      channel = listener_.accept();
    } catch (const TransportError&) {
      break;  // listener closed by request_stop()
    }
    if (!session(*channel)) break;
  }
  return 0;
}

}  // namespace vdce::daemon
