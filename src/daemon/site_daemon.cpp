#include "daemon/site_daemon.hpp"

#include <unistd.h>

#include <chrono>

#include "afg/serialize.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "netsim/config.hpp"

namespace vdce::daemon {

namespace wire = rt::wire;
using common::TransportError;

double SiteDaemon::now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

SiteDaemon::SiteDaemon(SiteDaemonConfig config)
    : config_(std::move(config)),
      testbed_(netsim::make_campus_testbed(config_.seed)) {
  // Mirror the in-process per-site wiring exactly (the integration
  // fixture's recipe): same repository contents, same forecaster, same
  // Group Manager layout -- determinism depends on it.
  for (const auto& name : tasklib::builtin_registry().all_tasks()) {
    registry_.add(tasklib::builtin_registry().get(name));
  }
  repository_ = std::make_unique<repo::SiteRepository>(config_.site);
  registry_.install_defaults(repository_->tasks());
  testbed_.populate_repository(*repository_, config_.site);
  repository_->users().add_user("hpdc", "nynet", 1, "wan");
  forecaster_ = std::make_unique<predict::LoadForecaster>();
  manager_ = std::make_unique<rt::SiteManager>(config_.site, *repository_,
                                               *forecaster_);
  control_ = std::make_unique<rt::ControlManager>(testbed_, config_.site,
                                                  *manager_);
  if (!config_.partition_spec.empty()) {
    partitions_ =
        netsim::ChaosSchedule::from_partition_spec(config_.partition_spec);
  }
  if (config_.gossip) {
    gossip_acceptor_ = std::thread([this] { gossip_accept_loop(); });
    prober_ = std::thread([this] { prober_loop(); });
  }
  if (config_.heartbeat_port != 0) {
    heartbeat_ = std::thread([this] { heartbeat_loop(); });
  }
}

SiteDaemon::~SiteDaemon() {
  request_stop();
  if (heartbeat_.joinable()) heartbeat_.join();
  if (gossip_acceptor_.joinable()) gossip_acceptor_.join();
  if (prober_.joinable()) prober_.join();
  std::vector<std::thread> handlers;
  {
    const std::lock_guard lock(gossip_mu_);
    handlers.swap(gossip_handlers_);
  }
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }
}

void SiteDaemon::request_stop() {
  if (stop_.exchange(true)) return;
  listener_.close();
  gossip_listener_.close();
  std::vector<std::shared_ptr<dm::TcpChannel>> channels;
  {
    const std::lock_guard lock(gossip_mu_);
    channels = gossip_channels_;
  }
  for (auto& channel : channels) channel->close();
  {
    const std::lock_guard lock(beat_mu_);
    if (beat_channel_) beat_channel_->close();
  }
}

bool SiteDaemon::partitioned_from(common::SiteId other) const {
  return partitions_.partitioned(config_.site, other, now_s());
}

void SiteDaemon::send_to_watchdog(const std::vector<std::byte>& frame) {
  const std::lock_guard lock(beat_mu_);
  if (!beat_channel_) return;
  try {
    beat_channel_->send(frame);
  } catch (const TransportError&) {
    // The heartbeat loop owns the death of this link.
  }
}

void SiteDaemon::heartbeat_loop() {
  try {
    auto channel = dm::tcp_connect(config_.heartbeat_port);
    {
      const std::lock_guard lock(beat_mu_);
      beat_channel_ = std::move(channel);
    }
    wire::Heartbeat beat;
    beat.site = config_.site;
    beat.pid = static_cast<std::int64_t>(::getpid());
    beat.rpc_port = listener_.port();
    beat.gossip_port = gossip_port();
    beat.incarnation = config_.incarnation;
    while (!stop_.load(std::memory_order_acquire)) {
      // A chaos partition between this site and the coordinator drops
      // heartbeats (the connection stays up -- real partitions do not
      // send FINs); the watchdog's deadline fires into a suspicion.
      if (!partitioned_from(config_.coordinator_site)) {
        ++beat.seq;
        std::vector<std::byte> encoded = wire::encode(beat);
        {
          const std::lock_guard lock(beat_mu_);
          if (!beat_channel_) break;
          beat_channel_->send(encoded);
        }
      }
      std::this_thread::sleep_for(
          std::chrono::duration<double>(config_.heartbeat_period_s));
    }
  } catch (const TransportError& e) {
    // The watchdog is gone: a daemon without a supervisor must not
    // linger as an orphan.  Unblock serve() and exit.
    common::log_warn("site_daemon", "heartbeat link lost (", e.what(),
                     "), shutting down");
    request_stop();
  }
}

// -- gossip (D17) --------------------------------------------------------

void SiteDaemon::gossip_accept_loop() {
  for (;;) {
    std::shared_ptr<dm::TcpChannel> channel;
    try {
      channel = gossip_listener_.accept();
    } catch (const TransportError&) {
      return;  // listener closed: shutting down
    }
    const std::lock_guard lock(gossip_mu_);
    if (stop_.load(std::memory_order_acquire)) return;
    gossip_channels_.push_back(channel);
    gossip_handlers_.emplace_back(
        [this, channel] { gossip_session(channel); });
  }
}

bool SiteDaemon::probe_peer(std::uint16_t port, std::uint32_t& incarnation) {
  try {
    auto channel = dm::tcp_connect(port);
    wire::GossipPing ping;
    ping.origin_site = config_.site;
    channel->send(wire::encode(ping));
    const auto reply = channel->receive_for(config_.probe_timeout_s);
    if (!reply || wire::peek_type(*reply) != wire::MsgType::kGossipAck) {
      return false;
    }
    incarnation = wire::decode_gossip_ack(*reply).incarnation;
    return true;
  } catch (const common::VdceError&) {
    return false;
  }
}

void SiteDaemon::gossip_session(std::shared_ptr<dm::TcpChannel> channel) {
  for (;;) {
    std::optional<std::vector<std::byte>> frame;
    try {
      frame = channel->receive();
    } catch (const TransportError&) {
      return;
    }
    if (!frame) return;
    try {
      switch (wire::peek_type(*frame)) {
        case wire::MsgType::kGossipPing: {
          const wire::GossipPing ping = wire::decode_gossip_ping(*frame);
          // A partitioned origin cannot reach us: drop, no ack.
          if (partitioned_from(ping.origin_site)) break;
          wire::GossipAck ack;
          ack.site = config_.site;
          ack.incarnation = config_.incarnation;
          ack.seq = ping.seq;
          channel->send(wire::encode(ack));
          break;
        }
        case wire::MsgType::kPingReq: {
          const wire::PingReq req = wire::decode_ping_req(*frame);
          if (partitioned_from(req.origin_site)) break;
          // Probe the target over OUR network path -- the whole point
          // of the indirect probe is the independent vantage.
          wire::PingReqReply reply;
          reply.target_site = req.target_site;
          reply.seq = req.seq;
          std::uint32_t incarnation = 0;
          reply.reachable = !partitioned_from(req.target_site) &&
                            probe_peer(req.target_gossip_port, incarnation);
          reply.target_incarnation = incarnation;
          channel->send(wire::encode(reply));
          break;
        }
        case wire::MsgType::kPeerRoster: {
          if (partitioned_from(config_.coordinator_site)) break;
          const wire::PeerRoster roster = wire::decode_peer_roster(*frame);
          const std::lock_guard lock(gossip_mu_);
          peers_.clear();
          for (const wire::PeerEndpoint& e : roster.peers) {
            if (e.site == config_.site) continue;
            peers_.push_back({e.site, e.gossip_port, e.incarnation,
                              e.suspected});
          }
          break;
        }
        default:
          common::log_warn("site_daemon",
                           "unexpected frame on gossip channel: ",
                           wire::to_string(wire::peek_type(*frame)));
          break;
      }
    } catch (const common::VdceError& e) {
      // Truncated or garbled gossip never kills the daemon.
      common::log_warn("site_daemon", "dropping bad gossip frame: ",
                       e.what());
    }
  }
}

void SiteDaemon::prober_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(config_.gossip_period_s));
    if (stop_.load(std::memory_order_acquire)) return;
    std::vector<Peer> peers;
    {
      const std::lock_guard lock(gossip_mu_);
      peers = peers_;
    }
    const double now = now_s();
    for (const Peer& peer : peers) {
      bool ok = false;
      std::uint32_t incarnation = 0;
      if (!partitioned_from(peer.site)) {
        ok = probe_peer(peer.gossip_port, incarnation);
      }
      const std::lock_guard lock(gossip_mu_);
      Heard& heard = last_heard_[peer.site];
      if (ok) {
        heard.incarnation = incarnation;
        heard.when_s = now;
        heard.reachable = true;
      } else {
        if (heard.incarnation == 0) heard.incarnation = peer.incarnation;
        heard.reachable = false;
      }
      // Active refutation: the watchdog flagged this peer suspect, but
      // we still hear it -- say so now, not at the next digest.
      if (ok && peer.suspected) {
        wire::Refute refute;
        refute.witness_site = config_.site;
        refute.site = peer.site;
        refute.incarnation = incarnation;
        if (!partitioned_from(config_.coordinator_site)) {
          send_to_watchdog(wire::encode(refute));
        }
      }
    }
    // The digest piggyback: who we last heard, how long ago.
    wire::PeerDigest digest;
    digest.origin_site = config_.site;
    digest.origin_incarnation = config_.incarnation;
    {
      const std::lock_guard lock(gossip_mu_);
      for (const auto& [site, heard] : last_heard_) {
        wire::PeerHealth health;
        health.site = site;
        health.incarnation = heard.incarnation;
        health.age_s = heard.when_s > 0.0 ? now - heard.when_s : 1e9;
        health.reachable = heard.reachable;
        digest.peers.push_back(health);
      }
    }
    if (!digest.peers.empty() &&
        !partitioned_from(config_.coordinator_site)) {
      send_to_watchdog(wire::encode(digest));
    }
  }
}

bool SiteDaemon::session(dm::TcpChannel& channel) {
  for (;;) {
    std::optional<std::vector<std::byte>> frame;
    try {
      frame = channel.receive();
    } catch (const TransportError&) {
      return true;  // coordinator vanished mid-frame: await the next one
    }
    if (!frame) return true;  // orderly disconnect: accept a successor
    std::vector<std::byte> reply;
    try {
      switch (wire::peek_type(*frame)) {
        case wire::MsgType::kTickRequest: {
          const wire::TickRequest req = wire::decode_tick_request(*frame);
          control_->tick(req.now);
          reply = wire::encode(wire::Ack{});
          break;
        }
        case wire::MsgType::kHostSelectionRequest: {
          const wire::HostSelectionRequest req =
              wire::decode_host_selection_request(*frame);
          const afg::FlowGraph graph = afg::from_text(req.graph_text);
          wire::HostSelectionResponse resp;
          resp.selection =
              manager_->host_selection_request(graph, req.threads);
          reply = wire::encode(resp);
          break;
        }
        case wire::MsgType::kReselectionRequest: {
          const wire::ReselectionRequest req =
              wire::decode_reselection_request(*frame);
          afg::TaskNode node;
          node.id = req.task;
          node.library_task = req.library_task;
          node.label = req.label;
          node.props.input_size = req.input_size;
          node.props.num_processors = req.num_processors;
          node.props.mode = req.parallel ? afg::ComputeMode::kParallel
                                         : afg::ComputeMode::kSequential;
          wire::ReselectionResponse resp;
          resp.selection = manager_->reschedule_request(node, req.excluded);
          reply = wire::encode(resp);
          break;
        }
        case wire::MsgType::kRecordTaskTime: {
          const wire::RecordTaskTime req =
              wire::decode_record_task_time(*frame);
          manager_->record_task_time(req.library_task, req.elapsed_s);
          reply = wire::encode(wire::Ack{});
          break;
        }
        case wire::MsgType::kRescheduleRequest: {
          control_->report_task_failure(
              wire::decode_reschedule_request(*frame));
          reply = wire::encode(wire::Ack{});
          break;
        }
        case wire::MsgType::kShutdownRequest:
          channel.send(wire::encode(wire::Ack{}));
          return false;
        default:
          reply = wire::encode(wire::ErrorReply{
              std::string("unexpected RPC message type: ") +
              wire::to_string(wire::peek_type(*frame))});
          break;
      }
    } catch (const common::VdceError& e) {
      // Garbage frames, truncated payloads, and handler failures all
      // surface to the coordinator as an ErrorReply; the session
      // itself survives (one bad request must not take the site down).
      reply = wire::encode(wire::ErrorReply{e.what()});
    }
    try {
      channel.send(reply);
    } catch (const TransportError&) {
      return true;  // coordinator vanished between request and reply
    }
  }
}

int SiteDaemon::serve() {
  common::log_info("site_daemon", "site ", config_.site.value(),
                   " incarnation ", config_.incarnation, " serving on port ",
                   listener_.port());
  while (!stop_.load(std::memory_order_acquire)) {
    std::unique_ptr<dm::TcpChannel> channel;
    try {
      channel = listener_.accept();
    } catch (const TransportError&) {
      break;  // listener closed by request_stop()
    }
    if (!session(*channel)) break;
  }
  return 0;
}

}  // namespace vdce::daemon
