// Coordinator-side clients of the site daemon RPC protocol (D14).
//
// DaemonClient wraps one TCP connection to a vdce_site_daemon with a
// strict request/reply discipline (the daemon serves one frame at a
// time, so a mutex serialises callers).  RemoteSiteDirectory plugs the
// clients into the scheduler's SiteDirectory seam: Host Selection and
// reselection requests -- the paper's inter-site AFG multicast --
// travel to the site's daemon over the wire, while the static
// topology/WAN queries are answered by a local replica directory (the
// coordinator's own repositories, populated from the same seeded
// testbed, so both sides agree by construction).
//
// Failure semantics: an unreachable daemon yields an EMPTY (infeasible)
// selection, never an exception -- the Site Scheduler then simply
// places nothing on that site, which is exactly how the in-process
// stack treats a site with no eligible hosts.  A transient
// TransportError inside one RPC is retried a bounded number of times
// with deterministic exponential backoff (reconnecting to the same
// port, counted in `daemon.rpc_retries`) before it surfaces.  The
// directory reconnects through the Watchdog on the next request and
// pins each cached client to the daemon incarnation it connected to,
// so a connection into a stale (pre-restart) daemon is fenced off and
// dropped rather than silently answering with dead state (D17).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "datamgr/tcp.hpp"
#include "runtime/watchdog.hpp"
#include "runtime/wire.hpp"
#include "scheduler/directory.hpp"

namespace vdce::daemon {

/// RPC budget for one DaemonClient.
struct DaemonRpcConfig {
  double timeout_s = 10.0;
  /// Extra attempts after the first on a transient TransportError
  /// (reconnect + resend); 0 = fail fast.
  int rpc_retries = 1;
  /// Backoff before retry k is rpc_backoff_s * 2^k -- deterministic,
  /// no jitter needed (one caller, one connection).
  double rpc_backoff_s = 0.05;
};

/// Blocking request/reply client over one daemon connection.
/// Thread-safe: one RPC is in flight at a time.
class DaemonClient {
 public:
  /// Connects to a daemon's RPC port.
  explicit DaemonClient(std::uint16_t port, double rpc_timeout_s = 10.0);
  DaemonClient(std::uint16_t port, DaemonRpcConfig rpc);

  /// The daemon incarnation this client is pinned to (0 = unknown);
  /// RemoteSiteDirectory drops clients whose incarnation went stale.
  [[nodiscard]] std::uint32_t incarnation() const { return incarnation_; }
  void set_incarnation(std::uint32_t incarnation) {
    incarnation_ = incarnation;
  }

  /// Advances the daemon's Control Manager to `now`.
  void tick(common::TimePoint now);
  /// Ships the AFG (as text) and runs Host Selection remotely.
  [[nodiscard]] sched::HostSelectionMap host_selection(
      const afg::FlowGraph& graph, std::size_t threads);
  [[nodiscard]] sched::HostSelection host_reselection(
      const afg::TaskNode& node, const std::vector<common::HostId>& excluded);
  void record_task_time(const std::string& library_task,
                        common::Duration elapsed_s);
  void report_task_failure(const rt::RescheduleRequest& request);
  /// Asks the daemon process to exit cleanly.
  void shutdown();

 private:
  /// Sends `request`, waits for the reply, checks it is `expect` (an
  /// ErrorReply re-throws as StateError; anything else is a protocol
  /// violation).  Retries a TransportError up to rpc_retries times
  /// with exponential backoff, reconnecting each time; throws the
  /// last TransportError once the budget is spent.
  [[nodiscard]] std::vector<std::byte> call(
      std::span<const std::byte> request, rt::wire::MsgType expect);
  /// One attempt (lock held by call).
  [[nodiscard]] std::vector<std::byte> call_once(
      std::span<const std::byte> request, rt::wire::MsgType expect);

  std::uint16_t port_;
  DaemonRpcConfig rpc_;
  std::uint32_t incarnation_ = 0;
  std::unique_ptr<dm::TcpChannel> channel_;
  std::mutex mu_;
};

/// Counters for the daemon-mode coordination experiments.
struct RemoteDirectoryStats {
  std::size_t remote_selections = 0;
  std::size_t remote_reselections = 0;
  std::size_t transport_failures = 0;
};

/// SiteDirectory whose Host Selection queries go to site daemons.
class RemoteSiteDirectory final : public sched::SiteDirectory {
 public:
  /// `replica` answers the static queries (sites, distances, transfer
  /// and base times) from the coordinator's local repositories;
  /// `watchdog` maps a site to its current daemon RPC port.  Both must
  /// outlive the directory.  Sites not in `remote_sites` fall back to
  /// the replica entirely.
  RemoteSiteDirectory(sched::SiteDirectory& replica, rt::Watchdog& watchdog,
                      std::vector<common::SiteId> remote_sites,
                      double rpc_timeout_s = 10.0);
  RemoteSiteDirectory(sched::SiteDirectory& replica, rt::Watchdog& watchdog,
                      std::vector<common::SiteId> remote_sites,
                      DaemonRpcConfig rpc);

  [[nodiscard]] std::vector<common::SiteId> sites() const override;
  [[nodiscard]] common::Duration site_distance(
      common::SiteId a, common::SiteId b) const override;
  [[nodiscard]] common::Duration transfer_time(common::SiteId a,
                                               common::SiteId b,
                                               double mb) const override;
  [[nodiscard]] sched::HostSelectionMap host_selection(
      common::SiteId site, const afg::FlowGraph& graph,
      std::size_t threads = 1) override;
  [[nodiscard]] sched::HostSelection host_reselection(
      common::SiteId site, const afg::TaskNode& node,
      const std::vector<common::HostId>& excluded) override;
  [[nodiscard]] common::Duration base_time(
      const std::string& library_task) const override;
  [[nodiscard]] common::Duration host_transfer_time(common::HostId from,
                                                    common::HostId to,
                                                    double mb) const override;

  /// Forwards post-execution feedback to one site's daemon (best
  /// effort: a dead daemon loses the measurement, as a dead site
  /// would).
  void record_task_time(common::SiteId site, const std::string& library_task,
                        common::Duration elapsed_s);
  /// Drives one remote Control Manager tick on every remote site.
  void tick_all(common::TimePoint now);

  [[nodiscard]] RemoteDirectoryStats stats() const;

 private:
  /// Current client for `site`, (re)connecting through the watchdog;
  /// nullptr when the site has no live daemon.
  [[nodiscard]] std::shared_ptr<DaemonClient> client(common::SiteId site);
  /// Drops a cached client after a transport failure so the next call
  /// reconnects (the daemon may have restarted on a new port).
  void drop_client(common::SiteId site);

  sched::SiteDirectory* replica_;
  rt::Watchdog* watchdog_;
  std::vector<common::SiteId> remote_sites_;
  DaemonRpcConfig rpc_;
  mutable std::mutex mu_;
  std::map<common::SiteId, std::shared_ptr<DaemonClient>> clients_;
  RemoteDirectoryStats stats_;
};

}  // namespace vdce::daemon
