// vdce_site_daemon: one site's control plane as an OS process (D14).
//
// Launched by rt::Watchdog (or by hand):
//   vdce_site_daemon --site 1 --seed 13
//       --heartbeat-port 40123 --heartbeat-period 0.05 --incarnation 1
//       [--gossip 1] [--gossip-period 0.05] [--coordinator-site N]
//       [--partition-spec "a,b,start,end;..."]
//
// Without --heartbeat-port the daemon runs unsupervised and prints its
// RPC (and gossip) port on stdout (manual experimentation).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "common/ids.hpp"
#include "daemon/site_daemon.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --site N [--seed S] [--heartbeat-port P]\n"
               "          [--heartbeat-period SECONDS] [--incarnation K]\n"
               "          [--gossip 0|1] [--gossip-period SECONDS]\n"
               "          [--coordinator-site N] [--partition-spec SPEC]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  vdce::daemon::SiteDaemonConfig config;
  config.site = vdce::common::SiteId::invalid();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--site") {
      config.site =
          vdce::common::SiteId(static_cast<std::uint32_t>(std::atoi(next())));
    } else if (arg == "--seed") {
      config.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--heartbeat-port") {
      config.heartbeat_port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (arg == "--heartbeat-period") {
      config.heartbeat_period_s = std::atof(next());
    } else if (arg == "--incarnation") {
      config.incarnation = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (arg == "--gossip") {
      config.gossip = std::atoi(next()) != 0;
    } else if (arg == "--gossip-period") {
      config.gossip_period_s = std::atof(next());
    } else if (arg == "--coordinator-site") {
      config.coordinator_site =
          vdce::common::SiteId(static_cast<std::uint32_t>(
              std::strtoul(next(), nullptr, 10)));
    } else if (arg == "--partition-spec") {
      config.partition_spec = next();
    } else {
      usage(argv[0]);
    }
  }
  if (config.site == vdce::common::SiteId::invalid()) usage(argv[0]);

  try {
    vdce::daemon::SiteDaemon daemon(config);
    if (config.heartbeat_port == 0) {
      std::printf("rpc_port=%u\n", daemon.rpc_port());
      if (config.gossip) {
        std::printf("gossip_port=%u\n", daemon.gossip_port());
      }
      std::fflush(stdout);
    }
    return daemon.serve();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vdce_site_daemon: fatal: %s\n", e.what());
    return 1;
  }
}
