#include "daemon/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "afg/serialize.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"

namespace vdce::daemon {

namespace wire = rt::wire;
using common::StateError;
using common::TransportError;

DaemonClient::DaemonClient(std::uint16_t port, double rpc_timeout_s)
    : DaemonClient(port, DaemonRpcConfig{rpc_timeout_s, 1, 0.05}) {}

DaemonClient::DaemonClient(std::uint16_t port, DaemonRpcConfig rpc)
    : port_(port), rpc_(rpc), channel_(dm::tcp_connect(port)) {}

std::vector<std::byte> DaemonClient::call(std::span<const std::byte> request,
                                          wire::MsgType expect) {
  const std::lock_guard lock(mu_);
  for (int attempt = 0;; ++attempt) {
    try {
      return call_once(request, expect);
    } catch (const TransportError& e) {
      if (attempt >= rpc_.rpc_retries) throw;
      common::MetricsRegistry::global().counter("daemon.rpc_retries").add(1);
      const double backoff_s =
          rpc_.rpc_backoff_s * static_cast<double>(1 << attempt);
      common::log_warn("daemon_client", "RPC attempt ", attempt + 1,
                       " failed (", e.what(), "); retrying in ", backoff_s,
                       "s");
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff_s));
      // Reconnect: the old connection is half-dead at best.  A refused
      // connection here is tolerated -- call_once reconnects on the
      // next attempt and a still-dead daemon fails from there.
      channel_.reset();
      try {
        channel_ = dm::tcp_connect(port_);
      } catch (const TransportError&) {
      }
    }
  }
}

std::vector<std::byte> DaemonClient::call_once(
    std::span<const std::byte> request, wire::MsgType expect) {
  if (!channel_) channel_ = dm::tcp_connect(port_);
  channel_->send(request);
  const auto reply = channel_->receive_for(rpc_.timeout_s);
  if (!reply) {
    throw TransportError("daemon closed the connection mid-RPC");
  }
  const wire::MsgType got = wire::peek_type(*reply);
  if (got == wire::MsgType::kErrorReply) {
    throw StateError("daemon RPC failed: " +
                     wire::decode_error_reply(*reply).what);
  }
  if (got != expect) {
    throw common::ParseError(std::string("daemon RPC reply type mismatch: ") +
                             "expected " + wire::to_string(expect) +
                             ", got " + wire::to_string(got));
  }
  return *reply;
}

void DaemonClient::tick(common::TimePoint now) {
  (void)call(wire::encode(wire::TickRequest{now}), wire::MsgType::kAck);
}

sched::HostSelectionMap DaemonClient::host_selection(
    const afg::FlowGraph& graph, std::size_t threads) {
  wire::HostSelectionRequest req;
  req.graph_text = afg::to_text(graph);
  req.threads = static_cast<std::uint32_t>(std::max<std::size_t>(1, threads));
  const auto reply =
      call(wire::encode(req), wire::MsgType::kHostSelectionResponse);
  return wire::decode_host_selection_response(reply).selection;
}

sched::HostSelection DaemonClient::host_reselection(
    const afg::TaskNode& node, const std::vector<common::HostId>& excluded) {
  const auto reply =
      call(wire::encode(wire::make_reselection_request(node, excluded)),
           wire::MsgType::kReselectionResponse);
  return wire::decode_reselection_response(reply).selection;
}

void DaemonClient::record_task_time(const std::string& library_task,
                                    common::Duration elapsed_s) {
  (void)call(wire::encode(wire::RecordTaskTime{library_task, elapsed_s}),
             wire::MsgType::kAck);
}

void DaemonClient::report_task_failure(const rt::RescheduleRequest& request) {
  (void)call(wire::encode(request), wire::MsgType::kAck);
}

void DaemonClient::shutdown() {
  (void)call(wire::encode_shutdown(), wire::MsgType::kAck);
}

// ---------------------------------------------------------------------------

RemoteSiteDirectory::RemoteSiteDirectory(sched::SiteDirectory& replica,
                                         rt::Watchdog& watchdog,
                                         std::vector<common::SiteId> sites,
                                         double rpc_timeout_s)
    : RemoteSiteDirectory(replica, watchdog, std::move(sites),
                          DaemonRpcConfig{rpc_timeout_s, 1, 0.05}) {}

RemoteSiteDirectory::RemoteSiteDirectory(sched::SiteDirectory& replica,
                                         rt::Watchdog& watchdog,
                                         std::vector<common::SiteId> sites,
                                         DaemonRpcConfig rpc)
    : replica_(&replica),
      watchdog_(&watchdog),
      remote_sites_(std::move(sites)),
      rpc_(rpc) {}

std::vector<common::SiteId> RemoteSiteDirectory::sites() const {
  return replica_->sites();
}

common::Duration RemoteSiteDirectory::site_distance(common::SiteId a,
                                                    common::SiteId b) const {
  return replica_->site_distance(a, b);
}

common::Duration RemoteSiteDirectory::transfer_time(common::SiteId a,
                                                    common::SiteId b,
                                                    double mb) const {
  return replica_->transfer_time(a, b, mb);
}

common::Duration RemoteSiteDirectory::base_time(
    const std::string& library_task) const {
  return replica_->base_time(library_task);
}

common::Duration RemoteSiteDirectory::host_transfer_time(common::HostId from,
                                                         common::HostId to,
                                                         double mb) const {
  return replica_->host_transfer_time(from, to, mb);
}

std::shared_ptr<DaemonClient> RemoteSiteDirectory::client(
    common::SiteId site) {
  // D17 fencing: a cached client pinned to an older incarnation is
  // talking to a daemon that no longer exists (or, worse, a stale one
  // still draining) -- drop it and reconnect to the reincarnation.
  const std::uint32_t current = watchdog_->incarnation(site);
  {
    const std::lock_guard lock(mu_);
    const auto it = clients_.find(site);
    if (it != clients_.end()) {
      if (current == 0 || it->second->incarnation() == current) {
        return it->second;
      }
      clients_.erase(it);
    }
  }
  // Connect outside the lock: rpc_endpoint blocks up to its timeout.
  std::shared_ptr<DaemonClient> fresh;
  try {
    const rt::RpcEndpoint endpoint =
        watchdog_->rpc_endpoint(site, rpc_.timeout_s);
    fresh = std::make_shared<DaemonClient>(endpoint.port, rpc_);
    fresh->set_incarnation(endpoint.incarnation);
  } catch (const TransportError& e) {
    common::log_warn("remote_directory", "site ", site.value(),
                     " unreachable: ", e.what());
    const std::lock_guard lock(mu_);
    ++stats_.transport_failures;
    return nullptr;
  }
  const std::lock_guard lock(mu_);
  auto [it, inserted] = clients_.emplace(site, fresh);
  return it->second;  // keep the racing winner
}

void RemoteSiteDirectory::drop_client(common::SiteId site) {
  const std::lock_guard lock(mu_);
  clients_.erase(site);
  ++stats_.transport_failures;
}

sched::HostSelectionMap RemoteSiteDirectory::host_selection(
    common::SiteId site, const afg::FlowGraph& graph, std::size_t threads) {
  if (std::find(remote_sites_.begin(), remote_sites_.end(), site) ==
      remote_sites_.end()) {
    return replica_->host_selection(site, graph, threads);
  }
  const auto c = client(site);
  if (!c) return {};  // no live daemon: infeasible, not fatal
  try {
    auto selection = c->host_selection(graph, threads);
    const std::lock_guard lock(mu_);
    ++stats_.remote_selections;
    return selection;
  } catch (const TransportError&) {
    drop_client(site);
    return {};
  }
}

sched::HostSelection RemoteSiteDirectory::host_reselection(
    common::SiteId site, const afg::TaskNode& node,
    const std::vector<common::HostId>& excluded) {
  if (std::find(remote_sites_.begin(), remote_sites_.end(), site) ==
      remote_sites_.end()) {
    return replica_->host_reselection(site, node, excluded);
  }
  const auto c = client(site);
  if (!c) return {};
  try {
    auto selection = c->host_reselection(node, excluded);
    const std::lock_guard lock(mu_);
    ++stats_.remote_reselections;
    return selection;
  } catch (const TransportError&) {
    drop_client(site);
    return {};
  }
}

void RemoteSiteDirectory::record_task_time(common::SiteId site,
                                           const std::string& library_task,
                                           common::Duration elapsed_s) {
  const auto c = client(site);
  if (!c) return;
  try {
    c->record_task_time(library_task, elapsed_s);
  } catch (const TransportError&) {
    drop_client(site);
  }
}

void RemoteSiteDirectory::tick_all(common::TimePoint now) {
  for (const common::SiteId site : remote_sites_) {
    const auto c = client(site);
    if (!c) continue;
    try {
      c->tick(now);
    } catch (const TransportError&) {
      drop_client(site);
    }
  }
}

RemoteDirectoryStats RemoteSiteDirectory::stats() const {
  const std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace vdce::daemon
