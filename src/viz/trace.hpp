// Execution trace export.
//
// Complements the ASCII visualizations with a machine-readable timeline:
// simulated or real runs are exported in the Chrome trace-event JSON
// format (load into chrome://tracing or Perfetto), one lane per host,
// one duration event per task execution, instant events for
// reschedules.  This is the "post-mortem visualization" path of the
// paper's visualization service in a form today's tooling can open.
#pragma once

#include <string>

#include "runtime/engine.hpp"
#include "sim/static_sim.hpp"

namespace vdce::viz {

/// Chrome trace-event JSON for a simulated run.  Timestamps are
/// microseconds of simulated time; each host is a "thread" lane.
[[nodiscard]] std::string to_chrome_trace(const sim::SimResult& result);

/// Chrome trace-event JSON for a real-threaded run (turnaround bars per
/// task, anchored at makespan-relative completion times).
[[nodiscard]] std::string to_chrome_trace(const rt::RunResult& result);

/// Writes a trace to a file; throws NotFoundError when unwritable.
void write_trace(const std::string& json, const std::string& path);

}  // namespace vdce::viz
