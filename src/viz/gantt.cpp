#include "viz/gantt.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace vdce::viz {

std::string render_gantt(const sim::SimResult& result, std::size_t columns) {
  std::ostringstream os;
  if (result.records.empty()) return "(empty run)\n";

  double t0 = result.records.front().start;
  double t1 = 0.0;
  std::size_t label_width = 4;
  for (const auto& r : result.records) {
    t0 = std::min(t0, r.data_ready);
    t1 = std::max(t1, r.finish);
    label_width = std::max(label_width, r.label.size());
  }
  const double span = std::max(1e-9, t1 - t0);
  const double per_col = span / static_cast<double>(columns);

  os << std::left << std::setw(static_cast<int>(label_width)) << "task"
     << " |" << std::string(columns, '-') << "|\n";
  for (const auto& r : result.records) {
    const auto col = [&](double t) {
      return std::min(columns - 1,
                      static_cast<std::size_t>((t - t0) / per_col));
    };
    std::string bar(columns, ' ');
    // '.' = waiting for data/host, '#' = executing.
    for (std::size_t c = col(r.data_ready); c < col(r.start); ++c) {
      bar[c] = '.';
    }
    for (std::size_t c = col(r.start); c <= col(r.finish - 1e-12); ++c) {
      bar[c] = '#';
    }
    os << std::left << std::setw(static_cast<int>(label_width)) << r.label
       << " |" << bar << "| h" << r.host.value();
    if (r.attempts > 1) os << " (x" << r.attempts << ")";
    os << "\n";
  }
  os << std::left << std::setw(static_cast<int>(label_width)) << ""
     << "  t=" << std::fixed << std::setprecision(2) << t0 << "s ... t="
     << t1 << "s  (makespan " << result.makespan_s << "s)\n";
  return os.str();
}

std::string to_csv(const sim::SimResult& result) {
  std::ostringstream os;
  os << "task,label,host,site,data_ready,start,finish,exec_s,attempts\n";
  os << std::setprecision(9);
  for (const auto& r : result.records) {
    os << r.task.value() << ',' << r.label << ',' << r.host.value() << ','
       << r.site.value() << ',' << r.data_ready << ',' << r.start << ','
       << r.finish << ',' << r.exec_s << ',' << r.attempts << '\n';
  }
  return os.str();
}

std::string render_run_table(const rt::RunResult& result) {
  std::ostringstream os;
  std::size_t label_width = 4;
  for (const auto& r : result.records) {
    label_width = std::max(label_width, r.label.size());
  }
  os << std::left << std::setw(static_cast<int>(label_width)) << "task"
     << "  host  turnaround_s  compute_s  sent_B  recv_B\n";
  for (const auto& r : result.records) {
    os << std::left << std::setw(static_cast<int>(label_width)) << r.label
       << "  " << std::setw(4) << r.host.value() << "  " << std::fixed
       << std::setprecision(6) << std::setw(12) << r.turnaround_s << "  "
       << std::setw(9) << r.compute_s << "  " << std::setw(6) << r.bytes_sent
       << "  " << r.bytes_received << "\n";
  }
  os << "makespan: " << std::fixed << std::setprecision(6)
     << result.makespan_s << "s\n";
  return os.str();
}

std::string to_csv(const rt::RunResult& result) {
  std::ostringstream os;
  os << "task,label,library_task,host,turnaround_s,compute_s,bytes_sent,"
        "bytes_received\n";
  os << std::setprecision(9);
  for (const auto& r : result.records) {
    os << r.task.value() << ',' << r.label << ',' << r.library_task << ','
       << r.host.value() << ',' << r.turnaround_s << ',' << r.compute_s
       << ',' << r.bytes_sent << ',' << r.bytes_received << '\n';
  }
  return os.str();
}

}  // namespace vdce::viz
