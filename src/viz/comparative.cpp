#include "viz/comparative.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace vdce::viz {

void ComparativeViz::add_run(const std::string& label,
                             const sim::SimResult& result) {
  Entry e;
  e.label = label;
  e.makespan_s = result.makespan_s;
  e.tasks = result.records.size();
  e.reschedules = result.reschedules;
  e.failures = result.failures_hit;
  for (const auto& r : result.records) e.total_exec_s += r.exec_s;
  runs_.push_back(std::move(e));
}

std::string ComparativeViz::best() const {
  if (runs_.empty()) return {};
  const auto it = std::min_element(
      runs_.begin(), runs_.end(),
      [](const Entry& a, const Entry& b) { return a.makespan_s < b.makespan_s; });
  return it->label;
}

std::string ComparativeViz::render() const {
  std::ostringstream os;
  if (runs_.empty()) return "(no runs)\n";

  std::size_t label_width = 5;
  double best_makespan = runs_.front().makespan_s;
  double worst = 0.0;
  for (const Entry& e : runs_) {
    label_width = std::max(label_width, e.label.size());
    best_makespan = std::min(best_makespan, e.makespan_s);
    worst = std::max(worst, e.makespan_s);
  }
  if (best_makespan <= 0.0) best_makespan = 1e-9;

  os << std::left << std::setw(static_cast<int>(label_width)) << "label"
     << "  makespan_s  total_exec_s  resched  vs_best\n";
  for (const Entry& e : runs_) {
    os << std::left << std::setw(static_cast<int>(label_width)) << e.label
       << "  " << std::fixed << std::setprecision(3) << std::setw(10)
       << e.makespan_s << "  " << std::setw(12) << e.total_exec_s << "  "
       << std::setw(7) << e.reschedules << "  " << std::setprecision(2)
       << e.makespan_s / best_makespan << "x\n";
  }

  os << "\n";
  constexpr std::size_t kBarWidth = 48;
  for (const Entry& e : runs_) {
    const auto len = static_cast<std::size_t>(
        e.makespan_s / std::max(worst, 1e-9) * kBarWidth);
    os << std::left << std::setw(static_cast<int>(label_width)) << e.label
       << " |" << std::string(std::max<std::size_t>(1, len), '#') << " "
       << std::fixed << std::setprecision(3) << e.makespan_s << "s\n";
  }
  return os.str();
}

std::string ComparativeViz::to_csv() const {
  std::ostringstream os;
  os << "label,makespan_s,total_exec_s,tasks,reschedules,failures\n";
  os << std::setprecision(9);
  for (const Entry& e : runs_) {
    os << e.label << ',' << e.makespan_s << ',' << e.total_exec_s << ','
       << e.tasks << ',' << e.reschedules << ',' << e.failures << '\n';
  }
  return os.str();
}

}  // namespace vdce::viz
