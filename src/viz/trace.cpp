#include "viz/trace.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace vdce::viz {

namespace {

/// Escapes a string for inclusion in a JSON literal.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:   out += c;
    }
  }
  return out;
}

void emit_duration(std::ostringstream& os, bool& first,
                   const std::string& name, const std::string& category,
                   double start_us, double duration_us, unsigned lane,
                   const std::string& args_json) {
  if (!first) os << ",\n";
  first = false;
  os << "  {\"name\": \"" << json_escape(name) << "\", \"cat\": \""
     << category << "\", \"ph\": \"X\", \"ts\": " << start_us
     << ", \"dur\": " << duration_us << ", \"pid\": 1, \"tid\": " << lane
     << ", \"args\": " << args_json << "}";
}

}  // namespace

std::string to_chrome_trace(const sim::SimResult& result) {
  std::ostringstream os;
  os << "{\n\"traceEvents\": [\n";
  bool first = true;
  for (const auto& r : result.records) {
    std::ostringstream args;
    args << "{\"library_task\": \"" << json_escape(r.library_task)
         << "\", \"site\": " << r.site.value()
         << ", \"attempts\": " << r.attempts
         << ", \"data_ready\": " << r.data_ready << "}";
    emit_duration(os, first, r.label, "task", r.start * 1e6, r.exec_s * 1e6,
                  r.host.value(), args.str());
    // Waiting-for-data phase as its own bar.
    if (r.start > r.data_ready) {
      emit_duration(os, first, r.label + " (wait)", "wait",
                    r.data_ready * 1e6, (r.start - r.data_ready) * 1e6,
                    r.host.value(), "{}");
    }
  }
  os << "\n],\n\"displayTimeUnit\": \"ms\"\n}\n";
  return os.str();
}

std::string to_chrome_trace(const rt::RunResult& result) {
  std::ostringstream os;
  os << "{\n\"traceEvents\": [\n";
  bool first = true;
  for (const auto& r : result.records) {
    std::ostringstream args;
    args << "{\"library_task\": \"" << json_escape(r.library_task)
         << "\", \"compute_s\": " << r.compute_s
         << ", \"bytes_sent\": " << r.bytes_sent
         << ", \"bytes_received\": " << r.bytes_received << "}";
    // Anchor each task's bar so it ends at its turnaround point.
    const double start_us = (result.makespan_s - r.turnaround_s) * 1e6;
    emit_duration(os, first, r.label, "task", start_us,
                  r.turnaround_s * 1e6, r.host.value(), args.str());
  }
  os << "\n],\n\"displayTimeUnit\": \"ms\"\n}\n";
  return os.str();
}

void write_trace(const std::string& json, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw common::NotFoundError("cannot write trace: " + path);
  out << json;
}

}  // namespace vdce::viz
