#include "viz/workload_viz.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace vdce::viz {

void WorkloadRecorder::snapshot(const repo::SiteRepository& repository,
                                double when) {
  times_.push_back(when);
  for (const repo::HostRecord& rec : repository.resources().all_hosts()) {
    auto& series = series_[rec.host];
    series.resize(times_.size() - 1);  // pad hosts added late
    series.push_back(Sample{rec.dynamic_attrs.cpu_load,
                            rec.dynamic_attrs.available_memory_mb,
                            rec.dynamic_attrs.alive});
  }
}

std::string WorkloadRecorder::render() const {
  static constexpr char kRamp[] = " .:-=+*#%@";
  std::ostringstream os;
  double max_load = 0.0;
  for (const auto& [_, series] : series_) {
    for (const Sample& s : series) max_load = std::max(max_load, s.load);
  }
  if (max_load <= 0.0) max_load = 1.0;

  for (const auto& [host, series] : series_) {
    os << "h" << std::left << std::setw(4) << host.value() << " |";
    for (const Sample& s : series) {
      if (!s.alive) {
        os << 'X';
        continue;
      }
      const auto idx = static_cast<std::size_t>(
          s.load / max_load * (sizeof(kRamp) - 2));
      os << kRamp[std::min(idx, sizeof(kRamp) - 2)];
    }
    os << "|\n";
  }
  os << "scale: max load = " << max_load << ", X = down\n";
  return os.str();
}

std::string WorkloadRecorder::to_csv() const {
  std::ostringstream os;
  os << "when,host,load,available_memory_mb,alive\n";
  os << std::setprecision(9);
  for (std::size_t i = 0; i < times_.size(); ++i) {
    for (const auto& [host, series] : series_) {
      if (i >= series.size()) continue;
      os << times_[i] << ',' << host.value() << ',' << series[i].load << ','
         << series[i].memory << ',' << (series[i].alive ? 1 : 0) << '\n';
    }
  }
  return os.str();
}

}  // namespace vdce::viz
