// Comparative visualization.
//
// "Comparative Visualization: VDCE makes it possible for an end user to
//  experiment and evaluate his/her application for different
//  combinations of hardware and software medium by providing the
//  comparative performance visualization."  (Section 2.3.2)
//
// Collects labelled runs of the same application under different
// configurations and renders them side by side: a summary table and
// normalised bars against the best configuration.
#pragma once

#include <string>
#include <vector>

#include "sim/static_sim.hpp"

namespace vdce::viz {

/// Side-by-side comparison of labelled runs.
class ComparativeViz {
 public:
  /// Adds a labelled run (e.g. "sparc-only", "2 sites, k=1").
  void add_run(const std::string& label, const sim::SimResult& result);

  /// Table: label, makespan, total exec, reschedules; plus a bar chart
  /// of makespans normalised to the best run.
  [[nodiscard]] std::string render() const;

  /// CSV: "label,makespan_s,total_exec_s,tasks,reschedules,failures".
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] std::size_t runs() const { return runs_.size(); }

  /// Label of the best (smallest makespan) run; empty when no runs.
  [[nodiscard]] std::string best() const;

 private:
  struct Entry {
    std::string label;
    double makespan_s = 0.0;
    double total_exec_s = 0.0;
    std::size_t tasks = 0;
    std::size_t reschedules = 0;
    std::size_t failures = 0;
  };
  std::vector<Entry> runs_;
};

}  // namespace vdce::viz
