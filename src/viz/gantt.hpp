// Application performance visualization.
//
// "Application Performance Visualization: The execution time of tasks in
//  application (or another user-defined performance measure) is
//  visualized."  (Section 2.3.2)
//
// Renders a simulated or real run as an ASCII Gantt chart (one row per
// task, bars over a time axis) and as CSV rows for external plotting.
#pragma once

#include <string>

#include "runtime/engine.hpp"
#include "sim/static_sim.hpp"

namespace vdce::viz {

/// ASCII Gantt chart of a simulated run.  `columns` is the width of the
/// drawing area.
[[nodiscard]] std::string render_gantt(const sim::SimResult& result,
                                       std::size_t columns = 72);

/// CSV ("task,label,host,site,data_ready,start,finish,exec_s,attempts").
[[nodiscard]] std::string to_csv(const sim::SimResult& result);

/// Per-task execution time summary of a real-threaded run.
[[nodiscard]] std::string render_run_table(const rt::RunResult& result);

/// CSV ("task,label,library_task,host,turnaround_s,compute_s,bytes_sent,
/// bytes_received").
[[nodiscard]] std::string to_csv(const rt::RunResult& result);

}  // namespace vdce::viz
