// Workload visualization.
//
// "Workload Visualization: Up-to-date workload information on VDCE
//  resources is visualized."  (Section 2.3.2)
//
// A WorkloadRecorder snapshots the monitored load of every host from a
// site repository (call snapshot() at control ticks); render() draws
// one sparkline row per host, and to_csv() emits the raw series.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "repository/repository.hpp"

namespace vdce::viz {

/// Records monitored per-host load series over time.
class WorkloadRecorder {
 public:
  /// Captures the repository's current view of every host's load.
  void snapshot(const repo::SiteRepository& repository, double when);

  /// One sparkline row per host (load scaled onto ' .:-=+*#%@').
  [[nodiscard]] std::string render() const;

  /// CSV: "when,host,load,available_memory_mb,alive".
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] std::size_t snapshots() const { return times_.size(); }

 private:
  struct Sample {
    double load = 0.0;
    double memory = 0.0;
    bool alive = true;
  };

  std::vector<double> times_;
  // host -> one sample per snapshot
  std::map<common::HostId, std::vector<Sample>> series_;
};

}  // namespace vdce::viz
