// Background workload generator for simulated hosts.
//
// VDCE machines are time-shared ("the heterogeneous nature of the
// resources and time-sharing make the scheduling difficult"), so each
// simulated host carries a background CPU load that other users impose.
// We model it as a mean-reverting (Ornstein-Uhlenbeck style) process
// advanced in fixed steps, optionally overlaid with deterministic load
// spikes for the rescheduling experiments.  Everything is reproducible
// from the seed.
#pragma once

#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"

namespace vdce::netsim {

using common::Duration;
using common::TimePoint;

/// A scheduled load spike: extra load added during [start, start+length).
struct LoadSpike {
  TimePoint start = 0.0;
  Duration length = 0.0;
  double extra_load = 0.0;
};

/// Mean-reverting background load process, advanced in 1-second steps.
///
/// load(t) >= 0 always; `mean` is the long-run average and `volatility`
/// the per-step noise scale.  Queries must be made with non-decreasing
/// times (the process advances internally).
class BackgroundLoad {
 public:
  BackgroundLoad(double mean, double volatility, std::uint64_t seed);

  /// Load at time `t`.  The stochastic base advances monotonically: a
  /// query earlier than the furthest point already reached returns the
  /// most recent base state (spikes are still evaluated at `t`).
  [[nodiscard]] double at(TimePoint t);

  /// Registers a deterministic spike on top of the stochastic base.
  void add_spike(const LoadSpike& spike);

  [[nodiscard]] double mean() const { return mean_; }

 private:
  static constexpr Duration kStep = 1.0;
  // Mean-reversion rate per step.
  static constexpr double kTheta = 0.2;

  double mean_;
  double volatility_;
  common::Rng rng_;
  double current_;
  TimePoint advanced_to_ = 0.0;
  std::vector<LoadSpike> spikes_;
};

}  // namespace vdce::netsim
