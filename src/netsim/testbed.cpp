#include "netsim/testbed.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace vdce::netsim {

using common::NotFoundError;
using common::expects;

VirtualTestbed::VirtualTestbed(const TestbedConfig& config)
    : seed_(config.seed) {
  expects(!config.sites.empty(), "testbed needs at least one site");

  std::uint64_t host_seed = config.seed;
  for (std::size_t s = 0; s < config.sites.size(); ++s) {
    const SiteSpec& site = config.sites[s];
    site_names_.push_back(site.name);
    for (const GroupSpec& group : site.groups) {
      const GroupId gid{static_cast<std::uint32_t>(groups_.size())};
      groups_.push_back(GroupState{group.name,
                                   SiteId(static_cast<std::uint32_t>(s)),
                                   group.lan_latency_s, group.lan_mb_per_s});
      for (const HostSpec& host : group.hosts) {
        ++host_seed;
        hosts_.push_back(HostState{
            host, SiteId(static_cast<std::uint32_t>(s)), gid,
            BackgroundLoad(host.background_load_mean, host.load_volatility,
                           host_seed * 0x9E3779B97F4A7C15ull),
            common::Rng(host_seed * 0xBF58476D1CE4E5B9ull),
            {}});
      }
    }
  }
  expects(!hosts_.empty(), "testbed needs at least one host");

  for (const WanLinkSpec& link : config.wan_links) {
    expects(link.site_a < config.sites.size() &&
                link.site_b < config.sites.size(),
            "WAN link references an unknown site");
    repo::NetworkAttrs attrs;
    attrs.latency_s = link.latency_s;
    attrs.transfer_mb_per_s = link.mb_per_s;
    wan_[pair_key(static_cast<std::uint32_t>(link.site_a),
                  static_cast<std::uint32_t>(link.site_b))] = attrs;
  }
}

std::vector<SiteId> VirtualTestbed::sites() const {
  std::vector<SiteId> out;
  out.reserve(site_names_.size());
  for (std::uint32_t i = 0; i < site_names_.size(); ++i) {
    out.push_back(SiteId(i));
  }
  return out;
}

std::vector<GroupId> VirtualTestbed::groups_in_site(SiteId site) const {
  std::vector<GroupId> out;
  for (std::uint32_t i = 0; i < groups_.size(); ++i) {
    if (groups_[i].site == site) out.push_back(GroupId(i));
  }
  return out;
}

std::vector<HostId> VirtualTestbed::all_hosts() const {
  std::vector<HostId> out;
  out.reserve(hosts_.size());
  for (std::uint32_t i = 0; i < hosts_.size(); ++i) out.push_back(HostId(i));
  return out;
}

std::vector<HostId> VirtualTestbed::hosts_in_group(GroupId group) const {
  std::vector<HostId> out;
  for (std::uint32_t i = 0; i < hosts_.size(); ++i) {
    if (hosts_[i].group == group) out.push_back(HostId(i));
  }
  return out;
}

std::vector<HostId> VirtualTestbed::hosts_in_site(SiteId site) const {
  std::vector<HostId> out;
  for (std::uint32_t i = 0; i < hosts_.size(); ++i) {
    if (hosts_[i].site == site) out.push_back(HostId(i));
  }
  return out;
}

const std::string& VirtualTestbed::site_name(SiteId site) const {
  expects(site.value() < site_names_.size(), "unknown site id");
  return site_names_[site.value()];
}

const std::string& VirtualTestbed::group_name(GroupId group) const {
  expects(group.value() < groups_.size(), "unknown group id");
  return groups_[group.value()].name;
}

const HostSpec& VirtualTestbed::host_spec(HostId host) const {
  return host_state(host).spec;
}

SiteId VirtualTestbed::site_of(HostId host) const {
  return host_state(host).site;
}

GroupId VirtualTestbed::group_of(HostId host) const {
  return host_state(host).group;
}

const VirtualTestbed::HostState& VirtualTestbed::host_state(
    HostId host) const {
  if (host.value() >= hosts_.size()) throw NotFoundError("unknown host id");
  return hosts_[host.value()];
}

VirtualTestbed::HostState& VirtualTestbed::host_state(HostId host) {
  if (host.value() >= hosts_.size()) throw NotFoundError("unknown host id");
  return hosts_[host.value()];
}

double VirtualTestbed::true_load(HostId host, TimePoint t) {
  return host_state(host).load.at(t);
}

double VirtualTestbed::true_available_memory(HostId host, TimePoint t) {
  HostState& hs = host_state(host);
  const double load = hs.load.at(t);
  // Competing processes hold memory roughly proportional to load.
  const double held = 48.0 * load;
  return std::max(hs.spec.total_memory_mb * 0.05,
                  hs.spec.total_memory_mb - held);
}

bool VirtualTestbed::is_alive(HostId host, TimePoint t) const {
  for (const FailureWindow& w : host_state(host).failures) {
    if (t >= w.start && t < w.start + w.length) return false;
  }
  return true;
}

void VirtualTestbed::fail_host(HostId host, TimePoint start, Duration length) {
  expects(length >= 0.0, "failure length must be >= 0");
  host_state(host).failures.push_back(FailureWindow{start, length});
}

void VirtualTestbed::add_load_spike(HostId host, const LoadSpike& spike) {
  host_state(host).load.add_spike(spike);
}

double VirtualTestbed::measure_load(HostId host, TimePoint t) {
  HostState& hs = host_state(host);
  const double truth = hs.load.at(t);
  const double noise = 1.0 + 0.03 * hs.measure_rng.normal();
  return std::max(0.0, truth * noise);
}

double VirtualTestbed::measure_available_memory(HostId host, TimePoint t) {
  HostState& hs = host_state(host);
  const double truth = true_available_memory(host, t);
  const double noise = 1.0 + 0.02 * hs.measure_rng.normal();
  return std::max(0.0, truth * noise);
}

Duration VirtualTestbed::transfer_time(HostId from, HostId to,
                                       double mb) const {
  expects(mb >= 0.0, "transfer size must be >= 0");
  if (from == to) return 0.0;
  const HostState& a = host_state(from);
  const HostState& b = host_state(to);
  if (a.group == b.group) {
    const GroupState& g = groups_[a.group.value()];
    return g.lan_latency_s + mb / g.lan_mb_per_s;
  }
  if (a.site == b.site) {
    // Cross two LAN segments within the site.
    const GroupState& ga = groups_[a.group.value()];
    const GroupState& gb = groups_[b.group.value()];
    const double bw = std::min(ga.lan_mb_per_s, gb.lan_mb_per_s);
    return ga.lan_latency_s + gb.lan_latency_s + mb / bw;
  }
  return site_transfer_time(a.site, b.site, mb) +
         groups_[a.group.value()].lan_latency_s +
         groups_[b.group.value()].lan_latency_s;
}

Duration VirtualTestbed::site_transfer_time(SiteId a, SiteId b,
                                            double mb) const {
  if (a == b) return 0.0;
  const auto it = wan_.find(pair_key(a.value(), b.value()));
  if (it == wan_.end()) {
    throw NotFoundError("no WAN link between sites " + site_name(a) +
                        " and " + site_name(b));
  }
  return it->second.latency_s + mb / it->second.transfer_mb_per_s;
}

std::optional<repo::NetworkAttrs> VirtualTestbed::wan_link(SiteId a,
                                                           SiteId b) const {
  const auto it = wan_.find(pair_key(a.value(), b.value()));
  if (it == wan_.end()) return std::nullopt;
  return it->second;
}

repo::NetworkAttrs VirtualTestbed::lan_attrs(GroupId group) const {
  expects(group.value() < groups_.size(), "unknown group id");
  repo::NetworkAttrs attrs;
  attrs.latency_s = groups_[group.value()].lan_latency_s;
  attrs.transfer_mb_per_s = groups_[group.value()].lan_mb_per_s;
  return attrs;
}

double VirtualTestbed::task_arch_affinity(const std::string& task_name,
                                          repo::ArchType arch) {
  // FNV-1a over the task name and the architecture tag.
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint8_t byte) {
    h ^= byte;
    h *= 1099511628211ull;
  };
  for (char c : task_name) mix(static_cast<std::uint8_t>(c));
  mix(static_cast<std::uint8_t>(arch));
  // Map to [0.75, 1.35].
  const double u =
      static_cast<double>(h >> 11) / static_cast<double>(1ull << 53);
  return 0.75 + 0.6 * u;
}

double VirtualTestbed::true_power_weight(HostId host,
                                         const std::string& task_name) const {
  const HostState& hs = host_state(host);
  return hs.spec.power_weight * task_arch_affinity(task_name, hs.spec.arch);
}

Duration VirtualTestbed::execution_time(const repo::TaskPerformanceRecord& rec,
                                        double input_size, HostId host,
                                        double load_at_start,
                                        double available_memory_mb) const {
  expects(input_size > 0.0, "input size must be positive");
  const double weight = true_power_weight(host, rec.task_name);
  const double dedicated = rec.base_time_s * input_size / weight;
  // Time sharing: with L competing runnable processes the task gets
  // 1/(1+L) of the CPU.
  double elapsed = dedicated * (1.0 + load_at_start);
  // Thrashing penalty when the task does not fit in available memory.
  const double need = rec.memory_req_mb * input_size;
  if (need > available_memory_mb && available_memory_mb > 0.0) {
    elapsed *= 1.0 + 4.0 * (need / available_memory_mb - 1.0);
  }
  return elapsed;
}

Duration VirtualTestbed::execution_time_at(
    const repo::TaskPerformanceRecord& rec, double input_size, HostId host,
    TimePoint t) {
  const double load = true_load(host, t);
  const double mem = true_available_memory(host, t);
  return execution_time(rec, input_size, host, load, mem);
}

void VirtualTestbed::populate_repository(repo::SiteRepository& repository,
                                         SiteId site, double weight_noise) {
  common::Rng trial_rng(seed_ ^ 0xA5A5A5A5ull ^ site.value());

  // Hosts: static attributes plus a t=0 measurement.  Host records for
  // *all* sites are registered (every site's repository knows the whole
  // VDCE resource map, as Figure 1 implies), but IP addresses are
  // derived from ids so they stay unique.
  for (const HostId host : all_hosts()) {
    const HostState& hs = hosts_[host.value()];
    repo::HostRecord rec;
    rec.host = host;
    rec.static_attrs.host_name = hs.spec.name;
    rec.static_attrs.ip_address =
        "10." + std::to_string(hs.site.value()) + "." +
        std::to_string(hs.group.value()) + "." +
        std::to_string(host.value() + 1);
    rec.static_attrs.arch = hs.spec.arch;
    rec.static_attrs.os = hs.spec.os;
    rec.static_attrs.total_memory_mb = hs.spec.total_memory_mb;
    rec.static_attrs.site = hs.site;
    rec.static_attrs.group = hs.group;
    rec.dynamic_attrs.cpu_load = hs.spec.background_load_mean;
    rec.dynamic_attrs.available_memory_mb = hs.spec.total_memory_mb;
    rec.dynamic_attrs.alive = true;
    rec.dynamic_attrs.last_update = 0.0;
    repository.resources().restore(rec);
  }

  // Network attributes.
  for (std::uint32_t ga = 0; ga < groups_.size(); ++ga) {
    repository.resources().update_group_network(GroupId(ga), GroupId(ga),
                                                lan_attrs(GroupId(ga)));
  }
  for (const auto& [key, attrs] : wan_) {
    const auto a = static_cast<std::uint32_t>(key >> 32);
    const auto b = static_cast<std::uint32_t>(key & 0xFFFFFFFFull);
    repository.resources().update_site_network(SiteId(a), SiteId(b), attrs);
  }

  // Trial-run power weights and executable locations for every task the
  // repository knows about.
  for (const std::string& task : repository.tasks().task_names()) {
    for (const HostId host : all_hosts()) {
      const double truth = true_power_weight(host, task);
      const double measured =
          truth * (1.0 + weight_noise * trial_rng.normal());
      repository.tasks().set_power_weight(task, host,
                                          std::max(0.05, measured));

      // Deterministic ~1/8 exclusion: some executables were never built
      // for some hosts ("some task executables may reside only on some
      // of the hosts").
      std::uint64_t h = 1469598103934665603ull;
      for (char c : task) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 1099511628211ull;
      }
      h ^= host.value();
      h *= 1099511628211ull;
      if (h % 8 != 0) {
        repository.constraints().set_location(
            task, host, "/usr/vdce/tasks/" + task + "/bin/" + task);
      }
    }
  }
}

}  // namespace vdce::netsim
