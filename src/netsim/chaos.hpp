// Chaos fault-injection harness: seeded, composable fault schedules.
//
// The paper's fault model is implicit -- "the VDCE monitors the
// resources for possible failures" -- so the repo needs a way to
// manufacture failures that are (a) reproducible from a seed, (b)
// composable (a site outage overlapping a gray host overlapping a
// partition), and (c) driven entirely through the existing testbed
// fault windows and FaultTolerance hooks, so the engine, the
// submission service's failover loop and the circuit breaker see
// exactly what they would see in production.  A ChaosSchedule is a
// list of timed events:
//
//   * kHostCrash       one host stops answering for a window;
//   * kSiteOutage      every host of a site goes dark at once (the
//                      trigger for AppSubmissionService failover);
//   * kPartition       two sites stay up but cannot see each other --
//                      a partition-aware liveness probe reports the
//                      far side dead while local probes stay green;
//   * kGrayHost        slow-host degradation: the host answers pings
//                      but carries a heavy injected load (caught by
//                      the load guard, not the fault guard);
//   * kDeadlineStorm   a burst of short crash pulses on one host --
//                      receive deadlines fire repeatedly, which is
//                      what trips the flapping-host circuit breaker;
//   * kDaemonKill      SIGKILL the site daemon PROCESS of one site
//                      (D14): not a simulated window but a real
//                      process death, delivered through the killer
//                      callback of apply_processes() -- typically
//                      Watchdog::kill_daemon.
//
// apply() installs the crash windows and load spikes into a
// VirtualTestbed; partitions are kept inside the schedule and served
// through reachable()/liveness_probe(observer_site).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "netsim/testbed.hpp"

namespace vdce::netsim {

enum class ChaosEventKind {
  kHostCrash,
  kSiteOutage,
  kPartition,
  kGrayHost,
  kDeadlineStorm,
  kDaemonKill,
};

[[nodiscard]] const char* to_string(ChaosEventKind kind);

/// One injected fault, active during [start, start + length).
struct ChaosEvent {
  ChaosEventKind kind = ChaosEventKind::kHostCrash;
  TimePoint start = 0.0;
  Duration length = 0.0;
  /// Target host (kHostCrash, kGrayHost, kDeadlineStorm).
  HostId host;
  /// Target site (kSiteOutage), or one side of a kPartition.
  SiteId site;
  /// The other side of a kPartition.
  SiteId other_site;
  /// Injected extra load (kGrayHost).
  double extra_load = 0.0;
  /// Number of short crash pulses spread over the window
  /// (kDeadlineStorm); each pulse is length/(2*pulses) long.
  int pulses = 0;
};

/// Knobs for ChaosSchedule::generate().  `intensity` in [0, 1] scales
/// every per-kind event count linearly; 0 yields an empty schedule.
struct ChaosScheduleConfig {
  std::uint64_t seed = 42;
  double intensity = 0.5;
  /// Events start inside [0, horizon_s).
  TimePoint horizon_s = 60.0;
  Duration min_outage_s = 5.0;
  Duration max_outage_s = 20.0;
  /// Per-kind maximum event counts at intensity 1.
  int max_crashes = 4;
  int max_site_outages = 1;
  int max_partitions = 1;
  int max_gray_hosts = 3;
  int max_deadline_storms = 2;
  double gray_extra_load = 4.0;
  int storm_pulses = 5;
  /// Sites never targeted by crashes/outages/gray hosts (keep at least
  /// one site alive so failover has somewhere to land).
  std::vector<SiteId> protected_sites;
};

/// A deterministic, composable fault schedule.
class ChaosSchedule {
 public:
  ChaosSchedule() = default;

  /// Draws a schedule from the testbed topology and the config; the
  /// same (testbed config, chaos config) pair always yields the same
  /// events.
  [[nodiscard]] static ChaosSchedule generate(const VirtualTestbed& bed,
                                              const ChaosScheduleConfig& cfg);

  /// Appends one hand-built event (tests compose exact scenarios).
  void add(ChaosEvent event) { events_.push_back(event); }

  [[nodiscard]] const std::vector<ChaosEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t count(ChaosEventKind kind) const;

  /// Installs every crash-window-shaped event (crashes, site outages,
  /// deadline-storm pulses) and gray-host load spike into the testbed.
  /// Partitions are NOT installed -- they live in the schedule and are
  /// served through reachable().  Idempotent only in the sense that
  /// applying twice doubles nothing logically (windows merely overlap);
  /// call it once per testbed.
  void apply(VirtualTestbed& bed) const;

  /// Fires every kDaemonKill event through `kill` (ordered by start
  /// time).  The callback owns the mechanics -- in the daemon
  /// deployments it is Watchdog::kill_daemon(site, SIGKILL), so the
  /// schedule stays process-agnostic and composable with the simulated
  /// fault kinds, which apply() installs separately.
  void apply_processes(const std::function<void(SiteId)>& kill) const;

  /// Whether `host` is reachable from an observer in `observer` site at
  /// time `t`: the host must be truly alive (testbed windows) and no
  /// active partition may separate the two sites.
  [[nodiscard]] bool reachable(const VirtualTestbed& bed, SiteId observer,
                               HostId host, TimePoint t) const;

  /// Partition-aware FaultTolerance::host_alive probe evaluated at the
  /// testbed's live time from the given observer site.
  [[nodiscard]] std::function<bool(HostId)> liveness_probe(
      const VirtualTestbed& bed, SiteId observer) const;

  /// True when a partition separates sites `a` and `b` at time `t`.
  [[nodiscard]] bool partitioned(SiteId a, SiteId b, TimePoint t) const;

  /// Serializes the kPartition events as "a,b,start,end;..." with
  /// windows shifted by `base_s` -- pass the CLOCK_MONOTONIC seconds of
  /// the schedule's epoch and every process on the machine can evaluate
  /// partitioned() against its own steady clock (D17: daemons drop
  /// heartbeats and gossip along partitioned edges).  Empty when the
  /// schedule holds no partitions.
  [[nodiscard]] std::string partition_spec(double base_s) const;

  /// Parses a partition_spec back into a partition-only schedule (times
  /// stay absolute).  Throws ParseError on malformed input.
  [[nodiscard]] static ChaosSchedule from_partition_spec(
      const std::string& spec);

  /// One line per event, for logs and the bench summary.
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<ChaosEvent> events_;
};

}  // namespace vdce::netsim
