#include "netsim/loadgen.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace vdce::netsim {

BackgroundLoad::BackgroundLoad(double mean, double volatility,
                               std::uint64_t seed)
    : mean_(mean), volatility_(volatility), rng_(seed), current_(mean) {
  common::expects(mean >= 0.0, "background load mean must be >= 0");
  common::expects(volatility >= 0.0, "load volatility must be >= 0");
}

double BackgroundLoad::at(TimePoint t) {
  // Advance the OU state in fixed steps up to t.  Queries slightly in
  // the past (interleaved event-driven consumers) read the most recent
  // state; only the deterministic spike overlay is evaluated at t.
  while (advanced_to_ + kStep <= t) {
    advanced_to_ += kStep;
    const double noise = rng_.normal() * volatility_;
    current_ += kTheta * (mean_ - current_) + noise;
    current_ = std::max(0.0, current_);
  }
  double load = current_;
  for (const LoadSpike& s : spikes_) {
    if (t >= s.start && t < s.start + s.length) load += s.extra_load;
  }
  return load;
}

void BackgroundLoad::add_spike(const LoadSpike& spike) {
  common::expects(spike.length >= 0.0, "spike length must be >= 0");
  common::expects(spike.extra_load >= 0.0, "spike load must be >= 0");
  spikes_.push_back(spike);
}

}  // namespace vdce::netsim
