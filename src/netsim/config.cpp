#include "netsim/config.hpp"

#include "common/rng.hpp"

namespace vdce::netsim {

TestbedConfig make_campus_testbed(std::uint64_t seed) {
  using repo::ArchType;
  using repo::OsType;

  TestbedConfig cfg;
  cfg.seed = seed;

  SiteSpec syracuse;
  syracuse.name = "syracuse";
  {
    GroupSpec sparc_group;
    sparc_group.name = "syr-sparc";
    sparc_group.lan_latency_s = 0.0004;
    sparc_group.lan_mb_per_s = 12.0;  // ATM LAN
    for (int i = 0; i < 4; ++i) {
      HostSpec h;
      h.name = "syr-sparc-" + std::to_string(i);
      h.arch = ArchType::kSparc;
      h.os = OsType::kSolaris;
      h.power_weight = 1.0 + 0.25 * i;  // heterogeneous Sparc generations
      h.total_memory_mb = 128.0 + 64.0 * i;
      h.background_load_mean = 0.2 + 0.1 * i;
      sparc_group.hosts.push_back(h);
    }
    syracuse.groups.push_back(sparc_group);

    GroupSpec intel_group;
    intel_group.name = "syr-intel";
    intel_group.lan_latency_s = 0.0008;
    intel_group.lan_mb_per_s = 1.2;  // 10 Mb/s Ethernet
    for (int i = 0; i < 3; ++i) {
      HostSpec h;
      h.name = "syr-intel-" + std::to_string(i);
      h.arch = ArchType::kIntel;
      h.os = OsType::kLinux;
      h.power_weight = 0.8 + 0.4 * i;
      h.total_memory_mb = 64.0 + 64.0 * i;
      h.background_load_mean = 0.4;
      intel_group.hosts.push_back(h);
    }
    syracuse.groups.push_back(intel_group);
  }
  cfg.sites.push_back(syracuse);

  SiteSpec rome;
  rome.name = "rome";
  {
    GroupSpec lab_group;
    lab_group.name = "rome-lab";
    lab_group.lan_latency_s = 0.0005;
    lab_group.lan_mb_per_s = 10.0;
    for (int i = 0; i < 3; ++i) {
      HostSpec h;
      h.name = "rome-" + std::to_string(i);
      h.arch = i == 0 ? repo::ArchType::kAlpha : repo::ArchType::kSparc;
      h.os = i == 0 ? repo::OsType::kOsf1 : repo::OsType::kSolaris;
      h.power_weight = i == 0 ? 2.5 : 1.2;  // the Alpha is the fast box
      h.total_memory_mb = 256.0;
      h.background_load_mean = 0.3;
      lab_group.hosts.push_back(h);
    }
    rome.groups.push_back(lab_group);
  }
  cfg.sites.push_back(rome);

  // NYNET ATM WAN between the sites.
  WanLinkSpec wan;
  wan.site_a = 0;
  wan.site_b = 1;
  wan.latency_s = 0.015;
  wan.mb_per_s = 4.0;
  cfg.wan_links.push_back(wan);

  return cfg;
}

TestbedConfig make_random_testbed(const RandomTestbedParams& p,
                                  std::uint64_t seed) {
  common::Rng rng(seed);
  TestbedConfig cfg;
  cfg.seed = seed;

  constexpr repo::ArchType kArchs[] = {
      repo::ArchType::kSparc, repo::ArchType::kIntel, repo::ArchType::kAlpha,
      repo::ArchType::kPowerPc, repo::ArchType::kMips};
  constexpr repo::OsType kOses[] = {repo::OsType::kSolaris,
                                    repo::OsType::kLinux, repo::OsType::kOsf1,
                                    repo::OsType::kAix, repo::OsType::kIrix};

  for (std::size_t s = 0; s < p.num_sites; ++s) {
    SiteSpec site;
    site.name = "site" + std::to_string(s);
    for (std::size_t g = 0; g < p.groups_per_site; ++g) {
      GroupSpec group;
      group.name = site.name + "-g" + std::to_string(g);
      group.lan_latency_s = rng.uniform(0.0003, 0.001);
      group.lan_mb_per_s = rng.uniform(1.0, 12.0);
      for (std::size_t h = 0; h < p.hosts_per_group; ++h) {
        HostSpec host;
        host.name = group.name + "-h" + std::to_string(h);
        const auto arch_idx = rng.uniform_int(std::size(kArchs));
        host.arch = kArchs[arch_idx];
        host.os = kOses[arch_idx];
        host.power_weight = rng.uniform(p.min_power, p.max_power);
        host.total_memory_mb = 64.0 * static_cast<double>(
            1 + rng.uniform_int(8));
        host.background_load_mean = rng.uniform(p.min_load, p.max_load);
        host.load_volatility = rng.uniform(0.05, 0.25);
        group.hosts.push_back(host);
      }
      site.groups.push_back(group);
    }
    cfg.sites.push_back(site);
  }

  for (std::size_t a = 0; a < p.num_sites; ++a) {
    for (std::size_t b = a + 1; b < p.num_sites; ++b) {
      WanLinkSpec wan;
      wan.site_a = a;
      wan.site_b = b;
      // Farther-apart site indices get slower links, giving the
      // k-nearest-site selection something meaningful to exploit.
      const double distance = static_cast<double>(b - a);
      wan.latency_s = p.wan_latency_s * distance;
      wan.mb_per_s = p.wan_mb_per_s / distance;
      cfg.wan_links.push_back(wan);
    }
  }
  return cfg;
}

}  // namespace vdce::netsim
