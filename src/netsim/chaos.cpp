#include "netsim/chaos.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace vdce::netsim {

namespace {

bool site_protected(const ChaosScheduleConfig& cfg, SiteId site) {
  return std::find(cfg.protected_sites.begin(), cfg.protected_sites.end(),
                   site) != cfg.protected_sites.end();
}

int scaled(int max_count, double intensity) {
  if (max_count <= 0 || intensity <= 0.0) return 0;
  return static_cast<int>(max_count * std::min(intensity, 1.0) + 0.5);
}

}  // namespace

const char* to_string(ChaosEventKind kind) {
  switch (kind) {
    case ChaosEventKind::kHostCrash: return "host_crash";
    case ChaosEventKind::kSiteOutage: return "site_outage";
    case ChaosEventKind::kPartition: return "partition";
    case ChaosEventKind::kGrayHost: return "gray_host";
    case ChaosEventKind::kDeadlineStorm: return "deadline_storm";
    case ChaosEventKind::kDaemonKill: return "daemon_kill";
  }
  return "unknown";
}

ChaosSchedule ChaosSchedule::generate(const VirtualTestbed& bed,
                                      const ChaosScheduleConfig& cfg) {
  ChaosSchedule schedule;
  common::Rng rng(cfg.seed);

  std::vector<HostId> targets;
  for (const HostId host : bed.all_hosts()) {
    if (!site_protected(cfg, bed.site_of(host))) targets.push_back(host);
  }
  std::vector<SiteId> target_sites;
  for (const SiteId site : bed.sites()) {
    if (!site_protected(cfg, site)) target_sites.push_back(site);
  }
  const std::vector<SiteId> all_sites = bed.sites();

  const auto window = [&](ChaosEvent& event) {
    event.start = rng.uniform(0.0, cfg.horizon_s);
    event.length = rng.uniform(cfg.min_outage_s, cfg.max_outage_s);
  };

  if (!targets.empty()) {
    for (int i = 0; i < scaled(cfg.max_crashes, cfg.intensity); ++i) {
      ChaosEvent event;
      event.kind = ChaosEventKind::kHostCrash;
      event.host = targets[rng.uniform_int(targets.size())];
      window(event);
      schedule.add(event);
    }
    for (int i = 0; i < scaled(cfg.max_gray_hosts, cfg.intensity); ++i) {
      ChaosEvent event;
      event.kind = ChaosEventKind::kGrayHost;
      event.host = targets[rng.uniform_int(targets.size())];
      event.extra_load = cfg.gray_extra_load * rng.uniform(0.5, 1.5);
      window(event);
      schedule.add(event);
    }
    for (int i = 0; i < scaled(cfg.max_deadline_storms, cfg.intensity);
         ++i) {
      ChaosEvent event;
      event.kind = ChaosEventKind::kDeadlineStorm;
      event.host = targets[rng.uniform_int(targets.size())];
      event.pulses = std::max(1, cfg.storm_pulses);
      window(event);
      schedule.add(event);
    }
  }
  if (!target_sites.empty()) {
    for (int i = 0; i < scaled(cfg.max_site_outages, cfg.intensity); ++i) {
      ChaosEvent event;
      event.kind = ChaosEventKind::kSiteOutage;
      event.site = target_sites[rng.uniform_int(target_sites.size())];
      window(event);
      schedule.add(event);
    }
  }
  if (all_sites.size() >= 2) {
    for (int i = 0; i < scaled(cfg.max_partitions, cfg.intensity); ++i) {
      ChaosEvent event;
      event.kind = ChaosEventKind::kPartition;
      const std::size_t a = rng.uniform_int(all_sites.size());
      std::size_t b = rng.uniform_int(all_sites.size() - 1);
      if (b >= a) ++b;
      event.site = all_sites[a];
      event.other_site = all_sites[b];
      window(event);
      schedule.add(event);
    }
  }
  return schedule;
}

std::size_t ChaosSchedule::count(ChaosEventKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [kind](const ChaosEvent& e) { return e.kind == kind; }));
}

void ChaosSchedule::apply(VirtualTestbed& bed) const {
  for (const ChaosEvent& event : events_) {
    switch (event.kind) {
      case ChaosEventKind::kHostCrash:
        bed.fail_host(event.host, event.start, event.length);
        break;
      case ChaosEventKind::kSiteOutage:
        for (const HostId host : bed.hosts_in_site(event.site)) {
          bed.fail_host(host, event.start, event.length);
        }
        break;
      case ChaosEventKind::kGrayHost: {
        LoadSpike spike;
        spike.start = event.start;
        spike.length = event.length;
        spike.extra_load = event.extra_load;
        bed.add_load_spike(event.host, spike);
        break;
      }
      case ChaosEventKind::kDeadlineStorm: {
        // `pulses` short crashes spread evenly over the window; the
        // host flaps dead/alive, firing receive deadlines without a
        // durable outage -- circuit-breaker bait.
        const int n = std::max(1, event.pulses);
        const Duration pulse = event.length / (2.0 * n);
        for (int i = 0; i < n; ++i) {
          bed.fail_host(event.host, event.start + 2.0 * i * pulse, pulse);
        }
        break;
      }
      case ChaosEventKind::kPartition:
        break;  // served via reachable(), never installed
      case ChaosEventKind::kDaemonKill:
        break;  // real process death: delivered by apply_processes()
    }
  }
}

void ChaosSchedule::apply_processes(
    const std::function<void(SiteId)>& kill) const {
  std::vector<const ChaosEvent*> kills;
  for (const ChaosEvent& event : events_) {
    if (event.kind == ChaosEventKind::kDaemonKill) kills.push_back(&event);
  }
  std::sort(kills.begin(), kills.end(),
            [](const ChaosEvent* a, const ChaosEvent* b) {
              return a->start < b->start;
            });
  for (const ChaosEvent* event : kills) kill(event->site);
}

bool ChaosSchedule::partitioned(SiteId a, SiteId b, TimePoint t) const {
  if (a == b) return false;
  for (const ChaosEvent& event : events_) {
    if (event.kind != ChaosEventKind::kPartition) continue;
    if (t < event.start || t >= event.start + event.length) continue;
    const bool split =
        (event.site == a && event.other_site == b) ||
        (event.site == b && event.other_site == a);
    if (split) return true;
  }
  return false;
}

bool ChaosSchedule::reachable(const VirtualTestbed& bed, SiteId observer,
                              HostId host, TimePoint t) const {
  if (!bed.is_alive(host, t)) return false;
  return !partitioned(observer, bed.site_of(host), t);
}

std::function<bool(HostId)> ChaosSchedule::liveness_probe(
    const VirtualTestbed& bed, SiteId observer) const {
  return [this, &bed, observer](HostId host) {
    return reachable(bed, observer, host, bed.live_time());
  };
}

std::string ChaosSchedule::partition_spec(double base_s) const {
  std::ostringstream out;
  bool first = true;
  for (const ChaosEvent& event : events_) {
    if (event.kind != ChaosEventKind::kPartition) continue;
    if (!first) out << ';';
    first = false;
    out.precision(17);
    out << event.site.value() << ',' << event.other_site.value() << ','
        << base_s + event.start << ',' << base_s + event.start + event.length;
  }
  return out.str();
}

ChaosSchedule ChaosSchedule::from_partition_spec(const std::string& spec) {
  ChaosSchedule schedule;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    unsigned a = 0;
    unsigned b = 0;
    double start = 0.0;
    double stop = 0.0;
    if (std::sscanf(item.c_str(), "%u,%u,%lf,%lf", &a, &b, &start, &stop) !=
            4 ||
        stop < start) {
      throw common::ParseError("malformed partition spec item: " + item);
    }
    ChaosEvent event;
    event.kind = ChaosEventKind::kPartition;
    event.site = SiteId(static_cast<std::uint32_t>(a));
    event.other_site = SiteId(static_cast<std::uint32_t>(b));
    event.start = start;
    event.length = stop - start;
    schedule.add(event);
  }
  return schedule;
}

std::string ChaosSchedule::summary() const {
  std::ostringstream out;
  for (const ChaosEvent& event : events_) {
    out << to_string(event.kind) << " t=[" << event.start << ","
        << event.start + event.length << ")";
    switch (event.kind) {
      case ChaosEventKind::kHostCrash:
      case ChaosEventKind::kDeadlineStorm:
        out << " host=" << event.host.value();
        if (event.pulses > 0) out << " pulses=" << event.pulses;
        break;
      case ChaosEventKind::kGrayHost:
        out << " host=" << event.host.value()
            << " extra_load=" << event.extra_load;
        break;
      case ChaosEventKind::kSiteOutage:
        out << " site=" << event.site.value();
        break;
      case ChaosEventKind::kPartition:
        out << " sites=" << event.site.value() << "<->"
            << event.other_site.value();
        break;
      case ChaosEventKind::kDaemonKill:
        out << " site=" << event.site.value();
        break;
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace vdce::netsim
