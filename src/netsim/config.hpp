// Testbed configuration: the declarative description of a virtual VDCE.
//
// A testbed is a set of sites, each holding host groups connected by a
// LAN, with WAN links between sites — Figure 1 of the paper.  Builders
// produce (a) a two-site "campus" testbed echoing the paper's
// Syracuse/Rome prototype and (b) parameterised random testbeds for the
// scalability experiments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "repository/types.hpp"

namespace vdce::netsim {

/// Declarative description of one host.
struct HostSpec {
  std::string name;
  repo::ArchType arch = repo::ArchType::kSparc;
  repo::OsType os = repo::OsType::kSolaris;
  /// Generic computing-power weight relative to the base processor
  /// (2.0 = twice as fast); per-task affinities modulate it.
  double power_weight = 1.0;
  double total_memory_mb = 128.0;
  /// Long-run mean of the background load process.
  double background_load_mean = 0.3;
  /// Noise scale of the background load.
  double load_volatility = 0.1;
};

/// A group of hosts behind one group-leader machine (Figure 6).
struct GroupSpec {
  std::string name;
  std::vector<HostSpec> hosts;
  /// Intra-group LAN parameters.
  double lan_latency_s = 0.0005;
  double lan_mb_per_s = 10.0;
};

/// One VDCE site ("each of which has one or more VDCE Servers").
struct SiteSpec {
  std::string name;
  std::vector<GroupSpec> groups;
};

/// A WAN link between two sites (by index into TestbedConfig::sites).
struct WanLinkSpec {
  std::size_t site_a = 0;
  std::size_t site_b = 0;
  double latency_s = 0.02;
  double mb_per_s = 2.0;
};

/// Full testbed description.
struct TestbedConfig {
  std::vector<SiteSpec> sites;
  std::vector<WanLinkSpec> wan_links;
  /// Seed for every stochastic element (load processes, measurement
  /// noise); two testbeds built from equal configs behave identically.
  std::uint64_t seed = 1;
};

/// The two-site campus prototype: a Syracuse site with a Sparc group and
/// an Intel group, and a Rome site with a mixed group, WAN-linked —
/// the shape of Figure 6.
[[nodiscard]] TestbedConfig make_campus_testbed(std::uint64_t seed = 1);

/// Parameters for a random testbed.
struct RandomTestbedParams {
  std::size_t num_sites = 4;
  std::size_t groups_per_site = 2;
  std::size_t hosts_per_group = 4;
  /// Host power weights drawn uniform from this range.
  double min_power = 0.5;
  double max_power = 3.0;
  /// Background load means drawn uniform from this range.
  double min_load = 0.0;
  double max_load = 1.5;
  double wan_latency_s = 0.02;
  double wan_mb_per_s = 2.0;
};

/// A heterogeneous random testbed with all-pairs WAN links.
[[nodiscard]] TestbedConfig make_random_testbed(const RandomTestbedParams& p,
                                                std::uint64_t seed);

}  // namespace vdce::netsim
