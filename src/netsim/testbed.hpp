// The virtual testbed: ground truth for a simulated VDCE.
//
// This is the substitution for the paper's campus/NYNET hardware (see
// DESIGN.md Section 2).  The testbed owns the *true* state of every host
// (background load, liveness, memory) and network link; Monitor daemons
// obtain noisy *measurements* of that truth, the repository stores the
// measured view, the scheduler predicts from the measured view, and the
// simulator charges execution times against the truth.  The gap between
// truth and measurement is exactly what the paper's prediction and
// monitoring machinery has to cope with.
#pragma once

#include <atomic>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "netsim/config.hpp"
#include "netsim/loadgen.hpp"
#include "repository/repository.hpp"

namespace vdce::netsim {

using common::GroupId;
using common::HostId;
using common::SiteId;

/// A host failure window [start, start+length).
struct FailureWindow {
  TimePoint start = 0.0;
  Duration length = 0.0;
};

/// Ground-truth model of the distributed environment.
class VirtualTestbed {
 public:
  explicit VirtualTestbed(const TestbedConfig& config);

  // -- topology ----------------------------------------------------------
  [[nodiscard]] std::vector<SiteId> sites() const;
  [[nodiscard]] std::vector<GroupId> groups_in_site(SiteId site) const;
  [[nodiscard]] std::vector<HostId> all_hosts() const;
  [[nodiscard]] std::vector<HostId> hosts_in_group(GroupId group) const;
  [[nodiscard]] std::vector<HostId> hosts_in_site(SiteId site) const;

  [[nodiscard]] const std::string& site_name(SiteId site) const;
  [[nodiscard]] const std::string& group_name(GroupId group) const;
  [[nodiscard]] const HostSpec& host_spec(HostId host) const;
  [[nodiscard]] SiteId site_of(HostId host) const;
  [[nodiscard]] GroupId group_of(HostId host) const;
  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }

  // -- ground-truth host state -------------------------------------------
  /// True CPU load at time t.  Per-host queries must use non-decreasing
  /// times (the load process advances).
  [[nodiscard]] double true_load(HostId host, TimePoint t);

  /// True available memory at time t (declines with load: competing
  /// processes hold memory too).
  [[nodiscard]] double true_available_memory(HostId host, TimePoint t);

  /// True liveness at time t (false inside an injected failure window).
  [[nodiscard]] bool is_alive(HostId host, TimePoint t) const;

  /// Injects a crash window (the host stops answering echo packets).
  void fail_host(HostId host, TimePoint start, Duration length);

  // -- live-engine fault injection ---------------------------------------
  /// Virtual "now" for the live execution path.  The real-threaded
  /// engine runs in wall-clock time, so its Application Controllers
  /// cannot index fail_host windows by simulated time; tests pin this
  /// clock inside (or outside) a failure window so the same
  /// deterministic windows drive the engine's fault guards.
  void set_live_time(TimePoint now) {
    live_now_.store(now, std::memory_order_relaxed);
  }
  [[nodiscard]] TimePoint live_time() const {
    return live_now_.load(std::memory_order_relaxed);
  }
  /// Liveness of `host` at the current live time (thread-safe; the
  /// engine polls it from machine threads).
  [[nodiscard]] bool is_alive_now(HostId host) const {
    return is_alive(host, live_time());
  }
  /// The per-host liveness probe the engine's fault-tolerance wiring
  /// expects (`FaultTolerance::host_alive`).
  [[nodiscard]] std::function<bool(HostId)> liveness_probe() const {
    return [this](HostId host) { return is_alive_now(host); };
  }

  /// Adds a deterministic load spike on top of the background process.
  void add_load_spike(HostId host, const LoadSpike& spike);

  // -- measurement (what a Monitor daemon reads) ---------------------------
  /// Load measurement: truth plus small multiplicative noise.
  [[nodiscard]] double measure_load(HostId host, TimePoint t);
  /// Memory measurement: truth plus small noise, clamped to >= 0.
  [[nodiscard]] double measure_available_memory(HostId host, TimePoint t);

  // -- network ground truth ------------------------------------------------
  /// Time to move `mb` megabytes from one host to another: 0 on the same
  /// host; LAN latency+bandwidth within a group; group LAN + site LAN
  /// within a site; WAN across sites.
  [[nodiscard]] Duration transfer_time(HostId from, HostId to,
                                       double mb) const;

  /// WAN transfer time between two sites for `mb` megabytes (the
  /// site-scheduler's transfer_time(S_parent, S_j) * file_size term);
  /// 0 when the sites are equal.
  [[nodiscard]] Duration site_transfer_time(SiteId a, SiteId b,
                                            double mb) const;

  /// Raw WAN link attributes (latency, bandwidth) between two sites.
  [[nodiscard]] std::optional<repo::NetworkAttrs> wan_link(SiteId a,
                                                           SiteId b) const;
  /// LAN attributes of a group.
  [[nodiscard]] repo::NetworkAttrs lan_attrs(GroupId group) const;

  // -- execution model -------------------------------------------------
  /// True computing-power weight of `host` for `task_name`: the host's
  /// generic power modulated by a deterministic per-(task, architecture)
  /// affinity in [0.75, 1.35].  This realises the paper's observation
  /// that "a processor may give the best execution time for a specific
  /// application, but it may give the worst time for another".
  [[nodiscard]] double true_power_weight(HostId host,
                                         const std::string& task_name) const;

  /// True execution time of a task on a host given the load at start
  /// (quasi-static: the start-time load is charged for the whole run):
  ///   base_time * input_size / weight * (1 + load) * mem_penalty.
  [[nodiscard]] Duration execution_time(const repo::TaskPerformanceRecord& rec,
                                        double input_size, HostId host,
                                        double load_at_start,
                                        double available_memory_mb) const;

  /// Convenience: execution time sampling the true load/memory at t.
  [[nodiscard]] Duration execution_time_at(
      const repo::TaskPerformanceRecord& rec, double input_size, HostId host,
      TimePoint t);

  // -- repository population ------------------------------------------
  /// Registers this testbed's hosts/links of `site` into `repository`
  /// (static attributes and initial dynamic values at t=0), installs
  /// trial-run power weights (true weight with `weight_noise`
  /// multiplicative error) for every task in the repository's task
  /// database, and fills the task-constraints database (every host can
  /// run every task except a deterministic ~1/8 exclusion set that
  /// exercises the constraint path).
  void populate_repository(repo::SiteRepository& repository, SiteId site,
                           double weight_noise = 0.05);

 private:
  struct HostState {
    HostSpec spec;
    SiteId site;
    GroupId group;
    BackgroundLoad load;
    common::Rng measure_rng;
    std::vector<FailureWindow> failures;
  };

  struct GroupState {
    std::string name;
    SiteId site;
    double lan_latency_s;
    double lan_mb_per_s;
  };

  [[nodiscard]] const HostState& host_state(HostId host) const;
  [[nodiscard]] HostState& host_state(HostId host);

  /// Deterministic affinity in [0.75, 1.35] from (task name, arch).
  [[nodiscard]] static double task_arch_affinity(const std::string& task_name,
                                                 repo::ArchType arch);

  std::vector<std::string> site_names_;
  std::vector<GroupState> groups_;
  std::vector<HostState> hosts_;
  // WAN links keyed by symmetric site pair.
  std::unordered_map<std::uint64_t, repo::NetworkAttrs> wan_;
  std::uint64_t seed_;
  /// Virtual wall clock for the live engine's probes.
  std::atomic<TimePoint> live_now_{0.0};

  [[nodiscard]] static std::uint64_t pair_key(std::uint32_t a,
                                              std::uint32_t b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }
};

}  // namespace vdce::netsim
