// TCP loopback transport: real sockets behind the Channel interface.
//
// The prototype's Data Manager spoke BSD sockets across the campus
// network; here both endpoints live on 127.0.0.1 but traverse the full
// kernel socket path.  Messages are framed with a 4-byte big-endian
// length prefix.
//
// Since D13 the receive side is serviced by the shared TcpEventLoop:
// the channel's fd is non-blocking and owned by the loop, which parses
// frames into pooled buffers and fills a per-channel queue;
// receive()/receive_for() wait on that queue.  Sends are a single
// scatter/gather sendmsg of header + body straight out of the caller's
// buffer (or pooled frame) — no concatenation copy.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "datamgr/channel.hpp"
#include "datamgr/event_loop.hpp"

namespace vdce::dm {

/// A channel over a connected TCP socket.
class TcpChannel final : public Channel {
 public:
  /// Largest frame either direction accepts by default.  The 4-byte
  /// length header caps frames at 4 GiB - 1 anyway; anything above this
  /// limit is rejected outright — on send so an oversized message can
  /// never be silently truncated into a corrupt frame stream, and on
  /// receive so a corrupt or hostile length header cannot trigger a
  /// multi-gigabyte allocation before the body arrives.
  static constexpr std::size_t kDefaultMaxMessageBytes =
      std::size_t{1} << 30;  // 1 GiB

  /// Takes a connected socket fd.  The fd becomes non-blocking and its
  /// receive side is owned by the shared event loop.
  explicit TcpChannel(int fd);
  ~TcpChannel() override;

  TcpChannel(const TcpChannel&) = delete;
  TcpChannel& operator=(const TcpChannel&) = delete;

  void send(std::span<const std::byte> message) override;
  void send_frame(const FrameView& frame) override;
  [[nodiscard]] std::optional<std::vector<std::byte>> receive() override;
  [[nodiscard]] std::optional<std::vector<std::byte>> receive_for(
      double timeout_s) override;
  [[nodiscard]] std::optional<FrameView> receive_frame() override;
  [[nodiscard]] std::optional<FrameView> receive_frame_for(
      double timeout_s) override;
  void close() override;
  [[nodiscard]] std::size_t bytes_sent() const override;

  /// Tightens (or loosens, up to 4 GiB - 1) the per-message frame
  /// limit; both peers of a channel must agree.  Mostly for tests.
  void set_max_message_bytes(std::size_t limit);

 private:
  [[nodiscard]] std::optional<FrameView> queue_pop(double timeout_s);
  void send_bytes(std::span<const std::byte> body);

  int fd_;
  std::atomic<bool> shut_{false};
  std::atomic<std::size_t> bytes_sent_{0};
  std::atomic<std::size_t> max_message_bytes_{kDefaultMaxMessageBytes};
  std::shared_ptr<TcpRxState> rx_;  // event-loop mode only
};

/// A listening socket on 127.0.0.1 with a kernel-assigned port.
class TcpListener {
 public:
  TcpListener();
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// The port the kernel assigned ("the socket number ... that will be
  /// used for communication channel setup").
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Blocks for one inbound connection; returns it as a channel.
  [[nodiscard]] std::unique_ptr<TcpChannel> accept();

  /// Like accept(), but gives up after `timeout_s` seconds, throwing
  /// TransportError.  `timeout_s <= 0` blocks.
  [[nodiscard]] std::unique_ptr<TcpChannel> accept_for(double timeout_s);

  /// Unblocks a pending accept() by closing the listening socket.
  void close();

 private:
  // Atomic because close() is the documented cross-thread way to wake
  // a blocked accept(): the waker races the accepting thread's reads.
  std::atomic<int> fd_;
  std::uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:`port`; retries briefly while the listener
/// races to bind.  Throws TransportError on failure.
[[nodiscard]] std::unique_ptr<TcpChannel> tcp_connect(std::uint16_t port);

}  // namespace vdce::dm
