// Bounded streaming channel: a fixed-capacity ring of pooled frames
// with blocking backpressure (design decision D16 in DESIGN.md).
//
// Every existing channel is built for run-to-completion DAGs: the
// in-process pair rides an UNBOUNDED MessageQueue, so a producer can
// outrun its consumer without limit and memory grows with the stream.
// A RingChannel is the streaming counterpart (exemplar: R2sampler's
// fixed ring buffer between rate-converter stages): one slab of
// `capacity` FrameView slots allocated once at construction, and two
// park/wake disciplines instead of growth --
//
//   * a producer pushing into a full ring PARKS until a consumer makes
//     room (backpressure: the whole upstream pipeline throttles to the
//     slowest stage instead of buffering unboundedly);
//   * a consumer popping from an empty ring parks until a producer
//     delivers or the stream ends.
//
// End-of-stream is explicit and counted: the ring tracks its attached
// producers (one by default; fan-in adds more via add_producer), and
// close_send() retires one.  When the last producer retires, consumers
// drain the remaining frames and then see nullopt -- the clean EOS the
// streaming engine propagates stage to stage.  abort() is the hard
// teardown (ChannelBroker::clear_app): queued frames are dropped and
// every parked producer AND consumer wakes with TransportError.
//
// Thread-safe for any number of racing producers and consumers.  FIFO
// order is global: frames pop in exactly the order their pushes
// committed (per-producer order is therefore preserved under fan-in).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>

#include <condition_variable>

#include "datamgr/channel.hpp"

namespace vdce::dm {

/// Point-in-time ring counters (reads are racy-but-consistent snapshots
/// under the ring's own lock).
struct RingChannelStats {
  std::uint64_t frames_pushed = 0;
  std::uint64_t frames_popped = 0;
  std::uint64_t frames_dropped = 0;   ///< queued frames discarded by abort()
  std::uint64_t producer_parks = 0;   ///< push() blocked on a full ring
  std::uint64_t consumer_parks = 0;   ///< pop() blocked on an empty ring
  std::size_t high_water = 0;         ///< max occupancy ever observed
};

/// Fixed-capacity single-allocation frame ring with backpressure.
///
/// Also implements the Channel interface (send == blocking push of a
/// pooled copy, receive == pop, close == orderly close_send) so a ring
/// can stand wherever a Channel is expected.
class RingChannel final : public Channel {
 public:
  /// `capacity` >= 1 slots; the slot array is the only allocation the
  /// channel ever makes.  The ring starts with ONE attached producer.
  explicit RingChannel(std::size_t capacity);
  ~RingChannel() override;

  // -- streaming interface ----------------------------------------------

  /// Enqueues one frame view (refcount bump, zero bytes moved), parking
  /// while the ring is full.  Throws TransportError if the ring is
  /// aborted (including while parked -- the clear_app wake) or if every
  /// producer already retired.
  void push(FrameView frame);

  /// Non-blocking push; returns false when the ring is full.  Same
  /// TransportError conditions as push().
  [[nodiscard]] bool try_push(FrameView frame);

  /// Dequeues the next frame, parking while the ring is empty.  Returns
  /// nullopt only on clean end-of-stream (all producers retired and the
  /// ring drained).  Throws TransportError if the ring is aborted.
  [[nodiscard]] std::optional<FrameView> pop();

  /// Like pop(), but gives up after `timeout_s` seconds with
  /// TransportError (the dead-producer guard).  `timeout_s <= 0`
  /// blocks indefinitely.
  [[nodiscard]] std::optional<FrameView> pop_for(double timeout_s);

  /// Attaches one more producer (fan-in); EOS now needs one more
  /// close_send().  Throws StateError once the stream already ended.
  void add_producer();

  /// Retires one producer.  When the last producer retires the stream
  /// is at end-of-stream: consumers drain, then see nullopt.
  /// Idempotent once all producers are retired.
  void close_send();

  /// Hard teardown: drops queued frames (releasing their slabs) and
  /// wakes every parked producer and consumer with TransportError.
  /// Idempotent.
  void abort();

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const;
  /// True once every producer retired (frames may remain to drain).
  [[nodiscard]] bool eos() const;
  [[nodiscard]] bool aborted() const;
  [[nodiscard]] RingChannelStats stats() const;

  // -- Channel interface -------------------------------------------------

  void send(std::span<const std::byte> message) override;
  void send_frame(const FrameView& frame) override;
  [[nodiscard]] std::optional<std::vector<std::byte>> receive() override;
  [[nodiscard]] std::optional<std::vector<std::byte>> receive_for(
      double timeout_s) override;
  [[nodiscard]] std::optional<FrameView> receive_frame() override;
  [[nodiscard]] std::optional<FrameView> receive_frame_for(
      double timeout_s) override;
  /// Orderly close: identical to close_send().
  void close() override;
  [[nodiscard]] std::size_t bytes_sent() const override;

 private:
  /// Pops under `lk` after the wait predicate passed; assumes
  /// count_ > 0.
  [[nodiscard]] FrameView take_locked();
  void push_locked(FrameView&& frame);

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::unique_ptr<FrameView[]> slots_;  // the single allocation
  std::size_t head_ = 0;                // next slot to pop
  std::size_t count_ = 0;               // occupied slots
  std::size_t producers_ = 1;           // attached, not yet retired
  bool eos_ = false;                    // all producers retired
  bool aborted_ = false;
  std::size_t bytes_sent_ = 0;
  RingChannelStats stats_;
};

}  // namespace vdce::dm
