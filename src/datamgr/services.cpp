#include "datamgr/services.hpp"

#include <fstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace vdce::dm {

using common::NotFoundError;
using common::ParseError;
using common::StateError;

IoService::IoService(std::filesystem::path doc_root)
    : doc_root_(std::move(doc_root)) {}

std::filesystem::path IoService::resolve(const std::string& spec) const {
  if (common::starts_with(spec, "file:")) {
    return std::filesystem::path(spec.substr(5));
  }
  if (common::starts_with(spec, "url:")) {
    return doc_root_ / spec.substr(4);
  }
  throw ParseError("I/O spec must start with file: or url: -- got '" + spec +
                   "'");
}

tasklib::Payload IoService::read_input(const std::string& spec) const {
  const auto path = resolve(spec);
  std::ifstream in(path, std::ios::binary);
  if (!in) throw NotFoundError("cannot read input: " + path.string());
  std::vector<std::byte> wire;
  char c;
  while (in.get(c)) wire.push_back(static_cast<std::byte>(c));
  return tasklib::Payload::from_wire(std::move(wire));
}

void IoService::write_output(const std::filesystem::path& path,
                             const tasklib::Payload& payload) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw NotFoundError("cannot write output: " + path.string());
  const auto wire = payload.to_wire();
  out.write(reinterpret_cast<const char*>(wire.data()),
            static_cast<std::streamsize>(wire.size()));
}

void ConsoleService::suspend() {
  std::lock_guard lk(mu_);
  suspended_ = true;
}

void ConsoleService::resume() {
  {
    std::lock_guard lk(mu_);
    suspended_ = false;
  }
  cv_.notify_all();
}

void ConsoleService::abort() {
  {
    std::lock_guard lk(mu_);
    aborted_ = true;
    suspended_ = false;
  }
  cv_.notify_all();
}

bool ConsoleService::suspended() const {
  std::lock_guard lk(mu_);
  return suspended_;
}

bool ConsoleService::aborted() const {
  std::lock_guard lk(mu_);
  return aborted_;
}

void ConsoleService::checkpoint() {
  std::unique_lock lk(mu_);
  cv_.wait(lk, [&] { return !suspended_ || aborted_; });
  if (aborted_) throw StateError("application aborted via console service");
}

}  // namespace vdce::dm
