// Message-passing library facades.
//
// "Since user tasks can be programmed in various message-passing tools,
//  the VDCE Runtime System supports multiple message-passing libraries
//  such as P4, PVM, MPI, NCS."  (Section 2.3.2)
//
// Each facade wraps a Channel with that library's envelope and on-wire
// behaviour: P4 sends plain tagged messages; PVM packs and fragments
// into fixed-size buffers; MPI carries a communicator id checked on
// receive; NCS (the multithreaded ATM tool) streams with sequence
// numbers verified on arrival.  All four interoperate with the same
// Channel transports.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "datamgr/channel.hpp"

namespace vdce::dm {

enum class MpLibrary : std::uint8_t { kP4 = 1, kPvm, kMpi, kNcs };

[[nodiscard]] std::string to_string(MpLibrary lib);
[[nodiscard]] MpLibrary mp_library_from_string(const std::string& s);

/// A tagged message as seen by user task code.
struct TaggedMessage {
  int tag = 0;
  std::vector<std::byte> data;
};

/// One endpoint of a message-passing session over a channel.
///
/// A sending endpoint wraps the sending channel end; a receiving
/// endpoint wraps the receiving end.  Both sides must use the same
/// library (checked by a magic byte in every envelope).
class MessageEndpoint {
 public:
  /// PVM fragment payload size, bytes.
  static constexpr std::size_t kPvmFragment = 4096;

  MessageEndpoint(MpLibrary library, std::shared_ptr<Channel> channel,
                  std::uint32_t communicator = 0);

  /// Sends one tagged message using the library's envelope.
  void send(int tag, std::span<const std::byte> data);

  /// Receives the next message; nullopt when the channel closes.
  /// Throws TransportError on an envelope violation (wrong library,
  /// wrong communicator, out-of-order NCS sequence, missing PVM
  /// fragment).
  [[nodiscard]] std::optional<TaggedMessage> receive();

  /// Like receive(), but each underlying frame read gives up after
  /// `timeout_s` seconds with a TransportError (the Data Manager's
  /// dead-peer guard).  `timeout_s <= 0` blocks.
  [[nodiscard]] std::optional<TaggedMessage> receive_for(double timeout_s);

  void close() { channel_->close(); }

  [[nodiscard]] MpLibrary library() const { return library_; }

 private:
  [[nodiscard]] std::optional<TaggedMessage> receive_impl(double timeout_s);

  MpLibrary library_;
  std::shared_ptr<Channel> channel_;
  std::uint32_t communicator_;
  std::uint32_t send_seq_ = 0;
  std::uint32_t recv_seq_ = 0;
};

}  // namespace vdce::dm
