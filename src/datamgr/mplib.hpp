// Message-passing library facades.
//
// "Since user tasks can be programmed in various message-passing tools,
//  the VDCE Runtime System supports multiple message-passing libraries
//  such as P4, PVM, MPI, NCS."  (Section 2.3.2)
//
// Each facade wraps a Channel with that library's envelope and on-wire
// behaviour: P4 sends plain tagged messages; PVM packs and fragments
// into fixed-size buffers; MPI carries a communicator id checked on
// receive; NCS (the multithreaded ATM tool) streams with sequence
// numbers verified on arrival.  All four interoperate with the same
// Channel transports.
//
// The frame-based API (D13) avoids the per-hop copies of the vector
// API: prepare()/send_prepared() let a producer serialize its payload
// directly into the pooled envelope frame and share that one frame
// across every consumer link, and receive_frame() hands back the
// payload as a zero-copy subview of the received envelope (P4/MPI/NCS)
// or one reassembled pooled frame (PVM).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "datamgr/channel.hpp"

namespace vdce::dm {

enum class MpLibrary : std::uint8_t { kP4 = 1, kPvm, kMpi, kNcs };

[[nodiscard]] std::string to_string(MpLibrary lib);
[[nodiscard]] MpLibrary mp_library_from_string(const std::string& s);

/// A tagged message as seen by user task code.
struct TaggedMessage {
  int tag = 0;
  std::vector<std::byte> data;
};

/// A tagged message whose payload is a zero-copy view into the received
/// envelope frame (P4/MPI/NCS) or a reassembled pooled frame (PVM).
struct TaggedFrame {
  int tag = 0;
  FrameView data;
};

/// A pooled envelope frame with the library header already written and
/// room for the payload at body().  Fill the body, then pass
/// frame.view() to send_prepared() — on every consumer link: the whole
/// point is that ONE prepared frame fans out to all of them.
struct PreparedFrame {
  Frame frame;
  std::size_t body_offset = 0;

  [[nodiscard]] std::span<std::byte> body() {
    return frame.span().subspan(body_offset);
  }
};

/// One endpoint of a message-passing session over a channel.
///
/// A sending endpoint wraps the sending channel end; a receiving
/// endpoint wraps the receiving end.  Both sides must use the same
/// library (checked by a magic byte in every envelope).
class MessageEndpoint {
 public:
  /// PVM fragment payload size, bytes.
  static constexpr std::size_t kPvmFragment = 4096;

  MessageEndpoint(MpLibrary library, std::shared_ptr<Channel> channel,
                  std::uint32_t communicator = 0);

  /// Sends one tagged message using the library's envelope.
  void send(int tag, std::span<const std::byte> data);

  /// Zero-copy send of an already-framed payload: P4/MPI/NCS copy it
  /// once into the pooled envelope; PVM sends the header then each
  /// fragment as a subview of `data` (no fragment copies at all).
  void send_frame(int tag, const FrameView& data);

  /// Allocates the envelope frame for a `body_size`-byte payload with
  /// the header written (P4/MPI/NCS; PVM fragments, so it has no single
  /// envelope — StateError).  Does NOT advance NCS send state: that
  /// happens in send_prepared(), so one prepared frame may be sent on
  /// several endpoints as long as they agree on the sequence number
  /// (all fresh endpoints do — they start at 0 and the engine sends
  /// exactly one payload message per link).
  [[nodiscard]] PreparedFrame prepare(int tag, std::size_t body_size);

  /// Sends a frame built by prepare() (advancing NCS send state).
  void send_prepared(const FrameView& envelope);

  /// Receives the next message; nullopt when the channel closes.
  /// Throws TransportError on an envelope violation (wrong library,
  /// wrong communicator, out-of-order NCS sequence, missing PVM
  /// fragment).
  [[nodiscard]] std::optional<TaggedMessage> receive();

  /// Like receive(), but each underlying frame read gives up after
  /// `timeout_s` seconds with a TransportError (the Data Manager's
  /// dead-peer guard).  `timeout_s <= 0` blocks.
  [[nodiscard]] std::optional<TaggedMessage> receive_for(double timeout_s);

  /// Frame-view variants of receive()/receive_for(); same contracts.
  [[nodiscard]] std::optional<TaggedFrame> receive_frame();
  [[nodiscard]] std::optional<TaggedFrame> receive_frame_for(
      double timeout_s);

  void close() { channel_->close(); }

  [[nodiscard]] MpLibrary library() const { return library_; }

 private:
  [[nodiscard]] std::optional<TaggedFrame> receive_frame_impl(
      double timeout_s);

  MpLibrary library_;
  std::shared_ptr<Channel> channel_;
  std::uint32_t communicator_;
  std::uint32_t send_seq_ = 0;
  std::uint32_t recv_seq_ = 0;
};

}  // namespace vdce::dm
