#include "datamgr/channel.hpp"

#include <atomic>
#include <cstring>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/queue.hpp"

namespace vdce::dm {

// -- Channel base defaults (for third-party transports) ------------------

void Channel::send_frame(const FrameView& frame) { send(frame.bytes()); }

std::optional<FrameView> Channel::receive_frame() {
  auto msg = receive();
  if (!msg) return std::nullopt;
  return FramePool::global().copy_of(*msg);
}

std::optional<FrameView> Channel::receive_frame_for(double timeout_s) {
  auto msg = receive_for(timeout_s);
  if (!msg) return std::nullopt;
  return FramePool::global().copy_of(*msg);
}

namespace {

/// Shared queue state of an in-process channel pair.  The queue carries
/// frame views: a send moves one refcounted view, not the bytes.
struct InProcCore {
  common::MessageQueue<FrameView> queue;
  std::atomic<std::size_t> bytes_sent{0};
};

[[noreturn]] void wrong_direction(const char* what) {
  throw common::TransportError(what);
}

class InProcSender final : public Channel {
 public:
  explicit InProcSender(std::shared_ptr<InProcCore> core)
      : core_(std::move(core)) {}

  void send(std::span<const std::byte> message) override {
    // One copy: caller's buffer into a frame.  Consumers then share it.
    Frame frame = FramePool::global().allocate(message.size());
    if (!message.empty()) {
      std::memcpy(frame.data(), message.data(), message.size());
    }
    push(frame.view(), message.size());
  }

  void send_frame(const FrameView& frame) override {
    push(frame, frame.size());  // zero-copy: refcount bump only
  }

  std::optional<std::vector<std::byte>> receive() override {
    wrong_direction("receive on the sending end of an in-process channel");
  }

  std::optional<std::vector<std::byte>> receive_for(double) override {
    wrong_direction("receive on the sending end of an in-process channel");
  }

  void close() override { core_->queue.close(); }

  std::size_t bytes_sent() const override { return core_->bytes_sent; }

 private:
  void push(FrameView view, std::size_t n) {
    if (!core_->queue.push(std::move(view))) {
      throw common::TransportError("send on closed in-process channel");
    }
    core_->bytes_sent += n;
  }

  std::shared_ptr<InProcCore> core_;
};

class InProcReceiver final : public Channel {
 public:
  explicit InProcReceiver(std::shared_ptr<InProcCore> core)
      : core_(std::move(core)) {}

  void send(std::span<const std::byte>) override {
    wrong_direction("send on the receiving end of an in-process channel");
  }

  void send_frame(const FrameView&) override {
    wrong_direction("send on the receiving end of an in-process channel");
  }

  std::optional<std::vector<std::byte>> receive() override {
    auto view = core_->queue.pop();
    if (!view) return std::nullopt;
    return view->to_vector();
  }

  std::optional<std::vector<std::byte>> receive_for(double timeout_s) override {
    auto view = receive_frame_for(timeout_s);
    if (!view) return std::nullopt;
    return view->to_vector();
  }

  std::optional<FrameView> receive_frame() override {
    return core_->queue.pop();
  }

  std::optional<FrameView> receive_frame_for(double timeout_s) override {
    if (timeout_s <= 0.0) return receive_frame();
    auto view = core_->queue.pop_for(std::chrono::duration<double>(timeout_s));
    if (view) return view;
    // pop_for returns nullopt both on timeout and on an orderly close;
    // only the former is an error.
    if (auto late = core_->queue.try_pop()) return late;
    if (core_->queue.closed()) return std::nullopt;
    common::MetricsRegistry::global()
        .counter("datamgr.deadline_expiries")
        .add(1);
    throw common::TransportError("in-process receive timed out after " +
                                 std::to_string(timeout_s) + "s");
  }

  void close() override { core_->queue.close(); }

  std::size_t bytes_sent() const override { return core_->bytes_sent; }

 private:
  std::shared_ptr<InProcCore> core_;
};

}  // namespace

InProcPair make_inproc_pair() {
  auto core = std::make_shared<InProcCore>();
  return InProcPair{std::make_shared<InProcSender>(core),
                    std::make_shared<InProcReceiver>(core)};
}

}  // namespace vdce::dm
