#include "datamgr/channel.hpp"

#include <atomic>

#include "common/error.hpp"
#include "common/queue.hpp"

namespace vdce::dm {

namespace {

using Message = std::vector<std::byte>;

/// Shared queue state of an in-process channel pair.
struct InProcCore {
  common::MessageQueue<Message> queue;
  std::atomic<std::size_t> bytes_sent{0};
};

class InProcSender final : public Channel {
 public:
  explicit InProcSender(std::shared_ptr<InProcCore> core)
      : core_(std::move(core)) {}

  void send(std::span<const std::byte> message) override {
    Message copy(message.begin(), message.end());
    const std::size_t n = copy.size();
    if (!core_->queue.push(std::move(copy))) {
      throw common::TransportError("send on closed in-process channel");
    }
    core_->bytes_sent += n;
  }

  std::optional<Message> receive() override {
    throw common::TransportError(
        "receive on the sending end of an in-process channel");
  }

  void close() override { core_->queue.close(); }

  std::size_t bytes_sent() const override { return core_->bytes_sent; }

 private:
  std::shared_ptr<InProcCore> core_;
};

class InProcReceiver final : public Channel {
 public:
  explicit InProcReceiver(std::shared_ptr<InProcCore> core)
      : core_(std::move(core)) {}

  void send(std::span<const std::byte>) override {
    throw common::TransportError(
        "send on the receiving end of an in-process channel");
  }

  std::optional<Message> receive() override { return core_->queue.pop(); }

  void close() override { core_->queue.close(); }

  std::size_t bytes_sent() const override { return core_->bytes_sent; }

 private:
  std::shared_ptr<InProcCore> core_;
};

}  // namespace

InProcPair make_inproc_pair() {
  auto core = std::make_shared<InProcCore>();
  return InProcPair{std::make_shared<InProcSender>(core),
                    std::make_shared<InProcReceiver>(core)};
}

}  // namespace vdce::dm
