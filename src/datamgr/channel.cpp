#include "datamgr/channel.hpp"

#include <atomic>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/queue.hpp"

namespace vdce::dm {

namespace {

using Message = std::vector<std::byte>;

/// Shared queue state of an in-process channel pair.
struct InProcCore {
  common::MessageQueue<Message> queue;
  std::atomic<std::size_t> bytes_sent{0};
};

class InProcSender final : public Channel {
 public:
  explicit InProcSender(std::shared_ptr<InProcCore> core)
      : core_(std::move(core)) {}

  void send(std::span<const std::byte> message) override {
    Message copy(message.begin(), message.end());
    const std::size_t n = copy.size();
    if (!core_->queue.push(std::move(copy))) {
      throw common::TransportError("send on closed in-process channel");
    }
    core_->bytes_sent += n;
  }

  std::optional<Message> receive() override {
    throw common::TransportError(
        "receive on the sending end of an in-process channel");
  }

  void close() override { core_->queue.close(); }

  std::size_t bytes_sent() const override { return core_->bytes_sent; }

 private:
  std::shared_ptr<InProcCore> core_;
};

class InProcReceiver final : public Channel {
 public:
  explicit InProcReceiver(std::shared_ptr<InProcCore> core)
      : core_(std::move(core)) {}

  void send(std::span<const std::byte>) override {
    throw common::TransportError(
        "send on the receiving end of an in-process channel");
  }

  std::optional<Message> receive() override { return core_->queue.pop(); }

  std::optional<Message> receive_for(double timeout_s) override {
    if (timeout_s <= 0.0) return receive();
    auto msg = core_->queue.pop_for(std::chrono::duration<double>(timeout_s));
    if (msg) return msg;
    // pop_for returns nullopt both on timeout and on an orderly close;
    // only the former is an error.
    if (auto late = core_->queue.try_pop()) return late;
    if (core_->queue.closed()) return std::nullopt;
    common::MetricsRegistry::global()
        .counter("datamgr.deadline_expiries")
        .add(1);
    throw common::TransportError("in-process receive timed out after " +
                                 std::to_string(timeout_s) + "s");
  }

  void close() override { core_->queue.close(); }

  std::size_t bytes_sent() const override { return core_->bytes_sent; }

 private:
  std::shared_ptr<InProcCore> core_;
};

}  // namespace

InProcPair make_inproc_pair() {
  auto core = std::make_shared<InProcCore>();
  return InProcPair{std::make_shared<InProcSender>(core),
                    std::make_shared<InProcReceiver>(core)};
}

}  // namespace vdce::dm
