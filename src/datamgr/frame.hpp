// Pooled, reference-counted frame buffers: the zero-copy data path
// (design decision D13 in DESIGN.md).
//
// The Data Manager is the byte-moving heart of VDCE, yet before D13
// every frame was copied at every hop: producer -> send -> queue ->
// receive -> checkpoint -> socket.  A Frame is a single slab allocation
// that serves all of those consumers at once: the producer serializes
// into it exactly once, and every other party -- in-process queues, the
// checkpoint store, the TCP writev path -- holds a FrameView, a
// non-owning window that pins the slab via an atomic refcount.  The
// pool recycles a slab only after the last reference drops, so a
// captured checkpoint view stays bit-stable no matter how the pool
// churns underneath it.
//
// Ownership rules:
//   * Frame   -- owning, move-only, mutable.  Exactly one per slab.
//   * FrameView -- copyable, read-only.  Copying bumps the refcount;
//     no bytes move.  subview() carves zero-copy sub-ranges (envelope
//     bodies, PVM fragments).
//   * A slab returns to its size-class free list when the owning Frame
//     and every FrameView are gone.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

namespace vdce::dm {

class FramePool;

namespace detail {

/// One pool slot: a reference-counted byte slab.  While `refs > 0` the
/// slot cannot be recycled, so every FrameView over it is bit-stable.
struct Slab {
  FramePool* pool = nullptr;
  std::size_t capacity = 0;
  std::size_t size = 0;  // committed bytes of the current frame
  std::atomic<std::uint32_t> refs{0};
  std::unique_ptr<std::byte[]> bytes;
};

void add_ref(Slab* slab) noexcept;
void release(Slab* slab) noexcept;

}  // namespace detail

/// Non-owning, read-only window onto a pooled frame: a span plus a
/// reference on the underlying pool slot.  Cheap to copy (one atomic
/// increment, zero bytes moved).
class FrameView {
 public:
  FrameView() = default;
  FrameView(const FrameView& other) noexcept;
  FrameView& operator=(const FrameView& other) noexcept;
  FrameView(FrameView&& other) noexcept;
  FrameView& operator=(FrameView&& other) noexcept;
  ~FrameView();

  [[nodiscard]] bool valid() const { return slab_ != nullptr; }
  [[nodiscard]] const std::byte* data() const;
  [[nodiscard]] std::size_t size() const { return length_; }
  [[nodiscard]] bool empty() const { return length_ == 0; }
  [[nodiscard]] std::span<const std::byte> bytes() const {
    return {data(), length_};
  }
  [[nodiscard]] const std::byte* begin() const { return data(); }
  [[nodiscard]] const std::byte* end() const { return data() + length_; }

  /// A zero-copy sub-range sharing (and pinning) the same slab.
  /// Throws StateError if [offset, offset+length) exceeds this view.
  [[nodiscard]] FrameView subview(std::size_t offset,
                                  std::size_t length) const;

  /// Copies the viewed bytes out (compatibility with vector callers).
  [[nodiscard]] std::vector<std::byte> to_vector() const;

  /// Drops the reference, leaving an invalid view.
  void reset();

 private:
  friend class Frame;
  friend class FramePool;
  FrameView(detail::Slab* slab, std::size_t offset, std::size_t length);

  detail::Slab* slab_ = nullptr;
  std::size_t offset_ = 0;
  std::size_t length_ = 0;
};

/// Owning, move-only, mutable handle to one pooled slab.  The producer
/// serializes into it once; view() shares it read-only from then on.
class Frame {
 public:
  Frame() = default;
  Frame(const Frame&) = delete;
  Frame& operator=(const Frame&) = delete;
  Frame(Frame&& other) noexcept;
  Frame& operator=(Frame&& other) noexcept;
  ~Frame();

  [[nodiscard]] bool valid() const { return slab_ != nullptr; }
  [[nodiscard]] std::byte* data();
  [[nodiscard]] const std::byte* data() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const;
  [[nodiscard]] std::span<std::byte> span() { return {data(), size()}; }

  /// Shrinks (or re-grows within capacity) the committed byte count.
  /// Throws StateError past capacity.
  void resize(std::size_t n);

  /// A read-only view of the committed bytes (refcount bump).
  [[nodiscard]] FrameView view() const;

  /// Releases the slab reference, leaving an invalid frame.
  void reset();

 private:
  friend class FramePool;
  explicit Frame(detail::Slab* slab) : slab_(slab) {}

  detail::Slab* slab_ = nullptr;
};

/// Point-in-time pool statistics (also exported as datamgr.pool.*
/// metrics through the global registry).
struct FramePoolStats {
  std::uint64_t slabs_allocated = 0;  ///< heap slabs ever created
  std::uint64_t reuse_hits = 0;       ///< allocations served from a free list
  std::uint64_t reuse_misses = 0;     ///< allocations that went to the heap
  std::uint64_t bytes_in_use = 0;     ///< pooled slab capacity out on loan
  std::uint64_t high_water_bytes = 0; ///< max bytes_in_use ever observed
  std::uint64_t free_slabs = 0;       ///< slabs parked on free lists
};

/// Slab allocator with power-of-two size classes and per-class free
/// lists.  Thread-safe; allocation takes one short lock, release of a
/// pooled slab takes the same lock, release of a bypass slab takes
/// none.
class FramePool {
 public:
  /// Smallest slab handed out; sub-256B frames share this class.
  static constexpr std::size_t kMinSlabBytes = 256;
  /// Free slabs retained per size class; excess is heap-freed.
  static constexpr std::size_t kMaxFreePerClass = 8;

  FramePool();
  ~FramePool();
  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;

  /// A pooled frame with size() == size (capacity rounded up to the
  /// size class).  Contents are uninitialized.
  [[nodiscard]] Frame allocate(std::size_t size);

  /// Pool-allocates a frame holding a copy of `bytes` and returns a
  /// view of it (the transient owning Frame is dropped; the view keeps
  /// the slab alive).
  [[nodiscard]] FrameView copy_of(std::span<const std::byte> bytes);

  [[nodiscard]] FramePoolStats stats() const;

  /// Drops every parked free slab (test support).
  void trim();

  /// The process-wide pool.  Intentionally leaked: frames may be
  /// released from detached threads during process teardown, after
  /// static destructors would have run.
  [[nodiscard]] static FramePool& global();

 private:
  friend void detail::release(detail::Slab* slab) noexcept;

  [[nodiscard]] static std::size_t class_capacity(std::size_t size);
  void recycle(detail::Slab* slab);
  void note_in_use_locked(std::size_t capacity);

  mutable std::mutex mu_;
  // free_[c] parks slabs of capacity kMinSlabBytes << c.
  std::vector<std::vector<detail::Slab*>> free_;
  FramePoolStats stats_;
};

}  // namespace vdce::dm
