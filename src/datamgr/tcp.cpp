#include "datamgr/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>
#include <thread>

#include "common/error.hpp"
#include "common/metrics.hpp"

namespace vdce::dm {

using common::TransportError;

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw TransportError(what + ": " + std::strerror(errno));
}

/// One scatter/gather write of header + body (the writev path of D13:
/// sendmsg is vectored like writev but honours MSG_NOSIGNAL).  The fd
/// may be non-blocking; EAGAIN waits for POLLOUT and resumes.
void sendv_all(int fd, std::span<const std::byte> header,
               std::span<const std::byte> body) {
  iovec iov[2] = {
      {const_cast<std::byte*>(header.data()), header.size()},
      {const_cast<std::byte*>(body.data()), body.size()},
  };
  const int count = body.empty() ? 1 : 2;
  int idx = 0;
  while (idx < count) {
    msghdr msg{};
    msg.msg_iov = &iov[idx];
    msg.msg_iovlen = static_cast<std::size_t>(count - idx);
    const ssize_t w = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        pollfd pfd{fd, POLLOUT, 0};
        if (::poll(&pfd, 1, -1) < 0 && errno != EINTR) fail("tcp send poll");
        continue;
      }
      fail("tcp send");
    }
    std::size_t left = static_cast<std::size_t>(w);
    while (idx < count && left >= iov[idx].iov_len) {
      left -= iov[idx].iov_len;
      ++idx;
    }
    if (idx < count && left > 0) {
      iov[idx].iov_base = static_cast<std::byte*>(iov[idx].iov_base) + left;
      iov[idx].iov_len -= left;
    }
  }
}

void encode_header(std::byte (&header)[4], std::size_t size) {
  const auto n = static_cast<std::uint32_t>(size);
  header[0] = std::byte{static_cast<std::uint8_t>(n >> 24)};
  header[1] = std::byte{static_cast<std::uint8_t>(n >> 16)};
  header[2] = std::byte{static_cast<std::uint8_t>(n >> 8)};
  header[3] = std::byte{static_cast<std::uint8_t>(n)};
}

}  // namespace

TcpChannel::TcpChannel(int fd) : fd_(fd) {
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  rx_ = std::make_shared<TcpRxState>(kDefaultMaxMessageBytes);
  TcpEventLoop::global().add(fd_, rx_);
}

TcpChannel::~TcpChannel() {
  if (fd_ < 0) return;
  ::shutdown(fd_, SHUT_RDWR);
  TcpEventLoop::global().remove(fd_);  // the loop owns and closes the fd
  fd_ = -1;
}

void TcpChannel::send_bytes(std::span<const std::byte> body) {
  if (fd_ < 0 || shut_.load(std::memory_order_acquire)) {
    throw TransportError("send on closed tcp channel");
  }
  // The 4-byte length header cannot represent more than 4 GiB - 1; a
  // plain cast would silently truncate and desynchronise the frame
  // stream for every later message.  Reject instead.
  const std::size_t limit = max_message_bytes_.load(std::memory_order_relaxed);
  if (body.size() > limit) {
    throw TransportError("tcp message of " + std::to_string(body.size()) +
                         " bytes exceeds the frame limit of " +
                         std::to_string(limit) + " bytes");
  }
  std::byte header[4];
  encode_header(header, body.size());
  sendv_all(fd_, std::span<const std::byte>(header, 4), body);
  bytes_sent_.fetch_add(body.size(), std::memory_order_relaxed);
}

void TcpChannel::send(std::span<const std::byte> message) {
  send_bytes(message);
}

void TcpChannel::send_frame(const FrameView& frame) {
  send_bytes(frame.bytes());  // straight out of the pooled slab
}

std::optional<FrameView> TcpChannel::queue_pop(double timeout_s) {
  auto finish = [this](std::optional<FrameView> view)
      -> std::optional<FrameView> {
    if (view) {
      const std::size_t before = rx_->queued_bytes.fetch_sub(
          view->size(), std::memory_order_acq_rel);
      if (rx_->paused.load(std::memory_order_acquire) &&
          before - view->size() < TcpEventLoop::kLowWaterBytes) {
        TcpEventLoop::global().rearm(fd_);
      }
      return view;
    }
    // Queue closed and drained: orderly EOF is nullopt, a transport
    // failure re-throws here on the consumer thread.
    const std::string error = rx_->take_error();
    if (!error.empty()) throw TransportError(error);
    return std::nullopt;
  };

  if (timeout_s <= 0.0) return finish(rx_->queue.pop());
  auto view = rx_->queue.pop_for(std::chrono::duration<double>(timeout_s));
  if (view) return finish(std::move(view));
  // pop_for returns nullopt both on timeout and on close; only the
  // former is a deadline expiry.
  if (auto late = rx_->queue.try_pop()) return finish(std::move(late));
  if (rx_->queue.closed()) return finish(std::nullopt);
  common::MetricsRegistry::global()
      .counter("datamgr.deadline_expiries")
      .add(1);
  throw TransportError("tcp receive timed out after " +
                       std::to_string(timeout_s) + "s");
}

std::optional<std::vector<std::byte>> TcpChannel::receive() {
  auto view = receive_frame();
  if (!view) return std::nullopt;
  return view->to_vector();
}

std::optional<std::vector<std::byte>> TcpChannel::receive_for(
    double timeout_s) {
  auto view = receive_frame_for(timeout_s);
  if (!view) return std::nullopt;
  return view->to_vector();
}

std::optional<FrameView> TcpChannel::receive_frame() { return queue_pop(0.0); }

std::optional<FrameView> TcpChannel::receive_frame_for(double timeout_s) {
  return queue_pop(timeout_s);
}

void TcpChannel::set_max_message_bytes(std::size_t limit) {
  common::expects(limit > 0 &&
                      limit <= std::numeric_limits<std::uint32_t>::max(),
                  "frame limit must fit the 4-byte length header");
  max_message_bytes_.store(limit, std::memory_order_relaxed);
  if (rx_) rx_->max_message_bytes.store(limit, std::memory_order_relaxed);
}

void TcpChannel::close() {
  // Shut down only: the peer (and our event loop) gets an orderly EOF
  // instead of racing a reused descriptor.  The fd itself is released
  // by the event loop (remove()).
  if (fd_ >= 0 && !shut_.exchange(true)) ::shutdown(fd_, SHUT_RDWR);
}

std::size_t TcpChannel::bytes_sent() const {
  return bytes_sent_.load(std::memory_order_relaxed);
}

TcpListener::TcpListener() : fd_(::socket(AF_INET, SOCK_STREAM, 0)) {
  if (fd_ < 0) fail("tcp socket");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // kernel-assigned
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    fail("tcp bind");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    fail("tcp getsockname");
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(fd_, 16) < 0) fail("tcp listen");
}

TcpListener::~TcpListener() { close(); }

std::unique_ptr<TcpChannel> TcpListener::accept() {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) throw TransportError("accept on closed listener");
  for (;;) {
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn >= 0) return std::make_unique<TcpChannel>(conn);
    if (errno == EINTR) continue;
    fail("tcp accept");
  }
}

std::unique_ptr<TcpChannel> TcpListener::accept_for(double timeout_s) {
  if (timeout_s <= 0.0) return accept();
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) throw TransportError("accept on closed listener");
  // Remaining time is recomputed from a monotonic deadline on every
  // pass: an EINTR (or a connection that vanishes from the backlog)
  // must not restart the full timeout, or a signal storm could stall
  // the caller indefinitely past its deadline.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  pollfd pfd{fd, POLLIN, 0};
  for (;;) {
    const auto left = deadline - std::chrono::steady_clock::now();
    const auto left_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(left).count();
    if (left_ms <= 0) {
      throw TransportError("tcp accept timed out after " +
                           std::to_string(timeout_s) + "s");
    }
    const int ready = ::poll(&pfd, 1, static_cast<int>(left_ms));
    if (ready < 0) {
      if (errno == EINTR) continue;
      fail("tcp accept poll");
    }
    if (ready == 0) {
      throw TransportError("tcp accept timed out after " +
                           std::to_string(timeout_s) + "s");
    }
    return accept();
  }
}

void TcpListener::close() {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    // close() alone does NOT wake a thread blocked in accept(2); only
    // shutdown() forces the in-flight call to return (with EINVAL).
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

std::unique_ptr<TcpChannel> tcp_connect(std::uint16_t port) {
  using namespace std::chrono_literals;
  for (int attempt = 0; attempt < 50; ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) fail("tcp socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      return std::make_unique<TcpChannel>(fd);
    }
    ::close(fd);
    if (errno != ECONNREFUSED) fail("tcp connect");
    std::this_thread::sleep_for(10ms);  // listener still coming up
  }
  throw TransportError("tcp connect: no listener after retries");
}

}  // namespace vdce::dm
