#include "datamgr/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <thread>

#include "common/error.hpp"
#include "common/metrics.hpp"

namespace vdce::dm {

using common::TransportError;

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw TransportError(what + ": " + std::strerror(errno));
}

void send_all(int fd, const std::byte* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      fail("tcp send");
    }
    off += static_cast<std::size_t>(w);
  }
}

/// Reads exactly n bytes; returns false on orderly EOF at a message
/// boundary (off == 0), throws on mid-message EOF or errors.  A
/// positive `timeout_s` arms SO_RCVTIMEO for the duration of the read;
/// hitting it throws TransportError.
bool recv_all(int fd, std::byte* data, std::size_t n,
              double timeout_s = 0.0) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = ::recv(fd, data + off, n - off, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (timeout_s > 0.0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        vdce::common::MetricsRegistry::global()
            .counter("datamgr.deadline_expiries")
            .add(1);
        throw TransportError("tcp receive timed out after " +
                             std::to_string(timeout_s) + "s");
      }
      fail("tcp recv");
    }
    if (r == 0) {
      if (off == 0) return false;
      throw TransportError("tcp peer closed mid-message");
    }
    off += static_cast<std::size_t>(r);
  }
  return true;
}

/// Sets (timeout_s > 0) or clears (timeout_s == 0) SO_RCVTIMEO.
void set_recv_deadline(int fd, double timeout_s) {
  timeval tv{};
  if (timeout_s > 0.0) {
    tv.tv_sec = static_cast<time_t>(timeout_s);
    tv.tv_usec = static_cast<suseconds_t>(
        (timeout_s - std::floor(timeout_s)) * 1e6);
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
  }
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

}  // namespace

TcpChannel::TcpChannel(int fd) : fd_(fd) {
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

TcpChannel::~TcpChannel() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

void TcpChannel::send(std::span<const std::byte> message) {
  if (fd_ < 0 || shut_) throw TransportError("send on closed tcp channel");
  // The 4-byte length header cannot represent more than 4 GiB - 1; a
  // plain cast would silently truncate and desynchronise the frame
  // stream for every later message.  Reject instead.
  if (message.size() > max_message_bytes_) {
    throw TransportError(
        "tcp message of " + std::to_string(message.size()) +
        " bytes exceeds the frame limit of " +
        std::to_string(max_message_bytes_) + " bytes");
  }
  std::byte header[4];
  const auto n = static_cast<std::uint32_t>(message.size());
  header[0] = std::byte{static_cast<std::uint8_t>(n >> 24)};
  header[1] = std::byte{static_cast<std::uint8_t>(n >> 16)};
  header[2] = std::byte{static_cast<std::uint8_t>(n >> 8)};
  header[3] = std::byte{static_cast<std::uint8_t>(n)};
  send_all(fd_, header, 4);
  send_all(fd_, message.data(), message.size());
  bytes_sent_ += message.size();
}

std::optional<std::vector<std::byte>> TcpChannel::receive() {
  return receive_impl(0.0);
}

std::optional<std::vector<std::byte>> TcpChannel::receive_for(
    double timeout_s) {
  return receive_impl(timeout_s);
}

std::optional<std::vector<std::byte>> TcpChannel::receive_impl(
    double timeout_s) {
  if (fd_ < 0) return std::nullopt;
  if (timeout_s > 0.0) set_recv_deadline(fd_, timeout_s);
  struct DeadlineReset {
    int fd;
    bool armed;
    ~DeadlineReset() {
      if (armed) set_recv_deadline(fd, 0.0);
    }
  } reset{fd_, timeout_s > 0.0};
  std::byte header[4];
  if (!recv_all(fd_, header, 4, timeout_s)) return std::nullopt;
  std::uint32_t n = 0;
  for (int i = 0; i < 4; ++i) {
    n = (n << 8) | static_cast<std::uint8_t>(header[i]);
  }
  // Bounds-check the decoded length before allocating: a corrupt or
  // hostile header must not provoke a giant allocation.
  if (n > max_message_bytes_) {
    throw TransportError(
        "tcp frame header claims " + std::to_string(n) +
        " bytes, above the frame limit of " +
        std::to_string(max_message_bytes_) + " bytes (corrupt stream?)");
  }
  std::vector<std::byte> body(n);
  if (n > 0 && !recv_all(fd_, body.data(), n, timeout_s)) {
    throw TransportError("tcp peer closed mid-message");
  }
  return body;
}

void TcpChannel::set_max_message_bytes(std::size_t limit) {
  common::expects(limit > 0 &&
                      limit <= std::numeric_limits<std::uint32_t>::max(),
                  "frame limit must fit the 4-byte length header");
  max_message_bytes_ = limit;
}

void TcpChannel::close() {
  // Shut down only: a peer thread blocked in recv() gets an orderly EOF
  // instead of racing a reused descriptor.  The fd itself is released
  // by the destructor.
  if (fd_ >= 0 && !shut_) {
    ::shutdown(fd_, SHUT_RDWR);
    shut_ = true;
  }
}

std::size_t TcpChannel::bytes_sent() const { return bytes_sent_; }

TcpListener::TcpListener() : fd_(::socket(AF_INET, SOCK_STREAM, 0)) {
  if (fd_ < 0) fail("tcp socket");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // kernel-assigned
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    fail("tcp bind");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    fail("tcp getsockname");
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(fd_, 16) < 0) fail("tcp listen");
}

TcpListener::~TcpListener() { close(); }

std::unique_ptr<TcpChannel> TcpListener::accept() {
  if (fd_ < 0) throw TransportError("accept on closed listener");
  for (;;) {
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn >= 0) return std::make_unique<TcpChannel>(conn);
    if (errno == EINTR) continue;
    fail("tcp accept");
  }
}

std::unique_ptr<TcpChannel> TcpListener::accept_for(double timeout_s) {
  if (timeout_s <= 0.0) return accept();
  if (fd_ < 0) throw TransportError("accept on closed listener");
  pollfd pfd{fd_, POLLIN, 0};
  const int timeout_ms = static_cast<int>(timeout_s * 1e3);
  for (;;) {
    const int ready = ::poll(&pfd, 1, timeout_ms > 0 ? timeout_ms : 1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      fail("tcp accept poll");
    }
    if (ready == 0) {
      throw TransportError("tcp accept timed out after " +
                           std::to_string(timeout_s) + "s");
    }
    return accept();
  }
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::unique_ptr<TcpChannel> tcp_connect(std::uint16_t port) {
  using namespace std::chrono_literals;
  for (int attempt = 0; attempt < 50; ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) fail("tcp socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      return std::make_unique<TcpChannel>(fd);
    }
    ::close(fd);
    if (errno != ECONNREFUSED) fail("tcp connect");
    std::this_thread::sleep_for(10ms);  // listener still coming up
  }
  throw TransportError("tcp connect: no listener after retries");
}

}  // namespace vdce::dm
