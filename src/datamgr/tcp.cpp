#include "datamgr/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <thread>

#include "common/error.hpp"
#include "common/metrics.hpp"

namespace vdce::dm {

using common::TransportError;

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw TransportError(what + ": " + std::strerror(errno));
}

void send_all(int fd, const std::byte* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      fail("tcp send");
    }
    off += static_cast<std::size_t>(w);
  }
}

/// One scatter/gather write of header + body (the writev path of D13:
/// sendmsg is vectored like writev but honours MSG_NOSIGNAL).  The fd
/// may be non-blocking; EAGAIN waits for POLLOUT and resumes.
void sendv_all(int fd, std::span<const std::byte> header,
               std::span<const std::byte> body) {
  iovec iov[2] = {
      {const_cast<std::byte*>(header.data()), header.size()},
      {const_cast<std::byte*>(body.data()), body.size()},
  };
  const int count = body.empty() ? 1 : 2;
  int idx = 0;
  while (idx < count) {
    msghdr msg{};
    msg.msg_iov = &iov[idx];
    msg.msg_iovlen = static_cast<std::size_t>(count - idx);
    const ssize_t w = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        pollfd pfd{fd, POLLOUT, 0};
        if (::poll(&pfd, 1, -1) < 0 && errno != EINTR) fail("tcp send poll");
        continue;
      }
      fail("tcp send");
    }
    std::size_t left = static_cast<std::size_t>(w);
    while (idx < count && left >= iov[idx].iov_len) {
      left -= iov[idx].iov_len;
      ++idx;
    }
    if (idx < count && left > 0) {
      iov[idx].iov_base = static_cast<std::byte*>(iov[idx].iov_base) + left;
      iov[idx].iov_len -= left;
    }
  }
}

/// Reads exactly n bytes; returns false on orderly EOF at a message
/// boundary (off == 0), throws on mid-message EOF or errors.  A
/// positive `timeout_s` arms SO_RCVTIMEO for the duration of the read;
/// hitting it throws TransportError.  Legacy copy mode only.
bool recv_all(int fd, std::byte* data, std::size_t n,
              double timeout_s = 0.0) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = ::recv(fd, data + off, n - off, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (timeout_s > 0.0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        vdce::common::MetricsRegistry::global()
            .counter("datamgr.deadline_expiries")
            .add(1);
        throw TransportError("tcp receive timed out after " +
                             std::to_string(timeout_s) + "s");
      }
      fail("tcp recv");
    }
    if (r == 0) {
      if (off == 0) return false;
      throw TransportError("tcp peer closed mid-message");
    }
    off += static_cast<std::size_t>(r);
  }
  return true;
}

/// Sets (timeout_s > 0) or clears (timeout_s == 0) SO_RCVTIMEO.
void set_recv_deadline(int fd, double timeout_s) {
  timeval tv{};
  if (timeout_s > 0.0) {
    tv.tv_sec = static_cast<time_t>(timeout_s);
    tv.tv_usec = static_cast<suseconds_t>(
        (timeout_s - std::floor(timeout_s)) * 1e6);
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
  }
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void encode_header(std::byte (&header)[4], std::size_t size) {
  const auto n = static_cast<std::uint32_t>(size);
  header[0] = std::byte{static_cast<std::uint8_t>(n >> 24)};
  header[1] = std::byte{static_cast<std::uint8_t>(n >> 16)};
  header[2] = std::byte{static_cast<std::uint8_t>(n >> 8)};
  header[3] = std::byte{static_cast<std::uint8_t>(n)};
}

}  // namespace

TcpChannel::TcpChannel(int fd) : fd_(fd), legacy_(legacy_copy_mode()) {
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (!legacy_) {
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    rx_ = std::make_shared<TcpRxState>(kDefaultMaxMessageBytes);
    TcpEventLoop::global().add(fd_, rx_);
  }
}

TcpChannel::~TcpChannel() {
  if (fd_ < 0) return;
  ::shutdown(fd_, SHUT_RDWR);
  if (legacy_) {
    ::close(fd_);
  } else {
    TcpEventLoop::global().remove(fd_);  // the loop owns and closes the fd
  }
  fd_ = -1;
}

void TcpChannel::send_bytes(std::span<const std::byte> body) {
  if (fd_ < 0 || shut_.load(std::memory_order_acquire)) {
    throw TransportError("send on closed tcp channel");
  }
  // The 4-byte length header cannot represent more than 4 GiB - 1; a
  // plain cast would silently truncate and desynchronise the frame
  // stream for every later message.  Reject instead.
  const std::size_t limit = max_message_bytes_.load(std::memory_order_relaxed);
  if (body.size() > limit) {
    throw TransportError("tcp message of " + std::to_string(body.size()) +
                         " bytes exceeds the frame limit of " +
                         std::to_string(limit) + " bytes");
  }
  std::byte header[4];
  encode_header(header, body.size());
  if (legacy_) {
    send_all(fd_, header, 4);
    send_all(fd_, body.data(), body.size());
  } else {
    sendv_all(fd_, std::span<const std::byte>(header, 4), body);
  }
  bytes_sent_.fetch_add(body.size(), std::memory_order_relaxed);
}

void TcpChannel::send(std::span<const std::byte> message) {
  send_bytes(message);
}

void TcpChannel::send_frame(const FrameView& frame) {
  send_bytes(frame.bytes());  // straight out of the pooled slab
}

std::optional<FrameView> TcpChannel::queue_pop(double timeout_s) {
  auto finish = [this](std::optional<FrameView> view)
      -> std::optional<FrameView> {
    if (view) {
      const std::size_t before = rx_->queued_bytes.fetch_sub(
          view->size(), std::memory_order_acq_rel);
      if (rx_->paused.load(std::memory_order_acquire) &&
          before - view->size() < TcpEventLoop::kLowWaterBytes) {
        TcpEventLoop::global().rearm(fd_);
      }
      return view;
    }
    // Queue closed and drained: orderly EOF is nullopt, a transport
    // failure re-throws here on the consumer thread.
    const std::string error = rx_->take_error();
    if (!error.empty()) throw TransportError(error);
    return std::nullopt;
  };

  if (timeout_s <= 0.0) return finish(rx_->queue.pop());
  auto view = rx_->queue.pop_for(std::chrono::duration<double>(timeout_s));
  if (view) return finish(std::move(view));
  // pop_for returns nullopt both on timeout and on close; only the
  // former is a deadline expiry.
  if (auto late = rx_->queue.try_pop()) return finish(std::move(late));
  if (rx_->queue.closed()) return finish(std::nullopt);
  common::MetricsRegistry::global()
      .counter("datamgr.deadline_expiries")
      .add(1);
  throw TransportError("tcp receive timed out after " +
                       std::to_string(timeout_s) + "s");
}

std::optional<FrameView> TcpChannel::legacy_receive(double timeout_s) {
  if (fd_ < 0) return std::nullopt;
  if (timeout_s > 0.0) set_recv_deadline(fd_, timeout_s);
  struct DeadlineReset {
    int fd;
    bool armed;
    ~DeadlineReset() {
      if (armed) set_recv_deadline(fd, 0.0);
    }
  } reset{fd_, timeout_s > 0.0};
  std::byte header[4];
  if (!recv_all(fd_, header, 4, timeout_s)) return std::nullopt;
  std::uint32_t n = 0;
  for (int i = 0; i < 4; ++i) {
    n = (n << 8) | static_cast<std::uint8_t>(header[i]);
  }
  const std::size_t limit = max_message_bytes_.load(std::memory_order_relaxed);
  if (n > limit) {
    throw TransportError("tcp frame header claims " + std::to_string(n) +
                         " bytes, above the frame limit of " +
                         std::to_string(limit) + " bytes (corrupt stream?)");
  }
  // A fresh heap buffer per message: the faithful pre-D13 cost model.
  Frame body = FramePool::global().allocate_bypass(n);
  if (n > 0 && !recv_all(fd_, body.data(), n, timeout_s)) {
    throw TransportError("tcp peer closed mid-message");
  }
  return body.view();
}

std::optional<std::vector<std::byte>> TcpChannel::receive() {
  auto view = receive_frame();
  if (!view) return std::nullopt;
  return view->to_vector();
}

std::optional<std::vector<std::byte>> TcpChannel::receive_for(
    double timeout_s) {
  auto view = receive_frame_for(timeout_s);
  if (!view) return std::nullopt;
  return view->to_vector();
}

std::optional<FrameView> TcpChannel::receive_frame() {
  return legacy_ ? legacy_receive(0.0) : queue_pop(0.0);
}

std::optional<FrameView> TcpChannel::receive_frame_for(double timeout_s) {
  return legacy_ ? legacy_receive(timeout_s) : queue_pop(timeout_s);
}

void TcpChannel::set_max_message_bytes(std::size_t limit) {
  common::expects(limit > 0 &&
                      limit <= std::numeric_limits<std::uint32_t>::max(),
                  "frame limit must fit the 4-byte length header");
  max_message_bytes_.store(limit, std::memory_order_relaxed);
  if (rx_) rx_->max_message_bytes.store(limit, std::memory_order_relaxed);
}

void TcpChannel::close() {
  // Shut down only: the peer (and our event loop) gets an orderly EOF
  // instead of racing a reused descriptor.  The fd itself is released
  // by the destructor (legacy) or the event loop (remove()).
  if (fd_ >= 0 && !shut_.exchange(true)) ::shutdown(fd_, SHUT_RDWR);
}

std::size_t TcpChannel::bytes_sent() const {
  return bytes_sent_.load(std::memory_order_relaxed);
}

TcpListener::TcpListener() : fd_(::socket(AF_INET, SOCK_STREAM, 0)) {
  if (fd_ < 0) fail("tcp socket");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // kernel-assigned
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    fail("tcp bind");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    fail("tcp getsockname");
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(fd_, 16) < 0) fail("tcp listen");
}

TcpListener::~TcpListener() { close(); }

std::unique_ptr<TcpChannel> TcpListener::accept() {
  if (fd_ < 0) throw TransportError("accept on closed listener");
  for (;;) {
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn >= 0) return std::make_unique<TcpChannel>(conn);
    if (errno == EINTR) continue;
    fail("tcp accept");
  }
}

std::unique_ptr<TcpChannel> TcpListener::accept_for(double timeout_s) {
  if (timeout_s <= 0.0) return accept();
  if (fd_ < 0) throw TransportError("accept on closed listener");
  pollfd pfd{fd_, POLLIN, 0};
  const int timeout_ms = static_cast<int>(timeout_s * 1e3);
  for (;;) {
    const int ready = ::poll(&pfd, 1, timeout_ms > 0 ? timeout_ms : 1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      fail("tcp accept poll");
    }
    if (ready == 0) {
      throw TransportError("tcp accept timed out after " +
                           std::to_string(timeout_s) + "s");
    }
    return accept();
  }
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::unique_ptr<TcpChannel> tcp_connect(std::uint16_t port) {
  using namespace std::chrono_literals;
  for (int attempt = 0; attempt < 50; ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) fail("tcp socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      return std::make_unique<TcpChannel>(fd);
    }
    ::close(fd);
    if (errno != ECONNREFUSED) fail("tcp connect");
    std::this_thread::sleep_for(10ms);  // listener still coming up
  }
  throw TransportError("tcp connect: no listener after retries");
}

}  // namespace vdce::dm
