#include "datamgr/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/error.hpp"

namespace vdce::dm {

using common::TransportError;

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw TransportError(what + ": " + std::strerror(errno));
}

void send_all(int fd, const std::byte* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      fail("tcp send");
    }
    off += static_cast<std::size_t>(w);
  }
}

/// Reads exactly n bytes; returns false on orderly EOF at a message
/// boundary (off == 0), throws on mid-message EOF or errors.
bool recv_all(int fd, std::byte* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = ::recv(fd, data + off, n - off, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      fail("tcp recv");
    }
    if (r == 0) {
      if (off == 0) return false;
      throw TransportError("tcp peer closed mid-message");
    }
    off += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

TcpChannel::TcpChannel(int fd) : fd_(fd) {
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

TcpChannel::~TcpChannel() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

void TcpChannel::send(std::span<const std::byte> message) {
  if (fd_ < 0 || shut_) throw TransportError("send on closed tcp channel");
  std::byte header[4];
  const auto n = static_cast<std::uint32_t>(message.size());
  header[0] = std::byte{static_cast<std::uint8_t>(n >> 24)};
  header[1] = std::byte{static_cast<std::uint8_t>(n >> 16)};
  header[2] = std::byte{static_cast<std::uint8_t>(n >> 8)};
  header[3] = std::byte{static_cast<std::uint8_t>(n)};
  send_all(fd_, header, 4);
  send_all(fd_, message.data(), message.size());
  bytes_sent_ += message.size();
}

std::optional<std::vector<std::byte>> TcpChannel::receive() {
  if (fd_ < 0) return std::nullopt;
  std::byte header[4];
  if (!recv_all(fd_, header, 4)) return std::nullopt;
  std::uint32_t n = 0;
  for (int i = 0; i < 4; ++i) {
    n = (n << 8) | static_cast<std::uint8_t>(header[i]);
  }
  std::vector<std::byte> body(n);
  if (n > 0 && !recv_all(fd_, body.data(), n)) {
    throw TransportError("tcp peer closed mid-message");
  }
  return body;
}

void TcpChannel::close() {
  // Shut down only: a peer thread blocked in recv() gets an orderly EOF
  // instead of racing a reused descriptor.  The fd itself is released
  // by the destructor.
  if (fd_ >= 0 && !shut_) {
    ::shutdown(fd_, SHUT_RDWR);
    shut_ = true;
  }
}

std::size_t TcpChannel::bytes_sent() const { return bytes_sent_; }

TcpListener::TcpListener() : fd_(::socket(AF_INET, SOCK_STREAM, 0)) {
  if (fd_ < 0) fail("tcp socket");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // kernel-assigned
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    fail("tcp bind");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    fail("tcp getsockname");
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(fd_, 16) < 0) fail("tcp listen");
}

TcpListener::~TcpListener() { close(); }

std::unique_ptr<TcpChannel> TcpListener::accept() {
  if (fd_ < 0) throw TransportError("accept on closed listener");
  for (;;) {
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn >= 0) return std::make_unique<TcpChannel>(conn);
    if (errno == EINTR) continue;
    fail("tcp accept");
  }
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::unique_ptr<TcpChannel> tcp_connect(std::uint16_t port) {
  using namespace std::chrono_literals;
  for (int attempt = 0; attempt < 50; ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) fail("tcp socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      return std::make_unique<TcpChannel>(fd);
    }
    ::close(fd);
    if (errno != ECONNREFUSED) fail("tcp connect");
    std::this_thread::sleep_for(10ms);  // listener still coming up
  }
  throw TransportError("tcp connect: no listener after retries");
}

}  // namespace vdce::dm
