#include "datamgr/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"
#include "common/metrics.hpp"

namespace vdce::dm {

using common::TransportError;

namespace {
std::atomic<bool> g_batch_publish{true};
}  // namespace

void TcpEventLoop::set_batch_publish(bool on) {
  g_batch_publish.store(on, std::memory_order_relaxed);
}

bool TcpEventLoop::batch_publish() {
  return g_batch_publish.load(std::memory_order_relaxed);
}

TcpEventLoop::TcpEventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    throw TransportError(std::string("epoll_create1: ") +
                         std::strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    throw TransportError(std::string("eventfd: ") + std::strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  thread_ = std::thread([this] { run(); });
}

TcpEventLoop::~TcpEventLoop() {
  stop();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  // Any still-registered fds belong to channels that never called
  // remove(); close them so a short-lived non-global loop cannot leak.
  for (auto& [fd, st] : channels_) ::close(fd);
}

void TcpEventLoop::stop() {
  if (!stop_.exchange(true)) wake();
  if (thread_.joinable()) thread_.join();
}

void TcpEventLoop::wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void TcpEventLoop::enqueue(Op op) {
  {
    std::lock_guard lock(mu_);
    ops_.push_back(std::move(op));
  }
  wake();
}

void TcpEventLoop::add(int fd, std::shared_ptr<TcpRxState> state) {
  registered_.fetch_add(1, std::memory_order_relaxed);
  enqueue(Op{Op::Kind::kAdd, fd, std::move(state)});
}

void TcpEventLoop::remove(int fd) {
  registered_.fetch_sub(1, std::memory_order_relaxed);
  enqueue(Op{Op::Kind::kRemove, fd, nullptr});
}

void TcpEventLoop::rearm(int fd) {
  enqueue(Op{Op::Kind::kRearm, fd, nullptr});
}

std::size_t TcpEventLoop::channel_count() const {
  return registered_.load(std::memory_order_relaxed);
}

void TcpEventLoop::arm(int fd, TcpRxState& st) {
  if (st.armed) return;
  epoll_event ev{};
  ev.events = EPOLLIN;  // level-triggered: unread bytes keep firing
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    fail_channel(fd, st, std::string("epoll add: ") + std::strerror(errno));
    return;
  }
  st.armed = true;
}

void TcpEventLoop::disarm(int fd, TcpRxState& st) {
  if (!st.armed) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  st.armed = false;
}

void TcpEventLoop::fail_channel(int fd, TcpRxState& st,
                                const std::string& what) {
  {
    std::lock_guard lock(st.error_mu);
    if (st.error.empty()) st.error = what;
  }
  finish_channel(fd, st);
}

void TcpEventLoop::finish_channel(int fd, TcpRxState& st) {
  if (st.done) return;
  st.done = true;
  if (!st.pending.empty()) {
    // Publish frames parsed before the EOF/error; if the receiver
    // already closed, drop them and undo the byte accounting.
    std::size_t bytes = 0;
    for (const FrameView& v : st.pending) bytes += v.size();
    if (st.queue.push_many(st.pending) == 0) {
      st.queued_bytes.fetch_sub(bytes, std::memory_order_release);
      st.pending.clear();
    }
  }
  st.body.reset();
  disarm(fd, st);
  // Close AFTER the error is recorded: consumers drain queued frames,
  // hit nullopt, then check for an error to re-throw.
  st.queue.close();
}

void TcpEventLoop::apply_ops() {
  std::vector<Op> ops;
  {
    std::lock_guard lock(mu_);
    ops.swap(ops_);
  }
  for (Op& op : ops) {
    switch (op.kind) {
      case Op::Kind::kAdd: {
        TcpRxState& st = *op.state;
        {
          std::lock_guard lock(mu_);
          channels_.emplace(op.fd, std::move(op.state));
        }
        arm(op.fd, st);
        break;
      }
      case Op::Kind::kRemove: {
        const auto it = channels_.find(op.fd);
        if (it != channels_.end()) {
          disarm(op.fd, *it->second);
          std::lock_guard lock(mu_);
          channels_.erase(op.fd);
        }
        ::close(op.fd);
        break;
      }
      case Op::Kind::kRearm: {
        const auto it = channels_.find(op.fd);
        if (it == channels_.end() || it->second->done) break;
        TcpRxState& st = *it->second;
        if (st.paused.load(std::memory_order_acquire)) {
          st.paused.store(false, std::memory_order_release);
          arm(op.fd, st);
        }
        break;
      }
    }
  }
}

bool TcpEventLoop::flush(int fd, TcpRxState& st) {
  if (st.pending.empty()) return true;
  std::size_t bytes = 0;
  for (const FrameView& v : st.pending) bytes += v.size();
  if (st.queue.push_many(st.pending) == 0) {
    // Receiver closed the channel: stop reading this connection.
    st.queued_bytes.fetch_sub(bytes, std::memory_order_release);
    st.pending.clear();
    finish_channel(fd, st);
    return false;
  }
  return true;
}

bool TcpEventLoop::deliver(int fd, TcpRxState& st) {
  FrameView view = st.body.view();
  st.body.reset();
  st.in_body = false;
  st.header_fill = 0;
  const std::size_t n = view.size();
  st.queued_bytes.fetch_add(n, std::memory_order_release);
  st.pending.push_back(std::move(view));
  if (st.queued_bytes.load(std::memory_order_acquire) >= kHighWaterBytes ||
      st.queue.size() + st.pending.size() >= kMaxQueuedFrames) {
    if (!flush(fd, st)) return false;
    st.paused.store(true, std::memory_order_release);
    disarm(fd, st);
    // Re-check: the consumer may have drained (and skipped its rearm,
    // seeing paused == false) between the flush above and the pause.
    if (st.queued_bytes.load(std::memory_order_acquire) < kLowWaterBytes &&
        st.queue.size() < kMaxQueuedFrames) {
      st.paused.store(false, std::memory_order_release);
      arm(fd, st);
    } else {
      return false;
    }
  } else if (!batch_publish() || st.pending.size() >= kFlushBatchFrames) {
    if (!flush(fd, st)) return false;
  }
  return true;
}

void TcpEventLoop::service(int fd, TcpRxState& st) {
  if (st.done || st.paused.load(std::memory_order_acquire)) return;
  // Parse until the socket runs dry, batching parsed frames in
  // st.pending; the flush below publishes the whole wakeup's worth
  // with one queue lock and one notify.
  for (;;) {
    if (!st.in_body) {
      const ssize_t r =
          ::recv(fd, st.header.data() + st.header_fill,
                 st.header.size() - st.header_fill, 0);
      if (r < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        fail_channel(fd, st, std::string("tcp recv: ") + std::strerror(errno));
        return;
      }
      if (r == 0) {
        if (st.header_fill == 0) {
          finish_channel(fd, st);  // orderly EOF at a frame boundary
        } else {
          fail_channel(fd, st, "tcp peer closed mid-message");
        }
        return;
      }
      st.header_fill += static_cast<std::size_t>(r);
      if (st.header_fill < st.header.size()) continue;
      std::uint32_t n = 0;
      for (const std::byte b : st.header) {
        n = (n << 8) | static_cast<std::uint8_t>(b);
      }
      // Bounds-check the decoded length before allocating: a corrupt or
      // hostile header must not provoke a giant allocation.
      const std::size_t limit =
          st.max_message_bytes.load(std::memory_order_relaxed);
      if (n > limit) {
        fail_channel(
            fd, st,
            "tcp frame header claims " + std::to_string(n) +
                " bytes, above the frame limit of " + std::to_string(limit) +
                " bytes (corrupt stream?)");
        return;
      }
      st.in_body = true;
      st.body_fill = 0;
      st.body = FramePool::global().allocate(n);
      if (n == 0 && !deliver(fd, st)) return;
    } else {
      const ssize_t r = ::recv(fd, st.body.data() + st.body_fill,
                               st.body.size() - st.body_fill, 0);
      if (r < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        fail_channel(fd, st, std::string("tcp recv: ") + std::strerror(errno));
        return;
      }
      if (r == 0) {
        fail_channel(fd, st, "tcp peer closed mid-message");
        return;
      }
      st.body_fill += static_cast<std::size_t>(r);
      if (st.body_fill == st.body.size() && !deliver(fd, st)) return;
    }
  }
  flush(fd, st);
}

void TcpEventLoop::run() {
  std::array<epoll_event, 64> events{};
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // epoll fd gone: only happens at teardown
    }
    // Service the current batch BEFORE applying ops: an op may close an
    // fd whose number the kernel could reuse, and a stale event must
    // never be routed to a newcomer's parse state.
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drain = 0;
        [[maybe_unused]] ssize_t r = ::read(wake_fd_, &drain, sizeof(drain));
        continue;
      }
      const auto it = channels_.find(fd);
      if (it != channels_.end()) service(fd, *it->second);
    }
    apply_ops();
  }
}

TcpEventLoop& TcpEventLoop::global() {
  static TcpEventLoop* loop = [] {
    // Force the registry and pool into existence first: their function-
    // local statics are destroyed after this atexit handler runs, so
    // the loop thread never touches a dead registry.
    (void)common::MetricsRegistry::global();
    (void)FramePool::global();
    auto* l = new TcpEventLoop;  // leaked on purpose
    std::atexit([] { TcpEventLoop::global().stop(); });
    return l;
  }();
  return *loop;
}

}  // namespace vdce::dm
