// The Data Manager of one executing task.
//
// "for a thread-based programming environment, the Data Manager consists
//  of three threads that are initiated by the communication proxy: send
//  thread, receive thread, and compute thread.  After the communication
//  channel is established, the send and receive threads are activated
//  for data transfer and the compute thread performs the task
//  execution."  (Section 2.3.2)
//
// Lifecycle (Figure 7): the Application Controller activates the Data
// Manager (construct), the Data Manager sets up its channels via the
// broker (setup(), which completes the paper's setup/acknowledgment
// step), and on the execution startup signal run() spawns one receive
// thread per in-edge, the compute thread, and one send thread per
// out-edge.
#pragma once

#include <vector>

#include "common/ids.hpp"
#include "datamgr/broker.hpp"
#include "datamgr/mplib.hpp"
#include "datamgr/services.hpp"
#include "tasklib/registry.hpp"

namespace vdce::dm {

/// A task's position in the dataflow: which links it consumes and
/// produces.
struct TaskWiring {
  AppId app;
  TaskId task;
  /// Parent task ids in input-port order (FlowGraph::ordered_parents);
  /// input payloads are delivered to the task function in this order.
  std::vector<TaskId> parents;
  /// Child task ids (the output payload is replicated to each).
  std::vector<TaskId> children;
};

/// Statistics of one task execution, for the visualization services.
struct ExecutionStats {
  std::size_t bytes_received = 0;
  std::size_t bytes_sent = 0;
  std::size_t messages_received = 0;
  std::size_t messages_sent = 0;
  /// Sends that shared one pooled frame across links (D13 fast path).
  std::size_t zero_copy_frames = 0;
};

/// Per-task Data Manager.
class DataManager {
 public:
  /// `broker` must outlive the manager.
  DataManager(ChannelBroker& broker, MpLibrary library = MpLibrary::kP4);

  /// Channel setup (Figure 7 steps 2-3): registers the receive endpoint
  /// of every in-edge, then connects the send endpoint of every
  /// out-edge.  Returning normally is the acknowledgment the
  /// Application Controller forwards to the Site Manager.
  ///
  /// Deadlock-freedom: all receive endpoints are registered before any
  /// send endpoint blocks, so concurrent setup of all tasks of an
  /// application always completes.
  void setup(const TaskWiring& wiring);

  /// Executes the task (Figure 7 step 5): receive threads collect one
  /// payload per parent, the compute thread runs the library function,
  /// send threads push the result to every child.  `console`, when
  /// given, is honoured at the pre- and post-compute checkpoints.
  /// Returns the task's output payload.
  [[nodiscard]] tasklib::Payload run(const tasklib::TaskRegistry& registry,
                                     const std::string& library_task,
                                     const tasklib::TaskContext& ctx,
                                     ConsoleService* console = nullptr);

  /// Closes every channel (idempotent).
  void teardown();

  /// Arms a receive-side timeout for run(): a peer that neither
  /// delivers nor closes within `seconds` fails the receive with a
  /// TransportError instead of hanging this machine thread forever
  /// (the Control Manager's retry loop then re-places the task).
  /// `seconds <= 0` (the default) blocks indefinitely.
  void set_recv_timeout(double seconds) { recv_timeout_s_ = seconds; }
  [[nodiscard]] double recv_timeout() const { return recv_timeout_s_; }

  [[nodiscard]] const ExecutionStats& stats() const { return stats_; }
  [[nodiscard]] MpLibrary library() const { return library_; }

  /// The wire image (type tag + body) of the last run()'s output as a
  /// pooled frame view — the very slab the send threads shipped, so a
  /// checkpoint capture of it costs a refcount bump, not a copy.
  /// Invalid before run() completes.
  [[nodiscard]] const FrameView& output_frame() const {
    return output_frame_;
  }

 private:
  ChannelBroker* broker_;
  MpLibrary library_;
  TaskWiring wiring_;
  bool is_set_up_ = false;
  double recv_timeout_s_ = 0.0;
  std::vector<MessageEndpoint> inputs_;   // one per parent, same order
  std::vector<MessageEndpoint> outputs_;  // one per child, same order
  ExecutionStats stats_;
  FrameView output_frame_;
};

}  // namespace vdce::dm
