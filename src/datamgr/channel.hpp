// Point-to-point communication channels.
//
// "The VDCE Data Manager is a socket-based, point-to-point communication
//  system for inter-task communications."  (Section 2.3.2)
//
// Channel is the abstraction both transports implement: the in-process
// transport (deterministic, used by tests and the simulator) and the TCP
// loopback transport (real sockets, the paper's "any machine that
// supports socket programming can be part of VDCE").  Messages are
// framed: send() delivers a whole message or throws.
//
// Two parallel method families exist (design D13):
//   * vector-based send/receive -- the original copying interface, kept
//     for callers that want an owned buffer;
//   * frame-based send_frame/receive_frame -- the zero-copy interface.
//     A FrameView pins a pooled slab, so passing one through a channel
//     shares the producer's single allocation with every consumer.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "datamgr/frame.hpp"

namespace vdce::dm {

/// One directed message channel.  Thread-safe for one sender thread and
/// one receiver thread operating concurrently.
class Channel {
 public:
  virtual ~Channel() = default;

  /// Sends one framed message; throws TransportError if the channel is
  /// closed.
  virtual void send(std::span<const std::byte> message) = 0;

  /// Zero-copy send: the channel forwards the view (bumping its slab
  /// refcount) instead of copying bytes where the transport allows.
  /// The base default copies via send() for third-party channels.
  virtual void send_frame(const FrameView& frame);

  /// Blocks for the next message; nullopt once the channel is closed
  /// and drained.
  [[nodiscard]] virtual std::optional<std::vector<std::byte>> receive() = 0;

  /// Like receive(), but gives up after `timeout_s` seconds, throwing
  /// TransportError — the guard that keeps a machine thread from
  /// hanging forever on a dead peer.  Pure virtual: a transport that
  /// silently ignored the deadline would defeat the guard, so every
  /// channel must implement it.  `timeout_s <= 0` blocks.
  [[nodiscard]] virtual std::optional<std::vector<std::byte>> receive_for(
      double timeout_s) = 0;

  /// Blocks for the next message as a pooled frame view; nullopt once
  /// the channel is closed and drained.  The base default copies the
  /// receive() result into a pooled frame.
  [[nodiscard]] virtual std::optional<FrameView> receive_frame();

  /// Frame-view variant of receive_for(); same deadline contract.
  [[nodiscard]] virtual std::optional<FrameView> receive_frame_for(
      double timeout_s);

  /// Closes the channel; pending receives drain, then return nullopt.
  virtual void close() = 0;

  /// Total bytes sent so far (for the visualization services).
  [[nodiscard]] virtual std::size_t bytes_sent() const = 0;
};

/// A connected pair of unidirectional in-process channels: writing to
/// `sender` makes messages appear at `receiver`.
struct InProcPair {
  std::shared_ptr<Channel> sender;
  std::shared_ptr<Channel> receiver;
};

/// Creates a connected in-process channel pair backed by a message
/// queue of frame views (zero-copy end to end).
[[nodiscard]] InProcPair make_inproc_pair();

}  // namespace vdce::dm
