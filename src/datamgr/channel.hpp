// Point-to-point communication channels.
//
// "The VDCE Data Manager is a socket-based, point-to-point communication
//  system for inter-task communications."  (Section 2.3.2)
//
// Channel is the abstraction both transports implement: the in-process
// transport (deterministic, used by tests and the simulator) and the TCP
// loopback transport (real sockets, the paper's "any machine that
// supports socket programming can be part of VDCE").  Messages are
// framed: send() delivers a whole message or throws.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <vector>

namespace vdce::dm {

/// One directed message channel.  Thread-safe for one sender thread and
/// one receiver thread operating concurrently.
class Channel {
 public:
  virtual ~Channel() = default;

  /// Sends one framed message; throws TransportError if the channel is
  /// closed.
  virtual void send(std::span<const std::byte> message) = 0;

  /// Blocks for the next message; nullopt once the channel is closed
  /// and drained.
  [[nodiscard]] virtual std::optional<std::vector<std::byte>> receive() = 0;

  /// Like receive(), but gives up after `timeout_s` seconds, throwing
  /// TransportError — the guard that keeps a machine thread from
  /// hanging forever on a dead peer.  Both shipped transports (the
  /// in-process queue and the TCP loopback) honour the timeout; the
  /// base default falls back to the blocking receive() for third-party
  /// channels that have not implemented it.  `timeout_s <= 0` blocks.
  [[nodiscard]] virtual std::optional<std::vector<std::byte>> receive_for(
      double timeout_s) {
    (void)timeout_s;
    return receive();
  }

  /// Closes the channel; pending receives drain, then return nullopt.
  virtual void close() = 0;

  /// Total bytes sent so far (for the visualization services).
  [[nodiscard]] virtual std::size_t bytes_sent() const = 0;
};

/// A connected pair of unidirectional in-process channels: writing to
/// `sender` makes messages appear at `receiver`.
struct InProcPair {
  std::shared_ptr<Channel> sender;
  std::shared_ptr<Channel> receiver;
};

/// Creates a connected in-process channel pair backed by a message
/// queue.
[[nodiscard]] InProcPair make_inproc_pair();

}  // namespace vdce::dm
