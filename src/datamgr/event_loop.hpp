// Single-threaded epoll event loop for all TCP channel receives
// (design D13).
//
// Before D13 every TcpChannel receive parked one kernel thread in a
// blocking recv(); a run with T tasks and E edges burned E threads just
// waiting for bytes.  The event loop inverts that: one thread owns an
// epoll set over every registered channel fd, parses the 4-byte
// length-prefixed frames into pooled Frames, and pushes FrameViews onto
// a per-channel queue.  Channel::receive()/receive_for() become
// condition-variable waits on that queue, so the Channel contract
// (deadlines, orderly EOF as nullopt, errors as TransportError,
// clear_app abort) is preserved with zero semantic change upstream.
//
// Threading rules:
//   * All epoll registration changes and all parse-state mutation
//     happen on the loop thread.  Other threads communicate through an
//     op queue plus an eventfd wakeup.
//   * The loop owns every registered fd and closes it when the channel
//     asks for removal.
//   * Backpressure: a connection that outruns its consumer is paused
//     (dropped from the epoll set) at a byte high-water mark and
//     re-armed by the consumer once it drains below the low-water mark,
//     so a slow consumer bounds memory instead of ballooning its queue.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/queue.hpp"
#include "datamgr/frame.hpp"

namespace vdce::dm {

/// Per-channel receive state shared between a TcpChannel (consumer
/// side) and the TcpEventLoop (producer side).
struct TcpRxState {
  explicit TcpRxState(std::size_t max_bytes) : max_message_bytes(max_bytes) {}

  // -- consumer-facing (thread-safe) -------------------------------------
  common::MessageQueue<FrameView> queue;  // loop pushes, channel pops
  std::atomic<std::size_t> max_message_bytes;
  std::atomic<std::size_t> queued_bytes{0};
  std::atomic<bool> paused{false};

  /// Set (under error_mu) before queue.close() on a transport failure;
  /// the consumer re-throws it once the queue drains.
  std::mutex error_mu;
  std::string error;

  [[nodiscard]] std::string take_error() {
    std::lock_guard lock(error_mu);
    return error;
  }

  // -- loop-private parse state (loop thread only) -----------------------
  std::array<std::byte, 4> header{};
  std::size_t header_fill = 0;
  bool in_body = false;
  Frame body;
  std::size_t body_fill = 0;
  bool armed = false;  // fd currently in the epoll interest set
  bool done = false;   // EOF or error: never read this fd again
  /// Frames parsed this wakeup but not yet published to the queue;
  /// flushed as one push_many (single lock + notify) when the socket
  /// runs dry or the batch budget is hit.
  std::vector<FrameView> pending;
};

/// The epoll loop servicing every TcpChannel fd.  One instance (and one
/// thread) per process; see global().
class TcpEventLoop {
 public:
  /// Pause reading a connection once this many bytes sit unconsumed in
  /// its queue; resume once the consumer drains below the low water.
  static constexpr std::size_t kHighWaterBytes = std::size_t{8} << 20;
  static constexpr std::size_t kLowWaterBytes = std::size_t{1} << 20;
  /// Frame-count backstop for floods of tiny messages.
  static constexpr std::size_t kMaxQueuedFrames = 4096;
  /// Largest pending batch before a mid-service flush: bounds how long
  /// a blocked consumer waits while the loop keeps parsing.
  static constexpr std::size_t kFlushBatchFrames = 64;

  TcpEventLoop();
  ~TcpEventLoop();
  TcpEventLoop(const TcpEventLoop&) = delete;
  TcpEventLoop& operator=(const TcpEventLoop&) = delete;

  /// Registers a connected fd (made non-blocking by the caller).  The
  /// loop takes ownership: the fd is closed by remove(), not by the
  /// caller.
  void add(int fd, std::shared_ptr<TcpRxState> state);

  /// Unregisters the fd and closes it (on the loop thread).
  void remove(int fd);

  /// Consumer-side request to resume a connection paused by
  /// backpressure.  Harmless if the fd is unpaused, done, or gone.
  void rearm(int fd);

  /// Logically registered connections: counted at add()/remove() time,
  /// not when the loop thread applies the op, so callers observe their
  /// own registrations immediately (test support).
  [[nodiscard]] std::size_t channel_count() const;

  /// Stops and joins the loop thread.  Called automatically at process
  /// exit for the global loop.
  void stop();

  /// The process-wide loop.  Intentionally leaked; an atexit handler
  /// joins its thread before static destructors tear down the metrics
  /// registry and frame pool it uses.
  [[nodiscard]] static TcpEventLoop& global();

  /// Process-wide toggle for batched frame publication (on by default).
  /// Off, every parsed frame is published with its own lock + notify —
  /// the pre-batching behaviour kept for the bench_datamgr before/after
  /// sweep.
  static void set_batch_publish(bool on);
  [[nodiscard]] static bool batch_publish();

 private:
  struct Op {
    enum class Kind : std::uint8_t { kAdd, kRemove, kRearm } kind;
    int fd = -1;
    std::shared_ptr<TcpRxState> state;
  };

  void run();
  void apply_ops();
  void service(int fd, TcpRxState& st);
  bool deliver(int fd, TcpRxState& st);
  bool flush(int fd, TcpRxState& st);
  void fail_channel(int fd, TcpRxState& st, const std::string& what);
  void finish_channel(int fd, TcpRxState& st);
  void arm(int fd, TcpRxState& st);
  void disarm(int fd, TcpRxState& st);
  void enqueue(Op op);
  void wake();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};

  mutable std::mutex mu_;  // guards ops_ and channels_ mutations
  std::vector<Op> ops_;
  // add()/remove() are exactly paired per channel (TcpChannel ctor and
  // dtor), so this is the logical registration count -- channels_ only
  // catches up once the loop thread applies the queued ops.
  std::atomic<std::size_t> registered_{0};
  // Written only by the loop thread (under mu_ so channel_count() can
  // read from other threads); read lock-free by the loop thread.
  std::unordered_map<int, std::shared_ptr<TcpRxState>> channels_;

  std::thread thread_;
};

}  // namespace vdce::dm
