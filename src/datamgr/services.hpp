// User-requested runtime services.
//
// "The VDCE Runtime System provides several user-requested services such
//  as I/O service, console service, and visualization service.  I/O
//  Service provides either file I/O or URL I/O for the inputs of the
//  application tasks.  The user can suspend and restart the application
//  execution with the console service."  (Section 2.3.2)
//
// URL I/O maps url: specs onto a configured document root (the web
// substitution of DESIGN.md §2).  Visualization lives in src/viz; the
// Data Manager emits its events through viz::EventLog.
#pragma once

#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <string>

#include "tasklib/payload.hpp"

namespace vdce::dm {

/// File/URL input and output for application tasks.
class IoService {
 public:
  /// `doc_root` backs url: specs ("url:data/a.mat" reads
  /// <doc_root>/data/a.mat).
  explicit IoService(std::filesystem::path doc_root = ".");

  /// Reads a payload from an input spec: "file:<path>" or "url:<path>".
  /// Throws ParseError on a malformed spec, NotFoundError on a missing
  /// file.
  [[nodiscard]] tasklib::Payload read_input(const std::string& spec) const;

  /// Writes a payload's wire image to a file (outputs are always local
  /// files).
  void write_output(const std::filesystem::path& path,
                    const tasklib::Payload& payload) const;

  [[nodiscard]] const std::filesystem::path& doc_root() const {
    return doc_root_;
  }

 private:
  [[nodiscard]] std::filesystem::path resolve(const std::string& spec) const;

  std::filesystem::path doc_root_;
};

/// Suspend / restart / abort control for a running application.
///
/// Compute threads call checkpoint() between phases: it blocks while the
/// console holds the application suspended and throws StateError once
/// aborted.  Thread-safe.
class ConsoleService {
 public:
  void suspend();
  void resume();
  void abort();

  /// True while suspended.
  [[nodiscard]] bool suspended() const;
  /// True once aborted.
  [[nodiscard]] bool aborted() const;

  /// Blocks while suspended; throws StateError after abort().
  void checkpoint();

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool suspended_ = false;
  bool aborted_ = false;
};

}  // namespace vdce::dm
