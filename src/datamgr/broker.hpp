// Channel rendezvous broker.
//
// Figure 7 of the paper: the Application Controller activates the Data
// Manager, which "activates the communication proxy and sends the
// resource allocation information, including the socket number, IP
// address for target machine, etc., that will be used for communication
// channel setup."  The broker is that allocation-information exchange:
// the consuming side of every AFG link registers its endpoint (a queue,
// or a listening TCP socket whose kernel-assigned port is the paper's
// "socket number"), and the producing side looks the endpoint up and
// connects.
#pragma once

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>

#include "common/clock.hpp"
#include "common/ids.hpp"
#include "datamgr/channel.hpp"

namespace vdce::dm {

using common::AppId;
using common::TaskId;

/// Which transport carries inter-task messages.
enum class TransportKind : std::uint8_t {
  kInProcess,  // deterministic queue pairs
  kTcp,        // real loopback sockets
};

/// Identity of one AFG link instance within one application run.
struct LinkKey {
  AppId app;
  TaskId from;
  TaskId to;

  friend auto operator<=>(const LinkKey&, const LinkKey&) = default;
};

/// Thread-safe channel rendezvous.  The consumer calls open_receive
/// (non-blocking); the producer calls open_send, which waits until the
/// consumer has registered, then connects.
class ChannelBroker {
 public:
  explicit ChannelBroker(TransportKind kind) : kind_(kind) {}

  [[nodiscard]] TransportKind kind() const { return kind_; }

  /// Registers the consuming end of a link and returns its receive
  /// channel.  Throws StateError if the link is already registered.
  [[nodiscard]] std::shared_ptr<Channel> open_receive(const LinkKey& key);

  /// Connects the producing end; blocks up to `timeout_s` for the
  /// consumer to register.  Throws TransportError on timeout, or
  /// promptly when clear_app(key.app) runs while this call is waiting
  /// (the registration it is waiting for belongs to a torn-down run and
  /// will never arrive).
  [[nodiscard]] std::shared_ptr<Channel> open_send(const LinkKey& key,
                                                   common::Duration timeout_s =
                                                       10.0);

  /// Drops all registrations of one application (run finished or being
  /// recovered).  Idempotent, and safe to call concurrently with feeder
  /// threads still draining: any open_send blocked on one of the
  /// dropped links aborts promptly with TransportError instead of
  /// sleeping out its full timeout (and possibly pairing with the NEXT
  /// recovery round's registration for the same key).
  void clear_app(AppId app);

 private:
  struct Registration {
    // In-process: the pre-made sending end.
    std::shared_ptr<Channel> inproc_sender;
    // TCP: the advertised port.
    std::uint16_t port = 0;
  };

  TransportKind kind_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<LinkKey, Registration> registrations_;
  /// Bumped by every clear_app(app): an open_send that entered before
  /// the clear observes the bump and aborts rather than adopting a
  /// later run's registration.  Bounded by the number of distinct apps
  /// a broker ever carries (one engine run owns one broker).
  std::map<AppId, std::uint64_t> clear_generation_;
};

}  // namespace vdce::dm
