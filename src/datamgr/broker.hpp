// Channel rendezvous broker.
//
// Figure 7 of the paper: the Application Controller activates the Data
// Manager, which "activates the communication proxy and sends the
// resource allocation information, including the socket number, IP
// address for target machine, etc., that will be used for communication
// channel setup."  The broker is that allocation-information exchange:
// the consuming side of every AFG link registers its endpoint (a queue,
// or a listening TCP socket whose kernel-assigned port is the paper's
// "socket number"), and the producing side looks the endpoint up and
// connects.
#pragma once

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>

#include "common/clock.hpp"
#include "common/ids.hpp"
#include "datamgr/channel.hpp"
#include "datamgr/ring_channel.hpp"

namespace vdce::dm {

using common::AppId;
using common::TaskId;

/// Which transport carries inter-task messages.
enum class TransportKind : std::uint8_t {
  kInProcess,  // deterministic queue pairs
  kTcp,        // real loopback sockets
};

/// Identity of one AFG link instance within one application run.
struct LinkKey {
  AppId app;
  TaskId from;
  TaskId to;

  friend auto operator<=>(const LinkKey&, const LinkKey&) = default;
};

/// Thread-safe channel rendezvous.  The consumer calls open_receive
/// (non-blocking); the producer calls open_send, which waits until the
/// consumer has registered, then connects.
class ChannelBroker {
 public:
  explicit ChannelBroker(TransportKind kind) : kind_(kind) {}

  [[nodiscard]] TransportKind kind() const { return kind_; }

  /// Registers the consuming end of a link and returns its receive
  /// channel.  Throws StateError if the link is already registered.
  [[nodiscard]] std::shared_ptr<Channel> open_receive(const LinkKey& key);

  /// Connects the producing end; blocks up to `timeout_s` for the
  /// consumer to register.  Throws TransportError on timeout, or
  /// promptly when clear_app(key.app) runs while this call is waiting
  /// (the registration it is waiting for belongs to a torn-down run and
  /// will never arrive).
  [[nodiscard]] std::shared_ptr<Channel> open_send(const LinkKey& key,
                                                   common::Duration timeout_s =
                                                       10.0);

  /// Registers the consuming end of a STREAMING link: a bounded
  /// RingChannel of `capacity` slots (D16).  Same rendezvous contract
  /// as open_receive — register first, then producers find it — but
  /// both ends share the one ring, so streaming links are in-process
  /// regardless of the broker's transport kind.  Throws StateError if
  /// the link is already registered.
  [[nodiscard]] std::shared_ptr<RingChannel> open_stream_receive(
      const LinkKey& key, std::size_t capacity);

  /// Connects a producing end of a streaming link; blocks up to
  /// `timeout_s` for the consumer's open_stream_receive, with the same
  /// clear_app abort as open_send.  Unlike open_send, MANY producers
  /// may open the same link (fan-in): each successful call attaches one
  /// producer, and the ring reaches end-of-stream when each has called
  /// close_send().  Throws StateError if the key was registered as a
  /// batch (non-streaming) link.
  [[nodiscard]] std::shared_ptr<RingChannel> open_stream_send(
      const LinkKey& key, common::Duration timeout_s = 10.0);

  /// Drops all registrations of one application (run finished or being
  /// recovered).  Idempotent, and safe to call concurrently with feeder
  /// threads still draining: any open_send blocked on one of the
  /// dropped links aborts promptly with TransportError instead of
  /// sleeping out its full timeout (and possibly pairing with the NEXT
  /// recovery round's registration for the same key).  Streaming links
  /// are aborted: queued frames drop and every producer parked on a
  /// full ring — and every consumer parked on an empty one — wakes
  /// with TransportError.
  void clear_app(AppId app);

 private:
  struct Registration {
    // In-process: the pre-made sending end.
    std::shared_ptr<Channel> inproc_sender;
    // TCP: the advertised port.
    std::uint16_t port = 0;
    // Streaming: the shared bounded ring (null for batch links).
    std::shared_ptr<RingChannel> ring;
    // The ring is created with one attached producer; the first
    // open_stream_send claims that slot, later ones add_producer().
    bool ring_claimed = false;
  };

  TransportKind kind_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<LinkKey, Registration> registrations_;
  /// Bumped by every clear_app(app): an open_send that entered before
  /// the clear observes the bump and aborts rather than adopting a
  /// later run's registration.  Bounded by the number of distinct apps
  /// a broker ever carries (one engine run owns one broker).
  std::map<AppId, std::uint64_t> clear_generation_;
};

}  // namespace vdce::dm
