#include "datamgr/broker.hpp"

#include <chrono>

#include "common/error.hpp"
#include "datamgr/tcp.hpp"

namespace vdce::dm {

namespace {

/// Receiving channel that performs the TCP accept lazily on the first
/// receive() call (the accept happens on the receive thread, matching
/// the proxy handshake of Figure 7).
class LazyAcceptChannel final : public Channel {
 public:
  explicit LazyAcceptChannel(std::unique_ptr<TcpListener> listener)
      : listener_(std::move(listener)) {}

  void send(std::span<const std::byte>) override {
    throw common::TransportError("send on a receive-only channel");
  }

  void send_frame(const FrameView&) override {
    throw common::TransportError("send on a receive-only channel");
  }

  std::optional<std::vector<std::byte>> receive() override {
    ensure_accepted(0.0);
    return inner_ ? inner_->receive() : std::nullopt;
  }

  std::optional<std::vector<std::byte>> receive_for(
      double timeout_s) override {
    ensure_accepted(timeout_s);
    return inner_ ? inner_->receive_for(timeout_s) : std::nullopt;
  }

  std::optional<FrameView> receive_frame() override {
    ensure_accepted(0.0);
    return inner_ ? inner_->receive_frame() : std::nullopt;
  }

  std::optional<FrameView> receive_frame_for(double timeout_s) override {
    ensure_accepted(timeout_s);
    return inner_ ? inner_->receive_frame_for(timeout_s) : std::nullopt;
  }

  void close() override {
    std::lock_guard lk(mu_);
    closed_ = true;
    if (listener_) listener_->close();
    if (inner_) inner_->close();
  }

  std::size_t bytes_sent() const override { return 0; }

 private:
  void ensure_accepted(double timeout_s) {
    std::lock_guard lk(mu_);
    if (inner_ || !listener_) return;
    try {
      inner_ = timeout_s > 0.0 ? listener_->accept_for(timeout_s)
                               : listener_->accept();
    } catch (const common::TransportError&) {
      listener_.reset();
      // Listener was closed before a producer connected: orderly EOF.
      // An accept timeout, by contrast, is a real receive failure.
      if (closed_) return;
      throw;
    }
    listener_.reset();
  }

  std::mutex mu_;
  bool closed_ = false;
  std::unique_ptr<TcpListener> listener_;
  std::unique_ptr<TcpChannel> inner_;
};

}  // namespace

std::shared_ptr<Channel> ChannelBroker::open_receive(const LinkKey& key) {
  std::lock_guard lk(mu_);
  if (registrations_.contains(key)) {
    throw common::StateError("link already registered with the broker");
  }
  std::shared_ptr<Channel> receiver;
  Registration reg;
  if (kind_ == TransportKind::kInProcess) {
    InProcPair pair = make_inproc_pair();
    reg.inproc_sender = std::move(pair.sender);
    receiver = std::move(pair.receiver);
  } else {
    auto listener = std::make_unique<TcpListener>();
    reg.port = listener->port();
    receiver = std::make_shared<LazyAcceptChannel>(std::move(listener));
  }
  registrations_.emplace(key, std::move(reg));
  cv_.notify_all();
  return receiver;
}

std::shared_ptr<Channel> ChannelBroker::open_send(const LinkKey& key,
                                                  common::Duration timeout_s) {
  std::unique_lock lk(mu_);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  const std::uint64_t entry_generation = [&] {
    const auto it = clear_generation_.find(key.app);
    return it == clear_generation_.end() ? 0 : it->second;
  }();
  bool cleared = false;
  if (!cv_.wait_until(lk, deadline, [&] {
        const auto it = clear_generation_.find(key.app);
        cleared =
            it != clear_generation_.end() && it->second != entry_generation;
        return cleared || registrations_.contains(key);
      })) {
    throw common::TransportError(
        "channel setup timed out waiting for the consumer");
  }
  if (cleared) {
    // clear_app(key.app) ran while we waited: the consumer this call
    // was waiting for belongs to a torn-down run.  Abort instead of
    // adopting a later recovery round's registration for the same key.
    throw common::TransportError(
        "channel setup aborted: application cleared from the broker");
  }
  Registration& reg = registrations_.at(key);
  if (kind_ == TransportKind::kInProcess) {
    if (!reg.inproc_sender) {
      throw common::StateError("link sender already claimed");
    }
    return std::move(reg.inproc_sender);
  }
  const std::uint16_t port = reg.port;
  lk.unlock();  // connect outside the lock; tcp_connect may retry/sleep
  return tcp_connect(port);
}

std::shared_ptr<RingChannel> ChannelBroker::open_stream_receive(
    const LinkKey& key, std::size_t capacity) {
  std::lock_guard lk(mu_);
  if (registrations_.contains(key)) {
    throw common::StateError("link already registered with the broker");
  }
  Registration reg;
  reg.ring = std::make_shared<RingChannel>(capacity);
  auto ring = reg.ring;
  registrations_.emplace(key, std::move(reg));
  cv_.notify_all();
  return ring;
}

std::shared_ptr<RingChannel> ChannelBroker::open_stream_send(
    const LinkKey& key, common::Duration timeout_s) {
  std::unique_lock lk(mu_);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  const std::uint64_t entry_generation = [&] {
    const auto it = clear_generation_.find(key.app);
    return it == clear_generation_.end() ? 0 : it->second;
  }();
  bool cleared = false;
  if (!cv_.wait_until(lk, deadline, [&] {
        const auto it = clear_generation_.find(key.app);
        cleared =
            it != clear_generation_.end() && it->second != entry_generation;
        return cleared || registrations_.contains(key);
      })) {
    throw common::TransportError(
        "stream setup timed out waiting for the consumer");
  }
  if (cleared) {
    throw common::TransportError(
        "stream setup aborted: application cleared from the broker");
  }
  Registration& reg = registrations_.at(key);
  if (!reg.ring) {
    throw common::StateError("link is registered as a batch channel");
  }
  if (reg.ring_claimed) {
    reg.ring->add_producer();
  } else {
    reg.ring_claimed = true;  // the ring's initial producer slot
  }
  return reg.ring;
}

void ChannelBroker::clear_app(AppId app) {
  std::lock_guard lk(mu_);
  for (auto it = registrations_.begin(); it != registrations_.end();) {
    if (it->first.app == app) {
      // Streaming links need more than erasure: a producer parked on a
      // full ring (or a consumer on an empty one) holds a shared_ptr to
      // the ring itself and would sleep forever if we only dropped the
      // registration.  abort() drops the queued frames and wakes every
      // parked thread with TransportError — the streaming extension of
      // the clear-generation bump below.
      if (it->second.ring) it->second.ring->abort();
      it = registrations_.erase(it);
    } else {
      ++it;
    }
  }
  // Wake any producer blocked in open_send on one of this app's links:
  // it observes the generation bump and aborts promptly rather than
  // waiting out its timeout or pairing with a later run's registration.
  ++clear_generation_[app];
  cv_.notify_all();
}

}  // namespace vdce::dm
