#include "datamgr/ring_channel.hpp"

#include <chrono>
#include <cstring>
#include <string>

#include "common/error.hpp"
#include "common/metrics.hpp"

namespace vdce::dm {

RingChannel::RingChannel(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(std::make_unique<FrameView[]>(capacity == 0 ? 1 : capacity)) {}

RingChannel::~RingChannel() = default;

void RingChannel::push_locked(FrameView&& frame) {
  bytes_sent_ += frame.size();
  slots_[(head_ + count_) % capacity_] = std::move(frame);
  ++count_;
  ++stats_.frames_pushed;
  if (count_ > stats_.high_water) stats_.high_water = count_;
}

FrameView RingChannel::take_locked() {
  FrameView out = std::move(slots_[head_]);
  slots_[head_].reset();
  head_ = (head_ + 1) % capacity_;
  --count_;
  ++stats_.frames_popped;
  return out;
}

void RingChannel::push(FrameView frame) {
  std::unique_lock lk(mu_);
  if (count_ == capacity_ && !aborted_) {
    ++stats_.producer_parks;
    not_full_.wait(lk, [&] { return count_ < capacity_ || aborted_; });
  }
  if (aborted_) {
    throw common::TransportError("push on an aborted ring channel");
  }
  if (eos_) {
    throw common::TransportError("push after ring channel end-of-stream");
  }
  push_locked(std::move(frame));
  lk.unlock();
  not_empty_.notify_one();
}

bool RingChannel::try_push(FrameView frame) {
  {
    std::lock_guard lk(mu_);
    if (aborted_) {
      throw common::TransportError("push on an aborted ring channel");
    }
    if (eos_) {
      throw common::TransportError("push after ring channel end-of-stream");
    }
    if (count_ == capacity_) return false;
    push_locked(std::move(frame));
  }
  not_empty_.notify_one();
  return true;
}

std::optional<FrameView> RingChannel::pop() {
  std::optional<FrameView> out;
  {
    std::unique_lock lk(mu_);
    if (count_ == 0 && !eos_ && !aborted_) {
      ++stats_.consumer_parks;
      not_empty_.wait(lk, [&] { return count_ > 0 || eos_ || aborted_; });
    }
    if (aborted_) {
      throw common::TransportError("pop on an aborted ring channel");
    }
    if (count_ == 0) return std::nullopt;  // clean EOS, drained
    out = take_locked();
  }
  not_full_.notify_one();
  return out;
}

std::optional<FrameView> RingChannel::pop_for(double timeout_s) {
  if (timeout_s <= 0.0) return pop();
  std::optional<FrameView> out;
  {
    std::unique_lock lk(mu_);
    if (count_ == 0 && !eos_ && !aborted_) {
      ++stats_.consumer_parks;
      if (!not_empty_.wait_for(
              lk, std::chrono::duration<double>(timeout_s),
              [&] { return count_ > 0 || eos_ || aborted_; })) {
        common::MetricsRegistry::global()
            .counter("datamgr.deadline_expiries")
            .add(1);
        throw common::TransportError("ring channel pop timed out after " +
                                     std::to_string(timeout_s) + "s");
      }
    }
    if (aborted_) {
      throw common::TransportError("pop on an aborted ring channel");
    }
    if (count_ == 0) return std::nullopt;
    out = take_locked();
  }
  not_full_.notify_one();
  return out;
}

void RingChannel::add_producer() {
  std::lock_guard lk(mu_);
  if (eos_ || aborted_) {
    throw common::StateError("add_producer after ring channel end-of-stream");
  }
  ++producers_;
}

void RingChannel::close_send() {
  {
    std::lock_guard lk(mu_);
    if (producers_ > 0) --producers_;
    if (producers_ > 0) return;
    eos_ = true;
  }
  // Consumers parked on an empty ring must observe EOS; producers of
  // sibling fan-in links never park once the stream is over, but a
  // blocked push racing the close resolves through the eos_ check.
  not_empty_.notify_all();
  not_full_.notify_all();
}

void RingChannel::abort() {
  {
    std::lock_guard lk(mu_);
    if (aborted_) return;
    aborted_ = true;
    stats_.frames_dropped += count_;
    // Release the queued slabs now: an aborted stream's frames must not
    // pin pool memory until the ring object itself dies.
    for (std::size_t i = 0; i < count_; ++i) {
      slots_[(head_ + i) % capacity_].reset();
    }
    head_ = 0;
    count_ = 0;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

std::size_t RingChannel::size() const {
  std::lock_guard lk(mu_);
  return count_;
}

bool RingChannel::eos() const {
  std::lock_guard lk(mu_);
  return eos_;
}

bool RingChannel::aborted() const {
  std::lock_guard lk(mu_);
  return aborted_;
}

RingChannelStats RingChannel::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

// -- Channel interface ----------------------------------------------------

void RingChannel::send(std::span<const std::byte> message) {
  Frame frame = FramePool::global().allocate(message.size());
  if (!message.empty()) {
    std::memcpy(frame.data(), message.data(), message.size());
  }
  push(frame.view());
}

void RingChannel::send_frame(const FrameView& frame) { push(frame); }

std::optional<std::vector<std::byte>> RingChannel::receive() {
  auto view = pop();
  if (!view) return std::nullopt;
  return view->to_vector();
}

std::optional<std::vector<std::byte>> RingChannel::receive_for(
    double timeout_s) {
  auto view = pop_for(timeout_s);
  if (!view) return std::nullopt;
  return view->to_vector();
}

std::optional<FrameView> RingChannel::receive_frame() { return pop(); }

std::optional<FrameView> RingChannel::receive_frame_for(double timeout_s) {
  return pop_for(timeout_s);
}

void RingChannel::close() { close_send(); }

std::size_t RingChannel::bytes_sent() const {
  std::lock_guard lk(mu_);
  return bytes_sent_;
}

}  // namespace vdce::dm
