#include "datamgr/data_manager.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <thread>

#include "common/error.hpp"
#include "common/metrics.hpp"

namespace vdce::dm {

using common::StateError;
using common::TransportError;

namespace {
/// Message tag carried on every inter-task payload frame.
constexpr int kPayloadTag = 7;
}  // namespace

DataManager::DataManager(ChannelBroker& broker, MpLibrary library)
    : broker_(&broker), library_(library) {}

void DataManager::setup(const TaskWiring& wiring) {
  if (is_set_up_) throw StateError("DataManager::setup called twice");
  wiring_ = wiring;
  // wiring.parents is in the consumer's input-port order; the received
  // payloads are handed to the task function in exactly that order.

  // Register every input endpoint first (never blocks) ...
  for (const TaskId parent : wiring_.parents) {
    inputs_.emplace_back(
        library_,
        broker_->open_receive(LinkKey{wiring_.app, parent, wiring_.task}));
  }
  // ... then connect outputs (each blocks until its consumer is up).
  for (const TaskId child : wiring_.children) {
    outputs_.emplace_back(
        library_,
        broker_->open_send(LinkKey{wiring_.app, wiring_.task, child}));
  }
  is_set_up_ = true;
}

tasklib::Payload DataManager::run(const tasklib::TaskRegistry& registry,
                                  const std::string& library_task,
                                  const tasklib::TaskContext& ctx,
                                  ConsoleService* console) {
  if (!is_set_up_) throw StateError("DataManager::run before setup");

  // Receive threads: one per in-edge, each fills its input slot.
  std::vector<tasklib::Payload> received(inputs_.size());
  std::vector<std::string> errors(inputs_.size());
  {
    std::vector<std::jthread> receive_threads;
    receive_threads.reserve(inputs_.size());
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
      receive_threads.emplace_back([this, i, &received, &errors] {
        try {
          auto msg = recv_timeout_s_ > 0.0
                         ? inputs_[i].receive_frame_for(recv_timeout_s_)
                         : inputs_[i].receive_frame();
          if (!msg) {
            errors[i] = "input channel closed before delivering data";
            return;
          }
          // One copy at the decode boundary: Payload owns its bytes.
          received[i] = tasklib::Payload::from_wire(msg->data.to_vector());
        } catch (const std::exception& e) {
          errors[i] = e.what();
        }
      });
    }
  }  // join all receive threads
  for (const std::string& err : errors) {
    if (!err.empty()) {
      throw TransportError("task " + library_task + " receive failed: " + err);
    }
  }
  stats_.messages_received += received.size();
  for (const auto& p : received) stats_.bytes_received += p.size_bytes();
  {
    auto& metrics = common::MetricsRegistry::global();
    metrics.counter("datamgr.frames_received").add(received.size());
    std::size_t bytes = 0;
    for (const auto& p : received) bytes += p.size_bytes();
    metrics.counter("datamgr.bytes_received").add(bytes);
  }

  // Compute thread (honours the console service around the computation).
  if (console != nullptr) console->checkpoint();
  tasklib::Payload output;
  std::string compute_error;
  {
    std::jthread compute([&] {
      try {
        output = registry.run(library_task, received, ctx);
      } catch (const std::exception& e) {
        compute_error = e.what();
      }
    });
  }
  if (!compute_error.empty()) {
    throw StateError("task " + library_task + " failed: " + compute_error);
  }
  if (console != nullptr) console->checkpoint();

  // Send threads: replicate the output on every out-edge.  The wire
  // image is serialized ONCE into a pooled frame that every link (and
  // the checkpoint capture, via output_frame()) shares.
  const std::size_t wire_n = output.wire_size();
  std::vector<std::string> send_errors(outputs_.size());
  if (library_ == MpLibrary::kPvm || outputs_.empty()) {
    // PVM fragments the payload frame itself (no single envelope), and
    // a sink task still builds the frame so the checkpoint can pin it.
    Frame body = FramePool::global().allocate(wire_n);
    output.write_wire(body.span());
    const FrameView full = body.view();
    {
      std::vector<std::jthread> send_threads;
      send_threads.reserve(outputs_.size());
      for (std::size_t i = 0; i < outputs_.size(); ++i) {
        send_threads.emplace_back([this, i, &full, &send_errors] {
          try {
            outputs_[i].send_frame(kPayloadTag, full);
          } catch (const std::exception& e) {
            send_errors[i] = e.what();
          }
        });
      }
    }
    output_frame_ = full;
    stats_.zero_copy_frames += outputs_.size();
  } else {
    // P4/MPI/NCS: one prepared envelope fans out to every child.  All
    // output endpoints advance in lockstep (one payload message per
    // link), so the sequence number prepare() wrote is right for each.
    PreparedFrame prep = outputs_.front().prepare(kPayloadTag, wire_n);
    output.write_wire(prep.body());
    const FrameView full = prep.frame.view();
    {
      std::vector<std::jthread> send_threads;
      send_threads.reserve(outputs_.size());
      for (std::size_t i = 0; i < outputs_.size(); ++i) {
        send_threads.emplace_back([this, i, &full, &send_errors] {
          try {
            outputs_[i].send_prepared(full);
          } catch (const std::exception& e) {
            send_errors[i] = e.what();
          }
        });
      }
    }
    output_frame_ = full.subview(prep.body_offset, wire_n);
    stats_.zero_copy_frames += outputs_.size();
  }
  for (const std::string& err : send_errors) {
    if (!err.empty()) {
      throw TransportError("task " + library_task + " send failed: " + err);
    }
  }
  stats_.messages_sent += outputs_.size();
  stats_.bytes_sent += wire_n * outputs_.size();
  {
    auto& metrics = common::MetricsRegistry::global();
    metrics.counter("datamgr.frames_sent").add(outputs_.size());
    metrics.counter("datamgr.bytes_sent").add(wire_n * outputs_.size());
  }

  return output;
}

void DataManager::teardown() {
  for (auto& in : inputs_) in.close();
  for (auto& out : outputs_) out.close();
}

}  // namespace vdce::dm
