#include "datamgr/frame.hpp"

#include <bit>
#include <cstring>

#include "common/error.hpp"
#include "common/metrics.hpp"

namespace vdce::dm {

using common::StateError;

namespace detail {

void add_ref(Slab* slab) noexcept {
  slab->refs.fetch_add(1, std::memory_order_relaxed);
}

void release(Slab* slab) noexcept {
  // acq_rel: the last releaser must observe every write the other
  // holders made before dropping their references.
  if (slab->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    slab->pool->recycle(slab);
  }
}

}  // namespace detail

// -- FrameView -----------------------------------------------------------

FrameView::FrameView(detail::Slab* slab, std::size_t offset,
                     std::size_t length)
    : slab_(slab), offset_(offset), length_(length) {
  if (slab_ != nullptr) detail::add_ref(slab_);
}

FrameView::FrameView(const FrameView& other) noexcept
    : slab_(other.slab_), offset_(other.offset_), length_(other.length_) {
  if (slab_ != nullptr) detail::add_ref(slab_);
}

FrameView& FrameView::operator=(const FrameView& other) noexcept {
  if (this == &other) return *this;
  if (other.slab_ != nullptr) detail::add_ref(other.slab_);
  if (slab_ != nullptr) detail::release(slab_);
  slab_ = other.slab_;
  offset_ = other.offset_;
  length_ = other.length_;
  return *this;
}

FrameView::FrameView(FrameView&& other) noexcept
    : slab_(other.slab_), offset_(other.offset_), length_(other.length_) {
  other.slab_ = nullptr;
  other.offset_ = 0;
  other.length_ = 0;
}

FrameView& FrameView::operator=(FrameView&& other) noexcept {
  if (this == &other) return *this;
  if (slab_ != nullptr) detail::release(slab_);
  slab_ = other.slab_;
  offset_ = other.offset_;
  length_ = other.length_;
  other.slab_ = nullptr;
  other.offset_ = 0;
  other.length_ = 0;
  return *this;
}

FrameView::~FrameView() {
  if (slab_ != nullptr) detail::release(slab_);
}

const std::byte* FrameView::data() const {
  return slab_ != nullptr ? slab_->bytes.get() + offset_ : nullptr;
}

FrameView FrameView::subview(std::size_t offset, std::size_t length) const {
  if (offset > length_ || length > length_ - offset) {
    throw StateError("frame subview out of range");
  }
  return FrameView(slab_, offset_ + offset, length);
}

std::vector<std::byte> FrameView::to_vector() const {
  return {begin(), end()};
}

void FrameView::reset() {
  if (slab_ != nullptr) detail::release(slab_);
  slab_ = nullptr;
  offset_ = 0;
  length_ = 0;
}

// -- Frame ---------------------------------------------------------------

Frame::Frame(Frame&& other) noexcept : slab_(other.slab_) {
  other.slab_ = nullptr;
}

Frame& Frame::operator=(Frame&& other) noexcept {
  if (this == &other) return *this;
  if (slab_ != nullptr) detail::release(slab_);
  slab_ = other.slab_;
  other.slab_ = nullptr;
  return *this;
}

Frame::~Frame() {
  if (slab_ != nullptr) detail::release(slab_);
}

std::byte* Frame::data() {
  return slab_ != nullptr ? slab_->bytes.get() : nullptr;
}

const std::byte* Frame::data() const {
  return slab_ != nullptr ? slab_->bytes.get() : nullptr;
}

std::size_t Frame::size() const {
  return slab_ != nullptr ? slab_->size : 0;
}

std::size_t Frame::capacity() const {
  return slab_ != nullptr ? slab_->capacity : 0;
}

void Frame::resize(std::size_t n) {
  if (slab_ == nullptr) throw StateError("resize of an invalid frame");
  if (n > slab_->capacity) throw StateError("frame resize past capacity");
  slab_->size = n;
}

FrameView Frame::view() const {
  if (slab_ == nullptr) return {};
  return FrameView(slab_, 0, slab_->size);
}

void Frame::reset() {
  if (slab_ != nullptr) detail::release(slab_);
  slab_ = nullptr;
}

// -- FramePool -----------------------------------------------------------

namespace {

struct PoolInstruments {
  common::Counter& slabs_allocated;
  common::Counter& reuse_hits;
  common::Counter& reuse_misses;
  common::Gauge& bytes_in_use;
  common::Gauge& high_water;
};

PoolInstruments resolve_instruments() {
  auto& reg = common::MetricsRegistry::global();
  return PoolInstruments{reg.counter("datamgr.pool.slabs_allocated"),
                         reg.counter("datamgr.pool.reuse_hits"),
                         reg.counter("datamgr.pool.reuse_misses"),
                         reg.gauge("datamgr.pool.bytes_in_use"),
                         reg.gauge("datamgr.pool.high_water_bytes")};
}

// Instruments for the global pool.  The global pool is leaked, so its
// releases may run during process teardown -- but only from joined
// threads (the event loop joins at exit, DataManager threads join in
// run()), which all finish before static destructors fire.
PoolInstruments& instruments() {
  static PoolInstruments inst = resolve_instruments();
  return inst;
}

}  // namespace

FramePool::FramePool() {
  instruments();  // force registry + instrument construction first
}

FramePool::~FramePool() { trim(); }

std::size_t FramePool::class_capacity(std::size_t size) {
  return std::bit_ceil(std::max(size, kMinSlabBytes));
}

void FramePool::note_in_use_locked(std::size_t capacity) {
  stats_.bytes_in_use += capacity;
  if (stats_.bytes_in_use > stats_.high_water_bytes) {
    stats_.high_water_bytes = stats_.bytes_in_use;
    instruments().high_water.set(
        static_cast<double>(stats_.high_water_bytes));
  }
  instruments().bytes_in_use.set(static_cast<double>(stats_.bytes_in_use));
}

Frame FramePool::allocate(std::size_t size) {
  const std::size_t capacity = class_capacity(size);
  const std::size_t cls =
      static_cast<std::size_t>(std::countr_zero(capacity)) -
      static_cast<std::size_t>(std::countr_zero(kMinSlabBytes));

  detail::Slab* slab = nullptr;
  {
    std::lock_guard lock(mu_);
    if (cls < free_.size() && !free_[cls].empty()) {
      slab = free_[cls].back();
      free_[cls].pop_back();
      --stats_.free_slabs;
      ++stats_.reuse_hits;
    } else {
      ++stats_.reuse_misses;
      ++stats_.slabs_allocated;
    }
    note_in_use_locked(capacity);
  }
  if (slab == nullptr) {
    instruments().slabs_allocated.add();
    instruments().reuse_misses.add();
    slab = new detail::Slab;
    slab->pool = this;
    slab->capacity = capacity;
    slab->bytes = std::make_unique<std::byte[]>(capacity);
  } else {
    instruments().reuse_hits.add();
  }
  slab->size = size;
  slab->refs.store(1, std::memory_order_relaxed);
  return Frame(slab);
}

FrameView FramePool::copy_of(std::span<const std::byte> bytes) {
  Frame frame = allocate(bytes.size());
  if (!bytes.empty()) std::memcpy(frame.data(), bytes.data(), bytes.size());
  return frame.view();
}

void FramePool::recycle(detail::Slab* slab) {
  const std::size_t cls =
      static_cast<std::size_t>(std::countr_zero(slab->capacity)) -
      static_cast<std::size_t>(std::countr_zero(kMinSlabBytes));
  bool park = false;
  {
    std::lock_guard lock(mu_);
    stats_.bytes_in_use -= slab->capacity;
    instruments().bytes_in_use.set(static_cast<double>(stats_.bytes_in_use));
    if (free_.size() <= cls) free_.resize(cls + 1);
    if (free_[cls].size() < kMaxFreePerClass) {
      free_[cls].push_back(slab);
      ++stats_.free_slabs;
      park = true;
    }
  }
  if (!park) delete slab;
}

FramePoolStats FramePool::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

void FramePool::trim() {
  std::lock_guard lock(mu_);
  for (auto& cls : free_) {
    for (detail::Slab* slab : cls) delete slab;
    cls.clear();
  }
  stats_.free_slabs = 0;
}

FramePool& FramePool::global() {
  // Leaked on purpose: see the header.  The registry (and this pool's
  // instruments) are forced into existence first, so their function-
  // local statics outlive every atexit-joined user of the pool.
  static FramePool* pool = new FramePool;
  return *pool;
}

}  // namespace vdce::dm
