#include "datamgr/mplib.hpp"

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace vdce::dm {

using common::ParseError;
using common::TransportError;
using common::WireReader;
using common::WireWriter;

std::string to_string(MpLibrary lib) {
  switch (lib) {
    case MpLibrary::kP4:  return "p4";
    case MpLibrary::kPvm: return "pvm";
    case MpLibrary::kMpi: return "mpi";
    case MpLibrary::kNcs: return "ncs";
  }
  return "?";
}

MpLibrary mp_library_from_string(const std::string& s) {
  if (s == "p4") return MpLibrary::kP4;
  if (s == "pvm") return MpLibrary::kPvm;
  if (s == "mpi") return MpLibrary::kMpi;
  if (s == "ncs") return MpLibrary::kNcs;
  throw ParseError("unknown message-passing library: " + s);
}

MessageEndpoint::MessageEndpoint(MpLibrary library,
                                 std::shared_ptr<Channel> channel,
                                 std::uint32_t communicator)
    : library_(library),
      channel_(std::move(channel)),
      communicator_(communicator) {
  common::expects(channel_ != nullptr, "MessageEndpoint needs a channel");
}

void MessageEndpoint::send(int tag, std::span<const std::byte> data) {
  switch (library_) {
    case MpLibrary::kP4: {
      WireWriter w;
      w.write_u8(static_cast<std::uint8_t>(MpLibrary::kP4));
      w.write_u32(static_cast<std::uint32_t>(tag));
      w.write_bytes(data);
      channel_->send(w.bytes());
      return;
    }
    case MpLibrary::kPvm: {
      // pvm_pkbyte-style: the message travels as fragments, each its own
      // frame, preceded by a header frame carrying tag and count.
      const std::size_t nfrag =
          data.empty() ? 0 : (data.size() + kPvmFragment - 1) / kPvmFragment;
      WireWriter header;
      header.write_u8(static_cast<std::uint8_t>(MpLibrary::kPvm));
      header.write_u32(static_cast<std::uint32_t>(tag));
      header.write_u32(static_cast<std::uint32_t>(nfrag));
      header.write_u64(data.size());
      channel_->send(header.bytes());
      for (std::size_t i = 0; i < nfrag; ++i) {
        const std::size_t off = i * kPvmFragment;
        const std::size_t len = std::min(kPvmFragment, data.size() - off);
        channel_->send(data.subspan(off, len));
      }
      return;
    }
    case MpLibrary::kMpi: {
      WireWriter w;
      w.write_u8(static_cast<std::uint8_t>(MpLibrary::kMpi));
      w.write_u32(communicator_);
      w.write_u32(static_cast<std::uint32_t>(tag));
      w.write_bytes(data);
      channel_->send(w.bytes());
      return;
    }
    case MpLibrary::kNcs: {
      WireWriter w;
      w.write_u8(static_cast<std::uint8_t>(MpLibrary::kNcs));
      w.write_u32(send_seq_++);
      w.write_u32(static_cast<std::uint32_t>(tag));
      w.write_bytes(data);
      channel_->send(w.bytes());
      return;
    }
  }
}

std::optional<TaggedMessage> MessageEndpoint::receive() {
  return receive_impl(0.0);
}

std::optional<TaggedMessage> MessageEndpoint::receive_for(double timeout_s) {
  return receive_impl(timeout_s);
}

std::optional<TaggedMessage> MessageEndpoint::receive_impl(
    double timeout_s) {
  const auto next_frame = [&] {
    return timeout_s > 0.0 ? channel_->receive_for(timeout_s)
                           : channel_->receive();
  };
  auto frame = next_frame();
  if (!frame) return std::nullopt;
  WireReader r(*frame);
  const auto magic = static_cast<MpLibrary>(r.read_u8());
  if (magic != library_) {
    throw TransportError("message-passing library mismatch: got " +
                         to_string(magic) + ", expected " +
                         to_string(library_));
  }

  TaggedMessage msg;
  switch (library_) {
    case MpLibrary::kP4: {
      msg.tag = static_cast<int>(r.read_u32());
      msg.data = r.read_bytes();
      return msg;
    }
    case MpLibrary::kPvm: {
      msg.tag = static_cast<int>(r.read_u32());
      const std::uint32_t nfrag = r.read_u32();
      const std::uint64_t total = r.read_u64();
      msg.data.reserve(total);
      for (std::uint32_t i = 0; i < nfrag; ++i) {
        auto frag = next_frame();
        if (!frag) {
          throw TransportError("pvm message truncated: missing fragment");
        }
        msg.data.insert(msg.data.end(), frag->begin(), frag->end());
      }
      if (msg.data.size() != total) {
        throw TransportError("pvm message size mismatch after reassembly");
      }
      return msg;
    }
    case MpLibrary::kMpi: {
      const std::uint32_t comm = r.read_u32();
      if (comm != communicator_) {
        throw TransportError("mpi communicator mismatch");
      }
      msg.tag = static_cast<int>(r.read_u32());
      msg.data = r.read_bytes();
      return msg;
    }
    case MpLibrary::kNcs: {
      const std::uint32_t seq = r.read_u32();
      if (seq != recv_seq_) {
        throw TransportError("ncs sequence violation");
      }
      ++recv_seq_;
      msg.tag = static_cast<int>(r.read_u32());
      msg.data = r.read_bytes();
      return msg;
    }
  }
  return std::nullopt;
}

}  // namespace vdce::dm
