#include "datamgr/mplib.hpp"

#include <cstring>

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace vdce::dm {

using common::ParseError;
using common::StateError;
using common::TransportError;
using common::WireReader;
using common::WireWriter;

std::string to_string(MpLibrary lib) {
  switch (lib) {
    case MpLibrary::kP4:  return "p4";
    case MpLibrary::kPvm: return "pvm";
    case MpLibrary::kMpi: return "mpi";
    case MpLibrary::kNcs: return "ncs";
  }
  return "?";
}

MpLibrary mp_library_from_string(const std::string& s) {
  if (s == "p4") return MpLibrary::kP4;
  if (s == "pvm") return MpLibrary::kPvm;
  if (s == "mpi") return MpLibrary::kMpi;
  if (s == "ncs") return MpLibrary::kNcs;
  throw ParseError("unknown message-passing library: " + s);
}

namespace {

void put_u32(std::byte* p, std::uint32_t v) {
  p[0] = std::byte{static_cast<std::uint8_t>(v >> 24)};
  p[1] = std::byte{static_cast<std::uint8_t>(v >> 16)};
  p[2] = std::byte{static_cast<std::uint8_t>(v >> 8)};
  p[3] = std::byte{static_cast<std::uint8_t>(v)};
}

/// Envelope header bytes before the length-prefixed body.
std::size_t header_bytes(MpLibrary lib) {
  switch (lib) {
    case MpLibrary::kP4:  return 1 + 4 + 4;       // magic, tag, len
    case MpLibrary::kMpi: return 1 + 4 + 4 + 4;   // magic, comm, tag, len
    case MpLibrary::kNcs: return 1 + 4 + 4 + 4;   // magic, seq, tag, len
    case MpLibrary::kPvm: break;                  // fragmented: no envelope
  }
  throw StateError("pvm messages are fragmented and have no single envelope");
}

}  // namespace

MessageEndpoint::MessageEndpoint(MpLibrary library,
                                 std::shared_ptr<Channel> channel,
                                 std::uint32_t communicator)
    : library_(library),
      channel_(std::move(channel)),
      communicator_(communicator) {
  common::expects(channel_ != nullptr, "MessageEndpoint needs a channel");
}

void MessageEndpoint::send(int tag, std::span<const std::byte> data) {
  if (library_ == MpLibrary::kPvm) {
    // pvm_pkbyte-style: the message travels as fragments, each its own
    // frame, preceded by a header frame carrying tag and count.
    const std::size_t nfrag =
        data.empty() ? 0 : (data.size() + kPvmFragment - 1) / kPvmFragment;
    WireWriter header;
    header.write_u8(static_cast<std::uint8_t>(MpLibrary::kPvm));
    header.write_u32(static_cast<std::uint32_t>(tag));
    header.write_u32(static_cast<std::uint32_t>(nfrag));
    header.write_u64(data.size());
    channel_->send(header.bytes());
    for (std::size_t i = 0; i < nfrag; ++i) {
      const std::size_t off = i * kPvmFragment;
      const std::size_t len = std::min(kPvmFragment, data.size() - off);
      channel_->send(data.subspan(off, len));
    }
    return;
  }
  // One pooled envelope, payload copied in exactly once.
  PreparedFrame prep = prepare(tag, data.size());
  if (!data.empty()) {
    std::memcpy(prep.body().data(), data.data(), data.size());
  }
  send_prepared(prep.frame.view());
}

void MessageEndpoint::send_frame(int tag, const FrameView& data) {
  if (library_ == MpLibrary::kPvm) {
    const std::size_t nfrag =
        data.empty() ? 0 : (data.size() + kPvmFragment - 1) / kPvmFragment;
    WireWriter header;
    header.write_u8(static_cast<std::uint8_t>(MpLibrary::kPvm));
    header.write_u32(static_cast<std::uint32_t>(tag));
    header.write_u32(static_cast<std::uint32_t>(nfrag));
    header.write_u64(data.size());
    channel_->send(header.bytes());
    for (std::size_t i = 0; i < nfrag; ++i) {
      const std::size_t off = i * kPvmFragment;
      const std::size_t len = std::min(kPvmFragment, data.size() - off);
      // Fragments ride as subviews of the payload frame: zero copies.
      channel_->send_frame(data.subview(off, len));
    }
    return;
  }
  PreparedFrame prep = prepare(tag, data.size());
  if (!data.empty()) {
    std::memcpy(prep.body().data(), data.data(), data.size());
  }
  send_prepared(prep.frame.view());
}

PreparedFrame MessageEndpoint::prepare(int tag, std::size_t body_size) {
  const std::size_t header = header_bytes(library_);
  PreparedFrame out;
  out.frame = FramePool::global().allocate(header + body_size);
  out.body_offset = header;
  std::byte* p = out.frame.data();
  p[0] = std::byte{static_cast<std::uint8_t>(library_)};
  switch (library_) {
    case MpLibrary::kP4:
      put_u32(p + 1, static_cast<std::uint32_t>(tag));
      put_u32(p + 5, static_cast<std::uint32_t>(body_size));
      break;
    case MpLibrary::kMpi:
      put_u32(p + 1, communicator_);
      put_u32(p + 5, static_cast<std::uint32_t>(tag));
      put_u32(p + 9, static_cast<std::uint32_t>(body_size));
      break;
    case MpLibrary::kNcs:
      put_u32(p + 1, send_seq_);  // advanced by send_prepared()
      put_u32(p + 5, static_cast<std::uint32_t>(tag));
      put_u32(p + 9, static_cast<std::uint32_t>(body_size));
      break;
    case MpLibrary::kPvm:
      break;  // unreachable: header_bytes threw
  }
  return out;
}

void MessageEndpoint::send_prepared(const FrameView& envelope) {
  header_bytes(library_);  // rejects pvm
  if (library_ == MpLibrary::kNcs) ++send_seq_;
  channel_->send_frame(envelope);
}

std::optional<TaggedMessage> MessageEndpoint::receive() {
  auto msg = receive_frame_impl(0.0);
  if (!msg) return std::nullopt;
  return TaggedMessage{msg->tag, msg->data.to_vector()};
}

std::optional<TaggedMessage> MessageEndpoint::receive_for(double timeout_s) {
  auto msg = receive_frame_impl(timeout_s);
  if (!msg) return std::nullopt;
  return TaggedMessage{msg->tag, msg->data.to_vector()};
}

std::optional<TaggedFrame> MessageEndpoint::receive_frame() {
  return receive_frame_impl(0.0);
}

std::optional<TaggedFrame> MessageEndpoint::receive_frame_for(
    double timeout_s) {
  return receive_frame_impl(timeout_s);
}

std::optional<TaggedFrame> MessageEndpoint::receive_frame_impl(
    double timeout_s) {
  const auto next_frame = [&] {
    return timeout_s > 0.0 ? channel_->receive_frame_for(timeout_s)
                           : channel_->receive_frame();
  };
  auto frame = next_frame();
  if (!frame) return std::nullopt;
  WireReader r(frame->bytes());
  const auto magic = static_cast<MpLibrary>(r.read_u8());
  if (magic != library_) {
    throw TransportError("message-passing library mismatch: got " +
                         to_string(magic) + ", expected " +
                         to_string(library_));
  }

  // Carves the length-prefixed body out of the envelope as a zero-copy
  // subview (the view keeps the whole envelope slab pinned).
  const auto read_body = [&]() -> FrameView {
    const std::uint32_t len = r.read_u32();
    if (r.remaining() < len) throw ParseError("wire message truncated");
    const std::size_t off = frame->size() - r.remaining();
    return frame->subview(off, len);
  };

  TaggedFrame msg;
  switch (library_) {
    case MpLibrary::kP4: {
      msg.tag = static_cast<int>(r.read_u32());
      msg.data = read_body();
      return msg;
    }
    case MpLibrary::kPvm: {
      msg.tag = static_cast<int>(r.read_u32());
      const std::uint32_t nfrag = r.read_u32();
      const std::uint64_t total = r.read_u64();
      Frame out = FramePool::global().allocate(total);
      std::size_t fill = 0;
      for (std::uint32_t i = 0; i < nfrag; ++i) {
        auto frag = next_frame();
        if (!frag) {
          throw TransportError("pvm message truncated: missing fragment");
        }
        if (fill + frag->size() > total) {
          throw TransportError("pvm message size mismatch after reassembly");
        }
        if (!frag->empty()) {
          std::memcpy(out.data() + fill, frag->data(), frag->size());
        }
        fill += frag->size();
      }
      if (fill != total) {
        throw TransportError("pvm message size mismatch after reassembly");
      }
      msg.data = out.view();
      return msg;
    }
    case MpLibrary::kMpi: {
      const std::uint32_t comm = r.read_u32();
      if (comm != communicator_) {
        throw TransportError("mpi communicator mismatch");
      }
      msg.tag = static_cast<int>(r.read_u32());
      msg.data = read_body();
      return msg;
    }
    case MpLibrary::kNcs: {
      const std::uint32_t seq = r.read_u32();
      if (seq != recv_seq_) {
        throw TransportError("ncs sequence violation");
      }
      ++recv_seq_;
      msg.tag = static_cast<int>(r.read_u32());
      msg.data = read_body();
      return msg;
    }
  }
  return std::nullopt;
}

}  // namespace vdce::dm
