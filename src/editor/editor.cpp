#include "editor/editor.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace vdce::editor {

using common::NotFoundError;
using common::StateError;

std::string to_string(EditorMode m) {
  switch (m) {
    case EditorMode::kTask: return "task";
    case EditorMode::kLink: return "link";
    case EditorMode::kRun:  return "run";
  }
  return "?";
}

ApplicationEditor::ApplicationEditor(const tasklib::TaskRegistry& registry,
                                     std::string app_name)
    : registry_(&registry), graph_(std::move(app_name)) {}

std::vector<std::string> ApplicationEditor::menus() const {
  return registry_->menus();
}

std::vector<std::string> ApplicationEditor::menu_tasks(
    const std::string& menu) const {
  return registry_->tasks_in_menu(menu);
}

std::string ApplicationEditor::describe(
    const std::string& library_task) const {
  return registry_->get(library_task).description;
}

void ApplicationEditor::require_mode(EditorMode needed,
                                     const char* action) const {
  if (mode_ != needed) {
    throw StateError(std::string(action) + " requires " + to_string(needed) +
                     " mode (editor is in " + to_string(mode_) + " mode)");
  }
}

TaskId ApplicationEditor::add_task(const std::string& library_task,
                                   const std::string& label,
                                   IconPosition pos) {
  require_mode(EditorMode::kTask, "adding a task");
  if (!registry_->contains(library_task)) {
    throw NotFoundError("no such library task: " + library_task);
  }
  const TaskId id = graph_.add_task(library_task, label);
  positions_[id] = pos;
  return id;
}

void ApplicationEditor::place_task(TaskId id, IconPosition pos) {
  require_mode(EditorMode::kTask, "moving a task icon");
  (void)graph_.task(id);  // throws NotFoundError if unknown
  positions_[id] = pos;
}

IconPosition ApplicationEditor::position(TaskId id) const {
  const auto it = positions_.find(id);
  if (it == positions_.end()) throw NotFoundError("unknown task id");
  return it->second;
}

void ApplicationEditor::remove_task(TaskId id) {
  require_mode(EditorMode::kTask, "removing a task");
  graph_.remove_task(id);
  positions_.erase(id);
  std::erase_if(explicit_sizes_, [id](const auto& p) {
    return p.first == id || p.second == id;
  });
}

void ApplicationEditor::connect(TaskId from, TaskId to,
                                std::optional<double> transfer_mb) {
  require_mode(EditorMode::kLink, "connecting tasks");
  const afg::TaskNode& producer = graph_.task(from);
  double mb;
  if (transfer_mb) {
    mb = *transfer_mb;
    explicit_sizes_.emplace_back(from, to);
  } else {
    const auto& entry = registry_->get(producer.library_task);
    mb = entry.default_perf.communication_size_mb *
         producer.props.input_size;
  }
  graph_.add_link(from, to, mb);
}

void ApplicationEditor::disconnect(TaskId from, TaskId to) {
  require_mode(EditorMode::kLink, "disconnecting tasks");
  graph_.remove_link(from, to);
  std::erase_if(explicit_sizes_, [&](const auto& p) {
    return p.first == from && p.second == to;
  });
}

void ApplicationEditor::set_properties(TaskId id,
                                       const TaskProperties& props) {
  if (mode_ == EditorMode::kRun) {
    throw StateError("the property panel is unavailable in run mode");
  }
  if (props.num_processors == 0) {
    throw StateError("num_processors must be >= 1");
  }
  if (props.input_size <= 0.0) {
    throw StateError("input_size must be positive");
  }
  afg::TaskNode& node = graph_.task(id);
  node.props = props;

  // Rescale the default-sized outgoing links to the new input size.
  const auto& entry = registry_->get(node.library_task);
  const double default_mb =
      entry.default_perf.communication_size_mb * props.input_size;
  for (const TaskId child : graph_.children(id)) {
    const bool overridden =
        std::any_of(explicit_sizes_.begin(), explicit_sizes_.end(),
                    [&](const auto& p) {
                      return p.first == id && p.second == child;
                    });
    if (!overridden) {
      graph_.set_link_transfer(id, child, default_mb);
    }
  }
}

const TaskProperties& ApplicationEditor::properties(TaskId id) const {
  return graph_.task(id).props;
}

FlowGraph ApplicationEditor::submit() const {
  require_mode(EditorMode::kRun, "submitting the application");
  graph_.validate();
  // Library-level checks: arity of every node.
  for (const afg::TaskNode& node : graph_.tasks()) {
    const auto& entry = registry_->get(node.library_task);
    const auto indegree =
        static_cast<unsigned>(graph_.parents(node.id).size());
    if (indegree < entry.min_inputs || indegree > entry.max_inputs) {
      throw StateError("task " + node.label + " (" + node.library_task +
                       ") has " + std::to_string(indegree) +
                       " inputs; the library requires between " +
                       std::to_string(entry.min_inputs) + " and " +
                       std::to_string(entry.max_inputs));
    }
  }
  return graph_;
}

void ApplicationEditor::save(const std::string& path) const {
  afg::save_file(graph_, path);
}

ApplicationEditor ApplicationEditor::load(
    const tasklib::TaskRegistry& registry, const std::string& path) {
  FlowGraph graph = afg::load_file(path);
  // Check every node references a real library entry before accepting.
  for (const afg::TaskNode& node : graph.tasks()) {
    if (!registry.contains(node.library_task)) {
      throw NotFoundError("stored AFG references unknown library task: " +
                          node.library_task);
    }
  }
  ApplicationEditor editor(registry, graph.name());
  editor.graph_ = std::move(graph);
  for (const afg::TaskNode& node : editor.graph_.tasks()) {
    editor.positions_[node.id] = IconPosition{};
    // Stored links keep their sizes verbatim.
    for (const TaskId child : editor.graph_.children(node.id)) {
      editor.explicit_sizes_.emplace_back(node.id, child);
    }
  }
  return editor;
}

}  // namespace vdce::editor
