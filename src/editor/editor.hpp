// The Application Editor.
//
// "The Application Editor is a web-based graphical user interface for
//  developing parallel and distributed applications. ... Operationally,
//  the Application Editor can be in task mode, link mode, or run mode.
//  In task mode, the user can select/add new tasks, and/or click/drag
//  icons to position them conveniently in the active editor area.  In
//  link mode, the user can specify connections between tasks.  In run
//  mode, Editor submits the graph for execution..."  (Section 2.1)
//
// This is the programmatic equivalent of that GUI (see DESIGN.md §2 for
// the substitution rationale): the same task/link/run mode state
// machine, menu-driven library selection, icon placement, per-task
// property panels, store/reload, and submit-time validation.  Its output
// — the Application Flow Graph — is byte-identical in role to the
// applet's.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "afg/graph.hpp"
#include "afg/serialize.hpp"
#include "tasklib/registry.hpp"

namespace vdce::editor {

using afg::FlowGraph;
using afg::TaskProperties;
using common::TaskId;

/// The Editor's operational mode.
enum class EditorMode : std::uint8_t { kTask, kLink, kRun };

[[nodiscard]] std::string to_string(EditorMode m);

/// Position of a task icon in the active editor area.
struct IconPosition {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const IconPosition&, const IconPosition&) = default;
};

/// Programmatic Application Editor.
///
/// Mode rules follow the paper: tasks can only be added/moved in task
/// mode, links only in link mode, and submission only in run mode;
/// violating the mode throws StateError (the GUI greys those actions
/// out).  Property panels (set_properties) work in any editing mode,
/// matching the "double click on any task icon" behaviour.
class ApplicationEditor {
 public:
  /// `registry` supplies the menus; it must outlive the editor.
  ApplicationEditor(const tasklib::TaskRegistry& registry,
                    std::string app_name);

  // -- menus ---------------------------------------------------------
  /// Top-level library menus ("matrix algebra library, C3I ... etc").
  [[nodiscard]] std::vector<std::string> menus() const;
  /// Entries of one menu.
  [[nodiscard]] std::vector<std::string> menu_tasks(
      const std::string& menu) const;
  /// One entry's description (the menu tooltip).
  [[nodiscard]] std::string describe(const std::string& library_task) const;

  // -- mode ----------------------------------------------------------
  void set_mode(EditorMode mode) { mode_ = mode; }
  [[nodiscard]] EditorMode mode() const { return mode_; }

  // -- task mode -------------------------------------------------------
  /// Adds a library task instance at a position in the editor area.
  /// Requires task mode; throws NotFoundError for an unknown library
  /// task.
  TaskId add_task(const std::string& library_task, const std::string& label,
                  IconPosition pos = {});

  /// Drags a task icon to a new position (task mode).
  void place_task(TaskId id, IconPosition pos);
  [[nodiscard]] IconPosition position(TaskId id) const;

  /// Removes a task and its links (task mode).
  void remove_task(TaskId id);

  // -- link mode -------------------------------------------------------
  /// Connects two tasks (link mode).  The transferred volume defaults to
  /// the producer's library communication size scaled by its input_size
  /// property; pass `transfer_mb` to override.
  void connect(TaskId from, TaskId to,
               std::optional<double> transfer_mb = std::nullopt);

  /// Removes a link (link mode).
  void disconnect(TaskId from, TaskId to);

  // -- property panel ---------------------------------------------------
  /// Opens the popup panel: sets the task's optional preferences.  The
  /// default link sizes of outgoing links are rescaled when input_size
  /// changes (explicit overrides are kept).
  void set_properties(TaskId id, const TaskProperties& props);
  [[nodiscard]] const TaskProperties& properties(TaskId id) const;

  // -- run mode --------------------------------------------------------
  /// Validates and returns the finished AFG (run mode): graph-level
  /// checks (DAG, non-empty) plus library-level checks (every node's
  /// in-degree within its library arity).  Throws StateError describing
  /// the first violation.
  [[nodiscard]] FlowGraph submit() const;

  /// Stores the AFG for future use (any mode).
  void save(const std::string& path) const;

  /// Reloads a stored AFG into a fresh editor.
  [[nodiscard]] static ApplicationEditor load(
      const tasklib::TaskRegistry& registry, const std::string& path);

  // -- inspection ------------------------------------------------------
  [[nodiscard]] const FlowGraph& graph() const { return graph_; }
  [[nodiscard]] std::string to_dot() const { return afg::to_dot(graph_); }

 private:
  void require_mode(EditorMode needed, const char* action) const;

  const tasklib::TaskRegistry* registry_;
  FlowGraph graph_;
  EditorMode mode_ = EditorMode::kTask;
  std::unordered_map<TaskId, IconPosition> positions_;
  // Links whose size the user overrode (not rescaled by set_properties).
  std::vector<std::pair<TaskId, TaskId>> explicit_sizes_;
};

}  // namespace vdce::editor
