#include "afg/graph.hpp"

#include <algorithm>
#include <deque>

#include "common/error.hpp"

namespace vdce::afg {

using common::NotFoundError;
using common::ParseError;
using common::StateError;

std::string to_string(ComputeMode m) {
  return m == ComputeMode::kSequential ? "sequential" : "parallel";
}

ComputeMode compute_mode_from_string(const std::string& s) {
  if (s == "sequential") return ComputeMode::kSequential;
  if (s == "parallel") return ComputeMode::kParallel;
  throw ParseError("unknown compute mode: " + s);
}

TaskId FlowGraph::add_task(const std::string& library_task,
                           const std::string& label,
                           const TaskProperties& props) {
  if (library_task.empty()) throw StateError("library task name is empty");
  if (label.empty()) throw StateError("task label is empty");
  if (by_label_.contains(label)) {
    throw StateError("duplicate task label: " + label);
  }
  if (props.num_processors == 0) {
    throw StateError("task " + label + ": num_processors must be >= 1");
  }
  if (props.input_size <= 0.0) {
    throw StateError("task " + label + ": input_size must be positive");
  }
  const TaskId id{next_id_++};
  tasks_.push_back(TaskNode{id, library_task, label, props});
  by_label_.emplace(label, id);
  return id;
}

void FlowGraph::add_link(TaskId from, TaskId to, double transfer_mb) {
  if (from == to) throw StateError("self-loop link is not allowed");
  (void)index_of(from);  // throws NotFoundError if unknown
  (void)index_of(to);
  if (transfer_mb < 0.0) throw StateError("link transfer size is negative");
  const auto dup = std::find_if(links_.begin(), links_.end(),
                                [&](const Link& l) {
                                  return l.from == from && l.to == to;
                                });
  if (dup != links_.end()) throw StateError("duplicate link");
  links_.push_back(Link{from, to, transfer_mb});
}

void FlowGraph::remove_task(TaskId id) {
  const std::size_t idx = index_of(id);
  by_label_.erase(tasks_[idx].label);
  tasks_.erase(tasks_.begin() + static_cast<std::ptrdiff_t>(idx));
  std::erase_if(links_,
                [id](const Link& l) { return l.from == id || l.to == id; });
}

void FlowGraph::remove_link(TaskId from, TaskId to) {
  const auto it = std::find_if(links_.begin(), links_.end(),
                               [&](const Link& l) {
                                 return l.from == from && l.to == to;
                               });
  if (it == links_.end()) throw NotFoundError("no such link");
  links_.erase(it);
}

void FlowGraph::set_link_transfer(TaskId from, TaskId to,
                                  double transfer_mb) {
  if (transfer_mb < 0.0) throw StateError("link transfer size is negative");
  const auto it = std::find_if(links_.begin(), links_.end(),
                               [&](const Link& l) {
                                 return l.from == from && l.to == to;
                               });
  if (it == links_.end()) throw NotFoundError("no such link");
  it->transfer_mb = transfer_mb;
}

const TaskNode& FlowGraph::task(TaskId id) const {
  return tasks_[index_of(id)];
}

TaskNode& FlowGraph::task(TaskId id) { return tasks_[index_of(id)]; }

std::optional<TaskId> FlowGraph::find_by_label(const std::string& label) const {
  const auto it = by_label_.find(label);
  if (it == by_label_.end()) return std::nullopt;
  return it->second;
}

std::vector<TaskId> FlowGraph::parents(TaskId id) const {
  std::vector<TaskId> out;
  for (const Link& l : links_) {
    if (l.to == id) out.push_back(l.from);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<TaskId> FlowGraph::ordered_parents(TaskId id) const {
  std::vector<TaskId> out;
  for (const Link& l : links_) {
    if (l.to == id) out.push_back(l.from);
  }
  return out;
}

std::vector<TaskId> FlowGraph::children(TaskId id) const {
  std::vector<TaskId> out;
  for (const Link& l : links_) {
    if (l.from == id) out.push_back(l.to);
  }
  std::sort(out.begin(), out.end());
  return out;
}

const Link& FlowGraph::link(TaskId from, TaskId to) const {
  const auto it = std::find_if(links_.begin(), links_.end(),
                               [&](const Link& l) {
                                 return l.from == from && l.to == to;
                               });
  if (it == links_.end()) throw NotFoundError("no such link");
  return *it;
}

std::vector<TaskId> FlowGraph::entry_tasks() const {
  std::vector<TaskId> out;
  for (const TaskNode& t : tasks_) {
    if (parents(t.id).empty()) out.push_back(t.id);
  }
  return out;
}

std::vector<TaskId> FlowGraph::exit_tasks() const {
  std::vector<TaskId> out;
  for (const TaskNode& t : tasks_) {
    if (children(t.id).empty()) out.push_back(t.id);
  }
  return out;
}

bool FlowGraph::is_dag() const {
  return topological_sort_impl().size() == tasks_.size();
}

std::vector<TaskId> FlowGraph::topological_order() const {
  auto order = topological_sort_impl();
  if (order.size() != tasks_.size()) {
    throw StateError("application flow graph contains a cycle");
  }
  return order;
}

void FlowGraph::validate() const {
  if (tasks_.empty()) throw StateError("application flow graph is empty");
  if (!is_dag()) throw StateError("application flow graph contains a cycle");
  for (const TaskNode& t : tasks_) {
    if (t.props.mode == ComputeMode::kSequential &&
        t.props.num_processors != 1) {
      throw StateError("task " + t.label +
                       ": sequential mode requires exactly 1 processor");
    }
  }
}

std::size_t FlowGraph::index_of(TaskId id) const {
  const auto it = std::find_if(tasks_.begin(), tasks_.end(),
                               [id](const TaskNode& t) { return t.id == id; });
  if (it == tasks_.end()) throw NotFoundError("unknown task id in graph");
  return static_cast<std::size_t>(it - tasks_.begin());
}

std::vector<TaskId> FlowGraph::topological_sort_impl() const {
  // Kahn's algorithm; returns fewer than task_count() nodes on a cycle.
  std::unordered_map<TaskId, std::size_t> indegree;
  for (const TaskNode& t : tasks_) indegree[t.id] = 0;
  for (const Link& l : links_) ++indegree[l.to];

  std::deque<TaskId> ready;
  for (const TaskNode& t : tasks_) {
    if (indegree[t.id] == 0) ready.push_back(t.id);
  }
  std::vector<TaskId> order;
  order.reserve(tasks_.size());
  while (!ready.empty()) {
    const TaskId id = ready.front();
    ready.pop_front();
    order.push_back(id);
    for (const Link& l : links_) {
      if (l.from == id && --indegree[l.to] == 0) ready.push_back(l.to);
    }
  }
  return order;
}

}  // namespace vdce::afg
