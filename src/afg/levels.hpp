// Level computation for list-scheduling priorities.
//
// "The VDCE scheduling heuristic uses the level of each node to
//  determine its priority.  The node (task) with a higher level value
//  will have a higher priority for scheduling.  The level of a node in
//  the graph is computed as the largest sum of computation costs along a
//  path from the node to an exit node.  ...  For the computation cost,
//  the task (node) execution time on the base processor ... is used."
//  (Section 2.2)
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "afg/graph.hpp"

namespace vdce::afg {

/// Computation cost of one task on the base processor, seconds.
using CostFn = std::function<double(const TaskNode&)>;

/// Levels for every node: level(n) = cost(n) + max over children c of
/// level(c); exit nodes have level(n) = cost(n).  Throws StateError on a
/// cyclic graph.
[[nodiscard]] std::unordered_map<TaskId, double> compute_levels(
    const FlowGraph& graph, const CostFn& cost);

/// Task ids sorted by descending level (the paper's scheduling priority
/// order); ties broken by ascending id for determinism.
[[nodiscard]] std::vector<TaskId> priority_order(
    const FlowGraph& graph, const std::unordered_map<TaskId, double>& levels);

/// The critical-path length: the maximum level over entry nodes (equals
/// the makespan lower bound on a dedicated base processor with zero
/// communication).
[[nodiscard]] double critical_path_length(
    const FlowGraph& graph, const std::unordered_map<TaskId, double>& levels);

}  // namespace vdce::afg
