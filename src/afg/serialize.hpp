// AFG persistence and export.
//
// "the user may either submit the application for execution in the VDCE
//  or he/she may store the application flow graph for future use."
//  (Section 2.1)
//
// The stored form is a small line-oriented text format:
//
//   # comment
//   app linear_solver
//   task lu1 lu_decomposition mode=parallel procs=2 arch=sparc size=4
//   task inv1 matrix_inversion
//   link lu1 inv1 2.0
//
// `to_dot` renders the graph in Graphviz DOT for visual inspection (our
// stand-in for the Editor's drawing surface).
#pragma once

#include <iosfwd>
#include <string>

#include "afg/graph.hpp"

namespace vdce::afg {

/// Serialises `graph` to the .afg text format.
[[nodiscard]] std::string to_text(const FlowGraph& graph);

/// Parses the .afg text format; throws ParseError with a line number on
/// malformed input.
[[nodiscard]] FlowGraph from_text(const std::string& text);

/// Writes/reads the .afg format to a file.
void save_file(const FlowGraph& graph, const std::string& path);
[[nodiscard]] FlowGraph load_file(const std::string& path);

/// Graphviz DOT rendering of the graph (labels + link sizes).
[[nodiscard]] std::string to_dot(const FlowGraph& graph);

}  // namespace vdce::afg
