// The Application Flow Graph (AFG).
//
// "The Application flow graph is a directed acyclic graph, G = (T, L),
//  where T is the set of tasks in the application and L is a set of
//  directed links among tasks.  A directed link (i,j) between two tasks
//  Ti and Tj of the application indicates that Ti must complete its
//  execution before Tj begins to run."  (Section 2.1)
//
// Nodes carry the library task they instantiate plus the per-task
// properties the Editor's popup panel sets (computation mode, machine
// type, processor count).  Links carry the data volume transferred from
// producer to consumer, which the Site Scheduler's transfer-time term
// consumes.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "repository/types.hpp"

namespace vdce::afg {

using common::SiteId;
using common::TaskId;

/// Computational mode chosen in the Editor's task-properties panel.
enum class ComputeMode : std::uint8_t { kSequential, kParallel };

[[nodiscard]] std::string to_string(ComputeMode m);
[[nodiscard]] ComputeMode compute_mode_from_string(const std::string& s);

/// Optional per-task preferences ("a popup panel that allows the user to
/// specify (optional) preferences such as computational mode (sequential
/// or parallel), machine type, and the number of processors").
struct TaskProperties {
  ComputeMode mode = ComputeMode::kSequential;
  /// Preferred machine architecture, if the user constrained it.
  std::optional<repo::ArchType> preferred_arch;
  /// Preferred OS, if constrained.
  std::optional<repo::OsType> preferred_os;
  /// Processor count for parallel mode (>= 1).
  unsigned num_processors = 1;
  /// Problem-size parameter in multiples of the library task's unit
  /// size; scales predicted time, memory and output volume.
  double input_size = 1.0;

  friend bool operator==(const TaskProperties&,
                         const TaskProperties&) = default;
};

/// One node of the AFG: an instance of a library task.
struct TaskNode {
  TaskId id;
  /// Name of the library task this node instantiates (a key of the
  /// task-performance database, e.g. "lu_decomposition").
  std::string library_task;
  /// Instance label unique within the application ("lu1").
  std::string label;
  TaskProperties props;
};

/// One directed link of the AFG.
struct Link {
  TaskId from;
  TaskId to;
  /// Data volume transferred over the link, MB (the paper's "size of the
  /// transfer" / "task input files").
  double transfer_mb = 0.0;

  friend bool operator==(const Link&, const Link&) = default;
};

/// A mutable application flow graph.
///
/// The graph enforces unique labels and link endpoints at insertion
/// time; acyclicity is checked by validate() (and therefore at submit
/// time), since intermediate editing states may be temporarily invalid.
class FlowGraph {
 public:
  FlowGraph() = default;
  explicit FlowGraph(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Adds a task node; returns its id.  Throws StateError on duplicate
  /// label or invalid properties.
  TaskId add_task(const std::string& library_task, const std::string& label,
                  const TaskProperties& props = {});

  /// Adds a directed link; throws NotFoundError for unknown endpoints,
  /// StateError for self-loops or duplicate links.
  void add_link(TaskId from, TaskId to, double transfer_mb);

  /// Removes a task and every link touching it.
  void remove_task(TaskId id);

  /// Removes one link; throws NotFoundError if absent.
  void remove_link(TaskId from, TaskId to);

  /// Changes a link's transfer size in place (the link keeps its
  /// input-port position).  Throws NotFoundError if absent.
  void set_link_transfer(TaskId from, TaskId to, double transfer_mb);

  [[nodiscard]] const TaskNode& task(TaskId id) const;
  [[nodiscard]] TaskNode& task(TaskId id);
  [[nodiscard]] std::optional<TaskId> find_by_label(
      const std::string& label) const;

  [[nodiscard]] const std::vector<TaskNode>& tasks() const { return tasks_; }
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }
  [[nodiscard]] std::size_t task_count() const { return tasks_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  /// Ids of direct predecessors of `id` (sorted).
  [[nodiscard]] std::vector<TaskId> parents(TaskId id) const;
  /// Ids of direct predecessors in link-insertion order: the consumer's
  /// input-port order, which fixes the argument order of its library
  /// function.
  [[nodiscard]] std::vector<TaskId> ordered_parents(TaskId id) const;
  /// Ids of direct successors of `id` (sorted).
  [[nodiscard]] std::vector<TaskId> children(TaskId id) const;
  /// The link (from,to); throws NotFoundError.
  [[nodiscard]] const Link& link(TaskId from, TaskId to) const;

  /// Tasks with no parents (the paper's "entry tasks").
  [[nodiscard]] std::vector<TaskId> entry_tasks() const;
  /// Tasks with no children (the paper's "exit nodes").
  [[nodiscard]] std::vector<TaskId> exit_tasks() const;

  /// True iff the link relation is acyclic.
  [[nodiscard]] bool is_dag() const;

  /// Tasks in a topological order; throws StateError if cyclic.
  [[nodiscard]] std::vector<TaskId> topological_order() const;

  /// Full submit-time validation: non-empty, acyclic, every node's
  /// properties sane.  Throws StateError/ParseError describing the first
  /// problem found.
  void validate() const;

 private:
  [[nodiscard]] std::size_t index_of(TaskId id) const;
  [[nodiscard]] std::vector<TaskId> topological_sort_impl() const;

  std::string name_ = "application";
  std::vector<TaskNode> tasks_;
  std::vector<Link> links_;
  std::unordered_map<std::string, TaskId> by_label_;
  std::uint32_t next_id_ = 0;
};

}  // namespace vdce::afg
