#include "afg/levels.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace vdce::afg {

std::unordered_map<TaskId, double> compute_levels(const FlowGraph& graph,
                                                  const CostFn& cost) {
  const auto order = graph.topological_order();  // throws on cycle
  std::unordered_map<TaskId, double> levels;
  levels.reserve(order.size());
  // Walk in reverse topological order so every child is finished first.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskNode& node = graph.task(*it);
    double best_child = 0.0;
    for (const TaskId child : graph.children(*it)) {
      best_child = std::max(best_child, levels.at(child));
    }
    levels[*it] = cost(node) + best_child;
  }
  return levels;
}

std::vector<TaskId> priority_order(
    const FlowGraph& graph,
    const std::unordered_map<TaskId, double>& levels) {
  std::vector<TaskId> ids;
  ids.reserve(graph.task_count());
  for (const TaskNode& t : graph.tasks()) ids.push_back(t.id);
  std::sort(ids.begin(), ids.end(), [&](TaskId a, TaskId b) {
    const double la = levels.at(a);
    const double lb = levels.at(b);
    if (la != lb) return la > lb;
    return a < b;
  });
  return ids;
}

double critical_path_length(
    const FlowGraph& graph,
    const std::unordered_map<TaskId, double>& levels) {
  double best = 0.0;
  for (const TaskId id : graph.entry_tasks()) {
    best = std::max(best, levels.at(id));
  }
  return best;
}

}  // namespace vdce::afg
