#include "afg/serialize.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace vdce::afg {

using common::NotFoundError;
using common::ParseError;
using common::parse_double;
using common::parse_uint;
using common::split_ws;
using common::starts_with;
using common::trim;

std::string to_text(const FlowGraph& graph) {
  std::ostringstream os;
  os.precision(17);
  os << "# VDCE application flow graph\n";
  os << "app " << graph.name() << "\n";
  for (const TaskNode& t : graph.tasks()) {
    os << "task " << t.label << " " << t.library_task;
    const TaskProperties defaults;
    if (t.props.mode != defaults.mode) {
      os << " mode=" << to_string(t.props.mode);
    }
    if (t.props.num_processors != defaults.num_processors) {
      os << " procs=" << t.props.num_processors;
    }
    if (t.props.preferred_arch) {
      os << " arch=" << repo::to_string(*t.props.preferred_arch);
    }
    if (t.props.preferred_os) {
      os << " os=" << repo::to_string(*t.props.preferred_os);
    }
    if (t.props.input_size != defaults.input_size) {
      os << " size=" << t.props.input_size;
    }
    os << "\n";
  }
  for (const Link& l : graph.links()) {
    os << "link " << graph.task(l.from).label << " " << graph.task(l.to).label
       << " " << l.transfer_mb << "\n";
  }
  return os.str();
}

FlowGraph from_text(const std::string& text) {
  FlowGraph graph;
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  bool saw_app = false;

  auto fail = [&](const std::string& msg) -> ParseError {
    return ParseError("afg line " + std::to_string(lineno) + ": " + msg);
  };

  while (std::getline(is, line)) {
    ++lineno;
    const auto t = trim(line);
    if (t.empty() || t.front() == '#') continue;
    const auto fields = split_ws(t);
    const std::string& kw = fields[0];

    if (kw == "app") {
      if (fields.size() != 2) throw fail("expected: app <name>");
      if (saw_app) throw fail("duplicate app line");
      graph.set_name(fields[1]);
      saw_app = true;
    } else if (kw == "task") {
      if (fields.size() < 3) {
        throw fail("expected: task <label> <library_task> [k=v ...]");
      }
      TaskProperties props;
      for (std::size_t i = 3; i < fields.size(); ++i) {
        const auto eq = fields[i].find('=');
        if (eq == std::string::npos) {
          throw fail("expected key=value, got '" + fields[i] + "'");
        }
        const std::string key = fields[i].substr(0, eq);
        const std::string value = fields[i].substr(eq + 1);
        if (key == "mode") {
          props.mode = compute_mode_from_string(value);
        } else if (key == "procs") {
          props.num_processors =
              static_cast<unsigned>(parse_uint(value, "task procs"));
        } else if (key == "arch") {
          props.preferred_arch = repo::arch_from_string(value);
        } else if (key == "os") {
          props.preferred_os = repo::os_from_string(value);
        } else if (key == "size") {
          props.input_size = parse_double(value, "task size");
        } else {
          throw fail("unknown task property '" + key + "'");
        }
      }
      try {
        graph.add_task(fields[2], fields[1], props);
      } catch (const common::VdceError& e) {
        throw fail(e.what());
      }
    } else if (kw == "link") {
      if (fields.size() != 4) {
        throw fail("expected: link <from> <to> <transfer_mb>");
      }
      const auto from = graph.find_by_label(fields[1]);
      const auto to = graph.find_by_label(fields[2]);
      if (!from) throw fail("unknown task label '" + fields[1] + "'");
      if (!to) throw fail("unknown task label '" + fields[2] + "'");
      try {
        graph.add_link(*from, *to, parse_double(fields[3], "link size"));
      } catch (const common::VdceError& e) {
        throw fail(e.what());
      }
    } else {
      throw fail("unknown directive '" + kw + "'");
    }
  }
  return graph;
}

void save_file(const FlowGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw NotFoundError("cannot write " + path);
  out << to_text(graph);
}

FlowGraph load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw NotFoundError("cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_text(buf.str());
}

std::string to_dot(const FlowGraph& graph) {
  std::ostringstream os;
  os << "digraph \"" << graph.name() << "\" {\n";
  os << "  rankdir=TB;\n  node [shape=box];\n";
  for (const TaskNode& t : graph.tasks()) {
    os << "  \"" << t.label << "\" [label=\"" << t.label << "\\n("
       << t.library_task << ")\"];\n";
  }
  for (const Link& l : graph.links()) {
    os << "  \"" << graph.task(l.from).label << "\" -> \""
       << graph.task(l.to).label << "\" [label=\"" << l.transfer_mb
       << " MB\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace vdce::afg
