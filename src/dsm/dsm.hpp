// Distributed shared memory for VDCE tasks.
//
// "We are also implementing a distributed shared memory model that will
//  allow VDCE users to describe their applications using shared-memory
//  paradigm."  (Section 3 — the paper's named future work, implemented
//  here.)
//
// Design: an object-granularity DSM with a home/directory server and
// write-through invalidation, plus a lock service for release-style
// synchronisation:
//
//   * every named variable has its authoritative copy at the DsmServer
//     (the "home node", colocated with the Site Manager in a deployed
//     VDCE);
//   * a DsmNode (one per participating machine/task) caches variables
//     on read; a write goes through to the home, which invalidates
//     every other cached copy (directory/copyset protocol);
//   * invalidations are applied at the caching node's next DSM
//     operation, so a node observes its own operations in order and
//     lock-protected sections are sequentially consistent (acquire
//     drains invalidations before returning);
//   * named locks are granted FIFO by the server.
//
// The transport is the runtime's message-queue fabric; all coordination
// is real cross-thread message passing, not shared state.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/queue.hpp"
#include "tasklib/payload.hpp"

namespace vdce::dsm {

/// Per-node operation counters.
struct DsmStats {
  std::size_t reads = 0;
  std::size_t cache_hits = 0;
  std::size_t writes = 0;
  std::size_t invalidations_applied = 0;
  std::size_t lock_acquires = 0;
};

/// Server-side counters.
struct DsmServerStats {
  std::size_t requests = 0;
  std::size_t invalidations_sent = 0;
  std::size_t lock_grants = 0;
  std::size_t lock_queue_peak = 0;
};

class DsmServer;

/// One machine's endpoint into the shared memory.
///
/// Thread-compatible: one task thread uses one node.  Different nodes
/// are fully concurrent.
class DsmNode {
 public:
  ~DsmNode();
  DsmNode(const DsmNode&) = delete;
  DsmNode& operator=(const DsmNode&) = delete;

  /// Reads a variable (cached copy if still valid, else fetched from
  /// the home).  Throws NotFoundError if it was never written.
  [[nodiscard]] tasklib::Payload read(const std::string& var);

  /// Writes a variable through to the home node; every other node's
  /// cached copy is invalidated.
  void write(const std::string& var, const tasklib::Payload& value);

  /// Acquires a named lock (FIFO); blocks until granted.  Drains
  /// pending invalidations, so reads after acquire see writes made
  /// before the corresponding release.
  void acquire(const std::string& lock);

  /// Releases a lock this node holds.  Throws StateError otherwise.
  void release(const std::string& lock);

  /// True if the node's cache holds a valid copy (test/introspection).
  [[nodiscard]] bool cached(const std::string& var);

  [[nodiscard]] const DsmStats& stats() const { return stats_; }
  [[nodiscard]] std::uint32_t id() const { return id_; }

 private:
  friend class DsmServer;
  DsmNode(DsmServer* server, std::uint32_t id) : server_(server), id_(id) {}

  void apply_invalidations();

  struct CacheEntry {
    tasklib::Payload value;
    std::uint64_t version = 0;
  };

  DsmServer* server_;
  std::uint32_t id_;
  std::map<std::string, CacheEntry> cache_;
  DsmStats stats_;
};

/// The home/directory node.
class DsmServer {
 public:
  DsmServer();
  ~DsmServer();
  DsmServer(const DsmServer&) = delete;
  DsmServer& operator=(const DsmServer&) = delete;

  /// Creates a node endpoint.  Nodes must not outlive the server.
  [[nodiscard]] std::unique_ptr<DsmNode> attach();

  /// Stops the service thread (idempotent; destructor calls it).
  void stop();

  [[nodiscard]] DsmServerStats stats() const;

 private:
  friend class DsmNode;

  enum class Op : std::uint8_t { kRead, kWrite, kAcquire, kRelease };

  struct Request {
    Op op;
    std::uint32_t node = 0;
    std::string name;
    std::vector<std::byte> data;  // write payload wire image
  };

  struct Reply {
    bool ok = false;
    std::string error;
    std::vector<std::byte> data;  // read result wire image
    std::uint64_t version = 0;
  };

  struct NodeEndpoint {
    common::MessageQueue<Reply> replies;
    common::MessageQueue<std::string> invalidations;
  };

  /// Blocking RPC used by DsmNode.
  Reply call(const Request& request);

  /// The endpoint of one node (thread-safe lookup).
  [[nodiscard]] NodeEndpoint* endpoints_at(std::uint32_t id);

  void serve();
  void handle(const Request& request);

  struct Variable {
    std::vector<std::byte> wire;
    std::uint64_t version = 0;
    std::vector<std::uint32_t> copyset;  // nodes with cached copies
  };

  struct Lock {
    std::optional<std::uint32_t> holder;
    std::vector<std::uint32_t> waiters;  // FIFO
  };

  common::MessageQueue<Request> requests_;
  mutable std::mutex mu_;  // guards endpoints_ and stats_
  std::vector<std::unique_ptr<NodeEndpoint>> endpoints_;
  DsmServerStats stats_;

  // Service-thread state (no locking needed).
  std::map<std::string, Variable> variables_;
  std::map<std::string, Lock> locks_;

  std::jthread service_;
  bool stopped_ = false;
};

}  // namespace vdce::dsm
