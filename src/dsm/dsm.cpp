#include "dsm/dsm.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace vdce::dsm {

using common::NotFoundError;
using common::StateError;

// ----------------------------------------------------------------- node

DsmNode::~DsmNode() = default;

void DsmNode::apply_invalidations() {
  auto& endpoint = *server_->endpoints_at(id_);
  while (auto var = endpoint.invalidations.try_pop()) {
    cache_.erase(*var);
    ++stats_.invalidations_applied;
  }
}

tasklib::Payload DsmNode::read(const std::string& var) {
  apply_invalidations();
  ++stats_.reads;
  if (const auto it = cache_.find(var); it != cache_.end()) {
    ++stats_.cache_hits;
    return it->second.value;
  }
  DsmServer::Request req;
  req.op = DsmServer::Op::kRead;
  req.node = id_;
  req.name = var;
  const auto reply = server_->call(req);
  if (!reply.ok) throw NotFoundError(reply.error);
  auto payload = tasklib::Payload::from_wire(reply.data);
  cache_[var] = CacheEntry{payload, reply.version};
  return payload;
}

void DsmNode::write(const std::string& var, const tasklib::Payload& value) {
  apply_invalidations();
  ++stats_.writes;
  DsmServer::Request req;
  req.op = DsmServer::Op::kWrite;
  req.node = id_;
  req.name = var;
  req.data = value.to_wire();
  const auto reply = server_->call(req);
  if (!reply.ok) throw StateError(reply.error);
  // Our own copy stays valid (the home invalidates everyone else).
  cache_[var] = CacheEntry{value, reply.version};
}

void DsmNode::acquire(const std::string& lock) {
  DsmServer::Request req;
  req.op = DsmServer::Op::kAcquire;
  req.node = id_;
  req.name = lock;
  const auto reply = server_->call(req);  // blocks until granted
  if (!reply.ok) throw StateError(reply.error);
  ++stats_.lock_acquires;
  // Entering the critical section: observe every prior release's
  // writes.
  apply_invalidations();
}

void DsmNode::release(const std::string& lock) {
  DsmServer::Request req;
  req.op = DsmServer::Op::kRelease;
  req.node = id_;
  req.name = lock;
  const auto reply = server_->call(req);
  if (!reply.ok) throw StateError(reply.error);
}

bool DsmNode::cached(const std::string& var) {
  apply_invalidations();
  return cache_.contains(var);
}

// --------------------------------------------------------------- server

DsmServer::DsmServer() {
  service_ = std::jthread([this] { serve(); });
}

DsmServer::~DsmServer() { stop(); }

void DsmServer::stop() {
  if (!stopped_) {
    stopped_ = true;
    requests_.close();
  }
  if (service_.joinable()) service_.join();
}

std::unique_ptr<DsmNode> DsmServer::attach() {
  std::lock_guard lk(mu_);
  const auto id = static_cast<std::uint32_t>(endpoints_.size());
  endpoints_.push_back(std::make_unique<NodeEndpoint>());
  return std::unique_ptr<DsmNode>(new DsmNode(this, id));
}

DsmServer::NodeEndpoint* DsmServer::endpoints_at(std::uint32_t id) {
  std::lock_guard lk(mu_);
  return endpoints_[id].get();
}

DsmServerStats DsmServer::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

DsmServer::Reply DsmServer::call(const Request& request) {
  NodeEndpoint* endpoint = endpoints_at(request.node);
  if (!requests_.push(request)) {
    throw StateError("DSM server is stopped");
  }
  auto reply = endpoint->replies.pop();
  if (!reply) throw StateError("DSM server is stopped");
  return *reply;
}

void DsmServer::serve() {
  while (auto request = requests_.pop()) {
    {
      std::lock_guard lk(mu_);
      ++stats_.requests;
    }
    handle(*request);
  }
  // Drain: wake any node blocked on a reply.
  std::lock_guard lk(mu_);
  for (auto& endpoint : endpoints_) endpoint->replies.close();
}

void DsmServer::handle(const Request& request) {
  NodeEndpoint* requester = endpoints_at(request.node);

  switch (request.op) {
    case Op::kRead: {
      Reply reply;
      const auto it = variables_.find(request.name);
      if (it == variables_.end()) {
        reply.error = "unknown DSM variable: " + request.name;
      } else {
        reply.ok = true;
        reply.data = it->second.wire;
        reply.version = it->second.version;
        auto& copyset = it->second.copyset;
        if (std::find(copyset.begin(), copyset.end(), request.node) ==
            copyset.end()) {
          copyset.push_back(request.node);
        }
      }
      requester->replies.push(std::move(reply));
      return;
    }
    case Op::kWrite: {
      Variable& var = variables_[request.name];
      var.wire = request.data;
      ++var.version;
      // Invalidate every other cached copy.
      for (const std::uint32_t node : var.copyset) {
        if (node == request.node) continue;
        endpoints_at(node)->invalidations.push(request.name);
        std::lock_guard lk(mu_);
        ++stats_.invalidations_sent;
      }
      var.copyset.clear();
      var.copyset.push_back(request.node);  // the writer's copy is fresh
      Reply reply;
      reply.ok = true;
      reply.version = var.version;
      requester->replies.push(std::move(reply));
      return;
    }
    case Op::kAcquire: {
      Lock& lock = locks_[request.name];
      if (!lock.holder) {
        lock.holder = request.node;
        Reply reply;
        reply.ok = true;
        requester->replies.push(std::move(reply));
        std::lock_guard lk(mu_);
        ++stats_.lock_grants;
      } else {
        lock.waiters.push_back(request.node);  // reply deferred
        std::lock_guard lk(mu_);
        stats_.lock_queue_peak =
            std::max(stats_.lock_queue_peak, lock.waiters.size());
      }
      return;
    }
    case Op::kRelease: {
      const auto it = locks_.find(request.name);
      Reply reply;
      if (it == locks_.end() || it->second.holder != request.node) {
        reply.error = "release of a lock not held: " + request.name;
        requester->replies.push(std::move(reply));
        return;
      }
      reply.ok = true;
      requester->replies.push(std::move(reply));
      Lock& lock = it->second;
      if (lock.waiters.empty()) {
        lock.holder.reset();
      } else {
        const std::uint32_t next = lock.waiters.front();
        lock.waiters.erase(lock.waiters.begin());
        lock.holder = next;
        Reply grant;
        grant.ok = true;
        endpoints_at(next)->replies.push(std::move(grant));
        std::lock_guard lk(mu_);
        ++stats_.lock_grants;
      }
      return;
    }
  }
}

}  // namespace vdce::dsm
