// Minimal leveled, thread-safe logger.
//
// Components log through free functions; the sink and minimum level are
// process-global.  Benches and tests set the level to `kWarn` to keep
// output quiet; examples run at `kInfo` so the module interactions the
// paper diagrams (Figures 2, 6, 7) are visible as a trace.
#pragma once

#include <sstream>
#include <string>

namespace vdce::common {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Sets the global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emits one line to the sink (stderr by default).  Thread-safe.
void log_line(LogLevel level, const std::string& component,
              const std::string& message);

/// Redirects log output into a string buffer (tests); pass nullptr to
/// restore stderr.
void set_log_capture(std::ostringstream* capture);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_trace(const std::string& component, Args&&... args) {
  if (log_level() <= LogLevel::kTrace)
    log_line(LogLevel::kTrace, component,
             detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_debug(const std::string& component, Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_line(LogLevel::kDebug, component,
             detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(const std::string& component, Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_line(LogLevel::kInfo, component,
             detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(const std::string& component, Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_line(LogLevel::kWarn, component,
             detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(const std::string& component, Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log_line(LogLevel::kError, component,
             detail::concat(std::forward<Args>(args)...));
}

}  // namespace vdce::common
