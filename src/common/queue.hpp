// Closable thread-safe FIFO used for message passing between runtime
// components (CP.mess: prefer message queues over shared mutable state).
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace vdce::common {

/// Unbounded multi-producer multi-consumer queue.
///
/// `close()` wakes all blocked consumers; after close, `pop()` drains the
/// remaining items and then returns nullopt.  Pushing to a closed queue
/// is a no-op returning false, which lets producers discover shutdown
/// without racing the consumer.
template <typename T>
class MessageQueue {
 public:
  /// Enqueues an item; returns false (dropping it) if the queue is closed.
  bool push(T item) {
    {
      std::lock_guard lk(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Enqueues a whole batch under one lock with one wakeup (the
  /// event-loop fast path: N frames parsed per epoll wakeup cost one
  /// notify, not N).  Items are moved out of `items`; returns the
  /// number enqueued — 0 if the queue is closed, in which case the
  /// batch is dropped, matching push().
  std::size_t push_many(std::vector<T>& items) {
    if (items.empty()) return 0;
    std::size_t n = 0;
    {
      std::lock_guard lk(mu_);
      if (closed_) return 0;
      n = items.size();
      for (T& item : items) items_.push_back(std::move(item));
    }
    if (n == 1) {
      cv_.notify_one();
    } else {
      cv_.notify_all();
    }
    items.clear();
    return n;
  }

  /// Blocks until an item is available or the queue is closed and empty.
  std::optional<T> pop() {
    std::unique_lock lk(mu_);
    cv_.wait(lk, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard lk(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Waits at most `timeout` for an item.
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lk(mu_);
    if (!cv_.wait_for(lk, timeout,
                      [&] { return !items_.empty() || closed_; })) {
      return std::nullopt;
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void close() {
    {
      std::lock_guard lk(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lk(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lk(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace vdce::common
