// Shared fixed-size thread pool: the one sanctioned fan-out primitive.
//
// The runtime modules used to spin up ad-hoc std::jthread batches for
// every parallel section (datamgr transfers, engine machines, dsm
// service).  Scheduling adds hot-path parallelism (the Figure-4 AFG
// multicast and Predict scoring), which needs reusable workers instead
// of per-call thread churn.  This pool provides:
//
//   * submit(fn)            -- run one job, get a std::future;
//   * parallel_for(...)     -- grain-size-chunked index loop where the
//                              CALLER also executes chunks, so nesting a
//                              parallel_for inside a pool job can never
//                              deadlock (queued helpers are optional:
//                              a helper that starts late finds no work
//                              left and returns immediately).
//
// parallel_for makes no ordering promise: the body must write results
// by index (or otherwise commute) so that the outcome is identical to
// the serial loop -- parallelism changes wall-clock, never results.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/queue.hpp"

namespace vdce::common {

/// Fixed-size worker pool over a closable MessageQueue.
class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);

  /// Closes the queue and joins the workers; queued jobs still run.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of pool workers (excludes callers participating in
  /// parallel_for).
  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// The process-wide pool, sized to the hardware.  Modules share it
  /// instead of sizing private pools against each other.
  static ThreadPool& shared();

  /// Runs `fn` on a pool worker; the future carries its result or
  /// exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

  /// Calls `body(i)` for every i in [begin, end), in chunks of `grain`
  /// indices.  At most `max_helpers` pool workers assist the calling
  /// thread; with 0 helpers (or a range no bigger than one grain) the
  /// loop runs serially inline.  Returns when every index has been
  /// processed; the first exception thrown by any chunk is rethrown
  /// (remaining chunks still run).  Safe to call from inside a pool job.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    std::function<void(std::size_t)> body,
                    std::size_t max_helpers);

 private:
  void enqueue(std::function<void()> job);

  MessageQueue<std::function<void()>> jobs_;
  std::vector<std::jthread> workers_;
};

}  // namespace vdce::common
