#include "common/trace.hpp"

#ifndef VDCE_TRACE_DISABLED

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace vdce::common {

namespace {

std::atomic<TraceRecorder*> g_recorder{nullptr};

/// Small dense per-thread lane id (stable for the thread's lifetime);
/// doubles as the shard selector.
std::uint32_t thread_lane() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t lane =
      next.fetch_add(1, std::memory_order_relaxed);
  return lane;
}

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// JSON string escaping (control characters, quotes, backslashes).
void append_json_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

struct TraceRecorder::Shard {
  mutable std::mutex mu;
  std::vector<TraceEvent> events;
};

TraceRecorder::TraceRecorder() : epoch_ns_(steady_ns()) {
  shards_.reserve(kTraceShards);
  for (std::size_t i = 0; i < kTraceShards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

TraceRecorder::~TraceRecorder() {
  // Guard against a recorder destroyed while still installed.
  TraceRecorder* expected = this;
  g_recorder.compare_exchange_strong(expected, nullptr,
                                     std::memory_order_acq_rel);
}

std::uint64_t TraceRecorder::now_us() const {
  return (steady_ns() - epoch_ns_) / 1000;
}

void TraceRecorder::record(TraceEvent event) {
  const std::uint32_t lane = thread_lane();
  event.tid = lane;
  Shard& shard = *shards_[lane % kTraceShards];
  std::lock_guard lk(shard.mu);
  shard.events.push_back(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<TraceEvent> out;
  for (const auto& shard : shards_) {
    std::lock_guard lk(shard->mu);
    out.insert(out.end(), shard->events.begin(), shard->events.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return out;
}

std::size_t TraceRecorder::event_count() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lk(shard->mu);
    n += shard->events.size();
  }
  return n;
}

void TraceRecorder::clear() {
  for (auto& shard : shards_) {
    std::lock_guard lk(shard->mu);
    shard->events.clear();
  }
}

void TraceRecorder::write_chrome_json(std::ostream& out) const {
  const auto events = snapshot();
  std::string buf;
  buf.reserve(events.size() * 96 + 64);
  buf += "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) buf += ',';
    first = false;
    buf += "{\"name\":\"";
    append_json_escaped(buf, ev.name);
    buf += "\",\"cat\":\"";
    append_json_escaped(buf, ev.category);
    buf += "\",\"ph\":\"";
    buf += ev.phase;
    buf += "\",\"pid\":1,\"tid\":";
    buf += std::to_string(ev.tid);
    buf += ",\"ts\":";
    buf += std::to_string(ev.ts_us);
    if (ev.phase == 'X') {
      buf += ",\"dur\":";
      buf += std::to_string(ev.dur_us);
    }
    if (ev.phase == 'i') buf += ",\"s\":\"t\"";  // thread-scoped instant
    if (!ev.args.empty()) {
      buf += ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : ev.args) {
        if (!first_arg) buf += ',';
        first_arg = false;
        buf += '"';
        append_json_escaped(buf, key);
        buf += "\":\"";
        append_json_escaped(buf, value);
        buf += '"';
      }
      buf += '}';
    }
    buf += '}';
  }
  buf += "]}";
  out << buf;
}

void TraceRecorder::write_chrome_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw StateError("cannot open trace output file " + path);
  }
  write_chrome_json(out);
}

std::string TraceRecorder::text_summary() const {
  const auto events = snapshot();
  struct Row {
    RunningStats durations;       // microseconds, spans only
    std::vector<double> samples;  // for the percentile columns
    std::size_t instants = 0;
  };
  std::map<std::pair<std::string, std::string>, Row> rows;
  for (const TraceEvent& ev : events) {
    Row& row = rows[{ev.category, ev.name}];
    if (ev.phase == 'X') {
      row.durations.add(static_cast<double>(ev.dur_us));
      row.samples.push_back(static_cast<double>(ev.dur_us));
    } else {
      ++row.instants;
    }
  }

  std::ostringstream out;
  out << "trace summary (" << events.size() << " events)\n";
  out << "category,name,spans,instants,total_ms,mean_us,p50_us,p95_us,"
         "max_us\n";
  for (auto& [key, row] : rows) {
    out << key.first << ',' << key.second << ',' << row.durations.count()
        << ',' << row.instants << ',';
    if (row.durations.count() > 0) {
      out << row.durations.mean() *
                 static_cast<double>(row.durations.count()) / 1000.0
          << ',' << row.durations.mean() << ','
          << percentile(row.samples, 50) << ','
          << percentile(row.samples, 95) << ',' << row.durations.max();
    } else {
      out << "0,0,0,0,0";
    }
    out << '\n';
  }
  return out.str();
}

void TraceRecorder::install(TraceRecorder* recorder) {
  g_recorder.store(recorder, std::memory_order_release);
}

TraceRecorder* TraceRecorder::current() {
  return g_recorder.load(std::memory_order_acquire);
}

bool trace_enabled() { return TraceRecorder::current() != nullptr; }

void trace_instant(const char* name, const char* category,
                   std::vector<std::pair<std::string, std::string>> args) {
  TraceRecorder* recorder = TraceRecorder::current();
  if (recorder == nullptr) return;
  TraceEvent ev;
  ev.name = name;
  ev.category = category;
  ev.phase = 'i';
  ev.ts_us = recorder->now_us();
  ev.args = std::move(args);
  recorder->record(std::move(ev));
}

}  // namespace vdce::common

#endif  // !VDCE_TRACE_DISABLED

// TraceSession is built in both modes (inert when disabled).
#include <cstdio>
#include <cstdlib>

namespace vdce::common {

TraceSession::TraceSession() {
  const char* env = std::getenv("VDCE_TRACE");
  if (env != nullptr && env[0] != '\0') path_ = env;
#ifndef VDCE_TRACE_DISABLED
  if (!path_.empty()) {
    recorder_ = std::make_unique<TraceRecorder>();
    TraceRecorder::install(recorder_.get());
  }
#endif
}

TraceSession::TraceSession(std::string path) : path_(std::move(path)) {
#ifndef VDCE_TRACE_DISABLED
  if (!path_.empty()) {
    recorder_ = std::make_unique<TraceRecorder>();
    TraceRecorder::install(recorder_.get());
  }
#endif
}

TraceSession::~TraceSession() {
#ifndef VDCE_TRACE_DISABLED
  if (recorder_ == nullptr) return;
  TraceRecorder::install(nullptr);
  try {
    recorder_->write_chrome_json(path_);
    std::fprintf(stderr, "trace: %zu events -> %s\n%s",
                 recorder_->event_count(), path_.c_str(),
                 recorder_->text_summary().c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace: write failed: %s\n", e.what());
  }
#endif
}

}  // namespace vdce::common
