// Portable wire format for inter-task and control messages.
//
// The paper's Data Manager "provides data conversions that might be
// needed when an application execution environment includes heterogeneous
// machines".  We implement that as an explicit network byte order
// (big-endian) wire format: every value is converted on write and read
// regardless of host endianness, so a message produced on any machine is
// readable on any other.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace vdce::common {

/// Append-only encoder producing big-endian bytes.
class WireWriter {
 public:
  void write_u8(std::uint8_t v) { buf_.push_back(std::byte{v}); }
  void write_u16(std::uint16_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v) { write_u64(static_cast<std::uint64_t>(v)); }
  /// IEEE-754 double carried as its big-endian bit pattern.
  void write_f64(double v);
  /// Length-prefixed (u32) byte string.
  void write_string(std::string_view s);
  /// Length-prefixed (u32) raw bytes.
  void write_bytes(std::span<const std::byte> bytes);
  /// Length-prefixed (u32) vector of doubles.
  void write_f64_vector(std::span<const double> values);

  [[nodiscard]] const std::vector<std::byte>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::byte> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::byte> buf_;
};

/// Decoder over a byte span; throws ParseError on truncated input.
class WireReader {
 public:
  explicit WireReader(std::span<const std::byte> data) : data_(data) {}

  [[nodiscard]] std::uint8_t read_u8();
  [[nodiscard]] std::uint16_t read_u16();
  [[nodiscard]] std::uint32_t read_u32();
  [[nodiscard]] std::uint64_t read_u64();
  [[nodiscard]] std::int64_t read_i64() {
    return static_cast<std::int64_t>(read_u64());
  }
  [[nodiscard]] double read_f64();
  [[nodiscard]] std::string read_string();
  [[nodiscard]] std::vector<std::byte> read_bytes();
  [[nodiscard]] std::vector<double> read_f64_vector();

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return remaining() == 0; }

 private:
  void need(std::size_t n) const {
    if (remaining() < n) throw ParseError("wire message truncated");
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace vdce::common
