// Per-task execution tracing (design decision D10 in DESIGN.md).
//
// The paper's Monitor daemons give the *control plane* visibility; this
// recorder gives the *application plane* the same: every task attempt,
// scheduling decision, and retry/re-placement event becomes a span or
// instant event on a shared timeline, exportable as Chrome trace-event
// JSON (chrome://tracing, Perfetto) or a per-category text summary.
//
// Design:
//   * One process-wide TraceRecorder is installed (or none).  Events are
//     appended to one of kTraceShards lock-sharded buffers, picked by a
//     cheap per-thread id, so the engine's machine threads and the
//     scheduler's pool workers never contend on a single mutex.
//   * When no recorder is installed, every call site reduces to one
//     relaxed atomic load (ScopedSpan holds a null recorder and skips
//     all argument formatting).
//   * When VDCE_TRACE_DISABLED is defined the whole API compiles to
//     empty inline functions; static_asserts below check the no-op
//     sink really is stateless, so the disabled mode cannot regress
//     into carrying hidden cost.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace vdce::common {

/// One recorded event.  `phase` follows the Chrome trace-event format:
/// 'X' = complete span (ts + dur), 'i' = instant event.
struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'X';
  std::uint64_t ts_us = 0;   // microseconds since the recorder's epoch
  std::uint64_t dur_us = 0;  // span duration ('X' only)
  std::uint32_t tid = 0;     // recording thread's lane
  std::vector<std::pair<std::string, std::string>> args;
};

#ifndef VDCE_TRACE_DISABLED

/// Lock-sharded event recorder with Chrome trace-event JSON export.
class TraceRecorder {
 public:
  static constexpr std::size_t kTraceShards = 16;

  TraceRecorder();
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Microseconds since this recorder's construction (steady clock).
  [[nodiscard]] std::uint64_t now_us() const;

  /// Appends one event (thread-safe; shards by recording thread).
  void record(TraceEvent event);

  /// All events so far, merged across shards and sorted by timestamp.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  [[nodiscard]] std::size_t event_count() const;

  /// Drops every recorded event (the epoch is kept).
  void clear();

  /// Writes the Chrome trace-event JSON object ({"traceEvents": [...]}).
  void write_chrome_json(std::ostream& out) const;
  /// Same, to a file; throws StateError when the file cannot be opened.
  void write_chrome_json(const std::string& path) const;

  /// Per-(category, name) summary: count, total/mean/p50/p95/max span
  /// durations (common::stats percentile + RunningStats underneath).
  [[nodiscard]] std::string text_summary() const;

  /// Installs `recorder` as the process-wide sink (nullptr uninstalls).
  /// The caller keeps ownership and must uninstall before destruction.
  static void install(TraceRecorder* recorder);
  [[nodiscard]] static TraceRecorder* current();

 private:
  struct Shard;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint64_t epoch_ns_;  // steady_clock epoch of this recorder
};

/// Whether a recorder is currently installed (one relaxed atomic load).
[[nodiscard]] bool trace_enabled();

/// RAII span: records one 'X' event from construction to destruction
/// when a recorder is installed, and is inert (no clock reads, no
/// allocation) otherwise.  `name` and `category` must outlive the span
/// (string literals at every call site).
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* category)
      : recorder_(TraceRecorder::current()), name_(name), category_(category) {
    if (recorder_ != nullptr) start_us_ = recorder_->now_us();
  }
  ~ScopedSpan() {
    if (recorder_ == nullptr) return;
    TraceEvent ev;
    ev.name = owned_name_.empty() ? std::string(name_)
                                  : std::move(owned_name_);
    ev.category = category_;
    ev.phase = 'X';
    ev.ts_us = start_us_;
    const std::uint64_t end = recorder_->now_us();
    ev.dur_us = end > start_us_ ? end - start_us_ : 0;
    ev.args = std::move(args_);
    recorder_->record(std::move(ev));
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a key/value annotation (no-op when tracing is off).
  void arg(const char* key, std::string value) {
    if (recorder_ != nullptr) args_.emplace_back(key, std::move(value));
  }
  void arg(const char* key, const char* value) {
    if (recorder_ != nullptr) args_.emplace_back(key, value);
  }
  template <typename T>
    requires std::is_arithmetic_v<T>
  void arg(const char* key, T value) {
    if (recorder_ != nullptr) {
      args_.emplace_back(key, std::to_string(value));
    }
  }
  /// Overrides the span name (e.g. with a task label).
  void rename(std::string name) {
    if (recorder_ != nullptr) owned_name_ = std::move(name);
  }
  [[nodiscard]] bool active() const { return recorder_ != nullptr; }

 private:
  TraceRecorder* recorder_;
  const char* name_;
  const char* category_;
  std::string owned_name_;  // set by rename(); wins over name_
  std::uint64_t start_us_ = 0;
  std::vector<std::pair<std::string, std::string>> args_;

  friend class TraceRecorder;
};

/// Records one instant event (no-op when tracing is off).
void trace_instant(
    const char* name, const char* category,
    std::vector<std::pair<std::string, std::string>> args = {});

#else  // VDCE_TRACE_DISABLED: the compile-time no-op sink.

class TraceRecorder {
 public:
  static void install(TraceRecorder*) {}
  [[nodiscard]] static TraceRecorder* current() { return nullptr; }
};

[[nodiscard]] constexpr bool trace_enabled() { return false; }

class ScopedSpan {
 public:
  constexpr ScopedSpan(const char*, const char*) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  template <typename T>
  constexpr void arg(const char*, T&&) {}
  constexpr void rename(const std::string&) {}
  [[nodiscard]] constexpr bool active() const { return false; }
};

constexpr void trace_instant(
    const char*, const char*,
    std::vector<std::pair<std::string, std::string>> = {}) {}

// The disabled-mode guarantee, checked at compile time: the sink
// carries no state, so the optimizer erases every call site.
static_assert(std::is_empty_v<ScopedSpan>,
              "disabled-mode ScopedSpan must be stateless");
static_assert(std::is_empty_v<TraceRecorder>,
              "disabled-mode TraceRecorder must be stateless");

#endif  // VDCE_TRACE_DISABLED

/// RAII helper for mains (benches, examples): when `path` is non-empty
/// -- or, with the default argument, when the VDCE_TRACE environment
/// variable names a file -- installs a fresh recorder for the scope and
/// writes the Chrome JSON (plus a text summary to stderr) on
/// destruction.  Does nothing in the disabled build or when no path is
/// configured.
class TraceSession {
 public:
  TraceSession();  // path from the VDCE_TRACE environment variable
  explicit TraceSession(std::string path);
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  [[nodiscard]] bool active() const { return recorder_ != nullptr; }

 private:
#ifndef VDCE_TRACE_DISABLED
  std::unique_ptr<TraceRecorder> recorder_;
#else
  void* recorder_ = nullptr;
#endif
  std::string path_;
};

}  // namespace vdce::common
