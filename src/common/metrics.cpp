#include "common/metrics.hpp"

#include <sstream>

namespace vdce::common {

void Histogram::observe(double v) {
  std::lock_guard lk(mu_);
  stats_.add(v);
  if (reservoir_.size() < kReservoirCapacity) {
    reservoir_.push_back(v);
  } else {
    reservoir_[next_slot_] = v;
    next_slot_ = (next_slot_ + 1) % kReservoirCapacity;
  }
}

HistogramSnapshot Histogram::snapshot() const {
  std::vector<double> samples;
  HistogramSnapshot snap;
  {
    std::lock_guard lk(mu_);
    snap.count = stats_.count();
    snap.mean = stats_.mean();
    snap.stddev = stats_.stddev();
    snap.min = stats_.min();
    snap.max = stats_.max();
    samples = reservoir_;
  }
  if (!samples.empty()) {
    snap.p50 = percentile(samples, 50);
    snap.p95 = percentile(std::move(samples), 95);
  }
  return snap;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lk(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_[std::string(name)];
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lk(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_[std::string(name)];
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard lk(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_[std::string(name)];
}

std::string MetricsRegistry::text_summary() const {
  std::ostringstream out;
  out << "metric,kind,value\n";
  std::lock_guard lk(mu_);
  for (const auto& [name, c] : counters_) {
    out << name << ",counter," << c.value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    out << name << ",gauge," << g.value() << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    const auto s = h.snapshot();
    out << name << ",histogram,count=" << s.count << " mean=" << s.mean
        << " p50=" << s.p50 << " p95=" << s.p95 << " max=" << s.max << '\n';
  }
  return out.str();
}

void Histogram::reset() {
  std::lock_guard lk(mu_);
  stats_ = RunningStats{};
  reservoir_.clear();
  next_slot_ = 0;
}

void MetricsRegistry::reset() {
  std::lock_guard lk(mu_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace vdce::common
