// Application-level metrics: counters, gauges, and histograms behind a
// process-wide registry (design decision D10 in DESIGN.md).
//
// Where the trace recorder answers "what happened, when" the registry
// answers "how much, how often": retry counts, cache hit provenance,
// channel traffic, monitoring report volume.  Counters and gauges are
// single relaxed atomics (always on -- an increment costs a few
// nanoseconds, so no disable switch is needed); histograms take a small
// lock and reuse the common::stats Welford accumulator plus a bounded
// sample reservoir for percentiles.
//
// Hot paths resolve their instruments ONCE (registry lookup is a
// mutex-guarded map walk) and keep the returned reference: instrument
// references are stable for the registry's lifetime.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hpp"

namespace vdce::common {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  /// Test/bench support (see MetricsRegistry::reset).
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written level (e.g. a queue depth or cache residency).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  /// Test/bench support (see MetricsRegistry::reset).
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time histogram statistics.
struct HistogramSnapshot {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

/// Value distribution: Welford mean/variance over every observation,
/// nearest-rank percentiles over a bounded reservoir of the most recent
/// observations.
class Histogram {
 public:
  /// At most this many samples back the percentile columns (a ring of
  /// the most recent observations).
  static constexpr std::size_t kReservoirCapacity = 4096;

  void observe(double v);
  [[nodiscard]] HistogramSnapshot snapshot() const;
  /// Test/bench support (see MetricsRegistry::reset).
  void reset();

 private:
  mutable std::mutex mu_;
  RunningStats stats_;
  std::vector<double> reservoir_;
  std::size_t next_slot_ = 0;
};

/// Named instrument registry.  Thread-safe; returned references stay
/// valid for the registry's lifetime.  Names are dotted paths
/// ("engine.retries", "datamgr.bytes_sent").
class MetricsRegistry {
 public:
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  /// CSV-style dump of every instrument, sorted by name.
  [[nodiscard]] std::string text_summary() const;

  /// Zeroes every counter/gauge and drops histogram state.  Instrument
  /// references stay valid.  Test/bench support; not for hot paths.
  void reset();

  /// The process-wide registry.
  [[nodiscard]] static MetricsRegistry& global();

 private:
  mutable std::mutex mu_;
  // node_handle-stable containers: instruments never move once created.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace vdce::common
