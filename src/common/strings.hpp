// Small string helpers shared by the .afg parser and the repository's
// line-oriented persistence format.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace vdce::common {

/// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Splits on `sep`, keeping empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Splits on runs of whitespace, dropping empty tokens.
[[nodiscard]] std::vector<std::string> split_ws(std::string_view s);

/// True if `s` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Parses a double; throws ParseError with `context` on failure.
[[nodiscard]] double parse_double(std::string_view s,
                                  std::string_view context);

/// Parses a non-negative integer; throws ParseError with `context` on
/// failure.
[[nodiscard]] unsigned long parse_uint(std::string_view s,
                                       std::string_view context);

/// Joins strings with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

}  // namespace vdce::common
