// Time source abstraction.
//
// VDCE components never read the wall clock directly: they take a Clock&.
// The real runtime uses SteadyClock; the discrete-event simulator and the
// tests use VirtualClock, whose time only moves when the owner advances
// it.  All times are seconds since an arbitrary epoch, carried as double
// (microsecond resolution is ample for both the WAN model and the
// monitoring periods the paper describes).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

namespace vdce::common {

/// Seconds since the clock's epoch.
using TimePoint = double;
/// Seconds.
using Duration = double;

/// Abstract monotonic time source.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in seconds since this clock's epoch.  Monotone
  /// non-decreasing.
  [[nodiscard]] virtual TimePoint now() const = 0;
};

/// Wall-clock backed monotonic source for the real runtime.
class SteadyClock final : public Clock {
 public:
  SteadyClock();
  [[nodiscard]] TimePoint now() const override;

 private:
  std::chrono::steady_clock::time_point epoch_;
};

/// Manually advanced clock for simulation and deterministic tests.
///
/// Thread-safe: the simulation driver advances it while worker components
/// read it.
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(TimePoint start = 0.0) : now_(start) {}

  [[nodiscard]] TimePoint now() const override {
    std::lock_guard lk(mu_);
    return now_;
  }

  /// Moves time forward by `dt` seconds.  `dt` must be non-negative.
  void advance(Duration dt);

  /// Jumps to absolute time `t`; `t` must not be in the past.
  void advance_to(TimePoint t);

 private:
  mutable std::mutex mu_;
  TimePoint now_;
};

}  // namespace vdce::common
