#include "common/thread_pool.hpp"

#include <algorithm>

namespace vdce::common {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] {
      while (auto job = jobs_.pop()) (*job)();
    });
  }
}

ThreadPool::~ThreadPool() { jobs_.close(); }

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

void ThreadPool::enqueue(std::function<void()> job) {
  jobs_.push(std::move(job));
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              std::size_t grain,
                              std::function<void(std::size_t)> body,
                              std::size_t max_helpers) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const std::size_t n = end - begin;
  const std::size_t chunks = (n + grain - 1) / grain;
  const std::size_t helpers =
      std::min({max_helpers, workers_.size(), chunks - 1});
  if (helpers == 0) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  // Chunk-claiming shared state.  Helpers are optional accelerators: a
  // helper that only starts after every chunk is claimed simply returns,
  // so the caller never waits on a job that has not been scheduled (the
  // property that makes nested parallel_for deadlock-free).  The state
  // (body included) is owned by shared_ptr because such a late helper
  // can outlive this call.
  struct State {
    std::function<void(std::size_t)> body;
    std::atomic<std::size_t> next;
    std::size_t end;
    std::size_t grain;
    std::atomic<std::size_t> done_chunks{0};
    std::size_t total_chunks;
    std::mutex mu;
    std::condition_variable cv;
    std::exception_ptr error;
  };
  auto state = std::make_shared<State>();
  state->body = std::move(body);
  state->next = begin;
  state->end = end;
  state->grain = grain;
  state->total_chunks = chunks;

  const auto run_chunks = [](const std::shared_ptr<State>& s) {
    for (;;) {
      const std::size_t start = s->next.fetch_add(s->grain);
      if (start >= s->end) return;
      const std::size_t stop = std::min(s->end, start + s->grain);
      try {
        for (std::size_t i = start; i < stop; ++i) s->body(i);
      } catch (...) {
        std::lock_guard lk(s->mu);
        if (!s->error) s->error = std::current_exception();
      }
      if (s->done_chunks.fetch_add(1) + 1 == s->total_chunks) {
        std::lock_guard lk(s->mu);
        s->cv.notify_all();
      }
    }
  };

  for (std::size_t i = 0; i < helpers; ++i) {
    enqueue([state, run_chunks] { run_chunks(state); });
  }
  run_chunks(state);

  std::unique_lock lk(state->mu);
  state->cv.wait(lk, [&] {
    return state->done_chunks.load() == state->total_chunks;
  });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace vdce::common
