// Statistics utilities used by monitoring and prediction.
//
// The paper's Group Manager forwards a workload measurement only when it
// falls outside the previous measurement's confidence interval, and the
// scheduler forecasts current load "using forecasting techniques based on
// a window of most recent workload measurements".  SlidingWindowStats and
// the forecasters below implement both.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

namespace vdce::common {

/// Incremental mean/variance over an unbounded stream (Welford).
class RunningStats {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 when fewer than 2 samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean/variance/confidence interval over the most recent `capacity`
/// samples.
class SlidingWindowStats {
 public:
  explicit SlidingWindowStats(std::size_t capacity);

  void add(double x);
  [[nodiscard]] std::size_t count() const { return window_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return window_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double last() const;

  /// Half-width of the confidence interval around the window mean,
  /// `z * s / sqrt(n)`; `z` defaults to 1.96 (95%).  Returns 0 for
  /// windows with fewer than 2 samples.
  [[nodiscard]] double confidence_halfwidth(double z = 1.96) const;

  [[nodiscard]] const std::deque<double>& samples() const { return window_; }

 private:
  std::size_t capacity_;
  std::deque<double> window_;
};

/// Forecasting strategies for the "current workload parameter" the
/// scheduler feeds into Predict().  (Design decision D5 in DESIGN.md.)
enum class ForecastMethod {
  kLastSample,            // use the newest measurement verbatim
  kWindowMean,            // mean of the measurement window
  kExponentialSmoothing,  // EWMA over the window
};

/// Produces a load forecast from a measurement window.
/// `alpha` is the EWMA weight of the newest sample.
[[nodiscard]] double forecast(const SlidingWindowStats& window,
                              ForecastMethod method, double alpha = 0.5);

/// Simple percentile over a copied, sorted sample set (nearest-rank).
[[nodiscard]] double percentile(std::vector<double> samples, double pct);

}  // namespace vdce::common
