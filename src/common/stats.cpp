#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace vdce::common {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  // m2_ is non-negative in exact arithmetic; floating-point roundoff can
  // push it fractionally below zero, which would turn stddev() into NaN.
  return std::max(0.0, m2_ / static_cast<double>(n_ - 1));
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

SlidingWindowStats::SlidingWindowStats(std::size_t capacity)
    : capacity_(capacity) {
  expects(capacity > 0, "SlidingWindowStats capacity must be positive");
}

void SlidingWindowStats::add(double x) {
  window_.push_back(x);
  if (window_.size() > capacity_) window_.pop_front();
}

double SlidingWindowStats::mean() const {
  if (window_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : window_) sum += v;
  return sum / static_cast<double>(window_.size());
}

double SlidingWindowStats::variance() const {
  // n < 2 has no sample variance (the n-1 denominator would be 0 or
  // negative): define it as 0 rather than dividing.
  if (window_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : window_) acc += (v - m) * (v - m);
  return std::max(0.0, acc / static_cast<double>(window_.size() - 1));
}

double SlidingWindowStats::stddev() const { return std::sqrt(variance()); }

double SlidingWindowStats::last() const {
  expects(!window_.empty(), "SlidingWindowStats::last on empty window");
  return window_.back();
}

double SlidingWindowStats::confidence_halfwidth(double z) const {
  if (window_.size() < 2) return 0.0;
  return z * stddev() / std::sqrt(static_cast<double>(window_.size()));
}

double forecast(const SlidingWindowStats& window, ForecastMethod method,
                double alpha) {
  if (window.empty()) return 0.0;
  switch (method) {
    case ForecastMethod::kLastSample:
      return window.last();
    case ForecastMethod::kWindowMean:
      return window.mean();
    case ForecastMethod::kExponentialSmoothing: {
      double s = window.samples().front();
      for (auto it = std::next(window.samples().begin());
           it != window.samples().end(); ++it) {
        s = alpha * *it + (1.0 - alpha) * s;
      }
      return s;
    }
  }
  return window.last();
}

double percentile(std::vector<double> samples, double pct) {
  expects(!samples.empty(), "percentile of empty sample set");
  // Note the range check also rejects NaN (it fails both comparisons).
  expects(pct >= 0.0 && pct <= 100.0, "percentile must be in [0,100]");
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(pct / 100.0 * static_cast<double>(samples.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return samples[std::min(idx, samples.size() - 1)];
}

}  // namespace vdce::common
