#include "common/clock.hpp"

#include "common/error.hpp"

namespace vdce::common {

SteadyClock::SteadyClock() : epoch_(std::chrono::steady_clock::now()) {}

TimePoint SteadyClock::now() const {
  const auto dt = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double>(dt).count();
}

void VirtualClock::advance(Duration dt) {
  expects(dt >= 0.0, "VirtualClock::advance requires dt >= 0");
  std::lock_guard lk(mu_);
  now_ += dt;
}

void VirtualClock::advance_to(TimePoint t) {
  std::lock_guard lk(mu_);
  expects(t >= now_, "VirtualClock::advance_to cannot move backwards");
  now_ = t;
}

}  // namespace vdce::common
