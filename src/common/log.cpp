#include "common/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace vdce::common {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mu;
std::ostringstream* g_capture = nullptr;  // guarded by g_sink_mu

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void set_log_capture(std::ostringstream* capture) {
  std::lock_guard lk(g_sink_mu);
  g_capture = capture;
}

void log_line(LogLevel level, const std::string& component,
              const std::string& message) {
  std::lock_guard lk(g_sink_mu);
  auto& os = g_capture ? static_cast<std::ostream&>(*g_capture) : std::cerr;
  os << "[" << level_name(level) << "] " << component << ": " << message
     << '\n';
}

}  // namespace vdce::common
