// Error types shared across VDCE modules.
//
// Construction/validation failures and protocol violations throw; steady
// state "expected" conditions (a host being down, a schedule not found)
// are reported through return values instead.
#pragma once

#include <stdexcept>
#include <string>

namespace vdce::common {

/// Base class of all VDCE exceptions.
class VdceError : public std::runtime_error {
 public:
  explicit VdceError(const std::string& what) : std::runtime_error(what) {}
};

/// A malformed input: bad AFG file, cyclic graph, unknown task name, ...
class ParseError : public VdceError {
 public:
  using VdceError::VdceError;
};

/// A request referencing an entity that does not exist.
class NotFoundError : public VdceError {
 public:
  using VdceError::VdceError;
};

/// An operation violating a protocol or object state invariant.
class StateError : public VdceError {
 public:
  using VdceError::VdceError;
};

/// Authentication failure against the user-accounts database.
class AuthError : public VdceError {
 public:
  using VdceError::VdceError;
};

/// A transport-level failure (socket error, closed channel, ...).
class TransportError : public VdceError {
 public:
  using VdceError::VdceError;
};

/// Precondition check used at public API boundaries.  Throws StateError.
inline void expects(bool cond, const char* msg) {
  if (!cond) throw StateError(std::string("precondition violated: ") + msg);
}

}  // namespace vdce::common
