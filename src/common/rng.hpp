// Deterministic random number generation.
//
// All stochastic behaviour in VDCE (background load traces, failure
// injection, workload generators, the random-placement baseline) draws
// from an explicitly seeded Rng so every experiment is reproducible.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <numbers>

namespace vdce::common {

/// Small, fast, seedable PRNG (xoshiro256**).
///
/// Satisfies UniformRandomBitGenerator so it can also feed <random>
/// distributions, but the common draws (uniform/exponential/normal) are
/// provided directly to keep results bit-identical across platforms.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  /// Re-initialises the state from `seed` via splitmix64.
  void reseed(std::uint64_t seed) {
    for (auto& s : state_) {
      seed += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
    have_spare_ = false;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n), unbiased (Lemire multiply-shift).
  std::uint64_t uniform_int(std::uint64_t n) {
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
      const std::uint64_t t = (0 - n) % n;
      while (l < t) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Exponentially distributed double with the given rate (mean 1/rate).
  double exponential(double rate) {
    return -std::log(1.0 - uniform()) / rate;
  }

  /// Standard-normal draw (Box-Muller, caches the second value).
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    const double u1 = 1.0 - uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    spare_ = r * std::sin(theta);
    have_spare_ = true;
    return r * std::cos(theta);
  }

  /// Normal draw with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// True with probability p.
  bool bernoulli(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace vdce::common
