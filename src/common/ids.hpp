// Strongly-typed identifiers used across VDCE.
//
// Every entity in the environment (site, host group, host, task library
// entry, AFG node, application instance, user) is referred to by a small
// integer id.  Using distinct wrapper types prevents the classic bug of
// passing a host id where a site id is expected; comparisons and hashing
// are provided so ids can key standard containers.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>

namespace vdce::common {

/// CRTP base for strongly-typed integer ids.
///
/// `Tag` makes each instantiation a distinct type.  Ids are totally
/// ordered and hashable; `invalid()` is the sentinel (max value).
template <typename Tag>
class Id {
 public:
  using underlying_type = std::uint32_t;

  constexpr Id() = default;
  constexpr explicit Id(underlying_type v) : value_(v) {}

  [[nodiscard]] constexpr underlying_type value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const {
    return value_ != kInvalidValue;
  }

  /// Sentinel id distinct from any real entity.
  [[nodiscard]] static constexpr Id invalid() { return Id(kInvalidValue); }

  friend constexpr bool operator==(Id a, Id b) = default;
  friend constexpr auto operator<=>(Id a, Id b) = default;

 private:
  static constexpr underlying_type kInvalidValue = 0xFFFFFFFFu;
  underlying_type value_ = kInvalidValue;
};

struct SiteTag {};
struct GroupTag {};
struct HostTag {};
struct TaskTag {};      // a node of an application flow graph
struct LibraryTag {};   // an entry of a task library (the "menu" item)
struct AppTag {};       // an application instance submitted for execution
struct UserTag {};
struct ChannelTag {};   // a point-to-point Data Manager channel

using SiteId = Id<SiteTag>;
using GroupId = Id<GroupTag>;
using HostId = Id<HostTag>;
using TaskId = Id<TaskTag>;
using LibraryTaskId = Id<LibraryTag>;
using AppId = Id<AppTag>;
using UserId = Id<UserTag>;
using ChannelId = Id<ChannelTag>;

}  // namespace vdce::common

namespace std {
template <typename Tag>
struct hash<vdce::common::Id<Tag>> {
  size_t operator()(vdce::common::Id<Tag> id) const noexcept {
    return std::hash<typename vdce::common::Id<Tag>::underlying_type>{}(
        id.value());
  }
};
}  // namespace std
