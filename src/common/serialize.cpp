#include "common/serialize.hpp"

#include <bit>

namespace vdce::common {

namespace {
// Writes `v`'s bytes most-significant first.
template <typename T>
void put_be(std::vector<std::byte>& buf, T v) {
  for (int shift = (sizeof(T) - 1) * 8; shift >= 0; shift -= 8) {
    buf.push_back(std::byte{static_cast<std::uint8_t>(v >> shift)});
  }
}
}  // namespace

void WireWriter::write_u16(std::uint16_t v) { put_be(buf_, v); }
void WireWriter::write_u32(std::uint32_t v) { put_be(buf_, v); }
void WireWriter::write_u64(std::uint64_t v) { put_be(buf_, v); }

void WireWriter::write_f64(double v) {
  write_u64(std::bit_cast<std::uint64_t>(v));
}

void WireWriter::write_string(std::string_view s) {
  write_u32(static_cast<std::uint32_t>(s.size()));
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  buf_.insert(buf_.end(), p, p + s.size());
}

void WireWriter::write_bytes(std::span<const std::byte> bytes) {
  write_u32(static_cast<std::uint32_t>(bytes.size()));
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void WireWriter::write_f64_vector(std::span<const double> values) {
  write_u32(static_cast<std::uint32_t>(values.size()));
  for (double v : values) write_f64(v);
}

std::uint8_t WireReader::read_u8() {
  need(1);
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint16_t WireReader::read_u16() {
  need(2);
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i)
    v = static_cast<std::uint16_t>((v << 8) |
                                   static_cast<std::uint8_t>(data_[pos_++]));
  return v;
}

std::uint32_t WireReader::read_u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v = (v << 8) | static_cast<std::uint8_t>(data_[pos_++]);
  return v;
}

std::uint64_t WireReader::read_u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v = (v << 8) | static_cast<std::uint8_t>(data_[pos_++]);
  return v;
}

double WireReader::read_f64() { return std::bit_cast<double>(read_u64()); }

std::string WireReader::read_string() {
  const std::uint32_t n = read_u32();
  need(n);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

std::vector<std::byte> WireReader::read_bytes() {
  const std::uint32_t n = read_u32();
  need(n);
  std::vector<std::byte> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                             data_.begin() +
                                 static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::vector<double> WireReader::read_f64_vector() {
  const std::uint32_t n = read_u32();
  need(static_cast<std::size_t>(n) * 8);
  std::vector<double> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(read_f64());
  return out;
}

}  // namespace vdce::common
