// The VDCE task libraries.
//
// "VDCE delivers well-defined library functions that relieve end-users
//  of tedious task implementations and also support reusability. ...
//  The Application Editor provides menu-driven task libraries that are
//  grouped in terms of their functionality, such as the matrix algebra
//  library, C3I ... library, etc."
//
// A LibraryEntry bundles a task's executable function with the default
// performance characteristics seeded into the task-performance database.
// Task functions are pure: payloads in (one per in-edge, in parent-id
// order), one payload out (replicated on every out-edge).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "repository/task_db.hpp"
#include "tasklib/payload.hpp"

namespace vdce::tasklib {

/// Per-invocation context for a task function.
struct TaskContext {
  /// The node's input_size property (multiples of the library task's
  /// unit size); sources scale their output with it.
  double input_size = 1.0;
  /// Deterministic per-invocation RNG (seeded from app id + task id).
  common::Rng* rng = nullptr;
};

using TaskFn =
    std::function<Payload(const std::vector<Payload>&, const TaskContext&)>;

/// One menu entry of a task library.
struct LibraryEntry {
  std::string name;         // key into the task-performance database
  std::string menu;         // "matrix" | "fourier" | "c3i" | "synthetic"
  std::string description;  // shown in the Editor's menu
  unsigned min_inputs = 0;
  unsigned max_inputs = 0;  // inclusive; == min for fixed arity
  TaskFn fn;
  /// Default performance characteristics (base time per unit size,
  /// computation/communication/memory sizes) installed into the
  /// task-performance database at site bring-up.
  repo::TaskPerformanceRecord default_perf;
};

/// A registry of library entries, grouped into menus.
class TaskRegistry {
 public:
  /// Adds an entry; throws StateError on duplicate name.
  void add(LibraryEntry entry);

  [[nodiscard]] const LibraryEntry& get(const std::string& name) const;
  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Menu names, sorted (the Editor's top-level menus).
  [[nodiscard]] std::vector<std::string> menus() const;
  /// Entry names within one menu, sorted.
  [[nodiscard]] std::vector<std::string> tasks_in_menu(
      const std::string& menu) const;
  /// All entry names, sorted.
  [[nodiscard]] std::vector<std::string> all_tasks() const;

  /// Seeds every entry's default performance record into `db`.
  void install_defaults(repo::TaskPerformanceDb& db) const;

  /// Executes an entry, validating arity.  Throws StateError on an
  /// input-count or payload-type mismatch.
  [[nodiscard]] Payload run(const std::string& name,
                            const std::vector<Payload>& inputs,
                            const TaskContext& ctx) const;

 private:
  std::map<std::string, LibraryEntry> entries_;
};

/// Registers the built-in matrix / fourier / c3i / synthetic libraries.
void register_builtin_tasks(TaskRegistry& registry);

/// A process-wide registry pre-loaded with the builtins.
[[nodiscard]] const TaskRegistry& builtin_registry();

}  // namespace vdce::tasklib
