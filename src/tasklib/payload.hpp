// Typed payloads carried over Data Manager channels.
//
// Every value exchanged between tasks is encoded into the portable wire
// format (common/serialize.hpp) at the producing task and decoded at the
// consumer — the paper's "data conversions that might be needed when an
// application execution environment includes heterogeneous machines".
// Payloads are tagged so a consumer detects a mis-wired graph instead of
// misinterpreting bytes.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "tasklib/c3i.hpp"
#include "tasklib/fft.hpp"
#include "tasklib/matrix.hpp"

namespace vdce::tasklib {

enum class PayloadType : std::uint8_t {
  kScalar = 1,
  kVector,
  kMatrix,
  kLuFactors,
  kComplexVector,
  kReportScans,     // std::vector<std::vector<SensorReport>>
  kDetectionScans,  // std::vector<std::vector<Detection>>
  kTracks,
  kThreats,
  kText,
};

[[nodiscard]] std::string to_string(PayloadType t);

/// An immutable, typed, wire-encoded value.
class Payload {
 public:
  Payload() = default;

  [[nodiscard]] PayloadType type() const { return type_; }
  [[nodiscard]] const std::vector<std::byte>& bytes() const { return bytes_; }
  /// Encoded size in bytes (what travels over a channel).
  [[nodiscard]] std::size_t size_bytes() const { return bytes_.size(); }
  /// Encoded size in MB, as used by transfer-time models.
  [[nodiscard]] double size_mb() const {
    return static_cast<double>(bytes_.size()) / (1024.0 * 1024.0);
  }

  // -- constructors ------------------------------------------------------
  [[nodiscard]] static Payload of_scalar(double v);
  [[nodiscard]] static Payload of_vector(const std::vector<double>& v);
  [[nodiscard]] static Payload of_matrix(const Matrix& m);
  [[nodiscard]] static Payload of_lu(const LuFactors& f);
  [[nodiscard]] static Payload of_complex_vector(
      const std::vector<Complex>& v);
  [[nodiscard]] static Payload of_report_scans(
      const std::vector<std::vector<SensorReport>>& scans);
  [[nodiscard]] static Payload of_detection_scans(
      const std::vector<std::vector<Detection>>& scans);
  [[nodiscard]] static Payload of_tracks(const std::vector<Track>& tracks);
  [[nodiscard]] static Payload of_threats(const std::vector<Threat>& threats);
  [[nodiscard]] static Payload of_text(const std::string& text);

  /// Reconstructs a payload from raw channel bytes (type tag included).
  /// Throws ParseError on malformed input.
  [[nodiscard]] static Payload from_wire(std::vector<std::byte> wire);

  /// The full wire image (type tag + body) to put on a channel.
  [[nodiscard]] std::vector<std::byte> to_wire() const;

  /// Size of the full wire image in bytes (1 tag byte + body).
  [[nodiscard]] std::size_t wire_size() const { return bytes_.size() + 1; }

  /// Serializes the full wire image into a caller-provided buffer of
  /// exactly wire_size() bytes — the allocation-free variant of
  /// to_wire() used to fill pooled frames.  Throws StateError on a
  /// size mismatch.
  void write_wire(std::span<std::byte> out) const;

  // -- accessors (throw StateError on a type mismatch) -------------------
  [[nodiscard]] double as_scalar() const;
  [[nodiscard]] std::vector<double> as_vector() const;
  [[nodiscard]] Matrix as_matrix() const;
  [[nodiscard]] LuFactors as_lu() const;
  [[nodiscard]] std::vector<Complex> as_complex_vector() const;
  [[nodiscard]] std::vector<std::vector<SensorReport>> as_report_scans() const;
  [[nodiscard]] std::vector<std::vector<Detection>> as_detection_scans() const;
  [[nodiscard]] std::vector<Track> as_tracks() const;
  [[nodiscard]] std::vector<Threat> as_threats() const;
  [[nodiscard]] std::string as_text() const;

 private:
  Payload(PayloadType type, std::vector<std::byte> bytes)
      : type_(type), bytes_(std::move(bytes)) {}

  void require(PayloadType t) const;

  PayloadType type_ = PayloadType::kScalar;
  std::vector<std::byte> bytes_;
};

}  // namespace vdce::tasklib
