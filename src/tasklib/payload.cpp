#include "tasklib/payload.hpp"

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace vdce::tasklib {

using common::ParseError;
using common::StateError;
using common::WireReader;
using common::WireWriter;

std::string to_string(PayloadType t) {
  switch (t) {
    case PayloadType::kScalar:         return "scalar";
    case PayloadType::kVector:         return "vector";
    case PayloadType::kMatrix:         return "matrix";
    case PayloadType::kLuFactors:      return "lu_factors";
    case PayloadType::kComplexVector:  return "complex_vector";
    case PayloadType::kReportScans:    return "report_scans";
    case PayloadType::kDetectionScans: return "detection_scans";
    case PayloadType::kTracks:         return "tracks";
    case PayloadType::kThreats:        return "threats";
    case PayloadType::kText:           return "text";
  }
  return "unknown";
}

void Payload::require(PayloadType t) const {
  if (type_ != t) {
    throw StateError("payload type mismatch: have " + to_string(type_) +
                     ", want " + to_string(t));
  }
}

Payload Payload::of_scalar(double v) {
  WireWriter w;
  w.write_f64(v);
  return Payload(PayloadType::kScalar, w.take());
}

Payload Payload::of_vector(const std::vector<double>& v) {
  WireWriter w;
  w.write_f64_vector(v);
  return Payload(PayloadType::kVector, w.take());
}

Payload Payload::of_matrix(const Matrix& m) {
  WireWriter w;
  w.write_u32(static_cast<std::uint32_t>(m.rows()));
  w.write_u32(static_cast<std::uint32_t>(m.cols()));
  for (double v : m.data()) w.write_f64(v);
  return Payload(PayloadType::kMatrix, w.take());
}

Payload Payload::of_lu(const LuFactors& f) {
  WireWriter w;
  w.write_u32(static_cast<std::uint32_t>(f.lu.rows()));
  for (double v : f.lu.data()) w.write_f64(v);
  for (std::size_t p : f.perm) w.write_u32(static_cast<std::uint32_t>(p));
  w.write_u8(f.perm_sign > 0 ? 1 : 0);
  return Payload(PayloadType::kLuFactors, w.take());
}

Payload Payload::of_complex_vector(const std::vector<Complex>& v) {
  WireWriter w;
  w.write_u32(static_cast<std::uint32_t>(v.size()));
  for (const Complex& c : v) {
    w.write_f64(c.real());
    w.write_f64(c.imag());
  }
  return Payload(PayloadType::kComplexVector, w.take());
}

Payload Payload::of_report_scans(
    const std::vector<std::vector<SensorReport>>& scans) {
  WireWriter w;
  w.write_u32(static_cast<std::uint32_t>(scans.size()));
  for (const auto& scan : scans) {
    w.write_u32(static_cast<std::uint32_t>(scan.size()));
    for (const SensorReport& r : scan) {
      w.write_f64(r.x);
      w.write_f64(r.y);
      w.write_f64(r.intensity);
      w.write_f64(r.time_s);
    }
  }
  return Payload(PayloadType::kReportScans, w.take());
}

Payload Payload::of_detection_scans(
    const std::vector<std::vector<Detection>>& scans) {
  WireWriter w;
  w.write_u32(static_cast<std::uint32_t>(scans.size()));
  for (const auto& scan : scans) {
    w.write_u32(static_cast<std::uint32_t>(scan.size()));
    for (const Detection& d : scan) {
      w.write_f64(d.x);
      w.write_f64(d.y);
      w.write_f64(d.strength);
      w.write_f64(d.time_s);
    }
  }
  return Payload(PayloadType::kDetectionScans, w.take());
}

Payload Payload::of_tracks(const std::vector<Track>& tracks) {
  WireWriter w;
  w.write_u32(static_cast<std::uint32_t>(tracks.size()));
  for (const Track& t : tracks) {
    w.write_u32(t.id);
    w.write_f64(t.x);
    w.write_f64(t.y);
    w.write_f64(t.vx);
    w.write_f64(t.vy);
    w.write_f64(t.last_update_s);
    w.write_u32(static_cast<std::uint32_t>(t.misses));
    w.write_u32(static_cast<std::uint32_t>(t.hits));
  }
  return Payload(PayloadType::kTracks, w.take());
}

Payload Payload::of_threats(const std::vector<Threat>& threats) {
  WireWriter w;
  w.write_u32(static_cast<std::uint32_t>(threats.size()));
  for (const Threat& t : threats) {
    w.write_u32(t.track_id);
    w.write_f64(t.score);
  }
  return Payload(PayloadType::kThreats, w.take());
}

Payload Payload::of_text(const std::string& text) {
  WireWriter w;
  w.write_string(text);
  return Payload(PayloadType::kText, w.take());
}

std::vector<std::byte> Payload::to_wire() const {
  std::vector<std::byte> out;
  out.reserve(bytes_.size() + 1);
  out.push_back(std::byte{static_cast<std::uint8_t>(type_)});
  out.insert(out.end(), bytes_.begin(), bytes_.end());
  return out;
}

void Payload::write_wire(std::span<std::byte> out) const {
  if (out.size() != wire_size()) {
    throw StateError("write_wire buffer size mismatch");
  }
  out[0] = std::byte{static_cast<std::uint8_t>(type_)};
  if (!bytes_.empty()) {
    std::memcpy(out.data() + 1, bytes_.data(), bytes_.size());
  }
}

Payload Payload::from_wire(std::vector<std::byte> wire) {
  if (wire.empty()) throw ParseError("empty payload wire image");
  const auto tag = static_cast<std::uint8_t>(wire.front());
  if (tag < static_cast<std::uint8_t>(PayloadType::kScalar) ||
      tag > static_cast<std::uint8_t>(PayloadType::kText)) {
    throw ParseError("unknown payload type tag");
  }
  wire.erase(wire.begin());
  return Payload(static_cast<PayloadType>(tag), std::move(wire));
}

double Payload::as_scalar() const {
  require(PayloadType::kScalar);
  WireReader r(bytes_);
  return r.read_f64();
}

std::vector<double> Payload::as_vector() const {
  require(PayloadType::kVector);
  WireReader r(bytes_);
  return r.read_f64_vector();
}

Matrix Payload::as_matrix() const {
  require(PayloadType::kMatrix);
  WireReader r(bytes_);
  const std::uint32_t rows = r.read_u32();
  const std::uint32_t cols = r.read_u32();
  Matrix m(rows, cols);
  for (double& v : m.data()) v = r.read_f64();
  return m;
}

LuFactors Payload::as_lu() const {
  require(PayloadType::kLuFactors);
  WireReader r(bytes_);
  const std::uint32_t n = r.read_u32();
  LuFactors f;
  f.lu = Matrix(n, n);
  for (double& v : f.lu.data()) v = r.read_f64();
  f.perm.resize(n);
  for (auto& p : f.perm) p = r.read_u32();
  f.perm_sign = r.read_u8() != 0 ? 1 : -1;
  return f;
}

std::vector<Complex> Payload::as_complex_vector() const {
  require(PayloadType::kComplexVector);
  WireReader r(bytes_);
  const std::uint32_t n = r.read_u32();
  std::vector<Complex> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const double re = r.read_f64();
    const double im = r.read_f64();
    out.emplace_back(re, im);
  }
  return out;
}

std::vector<std::vector<SensorReport>> Payload::as_report_scans() const {
  require(PayloadType::kReportScans);
  WireReader r(bytes_);
  const std::uint32_t nscans = r.read_u32();
  std::vector<std::vector<SensorReport>> out;
  out.reserve(nscans);
  for (std::uint32_t s = 0; s < nscans; ++s) {
    const std::uint32_t n = r.read_u32();
    std::vector<SensorReport> scan;
    scan.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      SensorReport rep;
      rep.x = r.read_f64();
      rep.y = r.read_f64();
      rep.intensity = r.read_f64();
      rep.time_s = r.read_f64();
      scan.push_back(rep);
    }
    out.push_back(std::move(scan));
  }
  return out;
}

std::vector<std::vector<Detection>> Payload::as_detection_scans() const {
  require(PayloadType::kDetectionScans);
  WireReader r(bytes_);
  const std::uint32_t nscans = r.read_u32();
  std::vector<std::vector<Detection>> out;
  out.reserve(nscans);
  for (std::uint32_t s = 0; s < nscans; ++s) {
    const std::uint32_t n = r.read_u32();
    std::vector<Detection> scan;
    scan.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      Detection d;
      d.x = r.read_f64();
      d.y = r.read_f64();
      d.strength = r.read_f64();
      d.time_s = r.read_f64();
      scan.push_back(d);
    }
    out.push_back(std::move(scan));
  }
  return out;
}

std::vector<Track> Payload::as_tracks() const {
  require(PayloadType::kTracks);
  WireReader r(bytes_);
  const std::uint32_t n = r.read_u32();
  std::vector<Track> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Track t;
    t.id = r.read_u32();
    t.x = r.read_f64();
    t.y = r.read_f64();
    t.vx = r.read_f64();
    t.vy = r.read_f64();
    t.last_update_s = r.read_f64();
    t.misses = static_cast<int>(r.read_u32());
    t.hits = static_cast<int>(r.read_u32());
    out.push_back(t);
  }
  return out;
}

std::vector<Threat> Payload::as_threats() const {
  require(PayloadType::kThreats);
  WireReader r(bytes_);
  const std::uint32_t n = r.read_u32();
  std::vector<Threat> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Threat t;
    t.track_id = r.read_u32();
    t.score = r.read_f64();
    out.push_back(t);
  }
  return out;
}

std::string Payload::as_text() const {
  require(PayloadType::kText);
  WireReader r(bytes_);
  return r.read_string();
}

}  // namespace vdce::tasklib
