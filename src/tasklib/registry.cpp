#include "tasklib/registry.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "tasklib/streaming.hpp"

namespace vdce::tasklib {

using common::StateError;

void TaskRegistry::add(LibraryEntry entry) {
  if (entries_.contains(entry.name)) {
    throw StateError("duplicate library task: " + entry.name);
  }
  const std::string name = entry.name;
  entries_.emplace(name, std::move(entry));
}

const LibraryEntry& TaskRegistry::get(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw common::NotFoundError("unknown library task: " + name);
  }
  return it->second;
}

bool TaskRegistry::contains(const std::string& name) const {
  return entries_.contains(name);
}

std::vector<std::string> TaskRegistry::menus() const {
  std::vector<std::string> out;
  for (const auto& [_, e] : entries_) {
    if (std::find(out.begin(), out.end(), e.menu) == out.end()) {
      out.push_back(e.menu);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> TaskRegistry::tasks_in_menu(
    const std::string& menu) const {
  std::vector<std::string> out;
  for (const auto& [name, e] : entries_) {
    if (e.menu == menu) out.push_back(name);
  }
  return out;  // std::map iteration is already sorted
}

std::vector<std::string> TaskRegistry::all_tasks() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, _] : entries_) out.push_back(name);
  return out;
}

void TaskRegistry::install_defaults(repo::TaskPerformanceDb& db) const {
  for (const auto& [_, e] : entries_) db.register_task(e.default_perf);
}

Payload TaskRegistry::run(const std::string& name,
                          const std::vector<Payload>& inputs,
                          const TaskContext& ctx) const {
  const LibraryEntry& e = get(name);
  if (inputs.size() < e.min_inputs || inputs.size() > e.max_inputs) {
    throw StateError("task " + name + " expects between " +
                     std::to_string(e.min_inputs) + " and " +
                     std::to_string(e.max_inputs) + " inputs, got " +
                     std::to_string(inputs.size()));
  }
  return e.fn(inputs, ctx);
}

namespace {

// Matrix order for a given input_size property (unit size = 32x32).
std::size_t matrix_dim(double input_size) {
  return std::max<std::size_t>(
      2, static_cast<std::size_t>(std::lround(32.0 * input_size)));
}

// Signal length for a given input_size (unit = 256 samples, power of 2).
std::size_t signal_len(double input_size) {
  return next_pow2(std::max<std::size_t>(
      2, static_cast<std::size_t>(std::lround(256.0 * input_size))));
}

repo::TaskPerformanceRecord perf(const std::string& name, double base_time,
                                 double comp, double comm_mb, double mem_mb) {
  repo::TaskPerformanceRecord r;
  r.task_name = name;
  r.base_time_s = base_time;
  r.computation_size = comp;
  r.communication_size_mb = comm_mb;
  r.memory_req_mb = mem_mb;
  return r;
}

LibraryEntry entry(std::string name, std::string menu, std::string desc,
                   unsigned min_in, unsigned max_in, TaskFn fn,
                   double base_time, double comp, double comm_mb,
                   double mem_mb) {
  LibraryEntry e;
  e.name = name;
  e.menu = std::move(menu);
  e.description = std::move(desc);
  e.min_inputs = min_in;
  e.max_inputs = max_in;
  e.fn = std::move(fn);
  e.default_perf = perf(name, base_time, comp, comm_mb, mem_mb);
  return e;
}

void register_matrix_menu(TaskRegistry& r) {
  r.add(entry(
      "matrix_generate", "matrix", "random well-conditioned square matrix",
      0, 0,
      [](const std::vector<Payload>&, const TaskContext& ctx) {
        const std::size_t n = matrix_dim(ctx.input_size);
        return Payload::of_matrix(Matrix::random(
            n, n, *ctx.rng, /*diag_boost=*/static_cast<double>(n)));
      },
      0.05, 1.0, 0.008, 0.05));

  r.add(entry(
      "vector_generate", "matrix", "random right-hand-side vector",
      0, 0,
      [](const std::vector<Payload>&, const TaskContext& ctx) {
        const std::size_t n = matrix_dim(ctx.input_size);
        std::vector<double> v(n);
        for (double& x : v) x = ctx.rng->uniform(-1.0, 1.0);
        return Payload::of_vector(v);
      },
      0.01, 0.2, 0.0003, 0.01));

  r.add(entry(
      "lu_decomposition", "matrix", "LU decomposition with partial pivoting",
      1, 1,
      [](const std::vector<Payload>& in, const TaskContext&) {
        return Payload::of_lu(lu_decompose(in[0].as_matrix()));
      },
      1.2, 8.0, 0.009, 0.05));

  r.add(entry(
      "matrix_inversion", "matrix", "matrix inverse via LU",
      1, 1,
      [](const std::vector<Payload>& in, const TaskContext&) {
        return Payload::of_matrix(invert(in[0].as_matrix()));
      },
      2.5, 16.0, 0.008, 0.1));

  r.add(entry(
      "matrix_multiply", "matrix", "dense matrix-matrix product",
      2, 2,
      [](const std::vector<Payload>& in, const TaskContext&) {
        return Payload::of_matrix(
            multiply(in[0].as_matrix(), in[1].as_matrix()));
      },
      1.0, 8.0, 0.008, 0.1));

  r.add(entry(
      "matrix_transpose", "matrix", "matrix transpose",
      1, 1,
      [](const std::vector<Payload>& in, const TaskContext&) {
        return Payload::of_matrix(transpose(in[0].as_matrix()));
      },
      0.05, 0.5, 0.008, 0.05));

  r.add(entry(
      "matrix_vector_multiply", "matrix", "matrix-vector product",
      2, 2,
      [](const std::vector<Payload>& in, const TaskContext&) {
        return Payload::of_vector(
            multiply(in[0].as_matrix(), in[1].as_vector()));
      },
      0.1, 1.0, 0.0003, 0.05));

  r.add(entry(
      "triangular_solve", "matrix", "solve Ax=b from LU factors",
      2, 2,
      [](const std::vector<Payload>& in, const TaskContext&) {
        return Payload::of_vector(lu_solve(in[0].as_lu(), in[1].as_vector()));
      },
      0.2, 1.5, 0.0003, 0.05));

  r.add(entry(
      "linear_solve", "matrix", "direct dense solve Ax=b",
      2, 2,
      [](const std::vector<Payload>& in, const TaskContext&) {
        const auto f = lu_decompose(in[0].as_matrix());
        return Payload::of_vector(lu_solve(f, in[1].as_vector()));
      },
      1.4, 9.0, 0.0003, 0.05));

  r.add(entry(
      "lu_lower", "matrix", "extract unit-lower factor L",
      1, 1,
      [](const std::vector<Payload>& in, const TaskContext&) {
        const LuFactors f = in[0].as_lu();
        const std::size_t n = f.lu.rows();
        Matrix l = Matrix::identity(n);
        for (std::size_t i = 0; i < n; ++i) {
          for (std::size_t j = 0; j < i; ++j) l.at(i, j) = f.lu.at(i, j);
        }
        return Payload::of_matrix(l);
      },
      0.05, 0.3, 0.008, 0.05));

  r.add(entry(
      "lu_upper", "matrix", "extract upper factor U",
      1, 1,
      [](const std::vector<Payload>& in, const TaskContext&) {
        const LuFactors f = in[0].as_lu();
        const std::size_t n = f.lu.rows();
        Matrix u(n, n);
        for (std::size_t i = 0; i < n; ++i) {
          for (std::size_t j = i; j < n; ++j) u.at(i, j) = f.lu.at(i, j);
        }
        return Payload::of_matrix(u);
      },
      0.05, 0.3, 0.008, 0.05));

  r.add(entry(
      "permute_vector", "matrix", "apply the LU row permutation to b",
      2, 2,
      [](const std::vector<Payload>& in, const TaskContext&) {
        const LuFactors f = in[0].as_lu();
        const auto b = in[1].as_vector();
        common::expects(b.size() == f.perm.size(),
                        "permute_vector size mismatch");
        std::vector<double> pb(b.size());
        for (std::size_t i = 0; i < b.size(); ++i) pb[i] = b[f.perm[i]];
        return Payload::of_vector(pb);
      },
      0.01, 0.1, 0.0003, 0.01));

  r.add(entry(
      "spd_generate", "matrix", "random symmetric positive-definite matrix",
      0, 0,
      [](const std::vector<Payload>&, const TaskContext& ctx) {
        return Payload::of_matrix(
            random_spd(matrix_dim(ctx.input_size), *ctx.rng));
      },
      0.08, 1.5, 0.008, 0.05));

  r.add(entry(
      "cholesky_decompose", "matrix", "Cholesky factor of an SPD matrix",
      1, 1,
      [](const std::vector<Payload>& in, const TaskContext&) {
        return Payload::of_matrix(cholesky(in[0].as_matrix()));
      },
      0.7, 4.0, 0.008, 0.05));

  r.add(entry(
      "jacobi_solve", "matrix", "iterative Jacobi solve of Ax=b",
      2, 2,
      [](const std::vector<Payload>& in, const TaskContext&) {
        const auto result =
            jacobi_solve(in[0].as_matrix(), in[1].as_vector());
        common::expects(result.converged, "Jacobi did not converge");
        return Payload::of_vector(result.x);
      },
      1.8, 10.0, 0.0003, 0.05));

  r.add(entry(
      "residual_check", "matrix", "||Ax-b||_inf of a candidate solution",
      3, 3,
      [](const std::vector<Payload>& in, const TaskContext&) {
        return Payload::of_scalar(residual(in[0].as_matrix(),
                                           in[1].as_vector(),
                                           in[2].as_vector()));
      },
      0.1, 1.0, 0.00001, 0.05));
}

void register_fourier_menu(TaskRegistry& r) {
  r.add(entry(
      "signal_generate", "fourier", "multi-tone test signal with noise",
      0, 0,
      [](const std::vector<Payload>&, const TaskContext& ctx) {
        const std::size_t n = signal_len(ctx.input_size);
        std::vector<double> v(n);
        for (std::size_t i = 0; i < n; ++i) {
          const double t = static_cast<double>(i) / static_cast<double>(n);
          v[i] = std::sin(2.0 * 3.14159265358979323846 * 8.0 * t) +
                 0.5 * std::sin(2.0 * 3.14159265358979323846 * 21.0 * t) +
                 0.1 * ctx.rng->normal();
        }
        return Payload::of_vector(v);
      },
      0.02, 0.2, 0.002, 0.01));

  r.add(entry(
      "fft_forward", "fourier", "forward FFT of a real signal",
      1, 1,
      [](const std::vector<Payload>& in, const TaskContext&) {
        return Payload::of_complex_vector(fft_real(in[0].as_vector()));
      },
      0.3, 2.0, 0.004, 0.02));

  r.add(entry(
      "fft_inverse", "fourier", "inverse FFT",
      1, 1,
      [](const std::vector<Payload>& in, const TaskContext&) {
        return Payload::of_complex_vector(ifft(in[0].as_complex_vector()));
      },
      0.3, 2.0, 0.004, 0.02));

  r.add(entry(
      "power_spectrum", "fourier", "power spectrum of a real signal",
      1, 1,
      [](const std::vector<Payload>& in, const TaskContext&) {
        return Payload::of_vector(power_spectrum(in[0].as_vector()));
      },
      0.35, 2.2, 0.002, 0.02));

  r.add(entry(
      "lowpass_filter", "fourier", "frequency-domain low-pass filter",
      1, 1,
      [](const std::vector<Payload>& in, const TaskContext&) {
        return Payload::of_vector(
            lowpass_filter(in[0].as_vector(), /*cutoff_fraction=*/0.25));
      },
      0.4, 2.5, 0.002, 0.02));

  r.add(entry(
      "convolve", "fourier", "circular convolution via FFT",
      2, 2,
      [](const std::vector<Payload>& in, const TaskContext&) {
        auto a = in[0].as_vector();
        auto b = in[1].as_vector();
        const std::size_t n = next_pow2(std::max(a.size(), b.size()));
        a.resize(n, 0.0);
        b.resize(n, 0.0);
        return Payload::of_vector(circular_convolve(a, b));
      },
      0.5, 3.0, 0.002, 0.03));
}

void register_c3i_menu(TaskRegistry& r) {
  r.add(entry(
      "sensor_ingest", "c3i", "synthetic surveillance sensor scans",
      0, 0,
      [](const std::vector<Payload>&, const TaskContext& ctx) {
        ScenarioParams params;
        const auto num_scans = std::max<std::size_t>(
            2, static_cast<std::size_t>(std::lround(16.0 * ctx.input_size)));
        return Payload::of_report_scans(
            generate_scenario(params, num_scans, 1.0, *ctx.rng));
      },
      0.1, 0.5, 0.01, 0.02));

  r.add(entry(
      "sensor_fuse", "c3i", "merge two sensors' scan streams",
      2, 2,
      [](const std::vector<Payload>& in, const TaskContext&) {
        return Payload::of_report_scans(
            fuse_scans(in[0].as_report_scans(), in[1].as_report_scans()));
      },
      0.3, 1.5, 0.012, 0.03));

  r.add(entry(
      "target_detect", "c3i", "intensity-threshold detection",
      1, 1,
      [](const std::vector<Payload>& in, const TaskContext&) {
        const auto scans = in[0].as_report_scans();
        std::vector<std::vector<Detection>> out;
        out.reserve(scans.size());
        for (const auto& scan : scans) out.push_back(detect(scan, 5.0));
        return Payload::of_detection_scans(out);
      },
      0.2, 1.0, 0.005, 0.02));

  r.add(entry(
      "track_filter", "c3i", "alpha-beta multi-scan tracker",
      1, 1,
      [](const std::vector<Payload>& in, const TaskContext&) {
        const auto scans = in[0].as_detection_scans();
        FilterParams params;
        std::vector<Track> tracks;
        std::uint32_t next_id = 1;
        for (const auto& scan : scans) {
          const double t = scan.empty() ? 0.0 : scan.front().time_s;
          tracks = track_update(tracks, scan, t, params, next_id);
        }
        return Payload::of_tracks(tracks);
      },
      0.8, 4.0, 0.001, 0.03));

  r.add(entry(
      "threat_rank", "c3i", "rank tracks by threat to the defended point",
      1, 1,
      [](const std::vector<Payload>& in, const TaskContext&) {
        return Payload::of_threats(
            rank_threats(in[0].as_tracks(), 50.0, 50.0));
      },
      0.1, 0.5, 0.0005, 0.01));

  r.add(entry(
      "c3i_display", "c3i", "format a situation summary",
      1, 4,
      [](const std::vector<Payload>& in, const TaskContext&) {
        std::string text = "C3I summary:";
        for (const Payload& p : in) {
          if (p.type() == PayloadType::kThreats) {
            const auto threats = p.as_threats();
            text += " threats=" + std::to_string(threats.size());
            if (!threats.empty()) {
              text += " top=" + std::to_string(threats.front().track_id);
            }
          } else if (p.type() == PayloadType::kTracks) {
            text += " tracks=" + std::to_string(p.as_tracks().size());
          } else {
            text += " [" + to_string(p.type()) + "]";
          }
        }
        return Payload::of_text(text);
      },
      0.05, 0.2, 0.0001, 0.01));
}

void register_synthetic_menu(TaskRegistry& r) {
  r.add(entry(
      "synth_source", "synthetic", "random data block",
      0, 0,
      [](const std::vector<Payload>&, const TaskContext& ctx) {
        const auto n = std::max<std::size_t>(
            1, static_cast<std::size_t>(std::lround(1024.0 * ctx.input_size)));
        std::vector<double> v(n);
        for (double& x : v) x = ctx.rng->uniform();
        return Payload::of_vector(v);
      },
      0.02, 0.1, 0.008, 0.01));

  r.add(entry(
      "synth_compute", "synthetic", "CPU-bound kernel (deterministic flops)",
      1, 8,
      [](const std::vector<Payload>& in, const TaskContext& ctx) {
        // Checksum the inputs, then burn flops proportional to size.
        double acc = 0.0;
        for (const Payload& p : in) {
          acc += static_cast<double>(p.size_bytes() % 1009);
        }
        const auto iters = static_cast<std::size_t>(
            std::lround(50000.0 * std::max(0.01, ctx.input_size)));
        for (std::size_t i = 1; i <= iters; ++i) {
          acc += std::sqrt(static_cast<double>(i)) * 1e-6;
        }
        return Payload::of_scalar(acc);
      },
      0.5, 4.0, 0.00001, 0.01));

  r.add(entry(
      "synth_sink", "synthetic", "terminal consumer; reports byte total",
      1, 8,
      [](const std::vector<Payload>& in, const TaskContext&) {
        std::size_t total = 0;
        for (const Payload& p : in) total += p.size_bytes();
        return Payload::of_scalar(static_cast<double>(total));
      },
      0.01, 0.05, 0.00001, 0.01));
}

}  // namespace

void register_builtin_tasks(TaskRegistry& registry) {
  register_matrix_menu(registry);
  register_fourier_menu(registry);
  register_c3i_menu(registry);
  register_synthetic_menu(registry);
  register_streaming_menu(registry);
}

const TaskRegistry& builtin_registry() {
  static const TaskRegistry registry = [] {
    TaskRegistry r;
    register_builtin_tasks(r);
    return r;
  }();
  return registry;
}

}  // namespace vdce::tasklib
