// Dense linear algebra kernels for the "matrix algebra library" menu.
//
// The paper's running example (Figure 3) is a Linear Equation Solver
// built from LU decomposition, matrix inversion and matrix
// multiplication nodes; these are their real implementations.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace vdce::tasklib {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] const std::vector<double>& data() const { return data_; }
  [[nodiscard]] std::vector<double>& data() { return data_; }

  /// Identity matrix of order n.
  [[nodiscard]] static Matrix identity(std::size_t n);

  /// Random matrix with entries uniform in [-1, 1); adding `diag_boost`
  /// to the diagonal makes the matrix diagonally dominant (and hence
  /// well-conditioned) for solver tests.
  [[nodiscard]] static Matrix random(std::size_t rows, std::size_t cols,
                                     common::Rng& rng,
                                     double diag_boost = 0.0);

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// C = A * B; throws StateError on dimension mismatch.
[[nodiscard]] Matrix multiply(const Matrix& a, const Matrix& b);

/// y = A * x.
[[nodiscard]] std::vector<double> multiply(const Matrix& a,
                                           const std::vector<double>& x);

[[nodiscard]] Matrix transpose(const Matrix& a);

/// Result of an LU factorisation with partial pivoting: PA = LU packed
/// into one matrix (L below the diagonal with implicit unit diagonal,
/// U on and above it) plus the row permutation.
struct LuFactors {
  Matrix lu;
  std::vector<std::size_t> perm;  // perm[i] = source row of row i of PA
  int perm_sign = 1;              // +1/-1, parity of the permutation
};

/// LU decomposition with partial pivoting.  Throws StateError if the
/// matrix is not square or is numerically singular.
[[nodiscard]] LuFactors lu_decompose(const Matrix& a);

/// Solves A x = b using precomputed factors.
[[nodiscard]] std::vector<double> lu_solve(const LuFactors& f,
                                           const std::vector<double>& b);

/// Solves A X = B column-by-column.
[[nodiscard]] Matrix lu_solve(const LuFactors& f, const Matrix& b);

/// A^-1 via LU.  Throws StateError on singular input.
[[nodiscard]] Matrix invert(const Matrix& a);

/// det(A) via LU (0.0 when factorisation detects singularity is
/// reported by throwing instead; use with well-conditioned inputs).
[[nodiscard]] double determinant(const Matrix& a);

/// Solves L y = b where L is the packed unit-lower factor.
[[nodiscard]] std::vector<double> forward_substitute(
    const Matrix& lu, const std::vector<double>& b);

/// Solves U x = y where U is the packed upper factor.
[[nodiscard]] std::vector<double> back_substitute(const Matrix& lu,
                                                  const std::vector<double>& y);

/// Cholesky factorisation A = L L^T of a symmetric positive-definite
/// matrix; returns the lower factor.  Throws StateError if A is not
/// square or not positive definite.
[[nodiscard]] Matrix cholesky(const Matrix& a);

/// Builds a random symmetric positive-definite matrix (B B^T + n I).
[[nodiscard]] Matrix random_spd(std::size_t n, common::Rng& rng);

/// Result of an iterative solve.
struct IterativeResult {
  std::vector<double> x;
  std::size_t iterations = 0;
  double residual = 0.0;
  bool converged = false;
};

/// Jacobi iteration for Ax = b (A diagonally dominant).  Stops at
/// `tolerance` on the max-norm residual or after `max_iterations`.
[[nodiscard]] IterativeResult jacobi_solve(const Matrix& a,
                                           const std::vector<double>& b,
                                           double tolerance = 1e-10,
                                           std::size_t max_iterations = 500);

/// max-abs norm of a vector / matrix.
[[nodiscard]] double max_norm(const std::vector<double>& v);
[[nodiscard]] double max_norm(const Matrix& a);

/// ||A x - b||_inf, the solver residual the examples report.
[[nodiscard]] double residual(const Matrix& a, const std::vector<double>& x,
                              const std::vector<double>& b);

}  // namespace vdce::tasklib
