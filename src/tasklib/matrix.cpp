#include "tasklib/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace vdce::tasklib {

using common::StateError;
using common::expects;

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::random(std::size_t rows, std::size_t cols, common::Rng& rng,
                      double diag_boost) {
  Matrix m(rows, cols);
  for (double& v : m.data()) v = rng.uniform(-1.0, 1.0);
  const std::size_t n = std::min(rows, cols);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) += diag_boost;
  return m;
}

Matrix multiply(const Matrix& a, const Matrix& b) {
  expects(a.cols() == b.rows(), "matrix multiply dimension mismatch");
  Matrix c(a.rows(), b.cols());
  // i-k-j loop order keeps the inner loop contiguous in both B and C.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a.at(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c.at(i, j) += aik * b.at(k, j);
      }
    }
  }
  return c;
}

std::vector<double> multiply(const Matrix& a, const std::vector<double>& x) {
  expects(a.cols() == x.size(), "matrix-vector dimension mismatch");
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) acc += a.at(i, j) * x[j];
    y[i] = acc;
  }
  return y;
}

Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) t.at(j, i) = a.at(i, j);
  }
  return t;
}

LuFactors lu_decompose(const Matrix& a) {
  expects(a.rows() == a.cols(), "LU decomposition requires a square matrix");
  const std::size_t n = a.rows();
  expects(n > 0, "LU decomposition of an empty matrix");

  LuFactors f;
  f.lu = a;
  f.perm.resize(n);
  for (std::size_t i = 0; i < n; ++i) f.perm[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: bring the largest |entry| of column k to row k.
    std::size_t pivot = k;
    double best = std::abs(f.lu.at(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(f.lu.at(i, k));
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    if (best < 1e-12) throw StateError("matrix is numerically singular");
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(f.lu.at(k, j), f.lu.at(pivot, j));
      }
      std::swap(f.perm[k], f.perm[pivot]);
      f.perm_sign = -f.perm_sign;
    }
    const double diag = f.lu.at(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = f.lu.at(i, k) / diag;
      f.lu.at(i, k) = m;  // store the L multiplier in place
      for (std::size_t j = k + 1; j < n; ++j) {
        f.lu.at(i, j) -= m * f.lu.at(k, j);
      }
    }
  }
  return f;
}

std::vector<double> forward_substitute(const Matrix& lu,
                                       const std::vector<double>& b) {
  expects(lu.rows() == b.size(), "forward substitution size mismatch");
  const std::size_t n = b.size();
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu.at(i, j) * y[j];
    y[i] = acc;  // unit diagonal of L
  }
  return y;
}

std::vector<double> back_substitute(const Matrix& lu,
                                    const std::vector<double>& y) {
  expects(lu.rows() == y.size(), "back substitution size mismatch");
  const std::size_t n = y.size();
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu.at(ii, j) * x[j];
    x[ii] = acc / lu.at(ii, ii);
  }
  return x;
}

std::vector<double> lu_solve(const LuFactors& f, const std::vector<double>& b) {
  expects(f.lu.rows() == b.size(), "lu_solve size mismatch");
  // Apply the row permutation to b, then two triangular solves.
  std::vector<double> pb(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) pb[i] = b[f.perm[i]];
  return back_substitute(f.lu, forward_substitute(f.lu, pb));
}

Matrix lu_solve(const LuFactors& f, const Matrix& b) {
  expects(f.lu.rows() == b.rows(), "lu_solve size mismatch");
  Matrix x(b.rows(), b.cols());
  std::vector<double> col(b.rows());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t i = 0; i < b.rows(); ++i) col[i] = b.at(i, j);
    const auto sol = lu_solve(f, col);
    for (std::size_t i = 0; i < b.rows(); ++i) x.at(i, j) = sol[i];
  }
  return x;
}

Matrix invert(const Matrix& a) {
  const auto f = lu_decompose(a);
  return lu_solve(f, Matrix::identity(a.rows()));
}

double determinant(const Matrix& a) {
  const auto f = lu_decompose(a);
  double det = static_cast<double>(f.perm_sign);
  for (std::size_t i = 0; i < a.rows(); ++i) det *= f.lu.at(i, i);
  return det;
}

Matrix cholesky(const Matrix& a) {
  expects(a.rows() == a.cols(), "Cholesky requires a square matrix");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a.at(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l.at(i, k) * l.at(j, k);
      if (i == j) {
        if (sum <= 0.0) {
          throw StateError("matrix is not positive definite");
        }
        l.at(i, i) = std::sqrt(sum);
      } else {
        l.at(i, j) = sum / l.at(j, j);
      }
    }
  }
  return l;
}

Matrix random_spd(std::size_t n, common::Rng& rng) {
  const Matrix b = Matrix::random(n, n, rng);
  Matrix a = multiply(b, transpose(b));
  for (std::size_t i = 0; i < n; ++i) {
    a.at(i, i) += static_cast<double>(n);
  }
  return a;
}

IterativeResult jacobi_solve(const Matrix& a, const std::vector<double>& b,
                             double tolerance,
                             std::size_t max_iterations) {
  expects(a.rows() == a.cols(), "Jacobi requires a square matrix");
  expects(a.rows() == b.size(), "Jacobi size mismatch");
  const std::size_t n = a.rows();
  for (std::size_t i = 0; i < n; ++i) {
    expects(a.at(i, i) != 0.0, "Jacobi requires a nonzero diagonal");
  }

  IterativeResult result;
  result.x.assign(n, 0.0);
  std::vector<double> next(n);
  for (result.iterations = 0; result.iterations < max_iterations;
       ++result.iterations) {
    for (std::size_t i = 0; i < n; ++i) {
      double sum = b[i];
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i) sum -= a.at(i, j) * result.x[j];
      }
      next[i] = sum / a.at(i, i);
    }
    result.x.swap(next);
    result.residual = residual(a, result.x, b);
    if (result.residual <= tolerance) {
      result.converged = true;
      ++result.iterations;
      break;
    }
  }
  return result;
}

double max_norm(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

double max_norm(const Matrix& a) { return max_norm(a.data()); }

double residual(const Matrix& a, const std::vector<double>& x,
                const std::vector<double>& b) {
  const auto ax = multiply(a, x);
  double m = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    m = std::max(m, std::abs(ax[i] - b[i]));
  }
  return m;
}

}  // namespace vdce::tasklib
