// C3I (command, control, communication, and information) kernels.
//
// The paper lists a "C3I (command and control applications) library"
// among the Editor's menus; its production workloads are not public, so
// we provide a synthetic surveillance pipeline with the classic C3I
// stages: sensor ingest -> detection -> track association -> track
// filtering -> threat ranking.  The kernels are deterministic given the
// inputs, which lets integration tests check end-to-end dataflow through
// the VDCE runtime.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"

namespace vdce::tasklib {

/// One raw sensor return.
struct SensorReport {
  double x = 0.0;        // position, km
  double y = 0.0;
  double intensity = 0.0;  // signal strength (arbitrary units)
  double time_s = 0.0;

  friend bool operator==(const SensorReport&, const SensorReport&) = default;
};

/// A confirmed detection produced by thresholding.
struct Detection {
  double x = 0.0;
  double y = 0.0;
  double strength = 0.0;
  double time_s = 0.0;

  friend bool operator==(const Detection&, const Detection&) = default;
};

/// A maintained track with an alpha-beta filter state.
struct Track {
  std::uint32_t id = 0;
  double x = 0.0;
  double y = 0.0;
  double vx = 0.0;  // km/s
  double vy = 0.0;
  double last_update_s = 0.0;
  /// Consecutive updates without an associated detection.
  int misses = 0;
  /// Total associated detections.
  int hits = 0;

  friend bool operator==(const Track&, const Track&) = default;
};

/// Scenario generator: targets moving on straight lines plus clutter.
struct ScenarioParams {
  std::size_t num_targets = 4;
  std::size_t clutter_per_scan = 8;
  double field_km = 100.0;        // square field edge length
  double max_speed_km_s = 0.3;
  double target_intensity = 10.0;
  double clutter_intensity_max = 4.0;
  double noise_sigma_km = 0.1;    // measurement noise
};

/// Generates `num_scans` scans of sensor reports at `dt_s` spacing.
/// Target returns carry high intensity; clutter is uniform low-intensity
/// noise.  Deterministic for a given rng seed.
[[nodiscard]] std::vector<std::vector<SensorReport>> generate_scenario(
    const ScenarioParams& params, std::size_t num_scans, double dt_s,
    common::Rng& rng);

/// Detection: keeps reports with intensity above `threshold`.
[[nodiscard]] std::vector<Detection> detect(
    const std::vector<SensorReport>& reports, double threshold);

/// Association result: detection index per track (or none), plus the
/// indices of unassociated detections (track initiators).
struct Association {
  std::vector<std::optional<std::size_t>> track_to_detection;
  std::vector<std::size_t> unassociated;
};

/// Greedy nearest-neighbour gating: each track grabs the closest
/// unclaimed detection within `gate_km` (predicted position at the
/// detection time).  Deterministic: tracks claim in id order.
[[nodiscard]] Association associate(const std::vector<Track>& tracks,
                                    const std::vector<Detection>& detections,
                                    double gate_km);

/// Alpha-beta filter parameters.
struct FilterParams {
  double alpha = 0.5;
  double beta = 0.2;
  /// Tracks are dropped after this many consecutive misses.
  int max_misses = 3;
  /// Association gate radius, km.
  double gate_km = 2.0;
};

/// One tracker step: predict tracks to `scan_time_s`, associate, update
/// hits with the alpha-beta filter, coast misses, initiate tracks from
/// unassociated detections, drop stale tracks.  Returns the new track
/// list; `next_track_id` is advanced for initiations.
[[nodiscard]] std::vector<Track> track_update(
    const std::vector<Track>& tracks, const std::vector<Detection>& detections,
    double scan_time_s, const FilterParams& params,
    std::uint32_t& next_track_id);

/// A ranked threat: closer and faster towards the defended point is
/// worse.
struct Threat {
  std::uint32_t track_id = 0;
  double score = 0.0;

  friend bool operator==(const Threat&, const Threat&) = default;
};

/// Ranks tracks by threat against a defended point: score combines
/// inverse distance and closing speed.  Highest score first; ties broken
/// by track id.
[[nodiscard]] std::vector<Threat> rank_threats(const std::vector<Track>& tracks,
                                               double defended_x,
                                               double defended_y);

/// Multi-sensor fusion: merges two scan streams scan-by-scan, combining
/// reports within `merge_radius_km` of each other into one averaged
/// report (intensities add — two sensors seeing the same target
/// reinforce it).  The streams must have equal scan counts.
[[nodiscard]] std::vector<std::vector<SensorReport>> fuse_scans(
    const std::vector<std::vector<SensorReport>>& a,
    const std::vector<std::vector<SensorReport>>& b,
    double merge_radius_km = 0.5);

}  // namespace vdce::tasklib
