// Fourier-analysis kernels for the "Fourier analysis" task library menu.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace vdce::tasklib {

using Complex = std::complex<double>;

/// In-place radix-2 Cooley-Tukey FFT.  `data.size()` must be a power of
/// two (throws StateError otherwise).  `inverse` selects the inverse
/// transform (including the 1/N scaling).
void fft_inplace(std::vector<Complex>& data, bool inverse = false);

/// Out-of-place forward FFT.
[[nodiscard]] std::vector<Complex> fft(const std::vector<Complex>& data);

/// Out-of-place inverse FFT (with 1/N scaling).
[[nodiscard]] std::vector<Complex> ifft(const std::vector<Complex>& data);

/// Real-input convenience wrapper: zero imaginary parts, pads to the
/// next power of two with zeros.
[[nodiscard]] std::vector<Complex> fft_real(const std::vector<double>& data);

/// |X_k|^2 for each bin of the forward transform of a real signal.
[[nodiscard]] std::vector<double> power_spectrum(
    const std::vector<double>& signal);

/// Circular convolution of two equal-length power-of-two sequences via
/// the convolution theorem.
[[nodiscard]] std::vector<double> circular_convolve(
    const std::vector<double>& a, const std::vector<double>& b);

/// Ideal low-pass filter via the frequency domain: zeroes every bin
/// above `cutoff_fraction` of the Nyquist band and transforms back.
/// The input is zero-padded to a power of two; the result keeps the
/// original length.  cutoff_fraction must lie in (0, 1].
[[nodiscard]] std::vector<double> lowpass_filter(
    const std::vector<double>& signal, double cutoff_fraction);

/// Smallest power of two >= n (n >= 1).
[[nodiscard]] std::size_t next_pow2(std::size_t n);

/// True iff n is a power of two (n >= 1).
[[nodiscard]] bool is_pow2(std::size_t n);

}  // namespace vdce::tasklib
