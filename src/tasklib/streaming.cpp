#include "tasklib/streaming.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "tasklib/fft.hpp"

namespace vdce::tasklib {

std::vector<double> windowed_sinc_fir(std::size_t taps, double cutoff) {
  if (taps == 0) throw common::StateError("FIR needs at least one tap");
  if (!(cutoff > 0.0) || cutoff > 0.5) {
    throw common::StateError("FIR cutoff must lie in (0, 0.5]");
  }
  std::vector<double> h(taps);
  const double mid = (static_cast<double>(taps) - 1.0) / 2.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < taps; ++i) {
    const double t = static_cast<double>(i) - mid;
    const double x = 2.0 * std::numbers::pi * cutoff * t;
    const double sinc = t == 0.0 ? 2.0 * cutoff
                                 : std::sin(x) / (std::numbers::pi * t);
    const double hamming =
        0.54 - 0.46 * std::cos(2.0 * std::numbers::pi *
                               static_cast<double>(i) /
                               (static_cast<double>(taps) - 1.0 + 1e-12));
    h[i] = sinc * hamming;
    sum += h[i];
  }
  for (double& v : h) v /= sum;  // unit DC gain
  return h;
}

std::vector<double> rational_resample(const std::vector<double>& signal,
                                      unsigned up, unsigned down,
                                      std::size_t taps) {
  if (up == 0 || down == 0) {
    throw common::StateError("resample factors must be positive");
  }
  const std::size_t n = signal.size();
  const std::size_t out_len =
      (n * up + down - 1) / down;  // ceil(n * up / down)
  if (n == 0) return {};
  const double cutoff = 0.5 / static_cast<double>(std::max(up, down));
  std::vector<double> h = windowed_sinc_fir(taps, cutoff);
  // The zero-stuffed signal carries 1/up of the original power per
  // sample; the interpolation filter restores it.
  for (double& v : h) v *= static_cast<double>(up);

  std::vector<double> out(out_len, 0.0);
  // out[m] = sum_k h[k] * stuffed[m*down - k], where stuffed[j] is
  // signal[j/up] when up divides j and 0 otherwise — so only taps with
  // (m*down - k) % up == 0 contribute, and the stuffed signal is never
  // materialized.
  for (std::size_t m = 0; m < out_len; ++m) {
    const std::size_t pos = m * down;
    double acc = 0.0;
    for (std::size_t k = 0; k < h.size() && k <= pos; ++k) {
      const std::size_t j = pos - k;
      if (j % up != 0) continue;
      const std::size_t src = j / up;
      if (src >= n) continue;
      acc += h[k] * signal[src];
    }
    out[m] = acc;
  }
  return out;
}

namespace {

// One window of samples per invocation (unit size = 64 samples).
std::size_t window_len(double input_size) {
  return std::max<std::size_t>(
      16, static_cast<std::size_t>(std::lround(64.0 * input_size)));
}

repo::TaskPerformanceRecord stream_perf(const std::string& name,
                                        double base_time, double comp,
                                        double comm_mb, double mem_mb) {
  repo::TaskPerformanceRecord r;
  r.task_name = name;
  r.base_time_s = base_time;
  r.computation_size = comp;
  r.communication_size_mb = comm_mb;
  r.memory_req_mb = mem_mb;
  return r;
}

LibraryEntry stream_entry(std::string name, std::string desc, unsigned min_in,
                          unsigned max_in, TaskFn fn, double base_time,
                          double comp, double comm_mb, double mem_mb) {
  LibraryEntry e;
  e.name = name;
  e.menu = "streaming";
  e.description = std::move(desc);
  e.min_inputs = min_in;
  e.max_inputs = max_in;
  e.fn = std::move(fn);
  e.default_perf = stream_perf(name, base_time, comp, comm_mb, mem_mb);
  return e;
}

}  // namespace

void register_streaming_menu(TaskRegistry& r) {
  r.add(stream_entry(
      "stream_window_source", "one sensor window: two tones + seeded noise",
      0, 0,
      [](const std::vector<Payload>&, const TaskContext& ctx) {
        const std::size_t n = window_len(ctx.input_size);
        std::vector<double> w(n);
        for (std::size_t i = 0; i < n; ++i) {
          const double t =
              static_cast<double>(i) / static_cast<double>(n);
          w[i] = std::sin(2.0 * std::numbers::pi * 5.0 * t) +
                 0.5 * std::sin(2.0 * std::numbers::pi * 12.0 * t) +
                 0.1 * ctx.rng->normal();
        }
        return Payload::of_vector(w);
      },
      0.01, 0.1, 0.0005, 0.01));

  r.add(stream_entry(
      "stream_resample", "rational 3/2 rate conversion (windowed-sinc FIR)",
      1, 1,
      [](const std::vector<Payload>& in, const TaskContext&) {
        return Payload::of_vector(
            rational_resample(in[0].as_vector(), 3, 2));
      },
      0.05, 0.5, 0.0008, 0.01));

  r.add(stream_entry(
      "stream_window_fft", "power spectrum of one window",
      1, 1,
      [](const std::vector<Payload>& in, const TaskContext&) {
        return Payload::of_vector(power_spectrum(in[0].as_vector()));
      },
      0.05, 0.5, 0.0008, 0.01));

  r.add(stream_entry(
      "stream_sink", "window digest: {samples, energy, peak}",
      1, 8,
      [](const std::vector<Payload>& in, const TaskContext&) {
        double samples = 0.0, energy = 0.0, peak = 0.0;
        for (const Payload& p : in) {
          for (const double v : p.as_vector()) {
            samples += 1.0;
            energy += v * v;
            peak = std::max(peak, std::abs(v));
          }
        }
        return Payload::of_vector({samples, energy, peak});
      },
      0.01, 0.05, 0.00005, 0.01));
}

}  // namespace vdce::tasklib
