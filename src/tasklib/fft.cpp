#include "tasklib/fft.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace vdce::tasklib {

using common::expects;

bool is_pow2(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::size_t next_pow2(std::size_t n) {
  expects(n >= 1, "next_pow2 of zero");
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_inplace(std::vector<Complex>& data, bool inverse) {
  const std::size_t n = data.size();
  expects(is_pow2(n), "FFT size must be a power of two");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  // Butterfly passes.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const Complex wn(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wn;
      }
    }
  }

  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (Complex& c : data) c *= scale;
  }
}

std::vector<Complex> fft(const std::vector<Complex>& data) {
  auto out = data;
  fft_inplace(out, /*inverse=*/false);
  return out;
}

std::vector<Complex> ifft(const std::vector<Complex>& data) {
  auto out = data;
  fft_inplace(out, /*inverse=*/true);
  return out;
}

std::vector<Complex> fft_real(const std::vector<double>& data) {
  expects(!data.empty(), "fft_real of empty signal");
  std::vector<Complex> c(next_pow2(data.size()), Complex(0.0, 0.0));
  for (std::size_t i = 0; i < data.size(); ++i) c[i] = Complex(data[i], 0.0);
  fft_inplace(c, /*inverse=*/false);
  return c;
}

std::vector<double> power_spectrum(const std::vector<double>& signal) {
  const auto spec = fft_real(signal);
  std::vector<double> out(spec.size());
  for (std::size_t i = 0; i < spec.size(); ++i) out[i] = std::norm(spec[i]);
  return out;
}

std::vector<double> lowpass_filter(const std::vector<double>& signal,
                                   double cutoff_fraction) {
  expects(cutoff_fraction > 0.0 && cutoff_fraction <= 1.0,
          "cutoff fraction must be in (0, 1]");
  auto spectrum = fft_real(signal);
  const std::size_t n = spectrum.size();
  // Bins [0, cutoff] and the mirrored tail are kept; the middle zeroed.
  const auto cutoff =
      static_cast<std::size_t>(cutoff_fraction * static_cast<double>(n) / 2);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t distance = std::min(k, n - k);  // from DC
    if (distance > cutoff) spectrum[k] = Complex(0.0, 0.0);
  }
  fft_inplace(spectrum, /*inverse=*/true);
  std::vector<double> out(signal.size());
  for (std::size_t i = 0; i < signal.size(); ++i) {
    out[i] = spectrum[i].real();
  }
  return out;
}

std::vector<double> circular_convolve(const std::vector<double>& a,
                                      const std::vector<double>& b) {
  expects(a.size() == b.size(), "circular_convolve size mismatch");
  expects(is_pow2(a.size()), "circular_convolve size must be a power of two");
  std::vector<Complex> fa(a.size()), fb(b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    fa[i] = Complex(a[i], 0.0);
    fb[i] = Complex(b[i], 0.0);
  }
  fft_inplace(fa, false);
  fft_inplace(fb, false);
  for (std::size_t i = 0; i < fa.size(); ++i) fa[i] *= fb[i];
  fft_inplace(fa, true);
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = fa[i].real();
  return out;
}

}  // namespace vdce::tasklib
