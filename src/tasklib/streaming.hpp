// Streaming task family: windowed signal stages for the D16 streaming
// execution mode (menu "streaming").
//
// The paper's C3I tracking scenario is naturally a continuous pipeline:
// sensor frames arrive forever and flow through rate conversion and
// spectral analysis toward a tracker.  These stages are that pipeline's
// library form (exemplar: R2sampler's multi-stage rate converter) —
// each call maps ONE window of samples to ONE window, holding no state
// between calls, so a stream of N frames through a stage is exactly N
// independent invocations.  That per-frame purity is what the
// differential test wall leans on: a finite stream must be
// bit-identical to running the batch engine once per frame.
//
//   stream_window_source   0-in   one window of two tones + seeded noise
//   stream_resample        1-in   rational 3/2 rate conversion (FIR)
//   stream_window_fft      1-in   power spectrum of the window
//   stream_sink            1..8   digest: {samples, energy, peak}
#pragma once

#include <cstddef>
#include <vector>

#include "tasklib/registry.hpp"

namespace vdce::tasklib {

/// Hamming-windowed-sinc low-pass FIR prototype.  `cutoff` is the
/// normalized cutoff frequency in (0, 0.5] (fraction of the sample
/// rate); `taps` >= 1.  Unit DC gain.
[[nodiscard]] std::vector<double> windowed_sinc_fir(std::size_t taps,
                                                    double cutoff);

/// Rational rate conversion by up/down (R2sampler's scheme): zero-stuff
/// by `up`, low-pass at min(1/(2 up), 1/(2 down)) of the stuffed rate
/// with a `taps`-tap windowed-sinc FIR (gain `up`), keep every
/// `down`-th sample.  Output length = ceil(n * up / down).
[[nodiscard]] std::vector<double> rational_resample(
    const std::vector<double>& signal, unsigned up, unsigned down,
    std::size_t taps = 48);

/// Registers the "streaming" menu into `r`.
void register_streaming_menu(TaskRegistry& r);

}  // namespace vdce::tasklib
