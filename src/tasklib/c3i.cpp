#include "tasklib/c3i.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace vdce::tasklib {

using common::expects;

std::vector<std::vector<SensorReport>> generate_scenario(
    const ScenarioParams& params, std::size_t num_scans, double dt_s,
    common::Rng& rng) {
  expects(dt_s > 0.0, "scan spacing must be positive");

  struct Target {
    double x, y, vx, vy;
  };
  std::vector<Target> targets;
  targets.reserve(params.num_targets);
  for (std::size_t i = 0; i < params.num_targets; ++i) {
    Target t;
    t.x = rng.uniform(0.0, params.field_km);
    t.y = rng.uniform(0.0, params.field_km);
    const double speed = rng.uniform(0.1, 1.0) * params.max_speed_km_s;
    const double heading = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
    t.vx = speed * std::cos(heading);
    t.vy = speed * std::sin(heading);
    targets.push_back(t);
  }

  std::vector<std::vector<SensorReport>> scans;
  scans.reserve(num_scans);
  for (std::size_t s = 0; s < num_scans; ++s) {
    const double t = static_cast<double>(s) * dt_s;
    std::vector<SensorReport> scan;
    scan.reserve(params.num_targets + params.clutter_per_scan);
    for (const Target& target : targets) {
      SensorReport r;
      r.x = target.x + target.vx * t + rng.normal(0.0, params.noise_sigma_km);
      r.y = target.y + target.vy * t + rng.normal(0.0, params.noise_sigma_km);
      r.intensity = params.target_intensity * rng.uniform(0.8, 1.2);
      r.time_s = t;
      scan.push_back(r);
    }
    for (std::size_t c = 0; c < params.clutter_per_scan; ++c) {
      SensorReport r;
      r.x = rng.uniform(0.0, params.field_km);
      r.y = rng.uniform(0.0, params.field_km);
      r.intensity = rng.uniform(0.0, params.clutter_intensity_max);
      r.time_s = t;
      scan.push_back(r);
    }
    scans.push_back(std::move(scan));
  }
  return scans;
}

std::vector<Detection> detect(const std::vector<SensorReport>& reports,
                              double threshold) {
  std::vector<Detection> out;
  for (const SensorReport& r : reports) {
    if (r.intensity >= threshold) {
      out.push_back(Detection{r.x, r.y, r.intensity, r.time_s});
    }
  }
  return out;
}

Association associate(const std::vector<Track>& tracks,
                      const std::vector<Detection>& detections,
                      double gate_km) {
  Association result;
  result.track_to_detection.assign(tracks.size(), std::nullopt);
  std::vector<bool> claimed(detections.size(), false);

  for (std::size_t ti = 0; ti < tracks.size(); ++ti) {
    const Track& track = tracks[ti];
    double best = gate_km;
    std::optional<std::size_t> best_idx;
    for (std::size_t di = 0; di < detections.size(); ++di) {
      if (claimed[di]) continue;
      const Detection& d = detections[di];
      const double dt = d.time_s - track.last_update_s;
      const double px = track.x + track.vx * dt;
      const double py = track.y + track.vy * dt;
      const double dist = std::hypot(d.x - px, d.y - py);
      if (dist <= best) {
        best = dist;
        best_idx = di;
      }
    }
    if (best_idx) {
      claimed[*best_idx] = true;
      result.track_to_detection[ti] = best_idx;
    }
  }
  for (std::size_t di = 0; di < detections.size(); ++di) {
    if (!claimed[di]) result.unassociated.push_back(di);
  }
  return result;
}

std::vector<Track> track_update(const std::vector<Track>& tracks,
                                const std::vector<Detection>& detections,
                                double scan_time_s, const FilterParams& params,
                                std::uint32_t& next_track_id) {
  const Association assoc = associate(tracks, detections, params.gate_km);

  std::vector<Track> out;
  out.reserve(tracks.size() + assoc.unassociated.size());

  for (std::size_t ti = 0; ti < tracks.size(); ++ti) {
    Track t = tracks[ti];
    const double dt = scan_time_s - t.last_update_s;
    // Predict.
    const double px = t.x + t.vx * dt;
    const double py = t.y + t.vy * dt;
    if (assoc.track_to_detection[ti]) {
      const Detection& d = detections[*assoc.track_to_detection[ti]];
      // Alpha-beta correction.
      const double rx = d.x - px;
      const double ry = d.y - py;
      t.x = px + params.alpha * rx;
      t.y = py + params.alpha * ry;
      if (dt > 0.0) {
        t.vx += params.beta * rx / dt;
        t.vy += params.beta * ry / dt;
      }
      t.misses = 0;
      ++t.hits;
      t.last_update_s = scan_time_s;
      out.push_back(t);
    } else {
      // Coast.
      t.x = px;
      t.y = py;
      t.last_update_s = scan_time_s;
      ++t.misses;
      if (t.misses <= params.max_misses) out.push_back(t);
      // else: track dropped
    }
  }

  for (const std::size_t di : assoc.unassociated) {
    const Detection& d = detections[di];
    Track t;
    t.id = next_track_id++;
    t.x = d.x;
    t.y = d.y;
    t.last_update_s = scan_time_s;
    t.hits = 1;
    out.push_back(t);
  }
  return out;
}

std::vector<std::vector<SensorReport>> fuse_scans(
    const std::vector<std::vector<SensorReport>>& a,
    const std::vector<std::vector<SensorReport>>& b,
    double merge_radius_km) {
  expects(a.size() == b.size(), "fuse_scans requires equal scan counts");
  std::vector<std::vector<SensorReport>> fused;
  fused.reserve(a.size());
  for (std::size_t s = 0; s < a.size(); ++s) {
    std::vector<SensorReport> scan = a[s];
    std::vector<bool> merged(scan.size(), false);
    for (const SensorReport& rb : b[s]) {
      bool matched = false;
      for (std::size_t i = 0; i < scan.size(); ++i) {
        if (merged[i]) continue;
        if (std::hypot(scan[i].x - rb.x, scan[i].y - rb.y) <=
            merge_radius_km) {
          // Average position, add intensity (coherent gain).
          scan[i].x = 0.5 * (scan[i].x + rb.x);
          scan[i].y = 0.5 * (scan[i].y + rb.y);
          scan[i].intensity += rb.intensity;
          merged[i] = true;
          matched = true;
          break;
        }
      }
      if (!matched) scan.push_back(rb);
    }
    fused.push_back(std::move(scan));
  }
  return fused;
}

std::vector<Threat> rank_threats(const std::vector<Track>& tracks,
                                 double defended_x, double defended_y) {
  std::vector<Threat> out;
  out.reserve(tracks.size());
  for (const Track& t : tracks) {
    const double dx = defended_x - t.x;
    const double dy = defended_y - t.y;
    const double dist = std::hypot(dx, dy);
    // Closing speed: velocity component towards the defended point.
    double closing = 0.0;
    if (dist > 1e-9) closing = (t.vx * dx + t.vy * dy) / dist;
    const double score =
        1.0 / (1.0 + dist) + std::max(0.0, closing);
    out.push_back(Threat{t.id, score});
  }
  std::sort(out.begin(), out.end(), [](const Threat& a, const Threat& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.track_id < b.track_id;
  });
  return out;
}

}  // namespace vdce::tasklib
