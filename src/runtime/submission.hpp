// The Application Submission Service: VDCE as a *shared* environment.
//
// "At each site, the VDCE Server runs the server software, called site
//  manager, which manages the VDCE resources" (Section 2) -- for all
//  users at once.  The QoS framework of Section 2.2 admits
//  applications, plural; up to this point the runtime executed exactly
//  one AFG at a time.  This service is the multi-application front
//  door:
//
//    submit(AFG, deadline, user, weight)
//      -> schedule (Figure 4, per-submission Site Scheduler)
//      -> residual-capacity QoS admission: the makespan estimate
//         charges the predicted host occupancy of every application
//         already admitted and not yet finished, so the same
//         host-seconds are never promised twice
//      -> reject-with-slack (QoS miss, or bounded-queue backpressure)
//         | run immediately | queue-with-ETA
//      -> bounded fair-share ready queue: stride scheduling over
//         per-user weights decides grant order when execution slots
//         free up
//      -> execution on a pool of engine slots; each running app gets
//         its own ExecutionEngine keyed by its AppId ticket (per-app
//         broker, per-app seeds, per-app FaultTolerance hooks)
//      -> prediction feedback + submission.* metrics, spans carrying
//         app= arguments.
//
// Determinism contract (the concurrency tests lean on it): admission
// decisions and grant order are serialised under one lock, per-app
// outputs depend only on (graph, seed, app id) -- never on what else
// is running -- and a paused service queues every admitted submission
// so tests fix the queue contents before releasing the workers.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "predict/forecaster.hpp"
#include "runtime/engine.hpp"
#include "scheduler/qos.hpp"
#include "scheduler/site_scheduler.hpp"

namespace vdce::rt {

/// One application submission: the AFG plus the user's QoS contract.
struct SubmissionRequest {
  afg::FlowGraph graph;
  sched::QosRequirement qos;
  /// Submitting user (fair-share accounting key).
  std::string user = "anonymous";
  /// Fair-share weight (> 0): a user with weight 2 receives execution
  /// grants twice as often as a user with weight 1 under contention.
  double weight = 1.0;
  /// Engine seed for this application; together with the assigned app
  /// id it fixes every task's RNG stream, so a completed app's outputs
  /// can be reproduced by replaying (graph, seed, app id) alone.
  std::uint64_t seed = 1;
};

/// Lifecycle of one submission.
enum class SubmissionState : std::uint8_t {
  kQueued,     // admitted, waiting for an execution slot
  kRunning,    // granted a slot, executing
  kCompleted,  // finished successfully
  kRejected,   // refused at admission (QoS slack < 0, or backpressure)
  kFailed,     // admitted but execution ultimately failed
};

[[nodiscard]] const char* to_string(SubmissionState state);

/// Point-in-time view of one submission (wait() returns the terminal
/// snapshot).
struct SubmissionStatus {
  common::AppId app;
  SubmissionState state = SubmissionState::kQueued;
  std::string user;
  /// The admission decision (residual-capacity estimate and slack).
  /// For backpressure rejections admitted is true but the queue was
  /// full -- `error` distinguishes the two.
  sched::QosAdmission admission;
  /// Queue-with-ETA backpressure signal: estimated seconds until this
  /// submission is granted a slot (0 when it ran immediately).
  double queue_eta_s = 0.0;
  /// The allocation the admission was based on.
  sched::AllocationTable allocation;
  /// Execution grant order (1 = first grant; 0 = never granted).  The
  /// fair-share tests assert on this.
  std::size_t grant_index = 0;
  /// kCompleted only.
  RunResult result;
  /// kRejected / kFailed reason.
  std::string error;
};

/// Service-local counters (mirrored into the global MetricsRegistry as
/// submission.*).  Reconciliation invariants after drain():
///   submitted == admitted + rejected + queued
///   queued    == queued_then_admitted
///   admitted + queued_then_admitted == completed + failed
struct SubmissionStats {
  std::uint64_t submitted = 0;
  /// Admitted with a free slot: ran without queueing.
  std::uint64_t admitted = 0;
  /// Refused: QoS slack < 0, backpressure, or scheduling failure.
  std::uint64_t rejected = 0;
  /// Admitted but queued behind busy slots.
  std::uint64_t queued = 0;
  /// Queued submissions later granted a slot.
  std::uint64_t queued_then_admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::size_t running = 0;
  std::size_t queue_depth = 0;
};

/// Tunables of the submission service.
struct AppSubmissionConfig {
  /// Concurrent execution slots (worker threads running engines).
  std::size_t slots = 4;
  /// Bounded ready queue: an admitted submission arriving when this
  /// many are already waiting is rejected (backpressure).
  std::size_t max_queue = 16;
  /// Start with grants paused: admitted submissions queue until
  /// resume() -- the deterministic-test hook.
  bool start_paused = false;
  /// Predicted load each allocated task adds to its primary host's
  /// forecaster while its application is admitted-but-unfinished
  /// (registered on every forecaster added with add_forecaster); 0
  /// disables the contribution.
  double admitted_load_bias = 0.0;
  /// Per-submission Site Scheduler configuration.
  sched::SiteSchedulerConfig scheduler;
  /// Engine configuration template; `engine.seed` is overridden by
  /// each submission's own seed.
  EngineConfig engine;
};

/// Builds the per-application FaultTolerance hook set for one admitted
/// run; both references stay valid for the run's duration.  Empty
/// factory = no fault tolerance (failures are fatal for that app only).
using FaultHookFactory = std::function<FaultTolerance(
    const afg::FlowGraph& graph, const sched::AllocationTable& allocation)>;

/// Concurrent multi-application admission and execution front door.
class AppSubmissionService {
 public:
  /// `directory` and `registry` must outlive the service.
  AppSubmissionService(SiteId local_site, sched::SiteDirectory& directory,
                       const tasklib::TaskRegistry& registry,
                       AppSubmissionConfig config = {});

  /// Drains the ready queue (shutdown still executes admitted work),
  /// then joins the slot workers.
  ~AppSubmissionService();

  AppSubmissionService(const AppSubmissionService&) = delete;
  AppSubmissionService& operator=(const AppSubmissionService&) = delete;

  /// Optional wiring, set before the first submit():
  /// post-run measurements flow into `manager`'s task-performance DB.
  void set_feedback(SiteManager* manager) { feedback_ = manager; }
  /// Admitted-app load commitments are registered on every added
  /// forecaster (see AppSubmissionConfig::admitted_load_bias).
  void add_forecaster(predict::LoadForecaster* forecaster);
  /// Per-app fault-tolerance hook factory.
  void set_fault_hooks(FaultHookFactory factory) {
    fault_hooks_ = std::move(factory);
  }

  /// Schedules + admits one application; thread-safe, non-blocking
  /// (never waits for execution).  Returns the submission's AppId
  /// ticket; poll status() or block in wait() for the outcome.
  common::AppId submit(SubmissionRequest request);

  /// Blocks until the submission reaches a terminal state and returns
  /// that snapshot.  Throws NotFoundError for an unknown ticket.
  [[nodiscard]] SubmissionStatus wait(common::AppId app) const;

  /// Non-blocking snapshot.  Throws NotFoundError for an unknown
  /// ticket.
  [[nodiscard]] SubmissionStatus status(common::AppId app) const;

  /// Releases grants on a paused service.
  void resume();

  /// Blocks until no submission is queued or running.
  void drain() const;

  [[nodiscard]] SubmissionStats stats() const;
  [[nodiscard]] const AppSubmissionConfig& config() const { return config_; }

 private:
  struct AppRecord;
  struct UserShare {
    double pass = 0.0;  // stride-scheduling virtual time
  };

  void worker_loop();
  /// Picks the next grant by stride fair-share; mu_ must be held.
  [[nodiscard]] std::shared_ptr<AppRecord> pick_next_locked();
  /// Registers/releases an app's occupancy + forecaster commitments;
  /// mu_ must be held.
  void charge_locked(AppRecord& record);
  void release_locked(AppRecord& record);
  [[nodiscard]] SubmissionStatus snapshot_locked(const AppRecord& rec) const;

  SiteId local_site_;
  sched::SiteDirectory* directory_;
  const tasklib::TaskRegistry* registry_;
  AppSubmissionConfig config_;
  SiteManager* feedback_ = nullptr;
  std::vector<predict::LoadForecaster*> forecasters_;
  FaultHookFactory fault_hooks_;

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  bool paused_ = false;
  bool shutdown_ = false;
  std::uint32_t next_ticket_ = 1;
  std::uint64_t next_seq_ = 1;
  std::size_t next_grant_ = 1;
  std::size_t running_ = 0;
  /// Virtual time of the latest grant: new users join the fair-share
  /// race here, not at zero.
  double grant_pass_ = 0.0;
  std::map<common::AppId, std::shared_ptr<AppRecord>> records_;
  std::vector<common::AppId> ready_;
  sched::HostOccupancy occupancy_;
  std::map<std::string, UserShare> shares_;
  SubmissionStats stats_;
  std::vector<std::jthread> workers_;
};

}  // namespace vdce::rt
