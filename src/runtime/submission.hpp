// The Application Submission Service: VDCE as a *shared* environment.
//
// "At each site, the VDCE Server runs the server software, called site
//  manager, which manages the VDCE resources" (Section 2) -- for all
//  users at once.  The QoS framework of Section 2.2 admits
//  applications, plural; up to this point the runtime executed exactly
//  one AFG at a time.  This service is the multi-application front
//  door:
//
//    submit(AFG, deadline, user, weight, priority)
//      -> schedule (Figure 4, per-submission Site Scheduler; runs
//         OUTSIDE the service lock, so concurrent submitters overlap
//         their placement work)
//      -> residual-capacity QoS admission: the makespan estimate
//         charges the predicted host occupancy of every application
//         already admitted and not yet finished, so the same
//         host-seconds are never promised twice; submit_batch admits
//         an entire arrival burst under one lock acquisition and one
//         occupancy snapshot
//      -> load-shedding tiers (DESIGN.md D15):
//           0. early shed (opt-in): a full queue rejects before any
//              scheduling work is spent, unless the newcomer's
//              priority could preempt;
//           1. reject-with-slack (QoS miss) and bounded-queue
//              backpressure;
//           2. priority preemption: a full queue evicts the youngest
//              QUEUED submission of the lowest priority tier strictly
//              below the newcomer's (running apps are never touched);
//           3. shed_queued(): bulk-drop queued work below a priority
//              cutoff (the operator's pressure valve).
//      -> sharded stride fair-share ready queue (rt::FairShareQueue):
//         O(log n) grant picks keyed on pass value with FIFO seq
//         tie-break, user-hash shard locks, pass renormalization, and
//         idle-share eviction
//      -> execution on a pool of engine slots; each running app gets
//         its own ExecutionEngine keyed by its AppId ticket (per-app
//         broker, per-app seeds, per-app FaultTolerance hooks)
//      -> prediction feedback + submission.* metrics, spans carrying
//         app= arguments; terminal records retire into compact stubs
//         so millions of submissions do not grow the record map
//         without bound.
//
// Determinism contract (the concurrency tests lean on it): admission
// decisions and grant order are serialised under one lock, per-app
// outputs depend only on (graph, seed, app id) -- never on what else
// is running -- and a paused service queues every admitted submission
// so tests fix the queue contents before releasing the workers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <set>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "predict/forecaster.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/engine.hpp"
#include "runtime/fair_share.hpp"
#include "scheduler/qos.hpp"
#include "scheduler/site_scheduler.hpp"

namespace vdce::rt {

/// Flapping-host circuit breaker tunables (DESIGN.md D12).  A host
/// accumulates one point per reported host-failure; the score decays
/// exponentially with `decay_half_life_s`.  Crossing `open_threshold`
/// quarantines the host (probes report it dead, replans exclude it);
/// decaying below `close_threshold` readmits it.
struct CircuitBreakerConfig {
  /// Off by default: quarantine changes which hosts the engine trusts,
  /// so it is an explicit opt-in of the failover deployments.
  bool enabled = false;
  double open_threshold = 3.0;
  double close_threshold = 1.0;
  double decay_half_life_s = 30.0;
};

/// Thread-safe decayed-failure-rate quarantine.  Machine threads feed
/// it via the wrapped FaultTolerance::on_failure hook; probes and the
/// failover replanner consult quarantined().  The on-open callback
/// fires OUTSIDE the breaker's lock (it takes the service lock to bump
/// counters and invalidate forecasters).
class HostCircuitBreaker {
 public:
  explicit HostCircuitBreaker(CircuitBreakerConfig config = {});

  /// Injectable clock (seconds, monotone); tests pin virtual time.
  /// Default: wall-clock steady_clock seconds.
  void set_clock(std::function<double()> clock);
  /// Fired once per open transition, outside the internal lock.
  void set_on_open(std::function<void(common::HostId)> callback);

  /// Records one failure report; returns true when this report opened
  /// the breaker (after invoking the on-open callback).
  bool record_failure(common::HostId host);

  /// Whether the host is currently quarantined (decay is evaluated and
  /// may close the breaker on the spot).
  [[nodiscard]] bool quarantined(common::HostId host);
  [[nodiscard]] std::vector<common::HostId> quarantined_hosts();
  /// Decayed failure score right now (0 for never-failed hosts).
  [[nodiscard]] double score(common::HostId host);
  /// Total open transitions.
  [[nodiscard]] std::uint64_t trips() const;

  [[nodiscard]] const CircuitBreakerConfig& config() const {
    return config_;
  }

 private:
  struct Entry {
    double score = 0.0;
    double updated_at = 0.0;
    bool open = false;
  };
  /// Decays `entry` to `now` and applies the close threshold; lock held.
  void refresh_locked(Entry& entry, double now) const;
  [[nodiscard]] double now() const;

  CircuitBreakerConfig config_;
  std::function<double()> clock_;
  std::function<void(common::HostId)> on_open_;
  mutable std::mutex mu_;
  std::map<common::HostId, Entry> entries_;
  std::atomic<std::uint64_t> trips_{0};
};

/// One application submission: the AFG plus the user's QoS contract.
struct SubmissionRequest {
  afg::FlowGraph graph;
  sched::QosRequirement qos;
  /// Submitting user (fair-share accounting key).
  std::string user = "anonymous";
  /// Fair-share weight (> 0): a user with weight 2 receives execution
  /// grants twice as often as a user with weight 1 under contention.
  double weight = 1.0;
  /// Admission priority tier from the user-accounts repository (paper
  /// Section 2.1's per-user records): a submission arriving at a full
  /// queue preempts the youngest QUEUED submission of the lowest tier
  /// strictly below its own; shed_queued() drops queued work below a
  /// cutoff.  Priority never reorders grants among queued work -- the
  /// stride race stays weight-driven -- it only decides who survives
  /// load shedding.
  int priority = 0;
  /// Engine seed for this application; together with the assigned app
  /// id it fixes every task's RNG stream, so a completed app's outputs
  /// can be reproduced by replaying (graph, seed, app id) alone.
  std::uint64_t seed = 1;
};

/// Lifecycle of one submission.
enum class SubmissionState : std::uint8_t {
  kQueued,     // admitted, waiting for an execution slot
  kRunning,    // granted a slot, executing
  kCompleted,  // finished successfully
  kRejected,   // refused at admission, preempted, or shed
  kFailed,     // admitted but execution ultimately failed
};

[[nodiscard]] const char* to_string(SubmissionState state);

/// Point-in-time view of one submission (wait() returns the terminal
/// snapshot).
struct SubmissionStatus {
  common::AppId app;
  SubmissionState state = SubmissionState::kQueued;
  std::string user;
  /// The admission decision (residual-capacity estimate and slack).
  /// For backpressure rejections admitted is true but the queue was
  /// full -- `error` distinguishes the two.
  sched::QosAdmission admission;
  /// Queue-with-ETA backpressure signal: estimated seconds until this
  /// submission is granted a slot (0 when it ran immediately).
  double queue_eta_s = 0.0;
  /// The allocation the admission was based on.
  sched::AllocationTable allocation;
  /// Execution grant order (1 = first grant; 0 = never granted).  The
  /// fair-share tests assert on this.
  std::size_t grant_index = 0;
  /// Site-level failover restarts this submission consumed.
  std::size_t restarts = 0;
  /// kCompleted only.
  RunResult result;
  /// kRejected / kFailed reason.
  std::string error;
  /// True when the full record has been retired into a compact stub
  /// (allocation/result/error no longer held; see terminal_record_cap).
  bool retired = false;
};

/// Service-local counters (mirrored into the global MetricsRegistry as
/// submission.*).  Reconciliation invariants after drain():
///   submitted == admitted + rejected + queued
///   queued    == queued_then_admitted + preempted + shed
///   admitted + queued_then_admitted == completed + failed
struct SubmissionStats {
  std::uint64_t submitted = 0;
  /// Admitted with a free slot: ran without queueing.
  std::uint64_t admitted = 0;
  /// Refused at admission: QoS slack < 0, backpressure (early or
  /// post-QoS), or scheduling failure.
  std::uint64_t rejected = 0;
  /// Admitted but queued behind busy slots.
  std::uint64_t queued = 0;
  /// Queued submissions later granted a slot.
  std::uint64_t queued_then_admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  /// Queued submissions evicted by a higher-priority arrival (shedding
  /// tier 2).
  std::uint64_t preempted = 0;
  /// Queued submissions dropped by shed_queued() (shedding tier 3).
  std::uint64_t shed = 0;
  /// Rejections taken by the early-shed fast path before any
  /// scheduling work (shedding tier 0; a subset of `rejected`).
  std::uint64_t early_shed = 0;
  /// Terminal records compacted into stubs (memory reclamation).
  std::uint64_t retired = 0;
  /// Site-level failover restarts across all submissions.
  std::uint64_t restarts = 0;
  /// Circuit-breaker open transitions.
  std::uint64_t breaker_trips = 0;
  std::size_t running = 0;
  std::size_t queue_depth = 0;
  /// Full records currently held (bounded by terminal_record_cap plus
  /// live submissions).
  std::size_t records_retained = 0;
};

/// Tunables of the submission service.
struct AppSubmissionConfig {
  /// Concurrent execution slots (worker threads running engines).
  std::size_t slots = 4;
  /// Bounded ready queue: an admitted submission arriving when this
  /// many are already waiting is rejected (backpressure) unless its
  /// priority preempts a queued lower tier.
  std::size_t max_queue = 16;
  /// Start with grants paused: admitted submissions queue until
  /// resume() -- the deterministic-test hook.
  bool start_paused = false;
  /// Shedding tier 0: when the queue is full and the arrival's
  /// priority cannot preempt anything queued, reject before spending
  /// any scheduling work.  Off by default: the early rejection carries
  /// no QoS estimate, which changes the (pinned) rejection shape of
  /// the seed behaviour.
  bool early_shed = false;
  /// Terminal (completed/failed/rejected) records beyond this many are
  /// retired: the heavy record (graph, allocation, outputs) is dropped
  /// and a compact stub keeps state/grant_index/restarts for status().
  /// 0 = retain everything (the pre-D15 behaviour).
  std::size_t terminal_record_cap = 65536;
  /// Retired stubs beyond this many are forgotten entirely (status()
  /// then throws NotFoundError).  0 = retain all stubs.
  std::size_t retired_stub_cap = 1 << 20;
  /// Sharded stride queue tunables (DESIGN.md D15).
  FairShareConfig fair_share;
  /// Predicted load each allocated task adds to its primary host's
  /// forecaster while its application is admitted-but-unfinished
  /// (registered on every forecaster added with add_forecaster); 0
  /// disables the contribution.
  double admitted_load_bias = 0.0;
  /// Per-submission Site Scheduler configuration.
  sched::SiteSchedulerConfig scheduler;
  /// Engine configuration template; `engine.seed` is overridden by
  /// each submission's own seed.
  EngineConfig engine;

  /// Site-level failover (DESIGN.md D12): when an admitted app's engine
  /// surfaces an unrecoverable failure, quarantine the hosts the health
  /// probe reports dead, re-run the Figure-4 scheduler over surviving
  /// resources for the *incomplete* subgraph, re-admit through
  /// residual-capacity QoS, and resume from checkpoint.  0 = failover
  /// off (a fatal engine error fails the submission, the seed
  /// behaviour).
  int max_restarts = 0;
  /// Exponential backoff between restart attempts; jitter is seeded
  /// from (engine seed, app, restart attempt), never global state.
  double restart_backoff_s = 0.05;
  double restart_backoff_multiplier = 2.0;
  double restart_backoff_jitter = 0.5;
  /// Capture completions into the service checkpoint store and resume
  /// restarts from the completed frontier.  Off: restarts re-execute
  /// the whole graph (the wasted-work baseline of EXPERIMENTS.md E18).
  bool checkpointing = true;
  /// Flapping-host circuit breaker (off unless breaker.enabled).
  CircuitBreakerConfig breaker;
};

/// Builds the per-application FaultTolerance hook set for one admitted
/// run; both references stay valid for the run's duration.  Empty
/// factory = no fault tolerance (failures are fatal for that app only).
using FaultHookFactory = std::function<FaultTolerance(
    const afg::FlowGraph& graph, const sched::AllocationTable& allocation)>;

/// Concurrent multi-application admission and execution front door.
class AppSubmissionService {
 public:
  /// `directory` and `registry` must outlive the service.
  AppSubmissionService(SiteId local_site, sched::SiteDirectory& directory,
                       const tasklib::TaskRegistry& registry,
                       AppSubmissionConfig config = {});

  /// Drains the ready queue (shutdown still executes admitted work),
  /// then joins the slot workers.
  ~AppSubmissionService();

  AppSubmissionService(const AppSubmissionService&) = delete;
  AppSubmissionService& operator=(const AppSubmissionService&) = delete;

  /// Optional wiring, set before the first submit():
  /// post-run measurements flow into `manager`'s task-performance DB.
  void set_feedback(SiteManager* manager) { feedback_ = manager; }
  /// Admitted-app load commitments are registered on every added
  /// forecaster (see AppSubmissionConfig::admitted_load_bias).
  void add_forecaster(predict::LoadForecaster* forecaster);
  /// Per-app fault-tolerance hook factory.
  void set_fault_hooks(FaultHookFactory factory) {
    fault_hooks_ = std::move(factory);
  }
  /// Cluster-health probe the failover replanner consults: hosts the
  /// probe reports dead are quarantined (excluded from replacement
  /// placements).  Typically the testbed/chaos liveness probe; unset =
  /// only circuit-breaker quarantine excludes hosts.
  void set_health_probe(std::function<bool(common::HostId)> probe) {
    std::lock_guard lk(mu_);
    health_probe_ = std::move(probe);
  }
  /// D17 quorum verdict feed: the watchdog's on_site_down/on_site_up
  /// hooks mark a whole site dead (its hosts are excluded from
  /// failover replacement placements) or alive again.  Only the
  /// quorum-confirmed verdict should be fed here -- a merely SUSPECT
  /// site keeps its placements.
  void note_site_liveness(common::SiteId site, bool dead);
  /// Sites currently marked dead via note_site_liveness (sorted).
  [[nodiscard]] std::vector<common::SiteId> dead_sites() const;

  /// Schedules + admits one application; thread-safe.  Placement runs
  /// outside the service lock, admission bookkeeping inside it; the
  /// call never waits for execution.  Returns the submission's AppId
  /// ticket; poll status() or block in wait() for the outcome.
  common::AppId submit(SubmissionRequest request);

  /// Batched admission for an arrival burst: every graph is validated
  /// up front (an invalid graph throws before any submission is
  /// recorded), every placement runs outside the lock, and the whole
  /// burst is admitted under ONE lock acquisition against one
  /// residual-capacity snapshot -- semantically identical to calling
  /// submit() in a loop, minus per-submission lock and snapshot churn.
  std::vector<common::AppId> submit_batch(
      std::vector<SubmissionRequest> requests);

  /// Blocks until the submission reaches a terminal state and returns
  /// that snapshot.  Throws NotFoundError for an unknown ticket.
  [[nodiscard]] SubmissionStatus wait(common::AppId app) const;

  /// Non-blocking snapshot.  Throws NotFoundError for an unknown
  /// ticket.
  [[nodiscard]] SubmissionStatus status(common::AppId app) const;

  /// Releases grants on a paused service.
  void resume();

  /// Pauses grants: queued submissions hold until resume().  Running
  /// applications are unaffected.
  void pause();

  /// Shedding tier 3: drops every queued submission with priority
  /// strictly below `below_priority` (their state becomes kRejected
  /// with a "shed" error; charges and ETAs are released).  Running
  /// applications are never touched.  Returns how many were dropped.
  std::size_t shed_queued(
      int below_priority = std::numeric_limits<int>::max());

  /// Blocks until no submission is queued or running.
  void drain() const;

  [[nodiscard]] SubmissionStats stats() const;
  [[nodiscard]] const AppSubmissionConfig& config() const { return config_; }

  /// The service's checkpoint store (tests inspect frontier sizes).
  [[nodiscard]] CheckpointStore& checkpoints() { return checkpoints_; }
  /// The flapping-host circuit breaker (tests pin its clock).
  [[nodiscard]] HostCircuitBreaker& breaker() { return breaker_; }
  /// The sharded stride queue (tests inspect user/renorm counters).
  [[nodiscard]] FairShareQueue& fair_share() { return queue_; }

 private:
  struct AppRecord;
  /// Compact remnant of a retired terminal record.
  struct RetiredStub {
    SubmissionState state = SubmissionState::kCompleted;
    std::uint32_t grant_index = 0;
    std::uint32_t restarts = 0;
  };
  /// One submission mid-flight through submit_batch's phases.
  struct Prepared;

  void worker_loop();
  /// Site-level failover: quarantine dead/quarantined hosts, re-place
  /// the incomplete subgraph, re-admit through residual-capacity QoS.
  /// Returns false (with `rec.error` set) when no feasible restart
  /// exists; mu_ must NOT be held.
  [[nodiscard]] bool replan_for_restart(AppRecord& rec,
                                        const std::string& why);
  /// Wraps factory-produced hooks with circuit-breaker feeding
  /// (on_failure) and quarantine-aware liveness (host_alive).
  [[nodiscard]] FaultTolerance wrap_hooks(FaultTolerance hooks);
  /// Registers/releases an app's occupancy, forecaster commitments and
  /// pending-prediction (ETA) charge; mu_ must be held.
  void charge_locked(AppRecord& record);
  void release_locked(AppRecord& record);
  /// Marks a queued victim rejected (preempted or shed) and releases
  /// its charges; mu_ must be held.
  void evict_queued_locked(AppRecord& record, std::string reason,
                           std::uint64_t SubmissionStats::*counter,
                           const char* metric);
  /// Retires the oldest terminal records beyond terminal_record_cap
  /// into compact stubs; mu_ must be held.
  void note_terminal_locked(const std::shared_ptr<AppRecord>& record);
  [[nodiscard]] SubmissionStatus snapshot_locked(const AppRecord& rec) const;

  SiteId local_site_;
  sched::SiteDirectory* directory_;
  const tasklib::TaskRegistry* registry_;
  AppSubmissionConfig config_;
  SiteManager* feedback_ = nullptr;
  std::vector<predict::LoadForecaster*> forecasters_;
  FaultHookFactory fault_hooks_;
  std::function<bool(common::HostId)> health_probe_;
  /// Sites quorum-declared dead (note_site_liveness); guarded by mu_.
  std::set<common::SiteId> dead_sites_;
  CheckpointStore checkpoints_;
  HostCircuitBreaker breaker_;
  /// Sharded stride ready queue; all mutations happen under mu_ (its
  /// internal shard locks nest beneath), reads like grant_pass() are
  /// lock-free.
  FairShareQueue queue_;

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  bool paused_ = false;
  bool shutdown_ = false;
  std::uint32_t next_ticket_ = 1;
  std::uint64_t next_seq_ = 1;
  std::size_t next_grant_ = 1;
  std::size_t running_ = 0;
  /// Queued submissions (queue_.size() mirrors it; this one is the
  /// authority because it only changes under mu_).
  std::size_t queued_count_ = 0;
  /// Sum of predicted makespans over queued + running submissions:
  /// the queue-with-ETA estimate reads this instead of walking every
  /// record (the pre-D15 O(all-records) loop).
  double pending_pred_s_ = 0.0;
  std::map<common::AppId, std::shared_ptr<AppRecord>> records_;
  /// Terminal records in retirement order, plus the compacted stubs.
  std::deque<common::AppId> terminal_fifo_;
  std::unordered_map<common::AppId, RetiredStub> retired_;
  std::deque<common::AppId> retired_fifo_;
  sched::HostOccupancy occupancy_;
  SubmissionStats stats_;
  std::vector<std::jthread> workers_;
};

}  // namespace vdce::rt
