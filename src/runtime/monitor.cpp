#include "runtime/monitor.hpp"

#include "common/error.hpp"

namespace vdce::rt {

Monitor::Monitor(netsim::VirtualTestbed& testbed, HostId host,
                 Duration period_s)
    : testbed_(&testbed), host_(host), period_s_(period_s) {
  common::expects(period_s > 0.0, "monitor period must be positive");
}

std::optional<MonitorReport> Monitor::tick(TimePoint now) {
  if (now < next_due_) return std::nullopt;
  // Catch up the schedule (a long gap yields one report, not a burst).
  while (next_due_ <= now) next_due_ += period_s_;

  if (!testbed_->is_alive(host_, now)) return std::nullopt;

  MonitorReport report;
  report.host = host_;
  report.when = now;
  report.cpu_load = testbed_->measure_load(host_, now);
  report.available_memory_mb =
      testbed_->measure_available_memory(host_, now);
  ++taken_;
  return report;
}

}  // namespace vdce::rt
