// The Group Manager.
//
// "The Group Manager ... periodically receives the up-to-date values
//  from hosts.  Group Manager sends only the workloads of the resources
//  that have changed considerably from the previous measurement to the
//  Site Manager.  The workload of a resource is significantly changed if
//  the up-to-date measurement is higher or lower than the summation of
//  the previous measurement and the width of the confidence interval.
//  ...  The Group Manager periodically checks to see if all hosts in the
//  group are alive by sending echo packets to hosts and waiting for
//  their responses.  These packets are used to detect the node and
//  network failures and to measure the network parameters, i.e., network
//  latency and transfer rate within a group."  (Section 2.3.1)
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "netsim/testbed.hpp"
#include "runtime/messages.hpp"
#include "runtime/monitor.hpp"

namespace vdce::rt {

/// What one Group Manager tick wants the Site Manager to know.
struct GroupTickOutput {
  std::vector<WorkloadUpdate> workload_updates;
  std::vector<LivenessChange> liveness_changes;
  std::vector<NetworkMeasurement> network_measurements;
};

/// Message-traffic counters for the monitoring experiments (F6).
struct GroupManagerStats {
  std::size_t reports_received = 0;   // monitor -> group manager
  std::size_t updates_forwarded = 0;  // group manager -> site manager
  std::size_t echo_rounds = 0;
  std::size_t failures_detected = 0;
  std::size_t recoveries_detected = 0;
};

/// Tunables for one Group Manager.
struct GroupManagerConfig {
  /// Echo (keep-alive) round period.
  Duration echo_period_s = 2.0;
  /// Confidence-interval z multiplier for the forwarding filter.
  double ci_z = 1.96;
  /// Measurement window per host for the CI computation.
  std::size_t window = 8;
  /// When false, every report is forwarded (ablation D1).
  bool ci_filter = true;
};

/// The per-group leader process.
class GroupManager {
 public:
  /// Owns a Monitor per host of `group`.  `testbed` must outlive the
  /// manager.
  GroupManager(netsim::VirtualTestbed& testbed, GroupId group,
               Duration monitor_period_s, GroupManagerConfig config = {});

  /// One control-plane step at time `now`: collect due monitor reports,
  /// run the CI forwarding filter, run the echo round when due.
  [[nodiscard]] GroupTickOutput tick(TimePoint now);

  [[nodiscard]] GroupId group() const { return group_; }
  [[nodiscard]] const GroupManagerStats& stats() const { return stats_; }
  [[nodiscard]] const GroupManagerConfig& config() const { return config_; }

  /// Hosts this group manager currently believes are alive.
  [[nodiscard]] std::vector<HostId> hosts_believed_alive() const;

  /// Whether `host` belongs to this manager's group.
  [[nodiscard]] bool manages(HostId host) const {
    return tracking_.contains(host);
  }

  /// Out-of-band failure report from the Application Controller path
  /// (an executing task found its host dead before the next echo round
  /// would).  Flips the believed-alive state and returns the resulting
  /// LivenessChange, or std::nullopt when the host is unknown or
  /// already believed down.
  [[nodiscard]] std::optional<LivenessChange> report_task_failure(
      HostId host, TimePoint when);

 private:
  struct HostTracking {
    common::SlidingWindowStats window;
    double last_forwarded_load = -1.0;  // <0: nothing forwarded yet
    bool believed_alive = true;
  };

  netsim::VirtualTestbed* testbed_;
  GroupId group_;
  GroupManagerConfig config_;
  std::vector<Monitor> monitors_;
  std::unordered_map<HostId, HostTracking> tracking_;
  TimePoint next_echo_ = 0.0;
  GroupManagerStats stats_;
};

}  // namespace vdce::rt
