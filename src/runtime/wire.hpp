// Versioned wire format for the control plane (design D14).
//
// Up to PR 6 the Resource Controller messages of messages.hpp travelled
// as C++ structs inside one address space.  To host Site Managers in
// separate OS processes every control message needs an explicit,
// versioned serialization.  Each encoded message is
//
//     u8 magic (0xC7) | u8 version (1) | u8 type | payload
//
// carried as ONE Data Manager frame (the 4-byte length prefix of the
// TCP transport delimits messages, so the wire format never needs its
// own length field).  All scalars use the big-endian WireWriter codec.
//
// Compatibility contract:
//   * decoders reject a wrong magic or an unknown version outright
//     (ParseError) -- no silent misparse of foreign bytes;
//   * decoders IGNORE trailing bytes after the fields they know, so a
//     version-1 reader accepts a version-1 message extended with new
//     trailing fields by a newer writer (the append-only evolution
//     rule);
//   * truncated payloads throw ParseError from the underlying reader.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "runtime/messages.hpp"
#include "scheduler/host_selection.hpp"

namespace vdce::afg {
struct TaskNode;
}

namespace vdce::rt::wire {

inline constexpr std::uint8_t kMagic = 0xC7;
inline constexpr std::uint8_t kVersion = 1;

/// Message discriminator (third header byte).  Append-only: existing
/// values never change meaning.
enum class MsgType : std::uint8_t {
  kMonitorReport = 1,
  kWorkloadUpdate = 2,
  kLivenessChange = 3,
  kNetworkMeasurement = 4,
  kRescheduleRequest = 5,
  kHeartbeat = 6,
  // -- daemon RPCs ------------------------------------------------------
  kTickRequest = 7,
  kHostSelectionRequest = 8,
  kHostSelectionResponse = 9,
  kReselectionRequest = 10,
  kReselectionResponse = 11,
  kRecordTaskTime = 12,
  kShutdownRequest = 13,
  kAck = 14,
  kErrorReply = 15,
};

[[nodiscard]] const char* to_string(MsgType type);

/// A site daemon's liveness beacon to its watchdog.  The first beacon
/// after a (re)start also announces the kernel-assigned RPC port.
struct Heartbeat {
  common::SiteId site;
  std::int64_t pid = 0;
  std::uint64_t seq = 0;
  std::uint16_t rpc_port = 0;
  /// Restart generation: 1 for the first launch, bumped by the
  /// watchdog on every respawn so a stale pre-kill beacon can never be
  /// mistaken for the reincarnation's.
  std::uint32_t incarnation = 1;
};

/// Coordinator -> daemon: advance the site's Control Manager to `now`.
struct TickRequest {
  common::TimePoint now = 0.0;
};

/// Coordinator -> daemon: run the Host Selection Algorithm over the
/// AFG (shipped in afg::to_text form).
struct HostSelectionRequest {
  std::string graph_text;
  std::uint32_t threads = 1;
};

struct HostSelectionResponse {
  sched::HostSelectionMap selection;
};

/// Coordinator -> daemon: re-place one task, excluding dead hosts.
struct ReselectionRequest {
  common::TaskId task;
  std::string library_task;
  std::string label;
  double input_size = 1.0;
  std::uint32_t num_processors = 1;
  bool parallel = false;
  std::vector<common::HostId> excluded;
};

struct ReselectionResponse {
  sched::HostSelection selection;
};

/// Coordinator -> daemon: post-execution feedback for the
/// task-performance database.
struct RecordTaskTime {
  std::string library_task;
  common::Duration elapsed_s = 0.0;
};

/// Daemon -> coordinator: RPC succeeded with no payload.
struct Ack {};

/// Daemon -> coordinator: RPC failed; `what` carries the error text.
struct ErrorReply {
  std::string what;
};

// -- encoding ------------------------------------------------------------

[[nodiscard]] std::vector<std::byte> encode(const MonitorReport& m);
[[nodiscard]] std::vector<std::byte> encode(const WorkloadUpdate& m);
[[nodiscard]] std::vector<std::byte> encode(const LivenessChange& m);
[[nodiscard]] std::vector<std::byte> encode(const NetworkMeasurement& m);
[[nodiscard]] std::vector<std::byte> encode(const RescheduleRequest& m);
[[nodiscard]] std::vector<std::byte> encode(const Heartbeat& m);
[[nodiscard]] std::vector<std::byte> encode(const TickRequest& m);
[[nodiscard]] std::vector<std::byte> encode(const HostSelectionRequest& m);
[[nodiscard]] std::vector<std::byte> encode(const HostSelectionResponse& m);
[[nodiscard]] std::vector<std::byte> encode(const ReselectionRequest& m);
[[nodiscard]] std::vector<std::byte> encode(const ReselectionResponse& m);
[[nodiscard]] std::vector<std::byte> encode(const RecordTaskTime& m);
[[nodiscard]] std::vector<std::byte> encode(const Ack&);
[[nodiscard]] std::vector<std::byte> encode(const ErrorReply& m);
/// ShutdownRequest carries no payload; encoded directly.
[[nodiscard]] std::vector<std::byte> encode_shutdown();

/// Builds a ReselectionRequest from an AFG node (the coordinator-side
/// convenience; the daemon reconstructs an equivalent node).
[[nodiscard]] ReselectionRequest make_reselection_request(
    const afg::TaskNode& node, const std::vector<common::HostId>& excluded);

// -- decoding ------------------------------------------------------------

/// Validates the 3-byte header and returns the message type.  Throws
/// ParseError on a short buffer, wrong magic, or unknown version.
[[nodiscard]] MsgType peek_type(std::span<const std::byte> frame);

[[nodiscard]] MonitorReport decode_monitor_report(
    std::span<const std::byte> frame);
[[nodiscard]] WorkloadUpdate decode_workload_update(
    std::span<const std::byte> frame);
[[nodiscard]] LivenessChange decode_liveness_change(
    std::span<const std::byte> frame);
[[nodiscard]] NetworkMeasurement decode_network_measurement(
    std::span<const std::byte> frame);
[[nodiscard]] RescheduleRequest decode_reschedule_request(
    std::span<const std::byte> frame);
[[nodiscard]] Heartbeat decode_heartbeat(std::span<const std::byte> frame);
[[nodiscard]] TickRequest decode_tick_request(
    std::span<const std::byte> frame);
[[nodiscard]] HostSelectionRequest decode_host_selection_request(
    std::span<const std::byte> frame);
[[nodiscard]] HostSelectionResponse decode_host_selection_response(
    std::span<const std::byte> frame);
[[nodiscard]] ReselectionRequest decode_reselection_request(
    std::span<const std::byte> frame);
[[nodiscard]] ReselectionResponse decode_reselection_response(
    std::span<const std::byte> frame);
[[nodiscard]] RecordTaskTime decode_record_task_time(
    std::span<const std::byte> frame);
[[nodiscard]] ErrorReply decode_error_reply(std::span<const std::byte> frame);

}  // namespace vdce::rt::wire
