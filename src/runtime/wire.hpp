// Versioned wire format for the control plane (design D14).
//
// Up to PR 6 the Resource Controller messages of messages.hpp travelled
// as C++ structs inside one address space.  To host Site Managers in
// separate OS processes every control message needs an explicit,
// versioned serialization.  Each encoded message is
//
//     u8 magic (0xC7) | u8 version (1) | u8 type | payload
//
// carried as ONE Data Manager frame (the 4-byte length prefix of the
// TCP transport delimits messages, so the wire format never needs its
// own length field).  All scalars use the big-endian WireWriter codec.
//
// Compatibility contract:
//   * decoders reject a wrong magic or an unknown version outright
//     (ParseError) -- no silent misparse of foreign bytes;
//   * decoders IGNORE trailing bytes after the fields they know, so a
//     version-1 reader accepts a version-1 message extended with new
//     trailing fields by a newer writer (the append-only evolution
//     rule);
//   * truncated payloads throw ParseError from the underlying reader.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "runtime/messages.hpp"
#include "scheduler/host_selection.hpp"

namespace vdce::afg {
struct TaskNode;
}

namespace vdce::rt::wire {

inline constexpr std::uint8_t kMagic = 0xC7;
inline constexpr std::uint8_t kVersion = 1;

/// Message discriminator (third header byte).  Append-only: existing
/// values never change meaning.
enum class MsgType : std::uint8_t {
  kMonitorReport = 1,
  kWorkloadUpdate = 2,
  kLivenessChange = 3,
  kNetworkMeasurement = 4,
  kRescheduleRequest = 5,
  kHeartbeat = 6,
  // -- daemon RPCs ------------------------------------------------------
  kTickRequest = 7,
  kHostSelectionRequest = 8,
  kHostSelectionResponse = 9,
  kReselectionRequest = 10,
  kReselectionResponse = 11,
  kRecordTaskTime = 12,
  kShutdownRequest = 13,
  kAck = 14,
  kErrorReply = 15,
  // -- quorum liveness (D17) ---------------------------------------------
  kPeerDigest = 16,
  kGossipPing = 17,
  kGossipAck = 18,
  kPingReq = 19,
  kPingReqReply = 20,
  kPeerRoster = 21,
  kRefute = 22,
};

[[nodiscard]] const char* to_string(MsgType type);

/// A site daemon's liveness beacon to its watchdog.  The first beacon
/// after a (re)start also announces the kernel-assigned RPC port.
struct Heartbeat {
  common::SiteId site;
  std::int64_t pid = 0;
  std::uint64_t seq = 0;
  std::uint16_t rpc_port = 0;
  /// Restart generation: 1 for the first launch, bumped by the
  /// watchdog on every respawn so a stale pre-kill beacon can never be
  /// mistaken for the reincarnation's.
  std::uint32_t incarnation = 1;
  /// Gossip listener port (0 = gossip disabled); peers ping here.
  std::uint16_t gossip_port = 0;
};

// -- quorum liveness (D17) -----------------------------------------------

/// One peer's health as seen by a digest's origin site.
struct PeerHealth {
  common::SiteId site;
  /// The incarnation the origin last heard from.
  std::uint32_t incarnation = 0;
  /// Seconds since the origin last heard from the peer.
  double age_s = 0.0;
  /// Whether the origin's latest probe of the peer succeeded.
  bool reachable = false;
};

/// Daemon -> watchdog (piggybacked on the heartbeat channel): who the
/// origin site last heard from, with incarnation numbers.  The
/// watchdog turns fresh reachable entries into refutations and
/// unreachable ones into suspicion votes, fenced by the origin's own
/// incarnation.
struct PeerDigest {
  common::SiteId origin_site;
  std::uint32_t origin_incarnation = 0;
  std::vector<PeerHealth> peers;
};

/// Peer -> peer direct probe ("are you there?").
struct GossipPing {
  common::SiteId origin_site;
  std::uint64_t seq = 0;
};

/// Probe answer: the target names itself and its incarnation.
struct GossipAck {
  common::SiteId site;
  std::uint32_t incarnation = 0;
  std::uint64_t seq = 0;
};

/// Watchdog -> third site: "probe `target_site` for me" (the SWIM
/// ping-req -- an independent network path to a suspect).
struct PingReq {
  common::SiteId origin_site;
  common::SiteId target_site;
  std::uint16_t target_gossip_port = 0;
  std::uint64_t seq = 0;
};

/// Third site -> watchdog: the indirect probe's verdict.
struct PingReqReply {
  common::SiteId target_site;
  bool reachable = false;
  /// Incarnation the target answered with (0 when unreachable).
  std::uint32_t target_incarnation = 0;
  std::uint64_t seq = 0;
};

/// One row of a PeerRoster.
struct PeerEndpoint {
  common::SiteId site;
  std::uint16_t gossip_port = 0;
  std::uint32_t incarnation = 0;
  /// The watchdog currently suspects this site (peers that reach it
  /// should refute immediately rather than wait for the next digest).
  bool suspected = false;
};

/// Watchdog -> daemon (gossip port): current peer membership.
struct PeerRoster {
  std::vector<PeerEndpoint> peers;
};

/// Daemon -> watchdog (heartbeat channel): "I just heard site `site`
/// at `incarnation` -- withdraw my suspicion vote."
struct Refute {
  common::SiteId witness_site;
  common::SiteId site;
  std::uint32_t incarnation = 0;
};

/// Coordinator -> daemon: advance the site's Control Manager to `now`.
struct TickRequest {
  common::TimePoint now = 0.0;
};

/// Coordinator -> daemon: run the Host Selection Algorithm over the
/// AFG (shipped in afg::to_text form).
struct HostSelectionRequest {
  std::string graph_text;
  std::uint32_t threads = 1;
};

struct HostSelectionResponse {
  sched::HostSelectionMap selection;
};

/// Coordinator -> daemon: re-place one task, excluding dead hosts.
struct ReselectionRequest {
  common::TaskId task;
  std::string library_task;
  std::string label;
  double input_size = 1.0;
  std::uint32_t num_processors = 1;
  bool parallel = false;
  std::vector<common::HostId> excluded;
};

struct ReselectionResponse {
  sched::HostSelection selection;
};

/// Coordinator -> daemon: post-execution feedback for the
/// task-performance database.
struct RecordTaskTime {
  std::string library_task;
  common::Duration elapsed_s = 0.0;
};

/// Daemon -> coordinator: RPC succeeded with no payload.
struct Ack {};

/// Daemon -> coordinator: RPC failed; `what` carries the error text.
struct ErrorReply {
  std::string what;
};

// -- encoding ------------------------------------------------------------

[[nodiscard]] std::vector<std::byte> encode(const MonitorReport& m);
[[nodiscard]] std::vector<std::byte> encode(const WorkloadUpdate& m);
[[nodiscard]] std::vector<std::byte> encode(const LivenessChange& m);
[[nodiscard]] std::vector<std::byte> encode(const NetworkMeasurement& m);
[[nodiscard]] std::vector<std::byte> encode(const RescheduleRequest& m);
[[nodiscard]] std::vector<std::byte> encode(const Heartbeat& m);
[[nodiscard]] std::vector<std::byte> encode(const TickRequest& m);
[[nodiscard]] std::vector<std::byte> encode(const HostSelectionRequest& m);
[[nodiscard]] std::vector<std::byte> encode(const HostSelectionResponse& m);
[[nodiscard]] std::vector<std::byte> encode(const ReselectionRequest& m);
[[nodiscard]] std::vector<std::byte> encode(const ReselectionResponse& m);
[[nodiscard]] std::vector<std::byte> encode(const RecordTaskTime& m);
[[nodiscard]] std::vector<std::byte> encode(const Ack&);
[[nodiscard]] std::vector<std::byte> encode(const ErrorReply& m);
[[nodiscard]] std::vector<std::byte> encode(const PeerDigest& m);
[[nodiscard]] std::vector<std::byte> encode(const GossipPing& m);
[[nodiscard]] std::vector<std::byte> encode(const GossipAck& m);
[[nodiscard]] std::vector<std::byte> encode(const PingReq& m);
[[nodiscard]] std::vector<std::byte> encode(const PingReqReply& m);
[[nodiscard]] std::vector<std::byte> encode(const PeerRoster& m);
[[nodiscard]] std::vector<std::byte> encode(const Refute& m);
/// ShutdownRequest carries no payload; encoded directly.
[[nodiscard]] std::vector<std::byte> encode_shutdown();

/// Builds a ReselectionRequest from an AFG node (the coordinator-side
/// convenience; the daemon reconstructs an equivalent node).
[[nodiscard]] ReselectionRequest make_reselection_request(
    const afg::TaskNode& node, const std::vector<common::HostId>& excluded);

// -- decoding ------------------------------------------------------------

/// Validates the 3-byte header and returns the message type.  Throws
/// ParseError on a short buffer, wrong magic, or unknown version.
[[nodiscard]] MsgType peek_type(std::span<const std::byte> frame);

[[nodiscard]] MonitorReport decode_monitor_report(
    std::span<const std::byte> frame);
[[nodiscard]] WorkloadUpdate decode_workload_update(
    std::span<const std::byte> frame);
[[nodiscard]] LivenessChange decode_liveness_change(
    std::span<const std::byte> frame);
[[nodiscard]] NetworkMeasurement decode_network_measurement(
    std::span<const std::byte> frame);
[[nodiscard]] RescheduleRequest decode_reschedule_request(
    std::span<const std::byte> frame);
[[nodiscard]] Heartbeat decode_heartbeat(std::span<const std::byte> frame);
[[nodiscard]] TickRequest decode_tick_request(
    std::span<const std::byte> frame);
[[nodiscard]] HostSelectionRequest decode_host_selection_request(
    std::span<const std::byte> frame);
[[nodiscard]] HostSelectionResponse decode_host_selection_response(
    std::span<const std::byte> frame);
[[nodiscard]] ReselectionRequest decode_reselection_request(
    std::span<const std::byte> frame);
[[nodiscard]] ReselectionResponse decode_reselection_response(
    std::span<const std::byte> frame);
[[nodiscard]] RecordTaskTime decode_record_task_time(
    std::span<const std::byte> frame);
[[nodiscard]] ErrorReply decode_error_reply(std::span<const std::byte> frame);
[[nodiscard]] PeerDigest decode_peer_digest(std::span<const std::byte> frame);
[[nodiscard]] GossipPing decode_gossip_ping(std::span<const std::byte> frame);
[[nodiscard]] GossipAck decode_gossip_ack(std::span<const std::byte> frame);
[[nodiscard]] PingReq decode_ping_req(std::span<const std::byte> frame);
[[nodiscard]] PingReqReply decode_ping_req_reply(
    std::span<const std::byte> frame);
[[nodiscard]] PeerRoster decode_peer_roster(std::span<const std::byte> frame);
[[nodiscard]] Refute decode_refute(std::span<const std::byte> frame);

}  // namespace vdce::rt::wire
