// The real-threaded execution engine: Figure 7 end-to-end.
//
// Every task of a scheduled application runs on its own thread (the
// stand-in for its assigned machine), with a full Figure 7 lifecycle:
//
//   1. the engine (as Site Manager / Group Manager) delivers the
//      execution request to each task's Application Controller;
//   2. each controller activates its Data Manager, which sets up its
//      communication channels through the broker and acknowledges;
//   3. when every acknowledgment has arrived the engine issues the
//      execution startup signal;
//   4. tasks exchange payloads over the configured transport
//      (in-process queues or real TCP loopback sockets) using the
//      configured message-passing library facade;
//   5. measured execution times flow back into the task-performance
//      database via the Site Manager.
//
// Fault tolerance (Section 2.3's "monitors the resources for possible
// failures"): when a FaultTolerance hook set is supplied, a failed or
// guard-refused task is not fatal.  The engine plays the Control
// Manager: it reports the failure, asks the Site Scheduler for a
// replacement placement with the failed host excluded, and re-runs the
// task — pre-compute refusals retry inside the gang (channels intact);
// post-failure recovery re-opens the task's channels and replays its
// recorded inputs.  Retries are bounded by max_attempts with
// exponential backoff, and receive/attempt timeouts keep a dead peer
// from hanging a machine thread forever.
#pragma once

#include <atomic>
#include <limits>
#include <map>
#include <optional>

#include "afg/graph.hpp"
#include "datamgr/broker.hpp"
#include "runtime/app_controller.hpp"
#include "runtime/site_manager.hpp"
#include "scheduler/allocation.hpp"
#include "tasklib/registry.hpp"

namespace vdce::rt {

class CheckpointStore;

/// Timing/traffic record of one executed task.
struct TaskRunRecord {
  TaskId task;
  std::string label;
  std::string library_task;
  /// The host that finally ran the task (the replacement after a
  /// recovery, not the originally allocated machine).
  HostId host;
  /// Wall-clock seconds from the startup signal to task completion
  /// (includes waiting for inputs, and for recovered tasks every failed
  /// attempt plus backoff before the one that succeeded).
  Duration turnaround_s = 0.0;
  /// Compute-phase seconds only.
  Duration compute_s = 0.0;
  std::size_t bytes_sent = 0;
  std::size_t bytes_received = 0;
  /// Execution attempts consumed (1 = succeeded first try).
  int attempts = 1;
  /// True when the task was not executed at all: its recorded output
  /// was replayed from a checkpoint (attempts then counts the attempts
  /// the *capturing* run consumed).
  bool replayed = false;
};

/// Result of one application run.
struct RunResult {
  common::AppId app;
  /// Output payload of every task (keyed by task id); exit-task entries
  /// are the application's results.
  std::map<TaskId, tasklib::Payload> outputs;
  std::vector<TaskRunRecord> records;
  /// Wall-clock seconds from the startup signal to the last completion.
  Duration makespan_s = 0.0;
  /// Tasks that needed more than one attempt but still completed.
  std::size_t failures_recovered = 0;
  /// Successful re-placements (task moved to a different machine).
  std::size_t reschedules = 0;
  /// Tasks whose outputs were replayed from a checkpoint instead of
  /// being re-executed (site-level failover resumes, DESIGN.md D12).
  std::size_t tasks_replayed = 0;
};

/// Engine configuration.
struct EngineConfig {
  dm::TransportKind transport = dm::TransportKind::kInProcess;
  dm::MpLibrary library = dm::MpLibrary::kP4;
  /// Seed for per-task deterministic RNGs.
  std::uint64_t seed = 1;
  /// Fault-tolerance retry budget per task (total attempts, first run
  /// included).  Only consulted when execute() is given hooks.
  int max_attempts = 3;
  /// Sleep before the first retry, seconds; doubles-ish per retry.
  double retry_backoff_s = 0.01;
  double retry_backoff_multiplier = 2.0;
  /// Jitter fraction applied to every backoff nap so simultaneous
  /// retries (a whole gang refused by one dead host) do not stampede
  /// the rescheduler in lockstep.  The jitter draw is seeded from
  /// (engine seed, app, task, attempt) -- never from global state --
  /// so a replay with the same seed is bit-identical through recovery.
  /// 0 disables jitter.
  double retry_backoff_jitter = 0.5;
  /// Cap on the CUMULATIVE backoff slept for one task across all of its
  /// retries (gang and recovery rounds combined).  In-gang retries
  /// sleep on the task's machine thread, which stalls gang peers
  /// blocked on its channels -- the cap bounds that stall however the
  /// backoff schedule is configured.  <= 0 disables backoff entirely.
  double max_total_backoff_s = 2.0;
  /// Wall-clock cap on one recovery attempt; an attempt that neither
  /// completes nor fails within this window is shut down and counted as
  /// failed.  <= 0 disables the cap.
  double attempt_timeout_s = 30.0;
  /// Data Manager receive timeout armed when fault tolerance is on, so
  /// a dead peer cannot hang a machine thread.  <= 0 blocks forever.
  double recv_timeout_s = 60.0;
  /// Load-guard threshold applied to every task when the hooks provide
  /// a host_load probe (infinity = guard disabled).
  double load_threshold = std::numeric_limits<double>::infinity();
};

/// The Control Manager's hooks into the live execution path.  All
/// callables may be invoked concurrently from machine threads and must
/// be thread-safe.  Any member may be empty; `reschedule` empty turns
/// recovery off (failures become fatal as without hooks).
struct FaultTolerance {
  /// Asks the Site Scheduler for a replacement placement of one task
  /// with the given hosts excluded (SiteScheduler::reschedule).
  /// Returns std::nullopt when no feasible host remains.
  using Rescheduler = std::function<std::optional<sched::AllocationEntry>(
      const afg::TaskNode&, const std::vector<HostId>&)>;

  Rescheduler reschedule;
  /// Liveness probe (testbed fault windows or Group-Manager belief);
  /// also installed as every controller's fault guard.
  std::function<bool(HostId)> host_alive;
  /// Load probe backing the pre-compute load guard.
  std::function<double(HostId)> host_load;
  /// Failure notification, fired once per failed attempt before the
  /// re-placement is requested (wire to
  /// ControlManager::report_task_failure so the repository learns the
  /// host is down).
  std::function<void(const RescheduleRequest&)> on_failure;
  /// Retry-backoff sleep hook.  Empty = real wall-clock sleep
  /// (std::this_thread::sleep_for).  Tests and simulations install a
  /// virtual sleep so retries cost no wall-clock: an in-gang retry
  /// sleeping for real stalls every gang peer blocked on the task's
  /// channels.  Called with the (cap-clamped) seconds to sleep; may be
  /// invoked concurrently from machine threads.
  std::function<void(double)> sleep;
};

/// Executes scheduled applications with real threads and channels.
class ExecutionEngine {
 public:
  /// `registry` must outlive the engine.
  explicit ExecutionEngine(const tasklib::TaskRegistry& registry,
                           EngineConfig config = {});

  /// Runs `graph` per `allocation`.  When `feedback` is given, measured
  /// compute times are stored into its task-performance database.
  /// `console`, when given, is honoured by every task's compute phase.
  /// When `ft` is given, failed or refused tasks are re-placed and
  /// retried per the config's retry budget before giving up.  Throws
  /// StateError (with the failing task named) if any task ultimately
  /// fails; all other tasks are unblocked and joined first.
  ///
  /// Re-entrant: concurrent execute() calls on one engine are safe --
  /// every run owns its broker, controllers and machine threads, and
  /// app-id assignment is atomic.  `app`, when valid, names the run
  /// explicitly (the submission service keys runs by its own tickets,
  /// and a replay with the same app id reproduces the same per-task
  /// RNG seeds); when invalid an id is drawn from the engine's counter.
  ///
  /// `checkpoint`, when given, turns on checkpoint/restart semantics:
  /// every task completion is captured into the store (even when the
  /// run ultimately throws), and tasks the store already holds for
  /// `app` are NOT re-executed -- their recorded frames are replayed
  /// into the fresh broker so successor tasks receive bit-identical
  /// inputs (DESIGN.md D12).
  [[nodiscard]] RunResult execute(const afg::FlowGraph& graph,
                                  const sched::AllocationTable& allocation,
                                  SiteManager* feedback = nullptr,
                                  dm::ConsoleService* console = nullptr,
                                  const FaultTolerance* ft = nullptr,
                                  common::AppId app = {},
                                  CheckpointStore* checkpoint = nullptr);

 private:
  const tasklib::TaskRegistry* registry_;
  EngineConfig config_;
  /// Atomic: concurrent execute() calls must never share an app id
  /// (broker link keys and per-task seeds are derived from it).
  std::atomic<std::uint32_t> next_app_{1};
};

}  // namespace vdce::rt
