// The real-threaded execution engine: Figure 7 end-to-end.
//
// Every task of a scheduled application runs on its own thread (the
// stand-in for its assigned machine), with a full Figure 7 lifecycle:
//
//   1. the engine (as Site Manager / Group Manager) delivers the
//      execution request to each task's Application Controller;
//   2. each controller activates its Data Manager, which sets up its
//      communication channels through the broker and acknowledges;
//   3. when every acknowledgment has arrived the engine issues the
//      execution startup signal;
//   4. tasks exchange payloads over the configured transport
//      (in-process queues or real TCP loopback sockets) using the
//      configured message-passing library facade;
//   5. measured execution times flow back into the task-performance
//      database via the Site Manager.
#pragma once

#include <map>
#include <optional>

#include "afg/graph.hpp"
#include "datamgr/broker.hpp"
#include "runtime/app_controller.hpp"
#include "runtime/site_manager.hpp"
#include "scheduler/allocation.hpp"
#include "tasklib/registry.hpp"

namespace vdce::rt {

/// Timing/traffic record of one executed task.
struct TaskRunRecord {
  TaskId task;
  std::string label;
  std::string library_task;
  HostId host;
  /// Wall-clock seconds from the startup signal to task completion
  /// (includes waiting for inputs).
  Duration turnaround_s = 0.0;
  /// Compute-phase seconds only.
  Duration compute_s = 0.0;
  std::size_t bytes_sent = 0;
  std::size_t bytes_received = 0;
};

/// Result of one application run.
struct RunResult {
  common::AppId app;
  /// Output payload of every task (keyed by task id); exit-task entries
  /// are the application's results.
  std::map<TaskId, tasklib::Payload> outputs;
  std::vector<TaskRunRecord> records;
  /// Wall-clock seconds from the startup signal to the last completion.
  Duration makespan_s = 0.0;
};

/// Engine configuration.
struct EngineConfig {
  dm::TransportKind transport = dm::TransportKind::kInProcess;
  dm::MpLibrary library = dm::MpLibrary::kP4;
  /// Seed for per-task deterministic RNGs.
  std::uint64_t seed = 1;
};

/// Executes scheduled applications with real threads and channels.
class ExecutionEngine {
 public:
  /// `registry` must outlive the engine.
  explicit ExecutionEngine(const tasklib::TaskRegistry& registry,
                           EngineConfig config = {});

  /// Runs `graph` per `allocation`.  When `feedback` is given, measured
  /// compute times are stored into its task-performance database.
  /// `console`, when given, is honoured by every task's compute phase.
  /// Throws StateError (with the failing task named) if any task fails;
  /// all other tasks are unblocked and joined first.
  [[nodiscard]] RunResult execute(const afg::FlowGraph& graph,
                                  const sched::AllocationTable& allocation,
                                  SiteManager* feedback = nullptr,
                                  dm::ConsoleService* console = nullptr);

 private:
  const tasklib::TaskRegistry* registry_;
  EngineConfig config_;
  std::uint32_t next_app_ = 1;
};

}  // namespace vdce::rt
