// The Control Manager of one site: the Resource Controller wiring of
// Figure 6 (Monitor daemons -> Group Managers -> Site Manager).
//
// "The Control Manager measures the loads on the resources (hosts and
//  networks) periodically, and monitors the resources for possible
//  failures."  (Section 2.3)
//
// tick(now) advances every Group Manager (which advances its Monitors)
// and routes their outputs into the Site Manager; driving tick from a
// VirtualClock gives a deterministic control plane.
#pragma once

#include <vector>

#include "runtime/group_manager.hpp"
#include "runtime/site_manager.hpp"

namespace vdce::rt {

/// Aggregated monitoring statistics of one site.
struct ControlManagerStats {
  std::size_t reports_received = 0;
  std::size_t updates_forwarded = 0;
  std::size_t failures_detected = 0;
  std::size_t recoveries_detected = 0;
};

/// Per-site Resource Controller.
class ControlManager {
 public:
  /// Builds one Group Manager per group of `site`.  `testbed` and
  /// `site_manager` must outlive the Control Manager.
  ControlManager(netsim::VirtualTestbed& testbed, SiteId site,
                 SiteManager& site_manager, Duration monitor_period_s = 1.0,
                 GroupManagerConfig group_config = {});

  /// One control-plane step: tick every Group Manager, deliver its
  /// outputs to the Site Manager.
  void tick(TimePoint now);

  /// Convenience: tick repeatedly from `from` (exclusive) to `to`
  /// (inclusive) in `step_s` increments.
  void run_until(TimePoint from, TimePoint to, Duration step_s);

  [[nodiscard]] ControlManagerStats stats() const;
  [[nodiscard]] const std::vector<GroupManager>& group_managers() const {
    return group_managers_;
  }
  [[nodiscard]] SiteManager& site_manager() { return *site_manager_; }

 private:
  SiteManager* site_manager_;
  std::vector<GroupManager> group_managers_;
};

}  // namespace vdce::rt
