// The Control Manager of one site: the Resource Controller wiring of
// Figure 6 (Monitor daemons -> Group Managers -> Site Manager).
//
// "The Control Manager measures the loads on the resources (hosts and
//  networks) periodically, and monitors the resources for possible
//  failures."  (Section 2.3)
//
// tick(now) advances every Group Manager (which advances its Monitors)
// and routes their outputs into the Site Manager; driving tick from a
// VirtualClock gives a deterministic control plane.
//
// Since D14 every routed message crosses a ControlTransport in its
// versioned wire encoding: the default loopback transport serializes,
// decodes and dispatches synchronously, so the in-process deployments
// exercise the exact byte format the site daemons speak.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "runtime/control_transport.hpp"
#include "runtime/group_manager.hpp"
#include "runtime/site_manager.hpp"

namespace vdce::rt {

/// Aggregated monitoring statistics of one site.
struct ControlManagerStats {
  std::size_t reports_received = 0;
  std::size_t updates_forwarded = 0;
  std::size_t failures_detected = 0;
  std::size_t recoveries_detected = 0;
  /// Reschedule requests routed through report_task_failure.
  std::size_t reschedule_requests = 0;
  /// Control messages published through the transport, and their total
  /// encoded size (the D14 coordination-traffic record).
  std::size_t control_messages_sent = 0;
  std::size_t control_bytes_sent = 0;
};

/// Per-site Resource Controller.
class ControlManager : private ControlSink {
 public:
  /// Builds one Group Manager per group of `site`.  `testbed` and
  /// `site_manager` must outlive the Control Manager.
  ControlManager(netsim::VirtualTestbed& testbed, SiteId site,
                 SiteManager& site_manager, Duration monitor_period_s = 1.0,
                 GroupManagerConfig group_config = {});

  /// One control-plane step: tick every Group Manager, deliver its
  /// outputs to the Site Manager.
  void tick(TimePoint now);

  /// Convenience: tick repeatedly from `from` (exclusive) to `to`
  /// (inclusive) in `step_s` increments.
  void run_until(TimePoint from, TimePoint to, Duration step_s);

  /// Failure event from the execution path: an Application Controller
  /// (or the engine's retry loop) found a task's host unusable.  A
  /// kHostFailure request is routed to the owning Group Manager, whose
  /// resulting liveness change (if the host was still believed alive)
  /// is forwarded to the Site Manager so the repository marks the host
  /// down before the next placement.  Thread-safe against tick(): the
  /// engine's machine threads report concurrently with the clock
  /// driver.
  void report_task_failure(const RescheduleRequest& request);

  /// Replaces the default loopback transport.  The sink side of a
  /// remote transport must dispatch into this site's Site Manager; set
  /// before the first tick().
  void set_transport(std::unique_ptr<ControlTransport> transport);
  [[nodiscard]] const ControlTransport& transport() const {
    return *transport_;
  }

  [[nodiscard]] ControlManagerStats stats() const;
  [[nodiscard]] const std::vector<GroupManager>& group_managers() const {
    return group_managers_;
  }
  [[nodiscard]] SiteManager& site_manager() { return *site_manager_; }

 private:
  // ControlSink: the receiving half of the loopback transport.  Called
  // synchronously under mutex_ (loopback publish happens inside
  // tick()/report_task_failure()), so these must not re-lock.
  void on_workload(const WorkloadUpdate& update) override;
  void on_liveness(const LivenessChange& change) override;
  void on_network(const NetworkMeasurement& measurement) override;
  void on_reschedule(const RescheduleRequest& request) override;

  SiteManager* site_manager_;
  std::vector<GroupManager> group_managers_;
  std::unique_ptr<ControlTransport> transport_;
  /// Serialises tick() and report_task_failure() over the Group
  /// Managers' tracking state and the Site Manager handlers.
  mutable std::mutex mutex_;
  std::size_t reschedule_requests_ = 0;
};

}  // namespace vdce::rt
