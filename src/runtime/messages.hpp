// Control-plane message types exchanged between the Resource Controller
// components (Figure 6) and the Application Controller.
#pragma once

#include <cstdint>
#include <string>

#include "common/clock.hpp"
#include "common/ids.hpp"

namespace vdce::rt {

using common::Duration;
using common::GroupId;
using common::HostId;
using common::SiteId;
using common::TaskId;
using common::TimePoint;

/// A Monitor daemon's periodic measurement of its host.
struct MonitorReport {
  HostId host;
  TimePoint when = 0.0;
  double cpu_load = 0.0;
  double available_memory_mb = 0.0;
};

/// Group Manager -> Site Manager: a workload that changed "considerably"
/// (outside the confidence interval of the previous measurement).
struct WorkloadUpdate {
  HostId host;
  TimePoint when = 0.0;
  double cpu_load = 0.0;
  double available_memory_mb = 0.0;
};

/// Group Manager -> Site Manager: a host stopped answering echo packets
/// (or came back).
struct LivenessChange {
  HostId host;
  TimePoint when = 0.0;
  bool alive = false;
};

/// Group Manager -> Site Manager: measured intra-group network
/// parameters (from the echo round-trips).
struct NetworkMeasurement {
  GroupId group;
  TimePoint when = 0.0;
  Duration latency_s = 0.0;
  double transfer_mb_per_s = 0.0;
};

/// Application Controller -> Group Manager: a running task must leave
/// its machine; ask the scheduler for a new placement.
struct RescheduleRequest {
  /// Why the task is being handed back.
  enum class Kind : std::uint8_t {
    kLoadThreshold,  // host load crossed the configured threshold
    kHostFailure,    // host stopped answering (fault guard / dead peer)
    kTaskError,      // the task itself threw during execution
  };

  common::AppId app;
  TaskId task;
  HostId host;
  TimePoint when = 0.0;
  double observed_load = 0.0;
  Kind kind = Kind::kLoadThreshold;
  std::string reason;
};

}  // namespace vdce::rt
