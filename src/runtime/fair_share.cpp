#include "runtime/fair_share.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

namespace vdce::rt {

namespace {

constexpr double kMinWeight = 1e-9;

}  // namespace

FairShareQueue::FairShareQueue(FairShareConfig config) : config_(config) {
  config_.shards = std::max<std::size_t>(config_.shards, 1);
  config_.renorm_threshold = std::max(config_.renorm_threshold, 1.0);
  config_.max_shares_per_shard =
      std::max<std::size_t>(config_.max_shares_per_shard, 1);
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

FairShareQueue::Shard& FairShareQueue::shard_for(const std::string& user) {
  return *shards_[std::hash<std::string>{}(user) % shards_.size()];
}

void FairShareQueue::sweep_idle_locked(Shard& shard) {
  const double pass_now = grant_pass_.load(std::memory_order_relaxed);
  // Overtaken idle users: pass <= grant clock means re-entry would be
  // clamped to the clock regardless, so forgetting them changes
  // nothing observable.
  while (!shard.idle.empty() && shard.idle.begin()->first <= pass_now) {
    shard.shares.erase(shard.idle.begin()->second);
    shard.idle.erase(shard.idle.begin());
    shares_evicted_.fetch_add(1, std::memory_order_relaxed);
  }
  // Hard cap: over the bound, drop the least-indebted idle users (the
  // small forgiven debt is bounded by one stride; active users are
  // never evicted).
  while (shard.shares.size() > config_.max_shares_per_shard &&
         !shard.idle.empty()) {
    shard.shares.erase(shard.idle.begin()->second);
    shard.idle.erase(shard.idle.begin());
    shares_evicted_.fetch_add(1, std::memory_order_relaxed);
  }
}

void FairShareQueue::push(const std::string& user, FairShareEntry entry) {
  Shard& shard = shard_for(user);
  std::lock_guard lk(shard.mu);
  auto [it, inserted] = shard.shares.try_emplace(user);
  Share& share = it->second;
  const double pass_now = grant_pass_.load(std::memory_order_relaxed);
  if (inserted) {
    // New users join the race at the grant clock, not at zero.
    share.pass = pass_now;
  } else if (share.fifo.empty()) {
    // Returning user: clamp a stale pass to the grant clock so an
    // absence never banks a backlog of wins (the starvation bug).
    shard.idle.erase({share.pass, user});
    share.pass = std::max(share.pass, pass_now);
  }
  const bool was_empty = share.fifo.empty();
  const std::uint64_t old_head =
      was_empty ? 0 : share.fifo.begin()->first;
  share.fifo.emplace(entry.seq, entry);
  const std::uint64_t new_head = share.fifo.begin()->first;
  if (was_empty) {
    shard.order.emplace(std::make_pair(share.pass, new_head), user);
  } else if (new_head != old_head) {
    shard.order.erase({share.pass, old_head});
    shard.order.emplace(std::make_pair(share.pass, new_head), user);
  }
  if (entry.preemptible) {
    shard.prio.emplace(std::make_pair(entry.priority, entry.seq), user);
  }
  total_.fetch_add(1, std::memory_order_relaxed);
  sweep_idle_locked(shard);
}

std::optional<FairShareEntry> FairShareQueue::pop() {
  std::lock_guard grant_lk(grant_mu_);
  // Peek every shard's stride winner; head seqs are globally unique,
  // so (pass, head seq) has a strict global minimum.  Pops, preempts
  // and sheds are serialized by grant_mu_ and pushes only ever add, so
  // the chosen shard cannot lose its winner before we take it.
  Shard* best = nullptr;
  std::pair<double, std::uint64_t> best_key{
      std::numeric_limits<double>::infinity(),
      std::numeric_limits<std::uint64_t>::max()};
  for (auto& shard : shards_) {
    std::lock_guard lk(shard->mu);
    if (shard->order.empty()) continue;
    const auto& key = shard->order.begin()->first;
    if (key < best_key) {
      best_key = key;
      best = shard.get();
    }
  }
  if (best == nullptr) return std::nullopt;

  FairShareEntry entry;
  {
    std::lock_guard lk(best->mu);
    const auto order_it = best->order.begin();
    Share& share = best->shares.at(order_it->second);
    const std::string user = order_it->second;
    const auto fifo_it = share.fifo.begin();
    entry = fifo_it->second;
    share.fifo.erase(fifo_it);
    best->order.erase(order_it);
    if (entry.preemptible) {
      best->prio.erase({entry.priority, entry.seq});
    }
    // The grant clock is the winner's pass before the stride advance
    // (PR 4 semantics): newcomers join where the race currently is.
    grant_pass_.store(share.pass, std::memory_order_relaxed);
    share.pass += 1.0 / std::max(entry.weight, kMinWeight);
    if (!share.fifo.empty()) {
      best->order.emplace(
          std::make_pair(share.pass, share.fifo.begin()->first), user);
    } else {
      best->idle.emplace(share.pass, user);
    }
    total_.fetch_sub(1, std::memory_order_relaxed);
    sweep_idle_locked(*best);
  }
  maybe_renormalize();
  return entry;
}

FairShareEntry FairShareQueue::remove_entry_locked(Shard& shard,
                                                   const std::string& user,
                                                   std::uint64_t seq) {
  Share& share = shard.shares.at(user);
  const auto fifo_it = share.fifo.find(seq);
  const bool was_head = fifo_it == share.fifo.begin();
  const FairShareEntry entry = fifo_it->second;
  share.fifo.erase(fifo_it);
  if (entry.preemptible) shard.prio.erase({entry.priority, entry.seq});
  if (was_head) {
    shard.order.erase({share.pass, seq});
    if (!share.fifo.empty()) {
      shard.order.emplace(
          std::make_pair(share.pass, share.fifo.begin()->first), user);
    } else {
      shard.idle.emplace(share.pass, user);
    }
  }
  total_.fetch_sub(1, std::memory_order_relaxed);
  return entry;
}

std::optional<FairShareEntry> FairShareQueue::preempt_below(int priority) {
  std::lock_guard grant_lk(grant_mu_);
  // Victim: lowest priority tier, youngest submission within it (the
  // entry that has waited least loses first).
  Shard* best = nullptr;
  int best_prio = priority;
  std::uint64_t best_seq = 0;
  std::string best_user;
  for (auto& shard : shards_) {
    std::lock_guard lk(shard->mu);
    if (shard->prio.empty()) continue;
    const int tier = shard->prio.begin()->first.first;
    if (tier >= priority) continue;
    // Youngest entry of this shard's lowest tier.
    auto it = shard->prio.upper_bound(
        {tier, std::numeric_limits<std::uint64_t>::max()});
    --it;
    if (best == nullptr || tier < best_prio ||
        (tier == best_prio && it->first.second > best_seq)) {
      best = shard.get();
      best_prio = tier;
      best_seq = it->first.second;
      best_user = it->second;
    }
  }
  if (best == nullptr) return std::nullopt;
  std::lock_guard lk(best->mu);
  return remove_entry_locked(*best, best_user, best_seq);
}

std::vector<FairShareEntry> FairShareQueue::shed_below(int priority) {
  std::lock_guard grant_lk(grant_mu_);
  std::vector<FairShareEntry> shed;
  for (auto& shard : shards_) {
    std::lock_guard lk(shard->mu);
    while (!shard->prio.empty() &&
           shard->prio.begin()->first.first < priority) {
      const auto [key, user] = *shard->prio.begin();
      shed.push_back(remove_entry_locked(*shard, user, key.second));
    }
  }
  std::sort(shed.begin(), shed.end(),
            [](const FairShareEntry& a, const FairShareEntry& b) {
              return a.seq < b.seq;
            });
  return shed;
}

std::optional<int> FairShareQueue::lowest_priority() const {
  std::optional<int> lowest;
  for (const auto& shard : shards_) {
    std::lock_guard lk(shard->mu);
    if (shard->prio.empty()) continue;
    const int tier = shard->prio.begin()->first.first;
    if (!lowest || tier < *lowest) lowest = tier;
  }
  return lowest;
}

std::size_t FairShareQueue::user_count() const {
  std::size_t users = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lk(shard->mu);
    users += shard->shares.size();
  }
  return users;
}

FairShareStats FairShareQueue::stats() const {
  FairShareStats out;
  out.queued = size();
  out.users = user_count();
  out.renormalizations =
      renormalizations_.load(std::memory_order_relaxed);
  out.shares_evicted = shares_evicted_.load(std::memory_order_relaxed);
  return out;
}

void FairShareQueue::set_grant_pass_for_test(double pass) {
  grant_pass_.store(pass, std::memory_order_relaxed);
}

void FairShareQueue::maybe_renormalize() {
  // grant_mu_ held.  Subtracting the same base from every pass (and
  // the clock) leaves every pairwise comparison unchanged; what it
  // restores is the precision of the next += 1/weight, which a clock
  // past 2^53/weight would silently swallow.
  const double base = grant_pass_.load(std::memory_order_relaxed);
  if (base < config_.renorm_threshold) return;
  for (auto& shard : shards_) {
    std::lock_guard lk(shard->mu);
    shard->order.clear();
    shard->idle.clear();
    for (auto& [user, share] : shard->shares) {
      share.pass = std::max(0.0, share.pass - base);
      if (!share.fifo.empty()) {
        shard->order.emplace(
            std::make_pair(share.pass, share.fifo.begin()->first), user);
      } else {
        shard->idle.emplace(share.pass, user);
      }
    }
  }
  grant_pass_.store(0.0, std::memory_order_relaxed);
  renormalizations_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace vdce::rt
