// Streaming execution: long-lived stages, bounded channels, windowed
// checkpoints (DESIGN.md D16).
//
// The batch ExecutionEngine runs an AFG as a gang: every task fires
// once, the gang completes, the run is over.  The paper's C3I tracking
// scenario has no such end — frames arrive forever — so the
// StreamingEngine runs the SAME graph in a different shape:
//
//   * every task becomes a long-lived stage thread that maps one input
//     window to one output window per iteration (tasklib functions are
//     per-frame pure, so a stream is just repeated invocation);
//   * every AFG link becomes a bounded dm::RingChannel registered
//     through the run's ChannelBroker: a fast producer parks when the
//     ring fills (backpressure) instead of buffering without limit, so
//     memory stays flat however long the stream runs;
//   * there is no gang-completes barrier.  Sources emit frame windows
//     until the configured frame count (or request_stop()), then close
//     their rings; end-of-stream drains through the pipeline stage by
//     stage.
//
// Determinism is per FRAME, extending the batch engine's per-task rule:
// frame k of task t computes with Rng seed
//
//     stream_frame_seed(seed, k) ^ (app << 32) ^ t
//
// which for frame k equals a batch run configured with
// EngineConfig.seed = stream_frame_seed(seed, k) and the same app id.
// A finite stream of N frames is therefore bit-identical to N batch
// runs — the differential wall in tests/streaming_test.cpp pins this.
//
// Fault tolerance is windowed: every sink durably captures its stream
// state (watermark, digest, byte count) into the rt::CheckpointStore
// once per checkpoint_window emitted frames, keyed by the window index
// in the store's attempt slot (higher window replaces, same window is
// idempotent — the frames are bit-fixed anyway).  When a stage's host
// dies mid-stream, the failing stage aborts the run's rings through
// ChannelBroker::clear_app (waking every parked producer and
// consumer), dead hosts are re-placed through the FaultTolerance
// rescheduler, and the stream RESUMES from the smallest durable sink
// watermark rather than replaying from frame zero.  Sinks that
// survived keep their in-memory state and skip the re-flowing frames
// below their watermark, so every frame is counted into the sink
// exactly once; a sink whose own host died rolls back to its last
// durable window.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "afg/graph.hpp"
#include "runtime/engine.hpp"
#include "scheduler/allocation.hpp"
#include "tasklib/registry.hpp"

namespace vdce::rt {

class CheckpointStore;

/// Streaming-run configuration.
struct StreamingConfig {
  /// Base seed; frame k of the stream derives stream_frame_seed(seed, k).
  std::uint64_t seed = 1;
  /// Ring capacity of every link, in frames.  The whole pipeline's
  /// buffered memory is bounded by links * capacity * frame size.
  std::size_t channel_capacity = 8;
  /// Total frames each source emits; 0 = stream until request_stop().
  std::uint64_t frames = 0;
  /// Sink frames between durable checkpoint captures (0 disables
  /// windowed capture even when a store is supplied).
  std::uint64_t checkpoint_window = 16;
  /// Retain every sink output wire image in the result (differential
  /// tests; leave off for long streams).
  bool collect_outputs = false;
  /// Record per-frame source-to-sink latency samples in the result.
  bool track_latency = false;
  /// Total stream attempts (first run included) when fault-tolerance
  /// hooks are supplied.
  int max_attempts = 3;
  /// Ring receive deadline so a dead upstream cannot park a stage
  /// forever.  <= 0 blocks indefinitely.
  double recv_timeout_s = 30.0;
  /// Sleep before a restart attempt, seconds (routed through the
  /// FaultTolerance sleep hook when installed).
  double retry_backoff_s = 0.01;
  /// Test/bench hook, fired after a sink counts frame k (never for
  /// skipped duplicates).  Called from the sink's stage thread.
  std::function<void(TaskId sink, std::uint64_t k)> on_sink_frame;
};

/// One sink's stream accounting.
struct SinkStreamResult {
  TaskId task;
  std::string label;
  /// Frames counted into this sink, each exactly once.
  std::uint64_t frames_emitted = 0;
  /// Duplicate frames skipped below the watermark after a resume.
  std::uint64_t frames_skipped = 0;
  /// Emitted frames rolled back to the durable window because the
  /// sink's own host died (re-emitted on resume).
  std::uint64_t frames_rolled_back = 0;
  /// Total wire bytes of emitted sink outputs.
  std::uint64_t bytes_emitted = 0;
  /// FNV-1a over the emitted output wire images, in frame order.
  std::uint64_t digest = 0;
  /// Durable checkpoint windows captured.
  std::uint64_t windows_captured = 0;
  /// Emitted output wire images (only when collect_outputs).
  std::vector<std::vector<std::byte>> outputs;
};

/// Result of one streaming run.
struct StreamRunResult {
  common::AppId app;
  /// Per-sink accounting, keyed by (exit) task id.
  std::map<TaskId, SinkStreamResult> sinks;
  /// Frames each stage processed, summed across attempts.
  std::map<TaskId, std::uint64_t> stage_frames;
  /// Frames the sources produced, summed across attempts.
  std::uint64_t source_frames = 0;
  /// Sum over restarts of the resume watermark (frames NOT replayed
  /// from zero thanks to the windowed checkpoints).
  std::uint64_t frames_resumed = 0;
  /// Stream restarts after a mid-stream failure.
  int restarts = 0;
  /// Successful re-placements of dead stages.
  std::size_t reschedules = 0;
  Duration elapsed_s = 0.0;
  /// Highest ring occupancy observed on any link (bounded-memory
  /// witness: never exceeds channel_capacity).
  std::size_t max_ring_occupancy = 0;
  /// Producer parks summed over links: backpressure at work.
  std::uint64_t producer_parks = 0;
  /// Source-to-sink seconds per emitted frame (when track_latency).
  std::vector<double> sink_latencies_s;
};

/// Per-(stream, frame) seed derivation: frame 0 is the plain seed, so a
/// one-frame stream degenerates to the batch engine's seeding.
[[nodiscard]] constexpr std::uint64_t stream_frame_seed(std::uint64_t seed,
                                                        std::uint64_t k) {
  return seed ^ (k * 0x9E3779B97F4A7C15ull);
}

/// Runs AFGs as continuous pipelines over bounded ring channels.
class StreamingEngine {
 public:
  /// `registry` must outlive the engine.
  explicit StreamingEngine(const tasklib::TaskRegistry& registry,
                           StreamingConfig config = {});

  /// Streams `graph` per `allocation` until the sources finish.  When
  /// `ft` is given, a stage whose host dies is re-placed and the stream
  /// resumes from the last durable checkpoint window (see file
  /// comment); otherwise a mid-stream failure throws after every stage
  /// is unparked and joined.  `app` names the run (invalid draws from
  /// the engine's counter); `checkpoint`, when given with a nonzero
  /// checkpoint_window, turns on windowed sink capture and resume.
  [[nodiscard]] StreamRunResult execute(
      const afg::FlowGraph& graph, const sched::AllocationTable& allocation,
      const FaultTolerance* ft = nullptr, common::AppId app = {},
      CheckpointStore* checkpoint = nullptr);

  /// Asks every source of every in-flight run to finish its current
  /// frame and close the stream (the unbounded-stream off switch).
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

 private:
  const tasklib::TaskRegistry* registry_;
  StreamingConfig config_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint32_t> next_app_{1};
};

}  // namespace vdce::rt
