#include "runtime/engine.hpp"

#include <chrono>
#include <cmath>
#include <latch>
#include <semaphore>
#include <thread>
#include <unordered_map>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "datamgr/mplib.hpp"
#include "runtime/checkpoint.hpp"

namespace vdce::rt {

namespace {

/// Message tag of inter-task payload frames; must match the Data
/// Manager's payload tag so replayed inputs are indistinguishable from
/// live ones.
constexpr int kPayloadTag = 7;

std::chrono::duration<double> seconds(double s) {
  return std::chrono::duration<double>(s);
}

std::string hosts_csv(const std::vector<common::HostId>& hosts) {
  std::string out;
  for (const common::HostId h : hosts) {
    if (!out.empty()) out += ',';
    out += std::to_string(h.value());
  }
  return out;
}

}  // namespace

ExecutionEngine::ExecutionEngine(const tasklib::TaskRegistry& registry,
                                 EngineConfig config)
    : registry_(&registry), config_(config) {}

RunResult ExecutionEngine::execute(const afg::FlowGraph& graph,
                                   const sched::AllocationTable& allocation,
                                   SiteManager* feedback,
                                   dm::ConsoleService* console,
                                   const FaultTolerance* ft,
                                   common::AppId app,
                                   CheckpointStore* checkpoint) {
  graph.validate();
  for (const afg::TaskNode& node : graph.tasks()) {
    if (!allocation.contains(node.id)) {
      throw common::StateError("allocation table misses task " + node.label);
    }
  }

  if (!app.valid()) {
    app = common::AppId{
        next_app_.fetch_add(1, std::memory_order_relaxed)};
  }
  dm::ChannelBroker broker(config_.transport);

  common::ScopedSpan app_span("execute", "engine");
  if (app_span.active()) {
    app_span.rename("app:" + graph.name());
    app_span.arg("app", app.value());
    app_span.arg("tasks", graph.task_count());
  }
  auto& metrics = common::MetricsRegistry::global();
  common::Counter& m_tasks = metrics.counter("engine.tasks_completed");
  common::Counter& m_attempts = metrics.counter("engine.attempts");
  common::Counter& m_retries = metrics.counter("engine.retries");
  common::Counter& m_reschedules = metrics.counter("engine.reschedules");
  common::Counter& m_recovered =
      metrics.counter("engine.failures_recovered");
  common::Histogram& m_turnaround =
      metrics.histogram("engine.turnaround_s");
  common::Counter& m_ckpt_captured =
      metrics.counter("engine.checkpoint.captured");
  common::Counter& m_ckpt_replayed =
      metrics.counter("engine.checkpoint.replayed");
  common::Counter& m_ckpt_bytes =
      metrics.counter("engine.checkpoint.bytes_captured");

  const bool recovery_on = ft != nullptr && ft->reschedule != nullptr;
  const bool load_guarded =
      ft != nullptr && ft->host_load != nullptr &&
      std::isfinite(config_.load_threshold);

  struct Slot {
    const afg::TaskNode* node = nullptr;
    HostId host;
    TaskOutcome outcome;
    Duration turnaround_s = 0.0;
    std::string error;
    int attempts = 1;
    bool had_failure = false;   // at least one attempt did not complete
    bool replayed = false;      // restored from a checkpoint, never ran
    std::size_t moves = 0;      // successful re-placements
    std::vector<HostId> excluded;  // hosts this task must avoid
    double backoff_spent_s = 0.0;  // cumulative backoff slept so far
  };
  std::vector<Slot> slots(graph.task_count());
  {
    std::size_t i = 0;
    for (const afg::TaskNode& node : graph.tasks()) {
      slots[i].node = &node;
      slots[i].host = allocation.entry(node.id).primary_host();
      ++i;
    }
  }
  std::unordered_map<TaskId, std::size_t> slot_of;
  slot_of.reserve(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    slot_of.emplace(slots[i].node->id, i);
  }

  // Checkpoint restore: tasks the store already holds for this app are
  // not executed again.  Their recorded frames are replayed into the
  // fresh broker below, so successor tasks receive inputs bit-identical
  // to the capturing run's live sends.
  std::size_t live_count = slots.size();
  if (checkpoint != nullptr) {
    for (Slot& slot : slots) {
      auto entry = checkpoint->replay(app, slot.node->id);
      if (!entry) continue;
      slot.replayed = true;
      slot.host = entry->host;
      slot.attempts = entry->attempt;
      slot.outcome.completed = true;
      slot.outcome.compute_elapsed_s = entry->compute_s;
      slot.outcome.payload =
          tasklib::Payload::from_wire(entry->frame.to_vector());
      // Keep the pinned frame: replay feeders send it zero-copy, and a
      // re-capture below shares the same slab.
      slot.outcome.output_frame = std::move(entry->frame);
      --live_count;
    }
    if (live_count != slots.size()) {
      m_ckpt_replayed.add(slots.size() - live_count);
      common::log_info("engine", "app ", app.value(), ": restored ",
                       slots.size() - live_count, "/", slots.size(),
                       " tasks from checkpoint");
      if (common::trace_enabled()) {
        common::trace_instant(
            "checkpoint_restore", "engine",
            {{"app", std::to_string(app.value())},
             {"tasks", std::to_string(slots.size() - live_count)}});
      }
    }
  }

  std::latch setup_acks(static_cast<std::ptrdiff_t>(live_count));
  std::latch start_signal(1);           // Figure 7 step 5

  // Deterministic per-task RNG seed: recovery attempts reuse it, so a
  // re-placed task produces the same output the original would have.
  const auto task_seed = [&](TaskId task) {
    return config_.seed ^
           (static_cast<std::uint64_t>(app.value()) << 32) ^ task.value();
  };

  // One retry-backoff nap: jittered so lockstep retries de-correlate,
  // clamped so the task's CUMULATIVE backoff never exceeds
  // max_total_backoff_s (an in-gang sleep stalls every peer blocked on
  // this task's channels), routed through the FaultTolerance sleep hook
  // when one is installed (tests sleep virtually), and advanced for the
  // next round.  `backoff` is the caller's current-round duration.  The
  // jitter draw is seeded from (engine seed, app, task, attempt) --
  // never from implicit global state -- so a replay with the same seed
  // sleeps the exact same schedule through recovery.
  const auto backoff_sleep = [&](Slot& slot, double& backoff) {
    double nap = 0.0;
    if (config_.max_total_backoff_s > 0.0) {
      double jittered = backoff;
      if (config_.retry_backoff_jitter > 0.0) {
        common::Rng jitter_rng(
            task_seed(slot.node->id) ^
            (0xC4CEB9FE1A85EC53ull *
             static_cast<std::uint64_t>(slot.attempts)));
        jittered *= 1.0 + config_.retry_backoff_jitter *
                              (jitter_rng.uniform() - 0.5);
      }
      nap = std::min(jittered,
                     config_.max_total_backoff_s - slot.backoff_spent_s);
    }
    if (nap > 0.0) {
      if (common::trace_enabled()) {
        common::trace_instant(
            "retry_backoff", "engine",
            {{"task", slot.node->label}, {"sleep_s", std::to_string(nap)}});
      }
      if (ft != nullptr && ft->sleep) {
        ft->sleep(nap);
      } else {
        std::this_thread::sleep_for(seconds(nap));
      }
      slot.backoff_spent_s += nap;
    }
    backoff *= config_.retry_backoff_multiplier;
  };

  // Controllers must outlive the worker threads.
  std::vector<ApplicationController> controllers;
  controllers.reserve(graph.task_count());
  for (const Slot& slot : slots) {
    controllers.emplace_back(broker, config_.library, app, slot.host);
  }
  const auto arm_guards = [&](ApplicationController& controller,
                              HostId host) {
    if (ft == nullptr) return;
    if (config_.recv_timeout_s > 0.0) {
      controller.set_recv_timeout(config_.recv_timeout_s);
    }
    if (ft->host_alive) controller.set_fault_guard(ft->host_alive);
    if (load_guarded) {
      controller.set_load_guard([probe = ft->host_load, host] {
        return probe(host);
      }, config_.load_threshold);
    }
  };
  for (std::size_t i = 0; i < slots.size(); ++i) {
    arm_guards(controllers[i], slots[i].host);
  }

  common::log_info("engine", "app ", app.value(), " '", graph.name(),
                   "': delivering execution requests to ", live_count,
                   " tasks");

  std::chrono::steady_clock::time_point gang_start;
  {
    // Checkpoint replay threads stand in for the completed tasks'
    // machines: feeders push each restored frame into every live
    // consumer's re-opened channel (indistinguishable from the live
    // send), and drainers absorb live producers' sends into completed
    // consumers so no send thread blocks on a task that will never run.
    // Declared before `machines` so they join last: a drainer can only
    // unblock once the producing machine closed its channels.
    std::vector<std::jthread> replayers;
    const double drain_timeout_s =
        config_.recv_timeout_s > 0.0 ? config_.recv_timeout_s : 60.0;
    for (const Slot& slot : slots) {
      if (!slot.replayed) continue;
      const TaskId done = slot.node->id;
      for (const TaskId child : graph.children(done)) {
        if (slots[slot_of.at(child)].replayed) continue;
        replayers.emplace_back([&, done, child] {
          try {
            dm::MessageEndpoint out(
                config_.library,
                broker.open_send(dm::LinkKey{app, done, child}));
            const Slot& src = slots[slot_of.at(done)];
            if (src.outcome.output_frame.valid()) {
              out.send_frame(kPayloadTag, src.outcome.output_frame);
            } else {
              out.send(kPayloadTag, src.outcome.payload.to_wire());
            }
            out.close();
          } catch (const std::exception&) {
            // The consuming task's own receive error is authoritative.
          }
        });
      }
      for (const TaskId parent : graph.parents(done)) {
        if (slots[slot_of.at(parent)].replayed) continue;
        replayers.emplace_back([&, parent, done] {
          try {
            dm::MessageEndpoint in(
                config_.library,
                broker.open_receive(dm::LinkKey{app, parent, done}));
            while (in.receive_for(drain_timeout_s).has_value()) {
            }
            in.close();
          } catch (const std::exception&) {
            // The producing task's own send error is authoritative.
          }
        });
      }
    }

    std::vector<std::jthread> machines;
    machines.reserve(live_count);
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].replayed) continue;
      machines.emplace_back([&, i] {
        Slot& slot = slots[i];
        ApplicationController& controller = controllers[i];
        // One acknowledgment per machine: the latch must be counted
        // down exactly once whether activate() succeeds, activate()
        // throws, or a later phase throws.
        bool acked = false;
        try {
          dm::TaskWiring wiring;
          wiring.app = app;
          wiring.task = slot.node->id;
          wiring.parents = graph.ordered_parents(slot.node->id);
          wiring.children = graph.children(slot.node->id);
          {
            common::ScopedSpan setup_span("channel_setup", "engine");
            if (setup_span.active()) {
              setup_span.arg("task", slot.node->label);
              setup_span.arg("host", slot.host.value());
            }
            controller.activate(wiring);  // channel setup + ack
          }
          setup_acks.count_down();
          acked = true;

          start_signal.wait();  // the execution startup signal

          const auto t0 = std::chrono::steady_clock::now();
          tasklib::TaskContext ctx;
          ctx.input_size = slot.node->props.input_size;
          common::Rng rng(task_seed(slot.node->id));
          ctx.rng = &rng;

          // Pre-compute guard refusals (host dead, load above the
          // threshold) happen before any channel is consumed, so the
          // supervised retry runs right here inside the gang: report,
          // re-place with the refusing host excluded, rebind, re-run.
          double backoff = config_.retry_backoff_s;
          for (;;) {
            {
              common::ScopedSpan attempt_span("attempt", "engine.task");
              if (attempt_span.active()) {
                attempt_span.rename("task:" + slot.node->label);
                attempt_span.arg("app", app.value());
                attempt_span.arg("host", controller.host().value());
                attempt_span.arg("attempt", slot.attempts);
                if (!slot.excluded.empty()) {
                  attempt_span.arg("excluded", hosts_csv(slot.excluded));
                }
              }
              slot.outcome = controller.execute(
                  *registry_, slot.node->library_task, ctx, console);
              if (attempt_span.active()) {
                attempt_span.arg("outcome", slot.outcome.reschedule
                                                ? "refused"
                                                : "completed");
              }
            }
            if (!slot.outcome.reschedule) break;
            if (!recovery_on || slot.attempts >= config_.max_attempts) {
              break;  // refusal stands; reported after the join
            }
            if (ft->on_failure) ft->on_failure(*slot.outcome.reschedule);
            slot.excluded.push_back(controller.host());
            const auto replacement =
                ft->reschedule(*slot.node, slot.excluded);
            if (!replacement) break;  // nowhere left to go
            ++slot.attempts;
            slot.had_failure = true;
            ++slot.moves;
            slot.host = replacement->primary_host();
            controller.rebind_host(slot.host);
            if (load_guarded) {
              controller.set_load_guard(
                  [probe = ft->host_load, host = slot.host] {
                    return probe(host);
                  },
                  config_.load_threshold);
            }
            common::log_info("engine", "app ", app.value(), " task ",
                             slot.node->label, " re-placed on host ",
                             slot.host.value(), " (attempt ",
                             slot.attempts, ")");
            if (common::trace_enabled()) {
              common::trace_instant(
                  "re_placed", "engine",
                  {{"task", slot.node->label},
                   {"host", std::to_string(slot.host.value())},
                   {"excluded", hosts_csv(slot.excluded)}});
            }
            backoff_sleep(slot, backoff);
          }
          slot.turnaround_s = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count();
          controller.shutdown();
        } catch (const std::exception& e) {
          slot.error = e.what();
          // Unblock peers: close this task's channels, then make sure
          // the barrier protocol cannot deadlock the other machines.
          controller.shutdown();
          if (!acked) setup_acks.count_down();
        }
      });
    }

    // "When all the required acknowledgments are received an execution
    // startup signal is sent to start the application execution."
    setup_acks.wait();
    common::log_info("engine", "app ", app.value(),
                     ": all channel-setup acks received; sending startup "
                     "signal");
    gang_start = std::chrono::steady_clock::now();
    start_signal.count_down();
  }  // join all machine threads

  // Supervised recovery of tasks that *failed* mid-gang (task error or
  // transport collapse, including the cascade a failure inflicts on its
  // consumers).  Processed in topological order so a recovered parent's
  // recorded output is available to replay into its retried children.
  if (recovery_on) {
    for (const TaskId task : graph.topological_order()) {
      Slot& slot = slots[slot_of.at(task)];
      if (slot.error.empty()) continue;

      // A child can only be replayed from completed parent outputs.
      bool parents_ok = true;
      for (const TaskId parent : graph.parents(task)) {
        const Slot& ps = slots[slot_of.at(parent)];
        if (!ps.error.empty() || !ps.outcome.completed) {
          parents_ok = false;
          break;
        }
      }
      if (!parents_ok) continue;  // the parent's own error is reported

      double backoff = config_.retry_backoff_s;
      // A guard refusal during recovery arrives pre-classified; other
      // failures are classified by probing the host.
      std::optional<RescheduleRequest> pending;
      while (!slot.error.empty() &&
             slot.attempts < config_.max_attempts) {
        // Report the failure we just observed; an unusable host (dead,
        // or refusing on load) is excluded and the task re-placed, a
        // live host gets an in-place retry (the error may have been
        // transient).
        RescheduleRequest report;
        if (pending) {
          report = *pending;
          pending.reset();
        } else {
          report.app = app;
          report.task = task;
          report.host = slot.host;
          const bool dead =
              ft->host_alive != nullptr && !ft->host_alive(slot.host);
          report.kind = dead ? RescheduleRequest::Kind::kHostFailure
                             : RescheduleRequest::Kind::kTaskError;
          report.reason = slot.error;
        }
        if (ft->on_failure) ft->on_failure(report);
        if (report.kind != RescheduleRequest::Kind::kTaskError) {
          slot.excluded.push_back(slot.host);
          const auto replacement =
              ft->reschedule(*slot.node, slot.excluded);
          if (!replacement) break;  // nowhere left to go
          slot.host = replacement->primary_host();
          ++slot.moves;
        }
        ++slot.attempts;
        slot.had_failure = true;
        backoff_sleep(slot, backoff);
        common::log_info("engine", "app ", app.value(), " task ",
                         slot.node->label, ": recovery attempt ",
                         slot.attempts, " on host ", slot.host.value());

        // Channel teardown/re-setup: drop every stale registration of
        // this application, then re-open the task's inputs fresh.
        broker.clear_app(app);
        ApplicationController retry(broker, config_.library, app,
                                    slot.host);
        arm_guards(retry, slot.host);

        dm::TaskWiring wiring;
        wiring.app = app;
        wiring.task = task;
        wiring.parents = graph.ordered_parents(task);
        // No children: consumers are replayed from this task's recorded
        // output in their own recovery round, never live.

        std::string attempt_error;
        TaskOutcome outcome;
        std::binary_semaphore attempt_done(0);
        std::thread attempt([&] {
          common::ScopedSpan attempt_span("recovery_attempt",
                                          "engine.task");
          if (attempt_span.active()) {
            attempt_span.rename("task:" + slot.node->label);
            attempt_span.arg("app", app.value());
            attempt_span.arg("host", slot.host.value());
            attempt_span.arg("attempt", slot.attempts);
            if (!slot.excluded.empty()) {
              attempt_span.arg("excluded", hosts_csv(slot.excluded));
            }
          }
          try {
            retry.activate(wiring);
            tasklib::TaskContext ctx;
            ctx.input_size = slot.node->props.input_size;
            common::Rng rng(task_seed(task));
            ctx.rng = &rng;
            outcome = retry.execute(*registry_, slot.node->library_task,
                                    ctx, console);
          } catch (const std::exception& e) {
            attempt_error = e.what();
          }
          if (attempt_span.active()) {
            attempt_span.arg("outcome",
                             !attempt_error.empty()  ? "error"
                             : outcome.reschedule    ? "refused"
                                                     : "completed");
          }
          attempt_done.release();
        });

        // Replay the recorded parent outputs into the fresh channels.
        {
          std::vector<std::jthread> feeders;
          feeders.reserve(wiring.parents.size());
          for (const TaskId parent : wiring.parents) {
            feeders.emplace_back([&, parent] {
              try {
                dm::MessageEndpoint out(
                    config_.library,
                    broker.open_send(dm::LinkKey{app, parent, task}));
                const Slot& src = slots[slot_of.at(parent)];
                if (src.outcome.output_frame.valid()) {
                  out.send_frame(kPayloadTag, src.outcome.output_frame);
                } else {
                  out.send(kPayloadTag, src.outcome.payload.to_wire());
                }
                out.close();
              } catch (const std::exception&) {
                // The attempt's own receive error is authoritative.
              }
            });
          }

          bool finished = true;
          if (config_.attempt_timeout_s > 0.0) {
            finished = attempt_done.try_acquire_for(
                seconds(config_.attempt_timeout_s));
          } else {
            attempt_done.acquire();
          }
          if (!finished) {
            // Per-attempt timeout: close the channels so the attempt
            // unblocks, then record the overrun as this round's error.
            retry.shutdown();
            attempt_done.acquire();
            attempt_error =
                "recovery attempt exceeded " +
                std::to_string(config_.attempt_timeout_s) + "s";
          }
        }  // join feeders
        attempt.join();
        retry.shutdown();

        if (!attempt_error.empty()) {
          slot.error = attempt_error;
          continue;
        }
        if (outcome.reschedule) {
          // Refused again (load/fault guard on the replacement); the
          // next round reports it as-is and re-places the task.
          slot.error = outcome.reschedule->reason;
          pending = *outcome.reschedule;
          continue;
        }
        slot.outcome = std::move(outcome);
        slot.error.clear();
        slot.turnaround_s = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() -
                                gang_start)
                                .count();
        common::log_info("engine", "app ", app.value(), " task ",
                         slot.node->label, " recovered on host ",
                         slot.host.value(), " after ", slot.attempts,
                         " attempts");
        if (common::trace_enabled()) {
          common::trace_instant(
              "recovered", "engine",
              {{"task", slot.node->label},
               {"host", std::to_string(slot.host.value())},
               {"attempts", std::to_string(slot.attempts)}});
        }
      }
    }
  }

  // Checkpoint capture: every completion this run produced is durable
  // BEFORE any failure is reported, so a partially-failed run still
  // advances the completed frontier and a restart re-executes zero
  // finished tasks.
  if (checkpoint != nullptr) {
    for (const Slot& slot : slots) {
      if (slot.replayed || !slot.error.empty() ||
          !slot.outcome.completed || slot.outcome.reschedule) {
        continue;
      }
      if (slot.outcome.output_frame.valid()) {
        // Zero-copy capture: the store pins the very frame the send
        // threads shipped.
        checkpoint->record(app, slot.node->id, slot.attempts, slot.host,
                           slot.outcome.output_frame,
                           slot.outcome.compute_elapsed_s);
        m_ckpt_bytes.add(slot.outcome.output_frame.size());
      } else {
        checkpoint->record(app, slot.node->id, slot.attempts, slot.host,
                           slot.outcome.payload,
                           slot.outcome.compute_elapsed_s);
        m_ckpt_bytes.add(slot.outcome.payload.to_wire().size());
      }
      m_ckpt_captured.add(1);
    }
  }

  for (const Slot& slot : slots) {
    if (!slot.error.empty()) {
      throw common::StateError("task " + slot.node->label +
                               " failed: " + slot.error);
    }
    if (slot.outcome.reschedule) {
      throw common::StateError(
          "task " + slot.node->label +
          " refused by its Application Controller: " +
          slot.outcome.reschedule->reason);
    }
  }

  RunResult result;
  result.app = app;
  for (Slot& slot : slots) {
    TaskRunRecord rec;
    rec.task = slot.node->id;
    rec.label = slot.node->label;
    rec.library_task = slot.node->library_task;
    rec.host = slot.host;
    rec.turnaround_s = slot.turnaround_s;
    rec.compute_s = slot.outcome.compute_elapsed_s;
    rec.bytes_sent = slot.outcome.io_stats.bytes_sent;
    rec.bytes_received = slot.outcome.io_stats.bytes_received;
    rec.attempts = slot.attempts;
    rec.replayed = slot.replayed;
    if (slot.replayed) {
      // Replayed tasks never ran here: no turnaround, no engine.tasks
      // metric, no feedback (the capturing run already recorded its
      // measured compute time into the performance database).
      ++result.tasks_replayed;
    } else {
      result.makespan_s = std::max(result.makespan_s, slot.turnaround_s);
      if (slot.had_failure) ++result.failures_recovered;
      result.reschedules += slot.moves;
      m_tasks.add(1);
      m_attempts.add(static_cast<std::uint64_t>(slot.attempts));
      m_retries.add(static_cast<std::uint64_t>(slot.attempts - 1));
      m_turnaround.observe(slot.turnaround_s);
      if (feedback != nullptr) {
        feedback->record_task_time(slot.node->library_task,
                                   slot.outcome.compute_elapsed_s);
      }
    }
    result.records.push_back(rec);
    result.outputs.emplace(slot.node->id, std::move(slot.outcome.payload));
  }
  m_reschedules.add(result.reschedules);
  m_recovered.add(result.failures_recovered);
  if (app_span.active()) {
    app_span.arg("makespan_s", result.makespan_s);
    app_span.arg("failures_recovered", result.failures_recovered);
    app_span.arg("reschedules", result.reschedules);
    app_span.arg("tasks_replayed", result.tasks_replayed);
  }
  common::log_info("engine", "app ", app.value(), " finished; makespan ",
                   result.makespan_s, "s (", result.failures_recovered,
                   " failures recovered, ", result.reschedules,
                   " reschedules)");
  return result;
}

}  // namespace vdce::rt
