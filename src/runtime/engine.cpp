#include "runtime/engine.hpp"

#include <chrono>
#include <latch>
#include <thread>

#include "common/error.hpp"
#include "common/log.hpp"

namespace vdce::rt {

ExecutionEngine::ExecutionEngine(const tasklib::TaskRegistry& registry,
                                 EngineConfig config)
    : registry_(&registry), config_(config) {}

RunResult ExecutionEngine::execute(const afg::FlowGraph& graph,
                                   const sched::AllocationTable& allocation,
                                   SiteManager* feedback,
                                   dm::ConsoleService* console) {
  graph.validate();
  for (const afg::TaskNode& node : graph.tasks()) {
    if (!allocation.contains(node.id)) {
      throw common::StateError("allocation table misses task " + node.label);
    }
  }

  const common::AppId app{next_app_++};
  dm::ChannelBroker broker(config_.transport);

  const auto task_count = static_cast<std::ptrdiff_t>(graph.task_count());
  std::latch setup_acks(task_count);    // Figure 7 step 4
  std::latch start_signal(1);           // Figure 7 step 5

  struct Slot {
    const afg::TaskNode* node = nullptr;
    HostId host;
    TaskOutcome outcome;
    Duration turnaround_s = 0.0;
    std::string error;
  };
  std::vector<Slot> slots(graph.task_count());
  {
    std::size_t i = 0;
    for (const afg::TaskNode& node : graph.tasks()) {
      slots[i].node = &node;
      slots[i].host = allocation.entry(node.id).primary_host();
      ++i;
    }
  }

  // Controllers must outlive the worker threads.
  std::vector<ApplicationController> controllers;
  controllers.reserve(graph.task_count());
  for (const Slot& slot : slots) {
    controllers.emplace_back(broker, config_.library, app, slot.host);
  }

  common::log_info("engine", "app ", app.value(), " '", graph.name(),
                   "': delivering execution requests to ",
                   graph.task_count(), " tasks");

  {
    std::vector<std::jthread> machines;
    machines.reserve(graph.task_count());
    for (std::size_t i = 0; i < slots.size(); ++i) {
      machines.emplace_back([&, i] {
        Slot& slot = slots[i];
        ApplicationController& controller = controllers[i];
        try {
          dm::TaskWiring wiring;
          wiring.app = app;
          wiring.task = slot.node->id;
          wiring.parents = graph.ordered_parents(slot.node->id);
          wiring.children = graph.children(slot.node->id);
          controller.activate(wiring);  // channel setup + ack
          setup_acks.count_down();

          start_signal.wait();  // the execution startup signal

          const auto t0 = std::chrono::steady_clock::now();
          tasklib::TaskContext ctx;
          ctx.input_size = slot.node->props.input_size;
          common::Rng rng(config_.seed ^
                          (static_cast<std::uint64_t>(app.value()) << 32) ^
                          slot.node->id.value());
          ctx.rng = &rng;
          slot.outcome = controller.execute(*registry_,
                                            slot.node->library_task, ctx,
                                            console);
          slot.turnaround_s = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count();
          controller.shutdown();
        } catch (const std::exception& e) {
          slot.error = e.what();
          // Unblock peers: close this task's channels, then make sure
          // the barrier protocol cannot deadlock the other machines.
          controller.shutdown();
          setup_acks.count_down();
        }
      });
    }

    // "When all the required acknowledgments are received an execution
    // startup signal is sent to start the application execution."
    setup_acks.wait();
    common::log_info("engine", "app ", app.value(),
                     ": all channel-setup acks received; sending startup "
                     "signal");
    start_signal.count_down();
  }  // join all machine threads

  for (const Slot& slot : slots) {
    if (!slot.error.empty()) {
      throw common::StateError("task " + slot.node->label +
                               " failed: " + slot.error);
    }
    if (slot.outcome.reschedule) {
      throw common::StateError(
          "task " + slot.node->label +
          " refused by its Application Controller: " +
          slot.outcome.reschedule->reason);
    }
  }

  RunResult result;
  result.app = app;
  for (Slot& slot : slots) {
    TaskRunRecord rec;
    rec.task = slot.node->id;
    rec.label = slot.node->label;
    rec.library_task = slot.node->library_task;
    rec.host = slot.host;
    rec.turnaround_s = slot.turnaround_s;
    rec.compute_s = slot.outcome.compute_elapsed_s;
    rec.bytes_sent = slot.outcome.io_stats.bytes_sent;
    rec.bytes_received = slot.outcome.io_stats.bytes_received;
    result.makespan_s = std::max(result.makespan_s, slot.turnaround_s);
    result.records.push_back(rec);
    result.outputs.emplace(slot.node->id, std::move(slot.outcome.payload));

    if (feedback != nullptr) {
      feedback->record_task_time(slot.node->library_task,
                                 slot.outcome.compute_elapsed_s);
    }
  }
  common::log_info("engine", "app ", app.value(), " finished; makespan ",
                   result.makespan_s, "s");
  return result;
}

}  // namespace vdce::rt
