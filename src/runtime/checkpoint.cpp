#include "runtime/checkpoint.hpp"

namespace vdce::rt {

void CheckpointStore::record(AppId app, TaskId task, int attempt,
                             HostId host, dm::FrameView frame,
                             Duration compute_s) {
  std::lock_guard lk(mu_);
  auto& tasks = apps_[app];
  const auto it = tasks.find(task);
  if (it != tasks.end()) {
    // Idempotent re-capture; only a strictly higher attempt replaces.
    if (attempt <= it->second.attempt) return;
    stats_.bytes_captured -= it->second.frame.size();
    ++stats_.tasks_replaced;
  } else {
    ++stats_.tasks_captured;
  }
  CheckpointEntry entry;
  entry.task = task;
  entry.attempt = attempt;
  entry.host = host;
  entry.frame = std::move(frame);  // refcount bump upstream, no copy here
  entry.compute_s = compute_s;
  stats_.bytes_captured += entry.frame.size();
  tasks[task] = std::move(entry);
}

void CheckpointStore::record(AppId app, TaskId task, int attempt,
                             HostId host, const tasklib::Payload& output,
                             Duration compute_s) {
  const auto wire = output.to_wire();
  record(app, task, attempt, host, dm::FramePool::global().copy_of(wire),
         compute_s);
}

bool CheckpointStore::completed(AppId app, TaskId task) const {
  std::lock_guard lk(mu_);
  const auto it = apps_.find(app);
  return it != apps_.end() && it->second.contains(task);
}

std::optional<CheckpointEntry> CheckpointStore::replay(AppId app,
                                                       TaskId task) const {
  std::lock_guard lk(mu_);
  const auto it = apps_.find(app);
  if (it == apps_.end()) return std::nullopt;
  const auto entry = it->second.find(task);
  if (entry == it->second.end()) return std::nullopt;
  ++stats_.frames_replayed;
  return entry->second;
}

std::size_t CheckpointStore::completed_count(AppId app) const {
  std::lock_guard lk(mu_);
  const auto it = apps_.find(app);
  return it == apps_.end() ? 0 : it->second.size();
}

std::vector<TaskId> CheckpointStore::completed_tasks(AppId app) const {
  std::lock_guard lk(mu_);
  std::vector<TaskId> out;
  const auto it = apps_.find(app);
  if (it == apps_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [task, _] : it->second) out.push_back(task);
  return out;
}

void CheckpointStore::drop_app(AppId app) {
  std::lock_guard lk(mu_);
  const auto it = apps_.find(app);
  if (it == apps_.end()) return;
  for (const auto& [_, entry] : it->second) {
    stats_.bytes_captured -= entry.frame.size();
  }
  apps_.erase(it);
  ++stats_.apps_dropped;
}

CheckpointStats CheckpointStore::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

}  // namespace vdce::rt
