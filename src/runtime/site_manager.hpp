// The Site Manager.
//
// "At each site, the VDCE Server runs the server software, called site
//  manager, which handles the inter-site communications and bridges the
//  VDCE modules to the web-based repository."  (Section 2)
//
// Responsibilities implemented here (Figure 6):
//   * updating the site repository with filtered workload updates,
//     liveness changes and network measurements;
//   * feeding the load forecaster the scheduler predicts from;
//   * storing newly measured task execution times after each run;
//   * authenticating users (the servlet front-end's login);
//   * answering inter-site Host Selection requests;
//   * splitting a resource allocation table into the per-host portions
//     the Group Managers deliver to Application Controllers.
#pragma once

#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "predict/forecaster.hpp"
#include "predict/prediction_cache.hpp"
#include "predict/predictor.hpp"
#include "repository/repository.hpp"
#include "runtime/messages.hpp"
#include "scheduler/allocation.hpp"
#include "scheduler/host_selection.hpp"

namespace vdce::rt {

/// Counters for the control-plane experiments.
/// `host_selection_requests` is atomic: the Site Scheduler's parallel
/// AFG multicast reaches several managers (and, with k_nearest = 0
/// plus retries, the same manager) from pool threads.
/// `task_times_recorded` is atomic too: with concurrent applications,
/// several engine runs feed their measurements back through one
/// manager at once.
struct SiteManagerStats {
  std::size_t workload_updates = 0;
  std::size_t liveness_changes = 0;
  std::size_t network_measurements = 0;
  std::atomic<std::size_t> task_times_recorded{0};
  std::atomic<std::size_t> host_selection_requests{0};
  std::atomic<std::size_t> reschedule_requests{0};
  std::size_t allocation_rows_distributed = 0;
  std::size_t logins = 0;
};

/// The per-site server process.
class SiteManager {
 public:
  /// Both references must outlive the manager.
  SiteManager(SiteId site, repo::SiteRepository& repository,
              predict::LoadForecaster& forecaster);

  [[nodiscard]] SiteId site() const { return site_; }
  [[nodiscard]] repo::SiteRepository& repository() { return *repository_; }
  [[nodiscard]] const repo::SiteRepository& repository() const {
    return *repository_;
  }
  [[nodiscard]] predict::LoadForecaster& forecaster() { return *forecaster_; }

  // -- resource controller inputs -------------------------------------
  void handle_workload(const WorkloadUpdate& update);
  void handle_liveness(const LivenessChange& change);
  void handle_network(const NetworkMeasurement& measurement);

  // -- post-execution feedback -----------------------------------------
  /// "After an application execution is completed, the newly measured
  /// execution time of each application task is stored in the
  /// task-performance database."  Thread-safe: with concurrent
  /// applications several engine runs feed back through one manager.
  void record_task_time(const std::string& library_task, Duration elapsed_s);

  // -- web front-end ---------------------------------------------------
  /// Authenticates a user against the user-accounts database; throws
  /// AuthError on failure.  (The servlet login step before the Editor
  /// loads.)
  [[nodiscard]] repo::UserAccount login(const std::string& user,
                                        const std::string& password);

  // -- inter-site coordination -----------------------------------------
  /// Answers a (local or remote) Application Scheduler's multicast: runs
  /// the Host Selection Algorithm on this site's repository, scoring
  /// with up to `threads`-way parallelism.  Thread-safe; predictions
  /// are memoised in this manager's PredictionCache (repository and
  /// forecaster updates handled by this manager invalidate it through
  /// the epoch counters).
  [[nodiscard]] sched::HostSelectionMap host_selection_request(
      const afg::FlowGraph& graph, std::size_t threads = 1);

  /// Answers a re-placement request for one task of a running
  /// application (the Control Manager's fault-tolerance path): Host
  /// Selection for `node` alone, skipping every host in `excluded`.
  /// Thread-safe and cache-backed like host_selection_request.
  [[nodiscard]] sched::HostSelection reschedule_request(
      const afg::TaskNode& node, const std::vector<HostId>& excluded);

  /// The Predict() memo table behind host_selection_request (for the
  /// cache-hit experiments).
  [[nodiscard]] const predict::PredictionCache& prediction_cache() const {
    return cache_;
  }

  // -- allocation distribution ------------------------------------------
  /// Splits the allocation table into per-host portions ("sends ...
  /// related parts of the resource allocation table to the Application
  /// Controller of the machine").  Only hosts of this site appear.
  [[nodiscard]] std::map<HostId, std::vector<sched::AllocationEntry>>
  distribute_allocation(const sched::AllocationTable& table);

  [[nodiscard]] const SiteManagerStats& stats() const { return stats_; }

 private:
  SiteId site_;
  repo::SiteRepository* repository_;
  predict::LoadForecaster* forecaster_;
  predict::PredictionCache cache_;
  predict::PerformancePredictor predictor_;
  SiteManagerStats stats_;
};

}  // namespace vdce::rt
