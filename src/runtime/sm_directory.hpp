// SiteDirectory over Site Managers: the inter-site coordination path.
//
// "The inter-site coordination and message transfer are handled by Site
//  Managers."  (Section 2.3.1)
//
// The local Application Scheduler's AFG multicast becomes a
// host_selection_request to each consulted Site Manager; WAN distances
// and transfer estimates come from the local site's repository.  The
// directory counts the control messages so the benches can report
// coordination traffic.
#pragma once

#include <atomic>
#include <map>
#include <memory>

#include "runtime/site_manager.hpp"
#include "scheduler/directory.hpp"

namespace vdce::rt {

/// Message counters of the scheduling control plane.  Atomic because
/// the Site Scheduler multicasts to the consulted sites concurrently.
struct DirectoryStats {
  std::atomic<std::size_t> afg_multicasts{0};
  std::atomic<std::size_t> reschedule_queries{0};
  std::atomic<std::size_t> distance_queries{0};
  std::atomic<std::size_t> transfer_queries{0};
};

/// Directory backed by (in-process) Site Manager endpoints.
class SiteManagerDirectory final : public sched::SiteDirectory {
 public:
  /// Registers one site's manager; the first registered acts as the
  /// local site whose repository answers WAN queries.  Managers must
  /// outlive the directory.
  void add_site(SiteManager& manager);

  [[nodiscard]] std::vector<SiteId> sites() const override;
  [[nodiscard]] Duration site_distance(SiteId a, SiteId b) const override;
  [[nodiscard]] Duration transfer_time(SiteId a, SiteId b,
                                       double mb) const override;
  [[nodiscard]] sched::HostSelectionMap host_selection(
      SiteId site, const afg::FlowGraph& graph,
      std::size_t threads = 1) override;
  [[nodiscard]] sched::HostSelection host_reselection(
      SiteId site, const afg::TaskNode& node,
      const std::vector<HostId>& excluded) override;
  [[nodiscard]] Duration base_time(
      const std::string& library_task) const override;
  [[nodiscard]] Duration host_transfer_time(HostId from, HostId to,
                                            double mb) const override;

  [[nodiscard]] const DirectoryStats& stats() const { return *stats_; }

 private:
  [[nodiscard]] SiteManager& manager(SiteId site) const;

  std::map<SiteId, SiteManager*> managers_;
  // Behind a pointer so the directory stays movable despite the atomics.
  std::unique_ptr<DirectoryStats> stats_ = std::make_unique<DirectoryStats>();
};

}  // namespace vdce::rt
