// Control-plane transport abstraction (design D14).
//
// A ControlTransport carries ENCODED control messages (wire.hpp frames)
// from a producer (Group Managers, Application Controllers) to a
// ControlSink that decodes and dispatches them.  Two implementations:
//
//   * LoopbackControlTransport -- serialize, decode, dispatch
//     synchronously in-process.  The default inside ControlManager, so
//     every deployment (including the all-in-one-process tests) pays
//     and validates the wire format on every message; a message that
//     cannot round-trip fails in unit tests, not in the first
//     multi-process deployment.
//   * ChannelControlTransport -- publish each frame over a Data
//     Manager Channel (in-proc pair or real TCP).  The remote end
//     pumps frames into its own sink via drain_control_channel(); this
//     is the Site-Manager-over-the-wire path the site daemon uses.
#pragma once

#include <cstddef>
#include <memory>
#include <span>

#include "datamgr/channel.hpp"
#include "runtime/messages.hpp"

namespace vdce::rt {

/// Receiver of decoded control messages (the Site Manager side).
class ControlSink {
 public:
  virtual ~ControlSink() = default;
  virtual void on_workload(const WorkloadUpdate& update) = 0;
  virtual void on_liveness(const LivenessChange& change) = 0;
  virtual void on_network(const NetworkMeasurement& measurement) = 0;
  virtual void on_reschedule(const RescheduleRequest& request) = 0;
};

/// Sink adapter dispatching straight into a SiteManager's handlers.
/// Reschedule requests are dropped (the Site Manager is not their
/// consumer; ControlManager overrides that route).
class SiteManager;
class SiteManagerSink final : public ControlSink {
 public:
  explicit SiteManagerSink(SiteManager& manager) : manager_(&manager) {}
  void on_workload(const WorkloadUpdate& update) override;
  void on_liveness(const LivenessChange& change) override;
  void on_network(const NetworkMeasurement& measurement) override;
  void on_reschedule(const RescheduleRequest&) override {}

 private:
  SiteManager* manager_;
};

/// Decodes one wire frame and routes it into `sink`.  Throws ParseError
/// for garbage/truncated frames and for non-control message types (RPCs
/// do not belong on a control channel).
void dispatch_control_frame(std::span<const std::byte> frame,
                            ControlSink& sink);

/// Per-transport traffic counters.
struct ControlTransportStats {
  std::size_t messages = 0;
  std::size_t bytes = 0;
};

/// One-way carrier of encoded control messages.
class ControlTransport {
 public:
  virtual ~ControlTransport() = default;
  /// Publishes one encoded control message (a wire.hpp frame).
  virtual void publish(std::span<const std::byte> frame) = 0;
  [[nodiscard]] const ControlTransportStats& stats() const { return stats_; }

 protected:
  void count(std::size_t bytes) {
    ++stats_.messages;
    stats_.bytes += bytes;
  }

 private:
  ControlTransportStats stats_;
};

/// In-process transport: every publish decodes the frame and dispatches
/// it to the sink before returning.  `sink` must outlive the transport.
class LoopbackControlTransport final : public ControlTransport {
 public:
  explicit LoopbackControlTransport(ControlSink& sink) : sink_(&sink) {}
  void publish(std::span<const std::byte> frame) override;

 private:
  ControlSink* sink_;
};

/// Socket-backed transport: frames travel over a Channel; the remote
/// end drains them with drain_control_channel().  `channel` must
/// outlive the transport.
class ChannelControlTransport final : public ControlTransport {
 public:
  explicit ChannelControlTransport(dm::Channel& channel)
      : channel_(&channel) {}
  void publish(std::span<const std::byte> frame) override;

 private:
  dm::Channel* channel_;
};

/// Receives control frames from `channel` and dispatches each into
/// `sink` until the channel closes (returns the number dispatched) or
/// `max_messages` frames arrived (0 = unlimited).  ParseError from a
/// garbage frame propagates — a control channel carrying junk is a
/// wiring bug, not something to paper over.
std::size_t drain_control_channel(dm::Channel& channel, ControlSink& sink,
                                  std::size_t max_messages = 0);

}  // namespace vdce::rt
