// The Monitor daemon.
//
// "Each VDCE machine has a Monitor daemon that periodically measures the
//  up-to-date processor parameters, i.e., CPU load and memory
//  availability.  The measured values are sent to the group leader
//  machine."  (Section 2.3.1)
//
// Monitors are tick-driven: the Control Manager (or the simulation
// driver) advances them with the clock, keeping the whole monitoring
// fabric deterministic.  Each tick at or after the next due time takes a
// measurement from the testbed and hands it to the Group Manager.
#pragma once

#include "netsim/testbed.hpp"
#include "runtime/messages.hpp"

namespace vdce::rt {

/// Per-host measurement daemon.
class Monitor {
 public:
  /// Measures `host` every `period_s` seconds; `testbed` must outlive
  /// the monitor.
  Monitor(netsim::VirtualTestbed& testbed, HostId host, Duration period_s);

  /// If a measurement is due at `now`, produces it; otherwise nullopt.
  /// A dead host produces no report (the daemon died with it) — the
  /// Group Manager notices through its echo packets.
  [[nodiscard]] std::optional<MonitorReport> tick(TimePoint now);

  [[nodiscard]] HostId host() const { return host_; }
  [[nodiscard]] Duration period() const { return period_s_; }
  [[nodiscard]] std::size_t measurements_taken() const { return taken_; }

 private:
  netsim::VirtualTestbed* testbed_;
  HostId host_;
  Duration period_s_;
  TimePoint next_due_ = 0.0;
  std::size_t taken_ = 0;
};

}  // namespace vdce::rt
