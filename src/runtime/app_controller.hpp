// The Application Controller.
//
// "After the Application Controller receives an execution request
//  message from the Group Manager, it activates the Data Manager. ...
//  After the Application Executor receives the acknowledgment from Data
//  Manager for the communication channel setup, it forwards the
//  acknowledgment to the Site Manager.  When all the required
//  acknowledgments are received an execution startup signal is sent to
//  start the application execution. ...  If the current load on any of
//  these machines is more than a predefined threshold value, the
//  Application Controller terminates the task execution on the machine
//  and sends a task rescheduling request to the Group Manager."
//  (Sections 2.3.1, Figure 7)
//
// One ApplicationController instance manages one task execution on one
// (virtual) machine inside the real-threaded execution engine.
#pragma once

#include <functional>
#include <optional>

#include "datamgr/data_manager.hpp"
#include "runtime/messages.hpp"

namespace vdce::rt {

/// Load probe: the controller's view of its machine's current load
/// (bound to the testbed in tests/benches; absent in pure functional
/// runs).
using LoadProbe = std::function<double()>;

/// Liveness probe: whether a given host is currently answering (bound
/// to the testbed's fault-injection windows or the Group Managers'
/// believed-alive view).
using AliveProbe = std::function<bool(HostId)>;

/// Outcome of one controlled task execution.
struct TaskOutcome {
  bool completed = false;
  /// Set instead of `payload` when the controller refused the task
  /// pre-compute: load-threshold violation (kLoadThreshold) or the
  /// fault guard reporting this host dead (kHostFailure).  On the
  /// refusal path io_stats reflects whatever channel setup already
  /// happened, and the Data Manager channels are still open — the
  /// caller owns teardown (the engine's retry loop reuses or rebinds
  /// them; anyone else must call shutdown()).
  std::optional<RescheduleRequest> reschedule;
  tasklib::Payload payload;
  /// The output's wire image as a pooled frame view -- the same slab
  /// the Data Manager's send threads shipped, handed to the checkpoint
  /// store without another copy (D13).  Invalid on refusal paths.
  dm::FrameView output_frame;
  /// Compute-phase wall time, seconds (what the Site Manager stores in
  /// the task-performance database).
  Duration compute_elapsed_s = 0.0;
  dm::ExecutionStats io_stats;
};

/// Per-task execution controller.
class ApplicationController {
 public:
  /// `broker` must outlive the controller.
  ApplicationController(dm::ChannelBroker& broker, dm::MpLibrary library,
                        common::AppId app, HostId host);

  /// Phase 1 (execution request): activates the Data Manager and sets up
  /// the channels.  Returning is the setup acknowledgment.
  void activate(const dm::TaskWiring& wiring);

  /// Sets the load threshold and probe; when the probe reads above the
  /// threshold at the pre-compute check, the task is not run and a
  /// rescheduling request is produced instead.
  void set_load_guard(LoadProbe probe, double threshold);

  /// Sets the liveness probe; when it reports this controller's host
  /// dead at the pre-compute check, the task is refused with a
  /// kHostFailure rescheduling request.  Checked before the load guard
  /// (a dead host's load reading is meaningless).
  void set_fault_guard(AliveProbe probe);

  /// Arms the Data Manager's receive timeout (dead-peer guard for the
  /// fault-tolerance loop); <= 0 blocks indefinitely.
  void set_recv_timeout(double seconds) { dm_.set_recv_timeout(seconds); }

  /// Points the controller at a replacement machine after a reschedule.
  /// Only the host identity moves; the Data Manager keeps its wiring.
  void rebind_host(HostId host) { host_ = host; }
  [[nodiscard]] HostId host() const { return host_; }

  /// Phase 2 (after the startup signal): runs the task under the Data
  /// Manager, timing the compute phase.
  [[nodiscard]] TaskOutcome execute(const tasklib::TaskRegistry& registry,
                                    const std::string& library_task,
                                    const tasklib::TaskContext& ctx,
                                    dm::ConsoleService* console = nullptr);

  /// Closes the Data Manager channels (used on both success and error
  /// paths so peer tasks unblock).
  void shutdown();

  [[nodiscard]] const dm::DataManager& data_manager() const { return dm_; }

 private:
  common::AppId app_;
  HostId host_;
  dm::TaskWiring wiring_;
  dm::DataManager dm_;
  LoadProbe probe_;
  AliveProbe alive_probe_;
  double threshold_ = 0.0;
};

}  // namespace vdce::rt
