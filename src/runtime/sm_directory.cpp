#include "runtime/sm_directory.hpp"

#include "common/error.hpp"

namespace vdce::rt {

void SiteManagerDirectory::add_site(SiteManager& manager) {
  if (managers_.contains(manager.site())) {
    throw common::StateError("site already registered in directory");
  }
  managers_.emplace(manager.site(), &manager);
}

SiteManager& SiteManagerDirectory::manager(SiteId site) const {
  const auto it = managers_.find(site);
  if (it == managers_.end()) {
    throw common::NotFoundError("unknown site in directory");
  }
  return *it->second;
}

std::vector<SiteId> SiteManagerDirectory::sites() const {
  std::vector<SiteId> out;
  out.reserve(managers_.size());
  for (const auto& [id, _] : managers_) out.push_back(id);
  return out;
}

Duration SiteManagerDirectory::site_distance(SiteId a, SiteId b) const {
  if (a == b) return 0.0;
  stats_->distance_queries.fetch_add(1, std::memory_order_relaxed);
  common::expects(!managers_.empty(), "directory has no sites");
  const auto link = managers_.begin()
                        ->second->repository()
                        .resources()
                        .site_network(a, b);
  if (!link) throw common::NotFoundError("no WAN link between the sites");
  return link->latency_s;
}

Duration SiteManagerDirectory::transfer_time(SiteId a, SiteId b,
                                             double mb) const {
  if (a == b) return 0.0;
  stats_->transfer_queries.fetch_add(1, std::memory_order_relaxed);
  common::expects(!managers_.empty(), "directory has no sites");
  const auto link = managers_.begin()
                        ->second->repository()
                        .resources()
                        .site_network(a, b);
  if (!link) throw common::NotFoundError("no WAN link between the sites");
  return link->latency_s + mb / link->transfer_mb_per_s;
}

sched::HostSelectionMap SiteManagerDirectory::host_selection(
    SiteId site, const afg::FlowGraph& graph, std::size_t threads) {
  stats_->afg_multicasts.fetch_add(1, std::memory_order_relaxed);
  return manager(site).host_selection_request(graph, threads);
}

sched::HostSelection SiteManagerDirectory::host_reselection(
    SiteId site, const afg::TaskNode& node,
    const std::vector<HostId>& excluded) {
  stats_->reschedule_queries.fetch_add(1, std::memory_order_relaxed);
  return manager(site).reschedule_request(node, excluded);
}

Duration SiteManagerDirectory::host_transfer_time(HostId from, HostId to,
                                                  double mb) const {
  common::expects(!managers_.empty(), "directory has no sites");
  return sched::estimate_host_transfer(
      managers_.begin()->second->repository(), from, to, mb);
}

Duration SiteManagerDirectory::base_time(
    const std::string& library_task) const {
  common::expects(!managers_.empty(), "directory has no sites");
  return managers_.begin()
      ->second->repository()
      .tasks()
      .get(library_task)
      .base_time_s;
}

}  // namespace vdce::rt
