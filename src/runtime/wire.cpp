#include "runtime/wire.hpp"

#include <algorithm>

#include "afg/graph.hpp"
#include "common/error.hpp"

namespace vdce::rt::wire {

using common::ParseError;
using common::WireReader;
using common::WireWriter;

const char* to_string(MsgType type) {
  switch (type) {
    case MsgType::kMonitorReport: return "monitor_report";
    case MsgType::kWorkloadUpdate: return "workload_update";
    case MsgType::kLivenessChange: return "liveness_change";
    case MsgType::kNetworkMeasurement: return "network_measurement";
    case MsgType::kRescheduleRequest: return "reschedule_request";
    case MsgType::kHeartbeat: return "heartbeat";
    case MsgType::kTickRequest: return "tick_request";
    case MsgType::kHostSelectionRequest: return "host_selection_request";
    case MsgType::kHostSelectionResponse: return "host_selection_response";
    case MsgType::kReselectionRequest: return "reselection_request";
    case MsgType::kReselectionResponse: return "reselection_response";
    case MsgType::kRecordTaskTime: return "record_task_time";
    case MsgType::kShutdownRequest: return "shutdown_request";
    case MsgType::kAck: return "ack";
    case MsgType::kErrorReply: return "error_reply";
    case MsgType::kPeerDigest: return "peer_digest";
    case MsgType::kGossipPing: return "gossip_ping";
    case MsgType::kGossipAck: return "gossip_ack";
    case MsgType::kPingReq: return "ping_req";
    case MsgType::kPingReqReply: return "ping_req_reply";
    case MsgType::kPeerRoster: return "peer_roster";
    case MsgType::kRefute: return "refute";
  }
  return "unknown";
}

namespace {

WireWriter header(MsgType type) {
  WireWriter w;
  w.write_u8(kMagic);
  w.write_u8(kVersion);
  w.write_u8(static_cast<std::uint8_t>(type));
  return w;
}

/// Checks the header and positions a reader at the payload.  The
/// expected type guards against routing bugs (a frame dispatched to
/// the wrong decoder fails loudly instead of misparsing).
WireReader payload_reader(std::span<const std::byte> frame,
                          MsgType expected) {
  const MsgType got = peek_type(frame);
  if (got != expected) {
    throw ParseError(std::string("control message type mismatch: expected ") +
                     to_string(expected) + ", got " + to_string(got));
  }
  return WireReader(frame.subspan(3));
}

void write_selection(WireWriter& w, const sched::HostSelection& s) {
  w.write_u32(static_cast<std::uint32_t>(s.hosts.size()));
  for (const common::HostId h : s.hosts) w.write_u32(h.value());
  w.write_f64(s.predicted_s);
  w.write_u32(static_cast<std::uint32_t>(s.scored.size()));
  for (const auto& [t, h] : s.scored) {
    w.write_f64(t);
    w.write_u32(h.value());
  }
}

sched::HostSelection read_selection(WireReader& r) {
  sched::HostSelection s;
  const std::uint32_t hosts = r.read_u32();
  s.hosts.reserve(hosts);
  for (std::uint32_t i = 0; i < hosts; ++i) {
    s.hosts.emplace_back(r.read_u32());
  }
  s.predicted_s = r.read_f64();
  const std::uint32_t scored = r.read_u32();
  s.scored.reserve(scored);
  for (std::uint32_t i = 0; i < scored; ++i) {
    const double t = r.read_f64();
    s.scored.emplace_back(t, common::HostId(r.read_u32()));
  }
  return s;
}

}  // namespace

MsgType peek_type(std::span<const std::byte> frame) {
  if (frame.size() < 3) {
    throw ParseError("control frame shorter than the 3-byte header");
  }
  if (static_cast<std::uint8_t>(frame[0]) != kMagic) {
    throw ParseError("control frame magic mismatch (not a control message)");
  }
  if (static_cast<std::uint8_t>(frame[1]) != kVersion) {
    throw ParseError("unsupported control protocol version " +
                     std::to_string(static_cast<std::uint8_t>(frame[1])));
  }
  const auto raw = static_cast<std::uint8_t>(frame[2]);
  if (raw < static_cast<std::uint8_t>(MsgType::kMonitorReport) ||
      raw > static_cast<std::uint8_t>(MsgType::kRefute)) {
    throw ParseError("unknown control message type " + std::to_string(raw));
  }
  return static_cast<MsgType>(raw);
}

// -- load reports (MonitorReport / WorkloadUpdate share a layout) --------

std::vector<std::byte> encode(const MonitorReport& m) {
  WireWriter w = header(MsgType::kMonitorReport);
  w.write_u32(m.host.value());
  w.write_f64(m.when);
  w.write_f64(m.cpu_load);
  w.write_f64(m.available_memory_mb);
  return w.take();
}

std::vector<std::byte> encode(const WorkloadUpdate& m) {
  WireWriter w = header(MsgType::kWorkloadUpdate);
  w.write_u32(m.host.value());
  w.write_f64(m.when);
  w.write_f64(m.cpu_load);
  w.write_f64(m.available_memory_mb);
  return w.take();
}

MonitorReport decode_monitor_report(std::span<const std::byte> frame) {
  WireReader r = payload_reader(frame, MsgType::kMonitorReport);
  MonitorReport m;
  m.host = common::HostId(r.read_u32());
  m.when = r.read_f64();
  m.cpu_load = r.read_f64();
  m.available_memory_mb = r.read_f64();
  return m;
}

WorkloadUpdate decode_workload_update(std::span<const std::byte> frame) {
  WireReader r = payload_reader(frame, MsgType::kWorkloadUpdate);
  WorkloadUpdate m;
  m.host = common::HostId(r.read_u32());
  m.when = r.read_f64();
  m.cpu_load = r.read_f64();
  m.available_memory_mb = r.read_f64();
  return m;
}

// -- liveness / network --------------------------------------------------

std::vector<std::byte> encode(const LivenessChange& m) {
  WireWriter w = header(MsgType::kLivenessChange);
  w.write_u32(m.host.value());
  w.write_f64(m.when);
  w.write_u8(m.alive ? 1 : 0);
  return w.take();
}

LivenessChange decode_liveness_change(std::span<const std::byte> frame) {
  WireReader r = payload_reader(frame, MsgType::kLivenessChange);
  LivenessChange m;
  m.host = common::HostId(r.read_u32());
  m.when = r.read_f64();
  m.alive = r.read_u8() != 0;
  return m;
}

std::vector<std::byte> encode(const NetworkMeasurement& m) {
  WireWriter w = header(MsgType::kNetworkMeasurement);
  w.write_u32(m.group.value());
  w.write_f64(m.when);
  w.write_f64(m.latency_s);
  w.write_f64(m.transfer_mb_per_s);
  return w.take();
}

NetworkMeasurement decode_network_measurement(
    std::span<const std::byte> frame) {
  WireReader r = payload_reader(frame, MsgType::kNetworkMeasurement);
  NetworkMeasurement m;
  m.group = common::GroupId(r.read_u32());
  m.when = r.read_f64();
  m.latency_s = r.read_f64();
  m.transfer_mb_per_s = r.read_f64();
  return m;
}

// -- reschedule ----------------------------------------------------------

std::vector<std::byte> encode(const RescheduleRequest& m) {
  WireWriter w = header(MsgType::kRescheduleRequest);
  w.write_u32(m.app.value());
  w.write_u32(m.task.value());
  w.write_u32(m.host.value());
  w.write_f64(m.when);
  w.write_f64(m.observed_load);
  w.write_u8(static_cast<std::uint8_t>(m.kind));
  w.write_string(m.reason);
  return w.take();
}

RescheduleRequest decode_reschedule_request(std::span<const std::byte> frame) {
  WireReader r = payload_reader(frame, MsgType::kRescheduleRequest);
  RescheduleRequest m;
  m.app = common::AppId(r.read_u32());
  m.task = common::TaskId(r.read_u32());
  m.host = common::HostId(r.read_u32());
  m.when = r.read_f64();
  m.observed_load = r.read_f64();
  const std::uint8_t kind = r.read_u8();
  if (kind > static_cast<std::uint8_t>(RescheduleRequest::Kind::kTaskError)) {
    throw ParseError("unknown reschedule kind " + std::to_string(kind));
  }
  m.kind = static_cast<RescheduleRequest::Kind>(kind);
  m.reason = r.read_string();
  return m;
}

// -- heartbeat -----------------------------------------------------------

std::vector<std::byte> encode(const Heartbeat& m) {
  WireWriter w = header(MsgType::kHeartbeat);
  w.write_u32(m.site.value());
  w.write_i64(m.pid);
  w.write_u64(m.seq);
  w.write_u16(m.rpc_port);
  w.write_u32(m.incarnation);
  w.write_u16(m.gossip_port);
  return w.take();
}

Heartbeat decode_heartbeat(std::span<const std::byte> frame) {
  WireReader r = payload_reader(frame, MsgType::kHeartbeat);
  Heartbeat m;
  m.site = common::SiteId(r.read_u32());
  m.pid = r.read_i64();
  m.seq = r.read_u64();
  m.rpc_port = r.read_u16();
  m.incarnation = r.read_u32();
  m.gossip_port = r.read_u16();
  return m;
}

// -- quorum liveness (D17) -----------------------------------------------

std::vector<std::byte> encode(const PeerDigest& m) {
  WireWriter w = header(MsgType::kPeerDigest);
  w.write_u32(m.origin_site.value());
  w.write_u32(m.origin_incarnation);
  w.write_u32(static_cast<std::uint32_t>(m.peers.size()));
  for (const PeerHealth& p : m.peers) {
    w.write_u32(p.site.value());
    w.write_u32(p.incarnation);
    w.write_f64(p.age_s);
    w.write_u8(p.reachable ? 1 : 0);
  }
  return w.take();
}

PeerDigest decode_peer_digest(std::span<const std::byte> frame) {
  WireReader r = payload_reader(frame, MsgType::kPeerDigest);
  PeerDigest m;
  m.origin_site = common::SiteId(r.read_u32());
  m.origin_incarnation = r.read_u32();
  const std::uint32_t peers = r.read_u32();
  m.peers.reserve(peers);
  for (std::uint32_t i = 0; i < peers; ++i) {
    PeerHealth p;
    p.site = common::SiteId(r.read_u32());
    p.incarnation = r.read_u32();
    p.age_s = r.read_f64();
    p.reachable = r.read_u8() != 0;
    m.peers.push_back(p);
  }
  return m;
}

std::vector<std::byte> encode(const GossipPing& m) {
  WireWriter w = header(MsgType::kGossipPing);
  w.write_u32(m.origin_site.value());
  w.write_u64(m.seq);
  return w.take();
}

GossipPing decode_gossip_ping(std::span<const std::byte> frame) {
  WireReader r = payload_reader(frame, MsgType::kGossipPing);
  GossipPing m;
  m.origin_site = common::SiteId(r.read_u32());
  m.seq = r.read_u64();
  return m;
}

std::vector<std::byte> encode(const GossipAck& m) {
  WireWriter w = header(MsgType::kGossipAck);
  w.write_u32(m.site.value());
  w.write_u32(m.incarnation);
  w.write_u64(m.seq);
  return w.take();
}

GossipAck decode_gossip_ack(std::span<const std::byte> frame) {
  WireReader r = payload_reader(frame, MsgType::kGossipAck);
  GossipAck m;
  m.site = common::SiteId(r.read_u32());
  m.incarnation = r.read_u32();
  m.seq = r.read_u64();
  return m;
}

std::vector<std::byte> encode(const PingReq& m) {
  WireWriter w = header(MsgType::kPingReq);
  w.write_u32(m.origin_site.value());
  w.write_u32(m.target_site.value());
  w.write_u16(m.target_gossip_port);
  w.write_u64(m.seq);
  return w.take();
}

PingReq decode_ping_req(std::span<const std::byte> frame) {
  WireReader r = payload_reader(frame, MsgType::kPingReq);
  PingReq m;
  m.origin_site = common::SiteId(r.read_u32());
  m.target_site = common::SiteId(r.read_u32());
  m.target_gossip_port = r.read_u16();
  m.seq = r.read_u64();
  return m;
}

std::vector<std::byte> encode(const PingReqReply& m) {
  WireWriter w = header(MsgType::kPingReqReply);
  w.write_u32(m.target_site.value());
  w.write_u8(m.reachable ? 1 : 0);
  w.write_u32(m.target_incarnation);
  w.write_u64(m.seq);
  return w.take();
}

PingReqReply decode_ping_req_reply(std::span<const std::byte> frame) {
  WireReader r = payload_reader(frame, MsgType::kPingReqReply);
  PingReqReply m;
  m.target_site = common::SiteId(r.read_u32());
  m.reachable = r.read_u8() != 0;
  m.target_incarnation = r.read_u32();
  m.seq = r.read_u64();
  return m;
}

std::vector<std::byte> encode(const PeerRoster& m) {
  WireWriter w = header(MsgType::kPeerRoster);
  w.write_u32(static_cast<std::uint32_t>(m.peers.size()));
  for (const PeerEndpoint& p : m.peers) {
    w.write_u32(p.site.value());
    w.write_u16(p.gossip_port);
    w.write_u32(p.incarnation);
    w.write_u8(p.suspected ? 1 : 0);
  }
  return w.take();
}

PeerRoster decode_peer_roster(std::span<const std::byte> frame) {
  WireReader r = payload_reader(frame, MsgType::kPeerRoster);
  PeerRoster m;
  const std::uint32_t peers = r.read_u32();
  m.peers.reserve(peers);
  for (std::uint32_t i = 0; i < peers; ++i) {
    PeerEndpoint p;
    p.site = common::SiteId(r.read_u32());
    p.gossip_port = r.read_u16();
    p.incarnation = r.read_u32();
    p.suspected = r.read_u8() != 0;
    m.peers.push_back(p);
  }
  return m;
}

std::vector<std::byte> encode(const Refute& m) {
  WireWriter w = header(MsgType::kRefute);
  w.write_u32(m.witness_site.value());
  w.write_u32(m.site.value());
  w.write_u32(m.incarnation);
  return w.take();
}

Refute decode_refute(std::span<const std::byte> frame) {
  WireReader r = payload_reader(frame, MsgType::kRefute);
  Refute m;
  m.witness_site = common::SiteId(r.read_u32());
  m.site = common::SiteId(r.read_u32());
  m.incarnation = r.read_u32();
  return m;
}

// -- daemon RPCs ---------------------------------------------------------

std::vector<std::byte> encode(const TickRequest& m) {
  WireWriter w = header(MsgType::kTickRequest);
  w.write_f64(m.now);
  return w.take();
}

TickRequest decode_tick_request(std::span<const std::byte> frame) {
  WireReader r = payload_reader(frame, MsgType::kTickRequest);
  TickRequest m;
  m.now = r.read_f64();
  return m;
}

std::vector<std::byte> encode(const HostSelectionRequest& m) {
  WireWriter w = header(MsgType::kHostSelectionRequest);
  w.write_string(m.graph_text);
  w.write_u32(m.threads);
  return w.take();
}

HostSelectionRequest decode_host_selection_request(
    std::span<const std::byte> frame) {
  WireReader r = payload_reader(frame, MsgType::kHostSelectionRequest);
  HostSelectionRequest m;
  m.graph_text = r.read_string();
  m.threads = r.read_u32();
  return m;
}

std::vector<std::byte> encode(const HostSelectionResponse& m) {
  WireWriter w = header(MsgType::kHostSelectionResponse);
  w.write_u32(static_cast<std::uint32_t>(m.selection.size()));
  // Deterministic order: the map is unordered, but the wire image of a
  // response must be reproducible for the bit-identity tests.
  std::vector<common::TaskId> tasks;
  tasks.reserve(m.selection.size());
  for (const auto& [task, sel] : m.selection) tasks.push_back(task);
  std::sort(tasks.begin(), tasks.end(),
            [](common::TaskId a, common::TaskId b) {
              return a.value() < b.value();
            });
  for (const common::TaskId task : tasks) {
    w.write_u32(task.value());
    write_selection(w, m.selection.at(task));
  }
  return w.take();
}

HostSelectionResponse decode_host_selection_response(
    std::span<const std::byte> frame) {
  WireReader r = payload_reader(frame, MsgType::kHostSelectionResponse);
  HostSelectionResponse m;
  const std::uint32_t entries = r.read_u32();
  for (std::uint32_t i = 0; i < entries; ++i) {
    const common::TaskId task(r.read_u32());
    m.selection.emplace(task, read_selection(r));
  }
  return m;
}

ReselectionRequest make_reselection_request(
    const afg::TaskNode& node, const std::vector<common::HostId>& excluded) {
  ReselectionRequest req;
  req.task = node.id;
  req.library_task = node.library_task;
  req.label = node.label;
  req.input_size = node.props.input_size;
  req.num_processors = node.props.num_processors;
  req.parallel = node.props.mode == afg::ComputeMode::kParallel;
  req.excluded = excluded;
  return req;
}

std::vector<std::byte> encode(const ReselectionRequest& m) {
  WireWriter w = header(MsgType::kReselectionRequest);
  w.write_u32(m.task.value());
  w.write_string(m.library_task);
  w.write_string(m.label);
  w.write_f64(m.input_size);
  w.write_u32(m.num_processors);
  w.write_u8(m.parallel ? 1 : 0);
  w.write_u32(static_cast<std::uint32_t>(m.excluded.size()));
  for (const common::HostId h : m.excluded) w.write_u32(h.value());
  return w.take();
}

ReselectionRequest decode_reselection_request(
    std::span<const std::byte> frame) {
  WireReader r = payload_reader(frame, MsgType::kReselectionRequest);
  ReselectionRequest m;
  m.task = common::TaskId(r.read_u32());
  m.library_task = r.read_string();
  m.label = r.read_string();
  m.input_size = r.read_f64();
  m.num_processors = r.read_u32();
  m.parallel = r.read_u8() != 0;
  const std::uint32_t excluded = r.read_u32();
  m.excluded.reserve(excluded);
  for (std::uint32_t i = 0; i < excluded; ++i) {
    m.excluded.emplace_back(r.read_u32());
  }
  return m;
}

std::vector<std::byte> encode(const ReselectionResponse& m) {
  WireWriter w = header(MsgType::kReselectionResponse);
  write_selection(w, m.selection);
  return w.take();
}

ReselectionResponse decode_reselection_response(
    std::span<const std::byte> frame) {
  WireReader r = payload_reader(frame, MsgType::kReselectionResponse);
  ReselectionResponse m;
  m.selection = read_selection(r);
  return m;
}

std::vector<std::byte> encode(const RecordTaskTime& m) {
  WireWriter w = header(MsgType::kRecordTaskTime);
  w.write_string(m.library_task);
  w.write_f64(m.elapsed_s);
  return w.take();
}

RecordTaskTime decode_record_task_time(std::span<const std::byte> frame) {
  WireReader r = payload_reader(frame, MsgType::kRecordTaskTime);
  RecordTaskTime m;
  m.library_task = r.read_string();
  m.elapsed_s = r.read_f64();
  return m;
}

std::vector<std::byte> encode(const Ack&) {
  return header(MsgType::kAck).take();
}

std::vector<std::byte> encode_shutdown() {
  return header(MsgType::kShutdownRequest).take();
}

std::vector<std::byte> encode(const ErrorReply& m) {
  WireWriter w = header(MsgType::kErrorReply);
  w.write_string(m.what);
  return w.take();
}

ErrorReply decode_error_reply(std::span<const std::byte> frame) {
  WireReader r = payload_reader(frame, MsgType::kErrorReply);
  ErrorReply m;
  m.what = r.read_string();
  return m;
}

}  // namespace vdce::rt::wire
