// Sharded stride fair-share ready queue (DESIGN.md D15).
//
// The admission front door of PR 4 picked the next grant with an O(n)
// scan over every queued submission and kept every user's stride pass
// in one flat map under the service's global lock -- fine at 32
// submitters, hopeless at the paper's "many users share the VDCE"
// scale.  This queue is the sublinear replacement:
//
//   * per-user FIFOs keyed by submission sequence number, with an
//     ordered (pass, head-seq) index per shard: a grant is "take the
//     globally lowest (pass, seq)" in O(shards + log users);
//   * users are sharded by name hash, each shard behind its own lock,
//     so concurrent submitters contend per shard rather than on one
//     global mutex;
//   * the stride virtual clock renormalizes itself before double
//     precision can swallow low-weight pass increments (the 2^53
//     drift bug), and idle users whose pass has been overtaken by the
//     grant clock are evicted -- dropping them is invisible, because a
//     returning user is clamped to the grant clock anyway;
//   * a (priority, seq) index per shard supports the load-shedding
//     tiers: preempt-the-lowest-priority-youngest on queue overflow,
//     and bulk shedding below a priority cutoff.
//
// Stride semantics are exactly PR 4's: the queued submission whose
// user has the lowest pass wins, ties break on global submission
// order, and a grant advances the winner's pass by 1/weight.  New and
// returning users join at the current grant pass, never behind it.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ids.hpp"

namespace vdce::rt {

/// Tunables of the sharded stride queue.
struct FairShareConfig {
  /// User-hash shards (each with its own lock and indexes).
  std::size_t shards = 16;
  /// Renormalize every pass against the grant clock once the clock
  /// crosses this value, so pass increments as small as 1/max-weight
  /// never fall below double precision (the 2^53 drift bug).
  double renorm_threshold = 1e9;
  /// Per-shard bound on tracked users.  Idle users with the least
  /// outstanding stride debt are evicted first once a shard exceeds
  /// it; users with queued work are never evicted.
  std::size_t max_shares_per_shard = 4096;
};

/// One queued submission inside the fair-share race.
struct FairShareEntry {
  common::AppId app;
  /// Global submission order (FIFO tie-break within and across users).
  std::uint64_t seq = 0;
  /// Admission priority tier (higher survives shedding longer).
  int priority = 0;
  /// Stride weight of the submission (> 0); the grant advances the
  /// user's pass by 1/weight.
  double weight = 1.0;
  /// Entries admitted straight into a free slot are not eligible for
  /// preemption or shedding (their admission already counted them as
  /// running work, not queue backlog).
  bool preemptible = true;
};

/// Point-in-time queue counters.
struct FairShareStats {
  std::size_t queued = 0;
  std::size_t users = 0;
  std::uint64_t renormalizations = 0;
  std::uint64_t shares_evicted = 0;
};

/// Thread-safe sharded stride scheduler.  All operations are safe to
/// call concurrently; pop/preempt/shed serialize on an internal grant
/// lock (grant order must be a total order), while push only takes the
/// owning user's shard lock.
class FairShareQueue {
 public:
  explicit FairShareQueue(FairShareConfig config = {});

  /// Enqueues one submission for `user`.  First-seen and returning
  /// (previously idle) users join at the current grant pass -- a user
  /// who sat out while others raced can never return with a stale low
  /// pass and sweep every grant (the PR 8 starvation fix).
  void push(const std::string& user, FairShareEntry entry);

  /// Removes and returns the stride winner: lowest user pass, FIFO
  /// seq tie-break.  Advances the winner's pass by 1/weight and the
  /// grant clock to the winner's pre-advance pass.  Empty queue
  /// returns nullopt.
  [[nodiscard]] std::optional<FairShareEntry> pop();

  /// Load-shedding tier 2: removes and returns the youngest entry of
  /// the lowest priority tier strictly below `priority`, or nullopt
  /// when nothing preemptible qualifies.  Does not advance the grant
  /// clock (the victim never ran).
  [[nodiscard]] std::optional<FairShareEntry> preempt_below(int priority);

  /// Load-shedding tier 3: removes every preemptible entry with
  /// priority strictly below `priority` (ascending seq order).
  [[nodiscard]] std::vector<FairShareEntry> shed_below(int priority);

  /// Lowest priority currently queued among preemptible entries.
  [[nodiscard]] std::optional<int> lowest_priority() const;

  [[nodiscard]] std::size_t size() const {
    return total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t user_count() const;
  /// The stride virtual clock: the pass of the latest grant.
  [[nodiscard]] double grant_pass() const {
    return grant_pass_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] FairShareStats stats() const;
  [[nodiscard]] const FairShareConfig& config() const { return config_; }

  /// Test hook: jumps the grant clock (e.g. next to 2^53) so the
  /// precision-drift regression test does not need 10^15 real grants.
  void set_grant_pass_for_test(double pass);

 private:
  /// One user's stride state: the pass plus a seq-ordered FIFO.
  struct Share {
    double pass = 0.0;
    std::map<std::uint64_t, FairShareEntry> fifo;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Share> shares;
    /// (pass, head seq) -> user, for users with queued work.  The
    /// begin() of this map is the shard's stride winner.
    std::map<std::pair<double, std::uint64_t>, std::string> order;
    /// (priority, seq) -> user, one per preemptible queued entry.
    std::map<std::pair<int, std::uint64_t>, std::string> prio;
    /// (pass, user) for idle users (empty FIFO), ordered by how little
    /// stride debt they still owe -- the eviction order.
    std::set<std::pair<double, std::string>> idle;
  };

  [[nodiscard]] Shard& shard_for(const std::string& user);
  /// Drops idle users the grant clock has overtaken (invisible: they
  /// would be clamped back to the clock on return anyway) and, over
  /// the per-shard cap, the least-indebted idle users.  Shard lock
  /// held.
  void sweep_idle_locked(Shard& shard);
  /// Removes the queued entry `seq` of `user` from every index.
  /// Shard lock held.
  FairShareEntry remove_entry_locked(Shard& shard, const std::string& user,
                                     std::uint64_t seq);
  /// Subtracts the grant clock from every pass once it crosses the
  /// renormalization threshold.  Grant lock held, no shard lock held.
  void maybe_renormalize();

  FairShareConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Serializes grant-order decisions (pop/preempt/shed/renormalize).
  mutable std::mutex grant_mu_;
  std::atomic<double> grant_pass_{0.0};
  std::atomic<std::size_t> total_{0};
  std::atomic<std::uint64_t> renormalizations_{0};
  std::atomic<std::uint64_t> shares_evicted_{0};
};

}  // namespace vdce::rt
