#include "runtime/app_controller.hpp"

#include <chrono>

namespace vdce::rt {

ApplicationController::ApplicationController(dm::ChannelBroker& broker,
                                             dm::MpLibrary library,
                                             common::AppId app, HostId host)
    : app_(app), host_(host), dm_(broker, library) {}

void ApplicationController::activate(const dm::TaskWiring& wiring) {
  wiring_ = wiring;
  dm_.setup(wiring);
}

void ApplicationController::set_load_guard(LoadProbe probe, double threshold) {
  probe_ = std::move(probe);
  threshold_ = threshold;
}

void ApplicationController::set_fault_guard(AliveProbe probe) {
  alive_probe_ = std::move(probe);
}

TaskOutcome ApplicationController::execute(
    const tasklib::TaskRegistry& registry, const std::string& library_task,
    const tasklib::TaskContext& ctx, dm::ConsoleService* console) {
  TaskOutcome outcome;

  // Pre-compute fault guard: a host inside a failure window never gets
  // the task (checked before the load guard -- a dead host's load
  // reading is meaningless).
  if (alive_probe_ && !alive_probe_(host_)) {
    RescheduleRequest req;
    req.app = app_;
    req.task = wiring_.task;
    req.host = host_;
    req.kind = RescheduleRequest::Kind::kHostFailure;
    req.reason = "host " + std::to_string(host_.value()) + " is down";
    outcome.reschedule = req;
    // Refusal path: channels stay open (caller owns teardown), but the
    // stats must still reflect the setup traffic so far.
    outcome.io_stats = dm_.stats();
    return outcome;
  }

  // Pre-compute load guard: "If the current load on any of these
  // machines is more than a predefined threshold value, the Application
  // Controller terminates the task execution on the machine and sends a
  // task rescheduling request".
  if (probe_) {
    const double load = probe_();
    if (load > threshold_) {
      RescheduleRequest req;
      req.app = app_;
      req.task = wiring_.task;
      req.host = host_;
      req.observed_load = load;
      req.kind = RescheduleRequest::Kind::kLoadThreshold;
      req.reason = "load " + std::to_string(load) + " above threshold " +
                   std::to_string(threshold_);
      outcome.reschedule = req;
      outcome.io_stats = dm_.stats();
      return outcome;
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  outcome.payload = dm_.run(registry, library_task, ctx, console);
  const auto t1 = std::chrono::steady_clock::now();
  outcome.compute_elapsed_s =
      std::chrono::duration<double>(t1 - t0).count();
  outcome.completed = true;
  outcome.output_frame = dm_.output_frame();
  outcome.io_stats = dm_.stats();
  return outcome;
}

void ApplicationController::shutdown() { dm_.teardown(); }

}  // namespace vdce::rt
