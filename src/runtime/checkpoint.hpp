// Application checkpointing: the completed-frontier snapshot.
//
// The paper's Application Scheduler (Figures 4-5) places an AFG once
// and assumes the chosen sites stay reachable for the life of the run;
// the engine's supervised retry (DESIGN.md D9) recovers individual
// attempts, but when no feasible host remains the whole application
// dies and every completed task's work is discarded.  The
// CheckpointStore closes that gap: as the ExecutionEngine records task
// completions it durably captures each finished task's output frame
// (the same wire bytes that flowed through the ChannelBroker), keyed by
// (AppId, task, attempt).  A later run of the same application replays
// the captured frames into a fresh broker, feeding successor tasks
// bit-identical inputs without re-executing finished predecessors --
// the restart half of the site-level failover loop in
// rt::AppSubmissionService (DESIGN.md D12).
//
// Thread-safe: machine threads of one run record concurrently, and a
// restarted run reads while unrelated applications keep writing.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "common/clock.hpp"
#include "common/ids.hpp"
#include "datamgr/frame.hpp"
#include "tasklib/payload.hpp"

namespace vdce::rt {

using common::AppId;
using common::Duration;
using common::HostId;
using common::TaskId;

/// One completed task's durable record.
struct CheckpointEntry {
  TaskId task;
  /// The attempt that produced the output (1 = first try).  A
  /// re-record under a higher attempt replaces the entry; re-recording
  /// the same attempt is idempotent (the frame is already bit-fixed by
  /// the per-task RNG seed).
  int attempt = 1;
  /// The host the completing attempt ran on.
  HostId host;
  /// Wire-encoded output payload, pinned in the frame pool -- since D13
  /// this is a VIEW of the very slab every consumer link carried, so
  /// the capture costs a refcount bump instead of a copy, and the pool
  /// cannot recycle the slab while the store holds the view (the
  /// bit-identity guarantee replay depends on).
  dm::FrameView frame;
  /// Compute-phase seconds of the completing attempt (restored into the
  /// restarted run's records so turnaround accounting survives).
  Duration compute_s = 0.0;
};

/// Store-wide counters (mirrored as engine.checkpoint.* metrics by the
/// engine).  After an application eventually completes,
///   captured(app) == task_count   and
///   replayed(app) == sum over restarts of the frontier size at restart.
struct CheckpointStats {
  std::uint64_t tasks_captured = 0;
  std::uint64_t tasks_replaced = 0;  // re-captures under a higher attempt
  std::uint64_t frames_replayed = 0;
  std::uint64_t bytes_captured = 0;
  std::uint64_t apps_dropped = 0;
};

/// Durable completed-frontier snapshots, one per in-flight application.
class CheckpointStore {
 public:
  /// Captures one finished task's output frame (the wire image, shared
  /// zero-copy with the links that carried it).  Idempotent per (app,
  /// task, attempt); a higher attempt replaces the stored entry.
  void record(AppId app, TaskId task, int attempt, HostId host,
              dm::FrameView frame, Duration compute_s);

  /// Convenience: captures a payload by copying its wire image into a
  /// pooled frame (tests and callers without a frame at hand).
  void record(AppId app, TaskId task, int attempt, HostId host,
              const tasklib::Payload& output, Duration compute_s);

  /// Whether `task` of `app` has a captured completion.
  [[nodiscard]] bool completed(AppId app, TaskId task) const;

  /// The captured entry, or nullopt.  Returns a copy so the caller may
  /// hold it across concurrent record()/drop_app() calls; counts one
  /// frame replay when found.
  [[nodiscard]] std::optional<CheckpointEntry> replay(AppId app,
                                                      TaskId task) const;

  /// Number of captured completions for `app`.
  [[nodiscard]] std::size_t completed_count(AppId app) const;

  /// The captured task ids of `app`, ascending.
  [[nodiscard]] std::vector<TaskId> completed_tasks(AppId app) const;

  /// Drops an application's snapshot (run finished, or abandoned).
  /// Idempotent.
  void drop_app(AppId app);

  [[nodiscard]] CheckpointStats stats() const;

 private:
  mutable std::mutex mu_;
  std::map<AppId, std::map<TaskId, CheckpointEntry>> apps_;
  mutable CheckpointStats stats_;
};

}  // namespace vdce::rt
