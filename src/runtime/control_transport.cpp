#include "runtime/control_transport.hpp"

#include "common/error.hpp"
#include "runtime/site_manager.hpp"
#include "runtime/wire.hpp"

namespace vdce::rt {

void SiteManagerSink::on_workload(const WorkloadUpdate& update) {
  manager_->handle_workload(update);
}

void SiteManagerSink::on_liveness(const LivenessChange& change) {
  manager_->handle_liveness(change);
}

void SiteManagerSink::on_network(const NetworkMeasurement& measurement) {
  manager_->handle_network(measurement);
}

void dispatch_control_frame(std::span<const std::byte> frame,
                            ControlSink& sink) {
  switch (wire::peek_type(frame)) {
    case wire::MsgType::kMonitorReport: {
      // Monitor reports reaching a sink are treated as workload
      // updates (a site with no CI filter forwards raw reports).
      const MonitorReport report = wire::decode_monitor_report(frame);
      sink.on_workload(WorkloadUpdate{report.host, report.when,
                                      report.cpu_load,
                                      report.available_memory_mb});
      return;
    }
    case wire::MsgType::kWorkloadUpdate:
      sink.on_workload(wire::decode_workload_update(frame));
      return;
    case wire::MsgType::kLivenessChange:
      sink.on_liveness(wire::decode_liveness_change(frame));
      return;
    case wire::MsgType::kNetworkMeasurement:
      sink.on_network(wire::decode_network_measurement(frame));
      return;
    case wire::MsgType::kRescheduleRequest:
      sink.on_reschedule(wire::decode_reschedule_request(frame));
      return;
    default:
      throw common::ParseError(
          std::string("unexpected message on a control channel: ") +
          wire::to_string(wire::peek_type(frame)));
  }
}

void LoopbackControlTransport::publish(std::span<const std::byte> frame) {
  dispatch_control_frame(frame, *sink_);
  count(frame.size());  // only delivered messages count
}

void ChannelControlTransport::publish(std::span<const std::byte> frame) {
  channel_->send(frame);
  count(frame.size());  // only delivered messages count
}

std::size_t drain_control_channel(dm::Channel& channel, ControlSink& sink,
                                  std::size_t max_messages) {
  std::size_t dispatched = 0;
  while (max_messages == 0 || dispatched < max_messages) {
    const auto frame = channel.receive_frame();
    if (!frame) break;  // closed and drained
    dispatch_control_frame(frame->bytes(), sink);
    ++dispatched;
  }
  return dispatched;
}

}  // namespace vdce::rt
