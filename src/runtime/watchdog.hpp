// Process watchdog for site daemons (designs D14 + D17).
//
// When the control plane leaves the coordinator's address space, the
// per-site Site Manager runs inside a `vdce_site_daemon` OS process.
// Something must notice when such a process dies -- SIGKILL leaves no
// chance for a goodbye message -- and bring it back.  The Watchdog:
//
//   * spawns one daemon per supervised site (fork/exec of the
//     vdce_site_daemon binary) and reaps it with waitpid;
//   * listens on a TCP heartbeat port every daemon beats into; the
//     first beat of an incarnation announces the daemon's
//     kernel-assigned RPC port (the coordinator connects there);
//   * feeds every piece of death evidence into the D17
//     LivenessDirectory instead of acting on it alone: a reaped child
//     or a heartbeat-connection EOF is first-hand (conclusive, when
//     trust_process_exit), while a missed heartbeat deadline is merely
//     the watchdog's own suspicion VOTE -- peer daemons gossip-probe
//     each other, piggyback peer-health digests on their heartbeats,
//     answer indirect ping-req probes, and send refutations, so a
//     partitioned-but-healthy site is suspected but never declared
//     dead;
//   * declares a site DOWN only on the directory's verdict (quorum of
//     witnesses, an unrefuted suspicion deadline, or first-hand death)
//     and invokes on_site_down (the hook the submission service's
//     failover/circuit-breaker path subscribes to);
//   * restarts the daemon with jittered exponential backoff (seeded
//     per site and restart, so a multi-site outage cannot produce a
//     synchronized fork/exec storm), bumping the incarnation so stale
//     beats -- and stale liveness evidence -- of the dead process are
//     fenced off, and invokes on_site_up once the reincarnation's
//     first beat lands.
//
// Wall-clock by design: process supervision is inherently real-time
// (there is no virtual clock across address spaces), so the tunables
// below are real seconds and the tests use short periods.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "datamgr/tcp.hpp"
#include "runtime/liveness.hpp"

namespace vdce::rt::wire {
struct PeerDigest;
}

namespace vdce::rt {

using common::SiteId;

struct WatchdogConfig {
  /// Path to the vdce_site_daemon binary (tests inject the build-tree
  /// path via the VDCE_SITE_DAEMON_PATH compile definition).
  std::string daemon_path;
  /// Testbed seed every daemon rebuilds its site from; must match the
  /// coordinator's testbed for placement decisions to agree.
  std::uint64_t seed = 13;
  /// How often daemons beat (passed to them on the command line).
  double heartbeat_period_s = 0.05;
  /// Silence longer than this puts the site under suspicion (the
  /// watchdog's own witness vote; death needs quorum or the suspicion
  /// timeout).
  double heartbeat_timeout_s = 1.0;
  /// Restarts per site before the watchdog gives the site up for good.
  int max_restarts = 3;
  /// Exponential backoff before each restart attempt.
  double restart_backoff_s = 0.05;
  double restart_backoff_multiplier = 2.0;
  /// Seed-derived jitter fraction on the backoff: each (site, restart)
  /// waits backoff * (1 + jitter * u) with u in [0, 1) drawn
  /// deterministically from (seed, site, restart).  0 disables.
  double restart_backoff_jitter = 0.5;
  /// D17 quorum-liveness knobs.
  LivenessConfig liveness;
  /// Run the gossip layer: daemons probe each other, piggyback
  /// peer-health digests, answer indirect ping-reqs and refute
  /// suspicions.  Off = the watchdog is the only witness (death then
  /// comes from first-hand evidence or the suspicion timeout).
  bool gossip = true;
  /// Daemon-side gossip probe round period.
  double gossip_period_s = 0.05;
  /// Budget for one indirect ping-req round trip.
  double probe_timeout_s = 0.25;
  /// Peers asked to indirectly probe each suspect per round.
  int probe_fanout = 3;
  /// Treat a reaped child / heartbeat EOF as first-hand conclusive
  /// death (no quorum needed).  Tests turn this off to force the
  /// quorum path even for SIGKILL.
  bool trust_process_exit = true;
  /// The coordinator's own vantage id in partition specs (daemons
  /// suppress heartbeats while partitioned from it).
  SiteId coordinator_site = LivenessDirectory::watchdog_witness();
  /// Chaos partitions forwarded to daemons (ChaosSchedule::
  /// partition_spec, absolute steady-clock windows); empty = none.
  std::string partition_spec;
};

/// Point-in-time supervision state of one daemon.
struct DaemonStatus {
  SiteId site;
  std::int64_t pid = 0;
  std::uint16_t rpc_port = 0;
  std::uint16_t gossip_port = 0;
  std::uint32_t incarnation = 0;
  std::uint64_t heartbeats = 0;
  bool up = false;
  std::size_t restarts = 0;
  /// Set when the restart budget ran out.
  bool abandoned = false;
};

/// A fenced RPC endpoint: the port plus the incarnation it belongs to.
/// Clients pin the incarnation so a connection into a stale daemon can
/// be detected and dropped (D17 fencing).
struct RpcEndpoint {
  std::uint16_t port = 0;
  std::uint32_t incarnation = 0;
};

/// Supervises site daemon processes over the heartbeat protocol.
class Watchdog {
 public:
  explicit Watchdog(WatchdogConfig config);
  /// Terminates every supervised daemon (SIGTERM, then SIGKILL) and
  /// joins the supervision threads.
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Fired (outside the watchdog lock) when a site is declared down.
  void set_on_site_down(std::function<void(SiteId)> callback);
  /// Fired once a (re)started daemon's first heartbeat lands.
  void set_on_site_up(std::function<void(SiteId)> callback);

  /// Launches and supervises the daemon of `site`.
  void spawn(SiteId site);

  /// Blocks until the current incarnation's RPC port is known (first
  /// heartbeat received) or `timeout_s` elapses; throws TransportError
  /// on timeout.  After a restart this returns the NEW port.
  [[nodiscard]] std::uint16_t rpc_port(SiteId site, double timeout_s = 10.0);
  /// Like rpc_port but also returns the incarnation the port belongs
  /// to, atomically -- the fencing token for DaemonClient.
  [[nodiscard]] RpcEndpoint rpc_endpoint(SiteId site, double timeout_s = 10.0);
  /// Current incarnation of `site` (0 when not supervised).
  [[nodiscard]] std::uint32_t incarnation(SiteId site) const;

  [[nodiscard]] DaemonStatus status(SiteId site) const;
  /// Total restarts across all sites.
  [[nodiscard]] std::size_t total_restarts() const;

  /// The D17 quorum-liveness directory (tests and benches inspect the
  /// per-site state machines directly).
  [[nodiscard]] LivenessDirectory& liveness() { return liveness_; }
  /// Convenience: the directory's verdict for `site`.
  [[nodiscard]] SiteLiveness site_liveness(SiteId site) const {
    return liveness_.state(site);
  }

  /// The deterministic jittered restart backoff for (site, restart
  /// `restart_index`): backoff_s * multiplier^index * (1 + jitter * u)
  /// with u drawn from (config.seed, site, index).  Pure -- tests pin
  /// the schedule.
  [[nodiscard]] static double restart_backoff(const WatchdogConfig& config,
                                              SiteId site,
                                              std::size_t restart_index);

  /// Chaos support: delivers `sig` (e.g. SIGKILL) to the daemon of
  /// `site`.  The death is then detected and handled exactly like any
  /// organic crash.
  void kill_daemon(SiteId site, int sig);

  /// The heartbeat listener port (daemons connect here).
  [[nodiscard]] std::uint16_t heartbeat_port() const;

  /// Stops supervision and shuts every daemon down.  Idempotent.
  void stop();

 private:
  struct Daemon {
    SiteId site;
    std::int64_t pid = -1;
    std::uint32_t incarnation = 0;
    std::uint16_t rpc_port = 0;
    std::uint16_t gossip_port = 0;
    std::uint64_t heartbeats = 0;
    /// steady-clock seconds of the last accepted beat.
    double last_beat_s = 0.0;
    bool up = false;
    std::size_t restarts = 0;
    bool abandoned = false;
  };

  void accept_loop();
  void beat_loop(std::shared_ptr<dm::TcpChannel> channel);
  void monitor_loop();
  /// Roster pushes and indirect ping-req probes (gossip mode).
  void prober_loop();
  /// Translates one peer-health digest into suspicion/refutation votes.
  void apply_digest(const wire::PeerDigest& digest);
  /// Fork/execs one daemon for `d` (lock held); bumps the incarnation.
  void launch_locked(Daemon& d);
  /// Declares `d` down and schedules its restart; returns the
  /// callback to fire outside the lock (or nullptr).
  void declare_down(Daemon& d, const std::string& why);
  [[nodiscard]] static double now_s();

  WatchdogConfig config_;
  std::function<void(SiteId)> on_site_down_;
  std::function<void(SiteId)> on_site_up_;

  dm::TcpListener listener_;
  LivenessDirectory liveness_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::map<SiteId, Daemon> daemons_;
  /// Heartbeat channels, closed on stop() to unblock readers.
  std::vector<std::shared_ptr<dm::TcpChannel>> beat_channels_;
  /// Pending restart deadlines: (steady seconds, site).
  std::vector<std::pair<double, SiteId>> restart_queue_;

  std::thread acceptor_;
  std::thread monitor_;
  std::thread prober_;
  std::vector<std::thread> readers_;
};

}  // namespace vdce::rt
