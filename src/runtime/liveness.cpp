#include "runtime/liveness.hpp"

#include <algorithm>
#include <chrono>

#include "common/log.hpp"
#include "common/metrics.hpp"

namespace vdce::rt {

namespace {

void bump(const char* name) {
  common::MetricsRegistry::global().counter(name).add(1);
}

double steady_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* to_string(SiteLiveness state) {
  switch (state) {
    case SiteLiveness::kAlive: return "alive";
    case SiteLiveness::kSuspect: return "suspect";
    case SiteLiveness::kDead: return "dead";
  }
  return "unknown";
}

LivenessDirectory::LivenessDirectory(LivenessConfig config)
    : config_(config), clock_(steady_now_s) {}

void LivenessDirectory::set_clock(std::function<double()> clock) {
  const std::lock_guard lock(mu_);
  clock_ = std::move(clock);
}

void LivenessDirectory::track(SiteId site, std::uint32_t incarnation) {
  const std::lock_guard lock(mu_);
  Entry& e = entries_[site];
  e.state = SiteLiveness::kAlive;
  e.incarnation = incarnation;
  e.votes.clear();
  e.suspect_since_s = 0.0;
  e.last_refutation_s = 0.0;
  e.reason = "tracked";
}

void LivenessDirectory::direct_alive(SiteId site, std::uint32_t incarnation) {
  const std::lock_guard lock(mu_);
  const auto it = entries_.find(site);
  if (it == entries_.end()) return;
  Entry& e = it->second;
  if (incarnation < e.incarnation) return;  // fenced: stale process
  if (incarnation == e.incarnation && e.state == SiteLiveness::kDead) {
    return;  // the verdict on this incarnation is final
  }
  const bool recovered = e.state == SiteLiveness::kSuspect;
  e.state = SiteLiveness::kAlive;
  e.incarnation = incarnation;
  e.votes.clear();
  e.suspect_since_s = 0.0;
  e.last_refutation_s = 0.0;
  e.reason = "heartbeat";
  if (recovered) {
    ++stats_.false_alarm_recoveries;
    bump("liveness.false_alarm_recoveries");
    common::log_info("liveness", "site ", site.value(),
                     " recovered from suspicion (heartbeat)");
  }
}

SiteLiveness LivenessDirectory::suspect(SiteId site, std::uint32_t incarnation,
                                        SiteId witness,
                                        const std::string& why) {
  const std::lock_guard lock(mu_);
  const auto it = entries_.find(site);
  if (it == entries_.end()) return SiteLiveness::kAlive;
  Entry& e = it->second;
  if (incarnation != e.incarnation) return e.state;  // fenced
  if (e.state == SiteLiveness::kDead) return e.state;
  const bool fresh_vote = e.votes.insert(witness).second;
  if (e.state == SiteLiveness::kAlive) {
    e.state = SiteLiveness::kSuspect;
    e.suspect_since_s = clock_();
    e.last_refutation_s = 0.0;
    e.reason = why;
    ++stats_.suspects;
    bump("liveness.suspects");
    common::log_warn("liveness", "site ", site.value(), " suspected by ",
                     witness.value(), " (", why, ")");
  }
  if (fresh_vote &&
      e.votes.size() >= static_cast<std::size_t>(config_.quorum)) {
    die_locked(site, e, why + " [quorum " + std::to_string(e.votes.size()) +
                            "/" + std::to_string(config_.quorum) + "]",
               &LivenessStats::deaths_quorum, "liveness.deaths_quorum");
  }
  return e.state;
}

SiteLiveness LivenessDirectory::refute(SiteId site, std::uint32_t incarnation,
                                       SiteId witness) {
  const std::lock_guard lock(mu_);
  const auto it = entries_.find(site);
  if (it == entries_.end()) return SiteLiveness::kAlive;
  Entry& e = it->second;
  if (incarnation > e.incarnation) {
    // The site restarted and a peer already heard the new incarnation:
    // everything known about the old one is void.
    e.state = SiteLiveness::kAlive;
    e.incarnation = incarnation;
    e.votes.clear();
    e.suspect_since_s = 0.0;
    e.last_refutation_s = 0.0;
    e.reason = "refuted by higher incarnation";
    ++stats_.refutations;
    bump("liveness.refutations");
    return e.state;
  }
  if (incarnation < e.incarnation) return e.state;  // fenced
  if (e.state == SiteLiveness::kDead) return e.state;
  const bool withdrew = e.votes.erase(witness) > 0;
  if (e.state == SiteLiveness::kSuspect) {
    e.last_refutation_s = clock_();
    ++stats_.refutations;
    bump("liveness.refutations");
  } else if (withdrew) {
    ++stats_.refutations;
    bump("liveness.refutations");
  }
  return e.state;
}

SiteLiveness LivenessDirectory::conclusive_dead(SiteId site,
                                                std::uint32_t incarnation,
                                                const std::string& why) {
  const std::lock_guard lock(mu_);
  const auto it = entries_.find(site);
  if (it == entries_.end()) return SiteLiveness::kAlive;
  Entry& e = it->second;
  if (incarnation != e.incarnation) return e.state;  // fenced
  if (e.state == SiteLiveness::kDead) return e.state;
  die_locked(site, e, why, &LivenessStats::deaths_conclusive,
             "liveness.deaths_conclusive");
  return e.state;
}

std::vector<SiteId> LivenessDirectory::poll() {
  const std::lock_guard lock(mu_);
  std::vector<SiteId> died;
  const double now = clock_();
  for (auto& [site, e] : entries_) {
    if (e.state != SiteLiveness::kSuspect) continue;
    const double anchor = std::max(e.suspect_since_s, e.last_refutation_s);
    if (now - anchor > config_.suspicion_timeout_s) {
      die_locked(site, e, "suspicion unrefuted for " +
                              std::to_string(now - anchor) + "s",
                 &LivenessStats::deaths_timeout, "liveness.deaths_timeout");
      died.push_back(site);
    }
  }
  return died;
}

void LivenessDirectory::die_locked(SiteId site, Entry& e,
                                   const std::string& why,
                                   std::uint64_t LivenessStats::*counter,
                                   const char* metric) {
  e.state = SiteLiveness::kDead;
  e.reason = why;
  ++(stats_.*counter);
  bump(metric);
  common::log_warn("liveness", "site ", site.value(), " incarnation ",
                   e.incarnation, " confirmed dead: ", why);
}

SiteLiveness LivenessDirectory::state(SiteId site) const {
  const std::lock_guard lock(mu_);
  const auto it = entries_.find(site);
  return it == entries_.end() ? SiteLiveness::kAlive : it->second.state;
}

SiteLivenessStatus LivenessDirectory::status(SiteId site) const {
  const std::lock_guard lock(mu_);
  SiteLivenessStatus s;
  const auto it = entries_.find(site);
  if (it == entries_.end()) return s;
  const Entry& e = it->second;
  s.state = e.state;
  s.incarnation = e.incarnation;
  s.witnesses = e.votes.size();
  s.suspect_since_s = e.suspect_since_s;
  s.reason = e.reason;
  return s;
}

LivenessStats LivenessDirectory::stats() const {
  const std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace vdce::rt
