#include "runtime/watchdog.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <optional>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "runtime/wire.hpp"

namespace vdce::rt {

using common::TransportError;

double Watchdog::now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Watchdog::Watchdog(WatchdogConfig config) : config_(std::move(config)) {
  common::expects(!config_.daemon_path.empty(),
                  "watchdog needs the site daemon binary path");
  acceptor_ = std::thread([this] { accept_loop(); });
  monitor_ = std::thread([this] { monitor_loop(); });
}

Watchdog::~Watchdog() { stop(); }

void Watchdog::set_on_site_down(std::function<void(SiteId)> callback) {
  const std::lock_guard lock(mu_);
  on_site_down_ = std::move(callback);
}

void Watchdog::set_on_site_up(std::function<void(SiteId)> callback) {
  const std::lock_guard lock(mu_);
  on_site_up_ = std::move(callback);
}

std::uint16_t Watchdog::heartbeat_port() const { return listener_.port(); }

void Watchdog::launch_locked(Daemon& d) {
  ++d.incarnation;
  if (d.incarnation > 1) {
    ++d.restarts;
    common::MetricsRegistry::global().counter("watchdog.restarts").add(1);
  }
  d.rpc_port = 0;
  d.up = false;
  d.last_beat_s = now_s();  // grace: the timeout clock starts at launch

  const std::string site_arg = std::to_string(d.site.value());
  const std::string seed_arg = std::to_string(config_.seed);
  const std::string port_arg = std::to_string(listener_.port());
  const std::string period_arg = std::to_string(config_.heartbeat_period_s);
  const std::string incarnation_arg = std::to_string(d.incarnation);
  const char* argv[] = {config_.daemon_path.c_str(),
                        "--site", site_arg.c_str(),
                        "--seed", seed_arg.c_str(),
                        "--heartbeat-port", port_arg.c_str(),
                        "--heartbeat-period", period_arg.c_str(),
                        "--incarnation", incarnation_arg.c_str(),
                        nullptr};
  const pid_t pid = ::fork();
  if (pid < 0) {
    throw TransportError(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Child: only async-signal-safe calls between fork and exec.
    ::execv(config_.daemon_path.c_str(), const_cast<char* const*>(argv));
    ::_exit(127);
  }
  d.pid = pid;
}

void Watchdog::spawn(SiteId site) {
  const std::lock_guard lock(mu_);
  common::expects(!stopping_, "watchdog is stopping");
  auto [it, inserted] = daemons_.emplace(site, Daemon{});
  common::expects(inserted, "site already supervised");
  it->second.site = site;
  launch_locked(it->second);
}

void Watchdog::accept_loop() {
  for (;;) {
    std::shared_ptr<dm::TcpChannel> channel;
    try {
      channel = listener_.accept();
    } catch (const TransportError&) {
      return;  // listener closed: shutting down
    }
    std::lock_guard lock(mu_);
    if (stopping_) return;
    beat_channels_.push_back(channel);
    readers_.emplace_back([this, channel] { beat_loop(channel); });
  }
}

void Watchdog::beat_loop(std::shared_ptr<dm::TcpChannel> channel) {
  // The (site, incarnation) this connection authenticated as via its
  // first accepted beat; EOF of an authenticated current-incarnation
  // connection is a death signal in its own right.
  SiteId bound_site = SiteId::invalid();
  std::uint32_t bound_incarnation = 0;
  for (;;) {
    std::optional<std::vector<std::byte>> frame;
    try {
      frame = channel->receive();
    } catch (const TransportError&) {
      frame.reset();  // mid-frame EOF: same as an orderly close here
    }
    if (!frame) break;
    wire::Heartbeat beat;
    try {
      beat = wire::decode_heartbeat(*frame);
    } catch (const common::ParseError& e) {
      common::log_warn("watchdog", "dropping bad heartbeat frame: ",
                       e.what());
      continue;
    }
    bool fire_up = false;
    std::function<void(SiteId)> up_cb;
    {
      std::lock_guard lock(mu_);
      const auto it = daemons_.find(beat.site);
      if (it == daemons_.end()) continue;
      Daemon& d = it->second;
      if (beat.incarnation != d.incarnation) continue;  // stale process
      bound_site = beat.site;
      bound_incarnation = beat.incarnation;
      d.last_beat_s = now_s();
      d.rpc_port = beat.rpc_port;
      ++d.heartbeats;
      if (!d.up) {
        d.up = true;
        fire_up = true;
        up_cb = on_site_up_;
      }
    }
    cv_.notify_all();
    if (fire_up && up_cb) up_cb(bound_site);
  }
  // Connection gone.  If it belonged to the current incarnation and the
  // daemon was considered up, that is a crash notice faster than the
  // heartbeat deadline.
  if (bound_incarnation == 0) return;
  bool fire_down = false;
  std::function<void(SiteId)> down_cb;
  {
    std::lock_guard lock(mu_);
    if (stopping_) return;
    const auto it = daemons_.find(bound_site);
    if (it == daemons_.end()) return;
    Daemon& d = it->second;
    if (d.incarnation != bound_incarnation || !d.up) return;
    declare_down(d, "heartbeat connection lost");
    fire_down = true;
    down_cb = on_site_down_;
  }
  if (fire_down && down_cb) down_cb(bound_site);
}

void Watchdog::declare_down(Daemon& d, const std::string& why) {
  // Lock held by the caller.  The daemon may still be running (hung);
  // make the death real before restarting so two incarnations never
  // serve the same site.
  common::log_warn("watchdog", "site ", d.site.value(), " down (", why,
                   "), pid ", d.pid);
  common::MetricsRegistry::global().counter("watchdog.site_down").add(1);
  d.up = false;
  d.rpc_port = 0;
  if (d.pid > 0) {
    ::kill(static_cast<pid_t>(d.pid), SIGKILL);
    int status = 0;
    ::waitpid(static_cast<pid_t>(d.pid), &status, 0);
    d.pid = -1;
  }
  if (static_cast<int>(d.restarts) >= config_.max_restarts) {
    d.abandoned = true;
    return;
  }
  const double backoff =
      config_.restart_backoff_s *
      std::pow(config_.restart_backoff_multiplier,
               static_cast<double>(d.restarts));
  restart_queue_.emplace_back(now_s() + backoff, d.site);
}

void Watchdog::monitor_loop() {
  const auto poll = std::chrono::duration<double>(
      std::max(0.01, config_.heartbeat_period_s / 2.0));
  std::unique_lock lock(mu_);
  while (!stopping_) {
    cv_.wait_for(lock, poll, [this] { return stopping_; });
    if (stopping_) return;
    const double now = now_s();
    std::vector<SiteId> downs;
    for (auto& [site, d] : daemons_) {
      if (d.pid <= 0) continue;
      // A reaped child is the fastest SIGKILL detector...
      int status = 0;
      const pid_t reaped =
          ::waitpid(static_cast<pid_t>(d.pid), &status, WNOHANG);
      if (reaped == static_cast<pid_t>(d.pid)) {
        d.pid = -1;
        declare_down(d, "process exited");
        downs.push_back(site);
        continue;
      }
      // ...and the heartbeat deadline catches hangs and partitions.
      if (d.up && now - d.last_beat_s > config_.heartbeat_timeout_s) {
        declare_down(d, "missed heartbeat deadline");
        downs.push_back(site);
      } else if (!d.up && !d.abandoned &&
                 now - d.last_beat_s > config_.heartbeat_timeout_s +
                                           config_.restart_backoff_s) {
        // Launched but never beat (crashed before the first beat).
        declare_down(d, "no heartbeat after launch");
        downs.push_back(site);
      }
    }
    // Due restarts.
    std::vector<std::pair<double, SiteId>> later;
    for (const auto& [when, site] : restart_queue_) {
      if (when > now) {
        later.emplace_back(when, site);
        continue;
      }
      const auto it = daemons_.find(site);
      if (it == daemons_.end() || it->second.abandoned) continue;
      launch_locked(it->second);
    }
    restart_queue_ = std::move(later);

    if (!downs.empty()) {
      auto cb = on_site_down_;
      lock.unlock();
      if (cb) {
        for (const SiteId site : downs) cb(site);
      }
      lock.lock();
    }
  }
}

std::uint16_t Watchdog::rpc_port(SiteId site, double timeout_s) {
  std::unique_lock lock(mu_);
  const bool ok = cv_.wait_for(
      lock, std::chrono::duration<double>(timeout_s), [&] {
        const auto it = daemons_.find(site);
        return stopping_ ||
               (it != daemons_.end() && it->second.up &&
                it->second.rpc_port != 0) ||
               (it != daemons_.end() && it->second.abandoned);
      });
  const auto it = daemons_.find(site);
  if (!ok || it == daemons_.end() || !it->second.up ||
      it->second.rpc_port == 0) {
    throw TransportError("no live daemon for site " +
                         std::to_string(site.value()) + " within " +
                         std::to_string(timeout_s) + "s");
  }
  return it->second.rpc_port;
}

DaemonStatus Watchdog::status(SiteId site) const {
  const std::lock_guard lock(mu_);
  const auto it = daemons_.find(site);
  common::expects(it != daemons_.end(), "site not supervised");
  const Daemon& d = it->second;
  DaemonStatus s;
  s.site = d.site;
  s.pid = d.pid;
  s.rpc_port = d.rpc_port;
  s.incarnation = d.incarnation;
  s.heartbeats = d.heartbeats;
  s.up = d.up;
  s.restarts = d.restarts;
  s.abandoned = d.abandoned;
  return s;
}

std::size_t Watchdog::total_restarts() const {
  const std::lock_guard lock(mu_);
  std::size_t total = 0;
  for (const auto& [site, d] : daemons_) total += d.restarts;
  return total;
}

void Watchdog::kill_daemon(SiteId site, int sig) {
  std::int64_t pid = -1;
  {
    const std::lock_guard lock(mu_);
    const auto it = daemons_.find(site);
    common::expects(it != daemons_.end(), "site not supervised");
    pid = it->second.pid;
  }
  if (pid > 0) ::kill(static_cast<pid_t>(pid), sig);
}

void Watchdog::stop() {
  std::vector<std::shared_ptr<dm::TcpChannel>> channels;
  std::vector<std::int64_t> pids;
  {
    const std::lock_guard lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    restart_queue_.clear();
    channels = beat_channels_;
    for (auto& [site, d] : daemons_) {
      if (d.pid > 0) pids.push_back(d.pid);
    }
  }
  cv_.notify_all();
  listener_.close();  // unblocks accept_loop
  for (const std::int64_t pid : pids) {
    ::kill(static_cast<pid_t>(pid), SIGTERM);
  }
  // Brief grace, then make it final.
  const double deadline = now_s() + 1.0;
  for (const std::int64_t pid : pids) {
    int status = 0;
    for (;;) {
      const pid_t r = ::waitpid(static_cast<pid_t>(pid), &status, WNOHANG);
      if (r != 0) break;
      if (now_s() > deadline) {
        ::kill(static_cast<pid_t>(pid), SIGKILL);
        ::waitpid(static_cast<pid_t>(pid), &status, 0);
        break;
      }
      ::usleep(5000);
    }
  }
  for (auto& channel : channels) channel->close();
  if (acceptor_.joinable()) acceptor_.join();
  if (monitor_.joinable()) monitor_.join();
  for (std::thread& t : readers_) {
    if (t.joinable()) t.join();
  }
}

}  // namespace vdce::rt
