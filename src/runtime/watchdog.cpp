#include "runtime/watchdog.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <optional>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "runtime/wire.hpp"

namespace vdce::rt {

using common::TransportError;

double Watchdog::now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double Watchdog::restart_backoff(const WatchdogConfig& config, SiteId site,
                                 std::size_t restart_index) {
  const double base =
      config.restart_backoff_s *
      std::pow(config.restart_backoff_multiplier,
               static_cast<double>(restart_index));
  if (config.restart_backoff_jitter <= 0.0) return base;
  // One deterministic draw per (seed, site, restart): decorrelates the
  // restart storms of a multi-site outage without losing replayability.
  common::Rng rng(config.seed ^
                  (0x9E3779B97F4A7C15ull * (site.value() + 1ull)) ^
                  (0xBF58476D1CE4E5B9ull * (restart_index + 1ull)));
  return base * (1.0 + config.restart_backoff_jitter * rng.uniform());
}

Watchdog::Watchdog(WatchdogConfig config)
    : config_(std::move(config)), liveness_(config_.liveness) {
  common::expects(!config_.daemon_path.empty(),
                  "watchdog needs the site daemon binary path");
  acceptor_ = std::thread([this] { accept_loop(); });
  monitor_ = std::thread([this] { monitor_loop(); });
  if (config_.gossip) prober_ = std::thread([this] { prober_loop(); });
}

Watchdog::~Watchdog() { stop(); }

void Watchdog::set_on_site_down(std::function<void(SiteId)> callback) {
  const std::lock_guard lock(mu_);
  on_site_down_ = std::move(callback);
}

void Watchdog::set_on_site_up(std::function<void(SiteId)> callback) {
  const std::lock_guard lock(mu_);
  on_site_up_ = std::move(callback);
}

std::uint16_t Watchdog::heartbeat_port() const { return listener_.port(); }

void Watchdog::launch_locked(Daemon& d) {
  ++d.incarnation;
  if (d.incarnation > 1) {
    ++d.restarts;
    common::MetricsRegistry::global().counter("watchdog.restarts").add(1);
  }
  d.rpc_port = 0;
  d.gossip_port = 0;
  d.up = false;
  d.last_beat_s = now_s();  // grace: the timeout clock starts at launch
  liveness_.track(d.site, d.incarnation);

  const std::string site_arg = std::to_string(d.site.value());
  const std::string seed_arg = std::to_string(config_.seed);
  const std::string port_arg = std::to_string(listener_.port());
  const std::string period_arg = std::to_string(config_.heartbeat_period_s);
  const std::string incarnation_arg = std::to_string(d.incarnation);
  const std::string gossip_arg = config_.gossip ? "1" : "0";
  const std::string gossip_period_arg =
      std::to_string(config_.gossip_period_s);
  const std::string coordinator_arg =
      std::to_string(config_.coordinator_site.value());
  std::vector<const char*> argv = {config_.daemon_path.c_str(),
                                   "--site", site_arg.c_str(),
                                   "--seed", seed_arg.c_str(),
                                   "--heartbeat-port", port_arg.c_str(),
                                   "--heartbeat-period", period_arg.c_str(),
                                   "--incarnation", incarnation_arg.c_str(),
                                   "--gossip", gossip_arg.c_str(),
                                   "--gossip-period",
                                   gossip_period_arg.c_str(),
                                   "--coordinator-site",
                                   coordinator_arg.c_str()};
  if (!config_.partition_spec.empty()) {
    argv.push_back("--partition-spec");
    argv.push_back(config_.partition_spec.c_str());
  }
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    throw TransportError(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Child: only async-signal-safe calls between fork and exec.
    ::execv(config_.daemon_path.c_str(),
            const_cast<char* const*>(argv.data()));
    ::_exit(127);
  }
  d.pid = pid;
}

void Watchdog::spawn(SiteId site) {
  const std::lock_guard lock(mu_);
  common::expects(!stopping_, "watchdog is stopping");
  auto [it, inserted] = daemons_.emplace(site, Daemon{});
  common::expects(inserted, "site already supervised");
  it->second.site = site;
  launch_locked(it->second);
}

void Watchdog::accept_loop() {
  for (;;) {
    std::shared_ptr<dm::TcpChannel> channel;
    try {
      channel = listener_.accept();
    } catch (const TransportError&) {
      return;  // listener closed: shutting down
    }
    std::lock_guard lock(mu_);
    if (stopping_) return;
    beat_channels_.push_back(channel);
    readers_.emplace_back([this, channel] { beat_loop(channel); });
  }
}

void Watchdog::apply_digest(const wire::PeerDigest& digest) {
  // Fencing: a digest from a stale incarnation of the origin must not
  // vote or refute on behalf of its successor.
  {
    const std::lock_guard lock(mu_);
    const auto it = daemons_.find(digest.origin_site);
    if (it == daemons_.end() ||
        it->second.incarnation != digest.origin_incarnation) {
      return;
    }
  }
  for (const wire::PeerHealth& peer : digest.peers) {
    if (peer.site == digest.origin_site) continue;
    if (peer.reachable &&
        peer.age_s <= liveness_.config().freshness_s) {
      (void)liveness_.refute(peer.site, peer.incarnation,
                             digest.origin_site);
    } else if (!peer.reachable) {
      (void)liveness_.suspect(peer.site, peer.incarnation,
                              digest.origin_site,
                              "peer digest: unreachable from site " +
                                  std::to_string(digest.origin_site.value()));
    }
  }
}

void Watchdog::beat_loop(std::shared_ptr<dm::TcpChannel> channel) {
  // The (site, incarnation) this connection authenticated as via its
  // first accepted beat; EOF of an authenticated current-incarnation
  // connection is a death signal in its own right.
  SiteId bound_site = SiteId::invalid();
  std::uint32_t bound_incarnation = 0;
  for (;;) {
    std::optional<std::vector<std::byte>> frame;
    try {
      frame = channel->receive();
    } catch (const TransportError&) {
      frame.reset();  // mid-frame EOF: same as an orderly close here
    }
    if (!frame) break;
    wire::MsgType type;
    try {
      type = wire::peek_type(*frame);
    } catch (const common::ParseError& e) {
      common::log_warn("watchdog", "dropping bad heartbeat frame: ",
                       e.what());
      continue;
    }
    // The heartbeat channel carries three message kinds: the beat
    // itself, piggybacked peer-health digests, and refutations.
    if (type == wire::MsgType::kPeerDigest) {
      try {
        apply_digest(wire::decode_peer_digest(*frame));
      } catch (const common::ParseError& e) {
        common::log_warn("watchdog", "dropping bad digest frame: ", e.what());
      }
      continue;
    }
    if (type == wire::MsgType::kRefute) {
      try {
        const wire::Refute refute = wire::decode_refute(*frame);
        (void)liveness_.refute(refute.site, refute.incarnation,
                               refute.witness_site);
      } catch (const common::ParseError& e) {
        common::log_warn("watchdog", "dropping bad refute frame: ", e.what());
      }
      continue;
    }
    if (type != wire::MsgType::kHeartbeat) {
      common::log_warn("watchdog", "unexpected frame on heartbeat channel: ",
                       wire::to_string(type));
      continue;
    }
    wire::Heartbeat beat;
    try {
      beat = wire::decode_heartbeat(*frame);
    } catch (const common::ParseError& e) {
      common::log_warn("watchdog", "dropping bad heartbeat frame: ",
                       e.what());
      continue;
    }
    bool fire_up = false;
    std::function<void(SiteId)> up_cb;
    {
      std::lock_guard lock(mu_);
      const auto it = daemons_.find(beat.site);
      if (it == daemons_.end()) continue;
      Daemon& d = it->second;
      if (beat.incarnation != d.incarnation) continue;  // stale process
      bound_site = beat.site;
      bound_incarnation = beat.incarnation;
      d.last_beat_s = now_s();
      d.rpc_port = beat.rpc_port;
      d.gossip_port = beat.gossip_port;
      ++d.heartbeats;
      if (!d.up) {
        d.up = true;
        fire_up = true;
        up_cb = on_site_up_;
      }
    }
    liveness_.direct_alive(beat.site, beat.incarnation);
    cv_.notify_all();
    if (fire_up && up_cb) up_cb(bound_site);
  }
  // Connection gone.  If it belonged to the current incarnation and the
  // daemon was considered up, that is a crash notice faster than the
  // heartbeat deadline -- first-hand when trust_process_exit, otherwise
  // just the watchdog's suspicion vote (quorum decides).
  if (bound_incarnation == 0) return;
  bool fire_down = false;
  std::function<void(SiteId)> down_cb;
  {
    std::lock_guard lock(mu_);
    if (stopping_) return;
    const auto it = daemons_.find(bound_site);
    if (it == daemons_.end()) return;
    Daemon& d = it->second;
    if (d.incarnation != bound_incarnation || !d.up) return;
    if (!config_.trust_process_exit) {
      (void)liveness_.suspect(bound_site, bound_incarnation,
                              LivenessDirectory::watchdog_witness(),
                              "heartbeat connection lost");
      return;
    }
    declare_down(d, "heartbeat connection lost");
    fire_down = true;
    down_cb = on_site_down_;
  }
  if (fire_down && down_cb) down_cb(bound_site);
}

void Watchdog::declare_down(Daemon& d, const std::string& why) {
  // Lock held by the caller.  The daemon may still be running (hung);
  // make the death real before restarting so two incarnations never
  // serve the same site.
  common::log_warn("watchdog", "site ", d.site.value(), " down (", why,
                   "), pid ", d.pid);
  common::MetricsRegistry::global().counter("watchdog.site_down").add(1);
  (void)liveness_.conclusive_dead(d.site, d.incarnation, why);
  d.up = false;
  d.rpc_port = 0;
  d.gossip_port = 0;
  if (d.pid > 0) {
    ::kill(static_cast<pid_t>(d.pid), SIGKILL);
    int status = 0;
    ::waitpid(static_cast<pid_t>(d.pid), &status, 0);
    d.pid = -1;
  }
  if (static_cast<int>(d.restarts) >= config_.max_restarts) {
    d.abandoned = true;
    return;
  }
  const double backoff = restart_backoff(config_, d.site, d.restarts);
  restart_queue_.emplace_back(now_s() + backoff, d.site);
}

void Watchdog::monitor_loop() {
  const auto poll = std::chrono::duration<double>(
      std::max(0.01, config_.heartbeat_period_s / 2.0));
  std::unique_lock lock(mu_);
  while (!stopping_) {
    cv_.wait_for(lock, poll, [this] { return stopping_; });
    if (stopping_) return;
    const double now = now_s();
    std::vector<SiteId> downs;
    for (auto& [site, d] : daemons_) {
      if (d.pid > 0) {
        // A reaped child is the fastest SIGKILL detector...
        int status = 0;
        const pid_t reaped =
            ::waitpid(static_cast<pid_t>(d.pid), &status, WNOHANG);
        if (reaped == static_cast<pid_t>(d.pid)) {
          d.pid = -1;
          if (config_.trust_process_exit) {
            declare_down(d, "process exited");
            downs.push_back(site);
            continue;
          }
          // Quorum mode: even first-hand process exit is only this
          // watchdog's vote (tests force the full gossip/quorum path).
          (void)liveness_.suspect(site, d.incarnation,
                                  LivenessDirectory::watchdog_witness(),
                                  "process exited");
        }
      }
      // ...and the heartbeat deadline catches hangs and partitions --
      // but it is a witness vote now, not a verdict.
      if (d.up && now - d.last_beat_s > config_.heartbeat_timeout_s) {
        (void)liveness_.suspect(site, d.incarnation,
                                LivenessDirectory::watchdog_witness(),
                                "missed heartbeat deadline");
      } else if (!d.up && !d.abandoned && d.pid > 0 &&
                 now - d.last_beat_s > config_.heartbeat_timeout_s +
                                           config_.restart_backoff_s) {
        // Launched but never beat (crashed before the first beat); no
        // peer ever heard this incarnation, so no quorum can form --
        // first-hand judgment stays.
        declare_down(d, "no heartbeat after launch");
        downs.push_back(site);
      }
    }
    // The directory's verdict: suspicions that ran out of time...
    (void)liveness_.poll();
    // ...and quorum/timeout deaths become the site-down declaration.
    for (auto& [site, d] : daemons_) {
      if (!d.up && d.pid <= 0) continue;  // already declared (or idle)
      if (liveness_.state(site) != SiteLiveness::kDead) continue;
      declare_down(d, "liveness verdict: " + liveness_.status(site).reason);
      downs.push_back(site);
    }
    // Due restarts.
    std::vector<std::pair<double, SiteId>> later;
    for (const auto& [when, site] : restart_queue_) {
      if (when > now) {
        later.emplace_back(when, site);
        continue;
      }
      const auto it = daemons_.find(site);
      if (it == daemons_.end() || it->second.abandoned) continue;
      launch_locked(it->second);
    }
    restart_queue_ = std::move(later);

    if (!downs.empty()) {
      auto cb = on_site_down_;
      lock.unlock();
      if (cb) {
        for (const SiteId site : downs) cb(site);
      }
      lock.lock();
    }
  }
}

void Watchdog::prober_loop() {
  struct Snap {
    SiteId site;
    std::uint16_t gossip_port = 0;
    std::uint32_t incarnation = 0;
    bool up = false;
  };
  const auto poll = std::chrono::duration<double>(
      std::max(0.01, config_.gossip_period_s));
  std::uint64_t seq = 0;
  std::vector<std::byte> last_roster;
  std::unique_lock lock(mu_);
  while (!stopping_) {
    cv_.wait_for(lock, poll, [this] { return stopping_; });
    if (stopping_) return;
    std::vector<Snap> snaps;
    snaps.reserve(daemons_.size());
    for (const auto& [site, d] : daemons_) {
      snaps.push_back({site, d.gossip_port, d.incarnation, d.up});
    }
    lock.unlock();

    // Membership push: every up daemon learns its peers' gossip ports
    // and which sites stand suspected (so a peer that still hears a
    // suspect refutes immediately).
    wire::PeerRoster roster;
    for (const Snap& s : snaps) {
      if (!s.up || s.gossip_port == 0) continue;
      wire::PeerEndpoint e;
      e.site = s.site;
      e.gossip_port = s.gossip_port;
      e.incarnation = s.incarnation;
      e.suspected = liveness_.state(s.site) == SiteLiveness::kSuspect;
      roster.peers.push_back(e);
    }
    const std::vector<std::byte> encoded = wire::encode(roster);
    if (encoded != last_roster && !roster.peers.empty()) {
      bool delivered = true;
      for (const wire::PeerEndpoint& e : roster.peers) {
        try {
          auto channel = dm::tcp_connect(e.gossip_port);
          channel->send(encoded);
        } catch (const TransportError&) {
          delivered = false;  // retry next round
        }
      }
      if (delivered) last_roster = encoded;
    }

    // Indirect probes: ask up to probe_fanout peers to ping each
    // suspect over their own network path (the SWIM ping-req).
    for (const Snap& suspect : snaps) {
      if (liveness_.state(suspect.site) != SiteLiveness::kSuspect ||
          suspect.gossip_port == 0) {
        continue;
      }
      int asked = 0;
      for (const Snap& helper : snaps) {
        if (helper.site == suspect.site || !helper.up ||
            helper.gossip_port == 0) {
          continue;
        }
        if (asked >= config_.probe_fanout) break;
        ++asked;
        wire::PingReq req;
        req.origin_site = config_.coordinator_site;
        req.target_site = suspect.site;
        req.target_gossip_port = suspect.gossip_port;
        req.seq = ++seq;
        try {
          auto channel = dm::tcp_connect(helper.gossip_port);
          channel->send(wire::encode(req));
          const auto reply = channel->receive_for(config_.probe_timeout_s);
          if (!reply ||
              wire::peek_type(*reply) != wire::MsgType::kPingReqReply) {
            continue;
          }
          const wire::PingReqReply verdict = wire::decode_ping_req_reply(
              *reply);
          if (verdict.target_site != suspect.site ||
              verdict.seq != req.seq) {
            continue;
          }
          if (verdict.reachable) {
            (void)liveness_.refute(suspect.site, verdict.target_incarnation,
                                   helper.site);
          } else {
            (void)liveness_.suspect(
                suspect.site, suspect.incarnation, helper.site,
                "indirect probe failed via site " +
                    std::to_string(helper.site.value()));
          }
        } catch (const common::VdceError&) {
          // Helper unreachable or garbled: it simply casts no vote.
        }
      }
    }
    lock.lock();
  }
}

std::uint16_t Watchdog::rpc_port(SiteId site, double timeout_s) {
  return rpc_endpoint(site, timeout_s).port;
}

RpcEndpoint Watchdog::rpc_endpoint(SiteId site, double timeout_s) {
  std::unique_lock lock(mu_);
  const bool ok = cv_.wait_for(
      lock, std::chrono::duration<double>(timeout_s), [&] {
        const auto it = daemons_.find(site);
        return stopping_ ||
               (it != daemons_.end() && it->second.up &&
                it->second.rpc_port != 0) ||
               (it != daemons_.end() && it->second.abandoned);
      });
  const auto it = daemons_.find(site);
  if (!ok || it == daemons_.end() || !it->second.up ||
      it->second.rpc_port == 0) {
    throw TransportError("no live daemon for site " +
                         std::to_string(site.value()) + " within " +
                         std::to_string(timeout_s) + "s");
  }
  return RpcEndpoint{it->second.rpc_port, it->second.incarnation};
}

std::uint32_t Watchdog::incarnation(SiteId site) const {
  const std::lock_guard lock(mu_);
  const auto it = daemons_.find(site);
  return it == daemons_.end() ? 0 : it->second.incarnation;
}

DaemonStatus Watchdog::status(SiteId site) const {
  const std::lock_guard lock(mu_);
  const auto it = daemons_.find(site);
  common::expects(it != daemons_.end(), "site not supervised");
  const Daemon& d = it->second;
  DaemonStatus s;
  s.site = d.site;
  s.pid = d.pid;
  s.rpc_port = d.rpc_port;
  s.gossip_port = d.gossip_port;
  s.incarnation = d.incarnation;
  s.heartbeats = d.heartbeats;
  s.up = d.up;
  s.restarts = d.restarts;
  s.abandoned = d.abandoned;
  return s;
}

std::size_t Watchdog::total_restarts() const {
  const std::lock_guard lock(mu_);
  std::size_t total = 0;
  for (const auto& [site, d] : daemons_) total += d.restarts;
  return total;
}

void Watchdog::kill_daemon(SiteId site, int sig) {
  std::int64_t pid = -1;
  {
    const std::lock_guard lock(mu_);
    const auto it = daemons_.find(site);
    common::expects(it != daemons_.end(), "site not supervised");
    pid = it->second.pid;
  }
  if (pid > 0) ::kill(static_cast<pid_t>(pid), sig);
}

void Watchdog::stop() {
  std::vector<std::shared_ptr<dm::TcpChannel>> channels;
  std::vector<std::int64_t> pids;
  {
    const std::lock_guard lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    restart_queue_.clear();
    channels = beat_channels_;
    for (auto& [site, d] : daemons_) {
      if (d.pid > 0) pids.push_back(d.pid);
    }
  }
  cv_.notify_all();
  listener_.close();  // unblocks accept_loop
  for (const std::int64_t pid : pids) {
    ::kill(static_cast<pid_t>(pid), SIGTERM);
  }
  // Brief grace, then make it final.
  const double deadline = now_s() + 1.0;
  for (const std::int64_t pid : pids) {
    int status = 0;
    for (;;) {
      const pid_t r = ::waitpid(static_cast<pid_t>(pid), &status, WNOHANG);
      if (r != 0) break;
      if (now_s() > deadline) {
        ::kill(static_cast<pid_t>(pid), SIGKILL);
        ::waitpid(static_cast<pid_t>(pid), &status, 0);
        break;
      }
      ::usleep(5000);
    }
  }
  for (auto& channel : channels) channel->close();
  if (acceptor_.joinable()) acceptor_.join();
  if (monitor_.joinable()) monitor_.join();
  if (prober_.joinable()) prober_.join();
  for (std::thread& t : readers_) {
    if (t.joinable()) t.join();
  }
}

}  // namespace vdce::rt
