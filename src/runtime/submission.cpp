#include "runtime/submission.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace vdce::rt {

namespace {

[[nodiscard]] bool is_terminal(SubmissionState state) {
  return state == SubmissionState::kCompleted ||
         state == SubmissionState::kRejected ||
         state == SubmissionState::kFailed;
}

void bump(const char* name) {
  common::MetricsRegistry::global().counter(name).add(1);
}

}  // namespace

const char* to_string(SubmissionState state) {
  switch (state) {
    case SubmissionState::kQueued:
      return "queued";
    case SubmissionState::kRunning:
      return "running";
    case SubmissionState::kCompleted:
      return "completed";
    case SubmissionState::kRejected:
      return "rejected";
    case SubmissionState::kFailed:
      return "failed";
  }
  return "unknown";
}

/// Everything the service tracks about one submission.  Owned by a
/// shared_ptr so waiters and workers may hold it across unlocks; the
/// graph/allocation members keep stable addresses for the run's
/// FaultTolerance closures.
struct AppSubmissionService::AppRecord {
  SubmissionRequest request;
  common::AppId app;
  SubmissionState state = SubmissionState::kQueued;
  sched::QosAdmission admission;
  sched::AllocationTable allocation;
  double queue_eta_s = 0.0;
  std::size_t grant_index = 0;
  std::uint64_t seq = 0;      // global submission order (FIFO tie-break)
  bool counted_queued = false;
  bool charged = false;
  sched::HostOccupancy charge;  // exactly what charge_locked added
  RunResult result;
  std::string error;
};

AppSubmissionService::AppSubmissionService(
    SiteId local_site, sched::SiteDirectory& directory,
    const tasklib::TaskRegistry& registry, AppSubmissionConfig config)
    : local_site_(local_site),
      directory_(&directory),
      registry_(&registry),
      config_(config),
      paused_(config.start_paused) {
  config_.slots = std::max<std::size_t>(config_.slots, 1);
  workers_.reserve(config_.slots);
  for (std::size_t i = 0; i < config_.slots; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

AppSubmissionService::~AppSubmissionService() {
  {
    std::lock_guard lk(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  workers_.clear();  // joins; workers drain the ready queue first
}

void AppSubmissionService::add_forecaster(
    predict::LoadForecaster* forecaster) {
  std::lock_guard lk(mu_);
  forecasters_.push_back(forecaster);
}

common::AppId AppSubmissionService::submit(SubmissionRequest request) {
  request.graph.validate();
  auto rec = std::make_shared<AppRecord>();
  rec->request = std::move(request);

  std::lock_guard lk(mu_);
  if (shutdown_) {
    throw common::StateError("submission service is shut down");
  }
  rec->app = common::AppId{next_ticket_++};
  rec->seq = next_seq_++;
  ++stats_.submitted;
  bump("submission.submitted");
  records_.emplace(rec->app, rec);

  common::ScopedSpan span("submit", "submission");
  if (span.active()) {
    span.rename("submit:" + rec->request.graph.name());
    span.arg("app", rec->app.value());
    span.arg("user", rec->request.user);
  }

  // Figure 4: a per-submission Site Scheduler places the AFG against
  // the directory's current view (serialised under mu_, so admission
  // bookkeeping is deterministic in submission order).
  try {
    sched::SiteScheduler scheduler(local_site_, *directory_,
                                   config_.scheduler);
    rec->allocation = scheduler.schedule(rec->request.graph);
  } catch (const std::exception& e) {
    rec->state = SubmissionState::kRejected;
    rec->error = std::string("scheduling failed: ") + e.what();
    ++stats_.rejected;
    bump("submission.rejected");
    if (span.active()) span.arg("outcome", "rejected");
    cv_.notify_all();
    return rec->app;
  }

  // Residual-capacity QoS admission: charge every already-admitted,
  // not-yet-finished application's predicted host occupancy.
  rec->admission = sched::check_qos(rec->request.graph, rec->allocation,
                                    *directory_, rec->request.qos,
                                    occupancy_);
  if (!rec->admission.admitted) {
    rec->state = SubmissionState::kRejected;
    rec->error = "QoS deadline unmet: slack " +
                 std::to_string(rec->admission.slack_s) + "s";
    ++stats_.rejected;
    bump("submission.rejected");
    if (span.active()) span.arg("outcome", "rejected");
    cv_.notify_all();
    return rec->app;
  }
  if (ready_.size() >= config_.max_queue) {
    rec->state = SubmissionState::kRejected;
    rec->error = "ready queue full (backpressure)";
    ++stats_.rejected;
    bump("submission.rejected");
    bump("submission.backpressure");
    if (span.active()) span.arg("outcome", "backpressure");
    cv_.notify_all();
    return rec->app;
  }

  charge_locked(*rec);
  // New fair-share users join at the current grant virtual time, not
  // at zero, so a latecomer cannot claim a historical backlog.
  if (!shares_.contains(rec->request.user)) {
    shares_[rec->request.user].pass = grant_pass_;
  }

  const bool immediate =
      !paused_ && ready_.empty() && running_ < config_.slots;
  if (immediate) {
    ++stats_.admitted;
    bump("submission.admitted");
    if (span.active()) span.arg("outcome", "admitted");
  } else {
    // Queue-with-ETA: predicted drain time of everything ahead, spread
    // over the slots.
    double pending_pred = 0.0;
    for (const common::AppId id : ready_) {
      pending_pred += records_.at(id)->admission.predicted_makespan_s;
    }
    for (const auto& [_, other] : records_) {
      if (other->state == SubmissionState::kRunning) {
        pending_pred += other->admission.predicted_makespan_s;
      }
    }
    rec->queue_eta_s = pending_pred / static_cast<double>(config_.slots);
    rec->counted_queued = true;
    ++stats_.queued;
    bump("submission.queued");
    if (span.active()) {
      span.arg("outcome", "queued");
      span.arg("eta_s", rec->queue_eta_s);
    }
  }
  ready_.push_back(rec->app);
  common::log_info("submission", "app ", rec->app.value(), " '",
                   rec->request.graph.name(), "' user ",
                   rec->request.user, ": ",
                   immediate ? "admitted" : "queued", ", slack ",
                   rec->admission.slack_s, "s");
  cv_.notify_all();
  return rec->app;
}

std::shared_ptr<AppSubmissionService::AppRecord>
AppSubmissionService::pick_next_locked() {
  // Stride scheduling: grant the queued submission whose user has the
  // lowest pass value; ties break on global submission order.  Each
  // grant advances the user's pass by 1/weight, so users receive
  // grants proportionally to their weights under contention.
  std::size_t best = 0;
  double best_pass = std::numeric_limits<double>::infinity();
  std::uint64_t best_seq = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t i = 0; i < ready_.size(); ++i) {
    const AppRecord& rec = *records_.at(ready_[i]);
    const double pass = shares_.at(rec.request.user).pass;
    if (pass < best_pass ||
        (pass == best_pass && rec.seq < best_seq)) {
      best = i;
      best_pass = pass;
      best_seq = rec.seq;
    }
  }
  auto rec = records_.at(ready_[best]);
  ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(best));

  UserShare& share = shares_.at(rec->request.user);
  grant_pass_ = share.pass;
  share.pass += 1.0 / std::max(rec->request.weight, 1e-9);

  rec->state = SubmissionState::kRunning;
  rec->grant_index = next_grant_++;
  ++running_;
  if (rec->counted_queued) {
    ++stats_.queued_then_admitted;
    bump("submission.queued_then_admitted");
  }
  common::MetricsRegistry::global()
      .gauge("submission.running")
      .set(static_cast<double>(running_));
  return rec;
}

void AppSubmissionService::charge_locked(AppRecord& record) {
  record.charge = record.allocation.host_occupancy();
  for (const auto& [host, busy] : record.charge) {
    occupancy_[host] += busy;
  }
  if (config_.admitted_load_bias > 0.0) {
    for (const auto& row : record.allocation.rows()) {
      for (predict::LoadForecaster* f : forecasters_) {
        f->add_load_bias(row.primary_host(), config_.admitted_load_bias);
      }
    }
  }
  record.charged = true;
}

void AppSubmissionService::release_locked(AppRecord& record) {
  if (!record.charged) return;
  for (const auto& [host, busy] : record.charge) {
    auto it = occupancy_.find(host);
    if (it == occupancy_.end()) continue;
    it->second -= busy;
    if (it->second <= 1e-9) occupancy_.erase(it);
  }
  if (config_.admitted_load_bias > 0.0) {
    for (const auto& row : record.allocation.rows()) {
      for (predict::LoadForecaster* f : forecasters_) {
        f->add_load_bias(row.primary_host(),
                         -config_.admitted_load_bias);
      }
    }
  }
  record.charged = false;
}

void AppSubmissionService::worker_loop() {
  for (;;) {
    std::shared_ptr<AppRecord> rec;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [&] {
        return shutdown_ || (!paused_ && !ready_.empty());
      });
      if (ready_.empty()) {
        if (shutdown_) return;
        continue;
      }
      rec = pick_next_locked();
    }

    EngineConfig engine_config = config_.engine;
    engine_config.seed = rec->request.seed;
    ExecutionEngine engine(*registry_, engine_config);

    FaultTolerance hooks;
    const FaultTolerance* hooks_ptr = nullptr;
    if (fault_hooks_) {
      hooks = fault_hooks_(rec->request.graph, rec->allocation);
      hooks_ptr = &hooks;
    }

    RunResult result;
    std::string error;
    {
      common::ScopedSpan run_span("app_run", "submission");
      if (run_span.active()) {
        run_span.rename("run:" + rec->request.graph.name());
        run_span.arg("app", rec->app.value());
        run_span.arg("user", rec->request.user);
        run_span.arg("grant", rec->grant_index);
      }
      try {
        result = engine.execute(rec->request.graph, rec->allocation,
                                feedback_, nullptr, hooks_ptr, rec->app);
      } catch (const std::exception& e) {
        error = e.what();
      }
      if (run_span.active()) {
        run_span.arg("outcome", error.empty() ? "completed" : "failed");
      }
    }

    {
      std::lock_guard lk(mu_);
      release_locked(*rec);
      --running_;
      if (error.empty()) {
        rec->result = std::move(result);
        rec->state = SubmissionState::kCompleted;
        ++stats_.completed;
        bump("submission.completed");
      } else {
        rec->error = std::move(error);
        rec->state = SubmissionState::kFailed;
        ++stats_.failed;
        bump("submission.failed");
        common::log_info("submission", "app ", rec->app.value(),
                         " failed: ", rec->error);
      }
      common::MetricsRegistry::global()
          .gauge("submission.running")
          .set(static_cast<double>(running_));
    }
    cv_.notify_all();
  }
}

SubmissionStatus AppSubmissionService::snapshot_locked(
    const AppRecord& rec) const {
  SubmissionStatus status;
  status.app = rec.app;
  status.state = rec.state;
  status.user = rec.request.user;
  status.admission = rec.admission;
  status.queue_eta_s = rec.queue_eta_s;
  status.allocation = rec.allocation;
  status.grant_index = rec.grant_index;
  status.result = rec.result;
  status.error = rec.error;
  return status;
}

SubmissionStatus AppSubmissionService::wait(common::AppId app) const {
  std::unique_lock lk(mu_);
  const auto it = records_.find(app);
  if (it == records_.end()) {
    throw common::NotFoundError("unknown submission ticket");
  }
  const auto rec = it->second;
  cv_.wait(lk, [&] { return is_terminal(rec->state); });
  return snapshot_locked(*rec);
}

SubmissionStatus AppSubmissionService::status(common::AppId app) const {
  std::lock_guard lk(mu_);
  const auto it = records_.find(app);
  if (it == records_.end()) {
    throw common::NotFoundError("unknown submission ticket");
  }
  return snapshot_locked(*it->second);
}

void AppSubmissionService::resume() {
  {
    std::lock_guard lk(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void AppSubmissionService::drain() const {
  std::unique_lock lk(mu_);
  cv_.wait(lk, [&] { return ready_.empty() && running_ == 0; });
}

SubmissionStats AppSubmissionService::stats() const {
  std::lock_guard lk(mu_);
  SubmissionStats out = stats_;
  out.running = running_;
  out.queue_depth = ready_.size();
  return out;
}

}  // namespace vdce::rt
