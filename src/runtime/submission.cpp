#include "runtime/submission.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/trace.hpp"

namespace vdce::rt {

namespace {

[[nodiscard]] bool is_terminal(SubmissionState state) {
  return state == SubmissionState::kCompleted ||
         state == SubmissionState::kRejected ||
         state == SubmissionState::kFailed;
}

void bump(const char* name) {
  common::MetricsRegistry::global().counter(name).add(1);
}

}  // namespace

HostCircuitBreaker::HostCircuitBreaker(CircuitBreakerConfig config)
    : config_(config) {}

void HostCircuitBreaker::set_clock(std::function<double()> clock) {
  std::lock_guard lk(mu_);
  clock_ = std::move(clock);
}

void HostCircuitBreaker::set_on_open(
    std::function<void(common::HostId)> callback) {
  std::lock_guard lk(mu_);
  on_open_ = std::move(callback);
}

double HostCircuitBreaker::now() const {
  // mu_ held by every caller.
  if (clock_) return clock_();
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void HostCircuitBreaker::refresh_locked(Entry& entry, double t) const {
  if (config_.decay_half_life_s > 0.0 && t > entry.updated_at) {
    entry.score *= std::exp2(-(t - entry.updated_at) /
                             config_.decay_half_life_s);
  }
  entry.updated_at = std::max(entry.updated_at, t);
  if (entry.open && entry.score < config_.close_threshold) {
    entry.open = false;
  }
}

bool HostCircuitBreaker::record_failure(common::HostId host) {
  bool opened = false;
  std::function<void(common::HostId)> on_open;
  {
    std::lock_guard lk(mu_);
    if (!config_.enabled) return false;
    Entry& entry = entries_[host];
    refresh_locked(entry, now());
    entry.score += 1.0;
    if (!entry.open && entry.score >= config_.open_threshold) {
      entry.open = true;
      opened = true;
      trips_.fetch_add(1, std::memory_order_relaxed);
      on_open = on_open_;
    }
  }
  // Outside the lock: the callback takes the service lock (counter and
  // forecaster bookkeeping) and the service lock may be held while
  // consulting quarantined().
  if (opened && on_open) on_open(host);
  return opened;
}

bool HostCircuitBreaker::quarantined(common::HostId host) {
  std::lock_guard lk(mu_);
  if (!config_.enabled) return false;
  const auto it = entries_.find(host);
  if (it == entries_.end()) return false;
  refresh_locked(it->second, now());
  return it->second.open;
}

std::vector<common::HostId> HostCircuitBreaker::quarantined_hosts() {
  std::lock_guard lk(mu_);
  std::vector<common::HostId> out;
  if (!config_.enabled) return out;
  const double t = now();
  for (auto& [host, entry] : entries_) {
    refresh_locked(entry, t);
    if (entry.open) out.push_back(host);
  }
  return out;
}

double HostCircuitBreaker::score(common::HostId host) {
  std::lock_guard lk(mu_);
  const auto it = entries_.find(host);
  if (it == entries_.end()) return 0.0;
  refresh_locked(it->second, now());
  return it->second.score;
}

std::uint64_t HostCircuitBreaker::trips() const {
  return trips_.load(std::memory_order_relaxed);
}

const char* to_string(SubmissionState state) {
  switch (state) {
    case SubmissionState::kQueued:
      return "queued";
    case SubmissionState::kRunning:
      return "running";
    case SubmissionState::kCompleted:
      return "completed";
    case SubmissionState::kRejected:
      return "rejected";
    case SubmissionState::kFailed:
      return "failed";
  }
  return "unknown";
}

/// Everything the service tracks about one submission.  Owned by a
/// shared_ptr so waiters and workers may hold it across unlocks; the
/// graph/allocation members keep stable addresses for the run's
/// FaultTolerance closures.
struct AppSubmissionService::AppRecord {
  SubmissionRequest request;
  common::AppId app;
  SubmissionState state = SubmissionState::kQueued;
  sched::QosAdmission admission;
  sched::AllocationTable allocation;
  double queue_eta_s = 0.0;
  std::size_t grant_index = 0;
  std::size_t restarts = 0;   // failover restarts consumed
  std::uint64_t seq = 0;      // global submission order (FIFO tie-break)
  bool counted_queued = false;
  bool charged = false;
  sched::HostOccupancy charge;  // exactly what charge_locked added
  double pred_charged = 0.0;    // ETA charge added to pending_pred_s_
  RunResult result;
  std::string error;
};

/// One submission mid-flight through submit_batch's phases: the record
/// plus whether placement succeeded (phase C) and admission still owes
/// it a QoS verdict (phase D).
struct AppSubmissionService::Prepared {
  std::shared_ptr<AppRecord> rec;
  bool needs_qos = false;
};

AppSubmissionService::AppSubmissionService(
    SiteId local_site, sched::SiteDirectory& directory,
    const tasklib::TaskRegistry& registry, AppSubmissionConfig config)
    : local_site_(local_site),
      directory_(&directory),
      registry_(&registry),
      config_(config),
      breaker_(config.breaker),
      queue_(config.fair_share),
      paused_(config.start_paused) {
  config_.slots = std::max<std::size_t>(config_.slots, 1);
  // An open transition version-bumps every registered forecaster via
  // forget(host): the prediction cache's epoch moves, so Predict scores
  // computed while the flapping host looked healthy are unservable.
  breaker_.set_on_open([this](common::HostId host) {
    std::lock_guard lk(mu_);
    ++stats_.breaker_trips;
    bump("submission.breaker_trips");
    for (predict::LoadForecaster* f : forecasters_) f->forget(host);
    common::log_info("submission", "circuit breaker OPEN for host ",
                     host.value(), " (flapping)");
    if (common::trace_enabled()) {
      common::trace_instant("breaker_open", "submission",
                            {{"host", std::to_string(host.value())}});
    }
  });
  workers_.reserve(config_.slots);
  for (std::size_t i = 0; i < config_.slots; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

AppSubmissionService::~AppSubmissionService() {
  {
    std::lock_guard lk(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  workers_.clear();  // joins; workers drain the ready queue first
}

void AppSubmissionService::add_forecaster(
    predict::LoadForecaster* forecaster) {
  std::lock_guard lk(mu_);
  forecasters_.push_back(forecaster);
}

void AppSubmissionService::note_site_liveness(common::SiteId site, bool dead) {
  std::lock_guard lk(mu_);
  if (dead) {
    dead_sites_.insert(site);
  } else {
    dead_sites_.erase(site);
  }
}

std::vector<common::SiteId> AppSubmissionService::dead_sites() const {
  std::lock_guard lk(mu_);
  return {dead_sites_.begin(), dead_sites_.end()};
}

common::AppId AppSubmissionService::submit(SubmissionRequest request) {
  std::vector<SubmissionRequest> one;
  one.push_back(std::move(request));
  return submit_batch(std::move(one)).front();
}

std::vector<common::AppId> AppSubmissionService::submit_batch(
    std::vector<SubmissionRequest> requests) {
  // Phase A (no lock): an invalid graph throws before any submission is
  // recorded -- exactly the single-submit contract, batch-wide.
  for (const SubmissionRequest& request : requests) {
    request.graph.validate();
  }

  std::vector<Prepared> prepared;
  prepared.reserve(requests.size());
  std::vector<common::AppId> tickets;
  tickets.reserve(requests.size());

  // Phase B (brief lock): tickets, records and the early-shed fast
  // path.  Everything per-submission that must be ordered (seq, ids)
  // happens here; the heavy placement work does not.
  bool any_early_shed = false;
  {
    std::lock_guard lk(mu_);
    if (shutdown_) {
      throw common::StateError("submission service is shut down");
    }
    for (SubmissionRequest& request : requests) {
      auto rec = std::make_shared<AppRecord>();
      rec->request = std::move(request);
      rec->app = common::AppId{next_ticket_++};
      rec->seq = next_seq_++;
      ++stats_.submitted;
      bump("submission.submitted");
      records_.emplace(rec->app, rec);
      tickets.push_back(rec->app);

      // Shedding tier 0 (opt-in): a full queue that the arrival's
      // priority cannot relieve rejects before any scheduling or QoS
      // work is spent on it.
      bool early = false;
      if (config_.early_shed && queued_count_ >= config_.max_queue) {
        const std::optional<int> lowest = queue_.lowest_priority();
        early = !lowest || *lowest >= rec->request.priority;
      }
      if (early) {
        rec->state = SubmissionState::kRejected;
        rec->error = "ready queue full (early shed)";
        ++stats_.rejected;
        ++stats_.early_shed;
        bump("submission.rejected");
        bump("submission.early_shed");
        note_terminal_locked(rec);
        any_early_shed = true;
      }
      prepared.push_back(Prepared{std::move(rec), false});
    }
  }
  if (any_early_shed) cv_.notify_all();

  // Phase C (no lock): Figure 4 -- a per-submission Site Scheduler
  // places each AFG against the directory's current view.  Placement is
  // the expensive step, so it runs outside the service lock and
  // concurrent submitters overlap their scheduling work.
  for (Prepared& p : prepared) {
    if (p.rec->state != SubmissionState::kQueued) continue;  // early shed
    try {
      sched::SiteScheduler scheduler(local_site_, *directory_,
                                     config_.scheduler);
      p.rec->allocation = scheduler.schedule(p.rec->request.graph);
      p.needs_qos = true;
    } catch (const std::exception& e) {
      p.rec->error = std::string("scheduling failed: ") + e.what();
    }
  }

  // Phase D (one lock hold): the whole burst's admission bookkeeping --
  // QoS against one residual-capacity snapshot, capacity/preemption,
  // charges and queue pushes -- runs under a single acquisition.
  {
    std::lock_guard lk(mu_);

    // Batched QoS with sequential semantics.  check_qos_batch charges
    // every item it admits into its internal baseline; reality only
    // charges items that actually take a slot (a backpressure reject
    // charges nothing, a preemption also releases its victim).  The
    // cache therefore stays valid exactly while batch-admitted items
    // keep getting charged for real, and is rebuilt over the live
    // occupancy_ from the first divergence on.  While the queue is
    // full every admitted item diverges, so the rebuild chunk drops to
    // one item -- which is precisely the old per-submit cost, not a
    // regression.
    std::vector<sched::QosAdmission> qos_cache;
    std::vector<std::size_t> qos_members;
    std::size_t qos_consumed = 0;
    bool qos_valid = false;
    const auto qos_of = [&](std::size_t j) -> sched::QosAdmission {
      if (!qos_valid || qos_consumed >= qos_members.size() ||
          qos_members[qos_consumed] != j) {
        qos_members.clear();
        std::vector<sched::QosBatchItem> items;
        const bool full = queued_count_ >= config_.max_queue;
        for (std::size_t k = j; k < prepared.size(); ++k) {
          if (!prepared[k].needs_qos) continue;
          const AppRecord& r = *prepared[k].rec;
          items.push_back(sched::QosBatchItem{&r.request.graph,
                                              &r.allocation, r.request.qos});
          qos_members.push_back(k);
          if (full) break;
        }
        qos_cache = sched::check_qos_batch(items, *directory_, occupancy_);
        qos_consumed = 0;
        qos_valid = true;
      }
      return qos_cache[qos_consumed++];
    };

    for (std::size_t j = 0; j < prepared.size(); ++j) {
      Prepared& p = prepared[j];
      auto& rec = p.rec;
      if (rec->state != SubmissionState::kQueued) continue;  // early shed

      common::ScopedSpan span("submit", "submission");
      if (span.active()) {
        span.rename("submit:" + rec->request.graph.name());
        span.arg("app", rec->app.value());
        span.arg("user", rec->request.user);
      }

      if (shutdown_) {
        // The service shut down between phases; the workers that would
        // run this submission may already be gone.
        rec->state = SubmissionState::kRejected;
        rec->error = "submission service is shut down";
        ++stats_.rejected;
        bump("submission.rejected");
        if (span.active()) span.arg("outcome", "rejected");
        note_terminal_locked(rec);
        continue;
      }
      if (!p.needs_qos) {
        rec->state = SubmissionState::kRejected;
        // rec->error already carries "scheduling failed: ...".
        ++stats_.rejected;
        bump("submission.rejected");
        if (span.active()) span.arg("outcome", "rejected");
        note_terminal_locked(rec);
        continue;
      }

      // Residual-capacity QoS admission: charge every already-admitted,
      // not-yet-finished application's predicted host occupancy.
      rec->admission = qos_of(j);
      if (!rec->admission.admitted) {
        rec->state = SubmissionState::kRejected;
        rec->error = "QoS deadline unmet: slack " +
                     std::to_string(rec->admission.slack_s) + "s";
        ++stats_.rejected;
        bump("submission.rejected");
        if (span.active()) span.arg("outcome", "rejected");
        note_terminal_locked(rec);
        continue;
      }
      if (queued_count_ >= config_.max_queue) {
        // Shedding tier 2: a full queue admits a newcomer only over the
        // body of the youngest queued submission of a strictly lower
        // priority tier; running applications are never touched.
        const std::optional<FairShareEntry> victim =
            queue_.preempt_below(rec->request.priority);
        qos_valid = false;  // either path diverges from the batch
        if (!victim) {
          rec->state = SubmissionState::kRejected;
          rec->error = "ready queue full (backpressure)";
          ++stats_.rejected;
          bump("submission.rejected");
          bump("submission.backpressure");
          if (span.active()) span.arg("outcome", "backpressure");
          note_terminal_locked(rec);
          continue;
        }
        const auto vrec = records_.at(victim->app);
        evict_queued_locked(*vrec,
                            "preempted by higher-priority submission",
                            &SubmissionStats::preempted,
                            "submission.preempted");
        note_terminal_locked(vrec);
      }

      const bool immediate =
          !paused_ && queued_count_ == 0 && running_ < config_.slots;
      if (!immediate) {
        // Queue-with-ETA: predicted drain time of everything ahead
        // (every charged submission, queued or running), spread over
        // the slots.  pending_pred_s_ is maintained incrementally by
        // charge/release, so the estimate no longer walks all records.
        rec->queue_eta_s =
            pending_pred_s_ / static_cast<double>(config_.slots);
      }
      charge_locked(*rec);
      if (immediate) {
        ++stats_.admitted;
        bump("submission.admitted");
        if (span.active()) span.arg("outcome", "admitted");
      } else {
        rec->counted_queued = true;
        ++stats_.queued;
        bump("submission.queued");
        if (span.active()) {
          span.arg("outcome", "queued");
          span.arg("eta_s", rec->queue_eta_s);
        }
      }
      FairShareEntry entry;
      entry.app = rec->app;
      entry.seq = rec->seq;
      entry.priority = rec->request.priority;
      entry.weight = rec->request.weight;
      // Straight-into-a-free-slot admissions already count as running
      // work, not backlog: preempting or shedding them would desync the
      // admitted counters, so they are not eligible.
      entry.preemptible = rec->counted_queued;
      queue_.push(rec->request.user, entry);
      ++queued_count_;
      common::log_info("submission", "app ", rec->app.value(), " '",
                       rec->request.graph.name(), "' user ",
                       rec->request.user, ": ",
                       immediate ? "admitted" : "queued", ", slack ",
                       rec->admission.slack_s, "s");
    }
  }
  cv_.notify_all();
  return tickets;
}

void AppSubmissionService::charge_locked(AppRecord& record) {
  record.charge = record.allocation.host_occupancy();
  for (const auto& [host, busy] : record.charge) {
    occupancy_[host] += busy;
  }
  if (config_.admitted_load_bias > 0.0) {
    for (const auto& row : record.allocation.rows()) {
      for (predict::LoadForecaster* f : forecasters_) {
        f->add_load_bias(row.primary_host(), config_.admitted_load_bias);
      }
    }
  }
  record.pred_charged = record.admission.predicted_makespan_s;
  pending_pred_s_ += record.pred_charged;
  record.charged = true;
}

void AppSubmissionService::release_locked(AppRecord& record) {
  if (!record.charged) return;
  for (const auto& [host, busy] : record.charge) {
    auto it = occupancy_.find(host);
    if (it == occupancy_.end()) continue;
    it->second -= busy;
    if (it->second <= 1e-9) occupancy_.erase(it);
  }
  if (config_.admitted_load_bias > 0.0) {
    for (const auto& row : record.allocation.rows()) {
      for (predict::LoadForecaster* f : forecasters_) {
        f->add_load_bias(row.primary_host(),
                         -config_.admitted_load_bias);
      }
    }
  }
  pending_pred_s_ = std::max(0.0, pending_pred_s_ - record.pred_charged);
  record.pred_charged = 0.0;
  record.charged = false;
}

void AppSubmissionService::evict_queued_locked(
    AppRecord& record, std::string reason,
    std::uint64_t SubmissionStats::*counter, const char* metric) {
  record.state = SubmissionState::kRejected;
  record.error = std::move(reason);
  release_locked(record);
  --queued_count_;
  ++(stats_.*counter);
  bump(metric);
}

void AppSubmissionService::note_terminal_locked(
    const std::shared_ptr<AppRecord>& record) {
  terminal_fifo_.push_back(record->app);
  if (config_.terminal_record_cap == 0) return;
  while (terminal_fifo_.size() > config_.terminal_record_cap) {
    const common::AppId oldest = terminal_fifo_.front();
    terminal_fifo_.pop_front();
    const auto it = records_.find(oldest);
    if (it == records_.end()) continue;
    RetiredStub stub;
    stub.state = it->second->state;
    stub.grant_index =
        static_cast<std::uint32_t>(it->second->grant_index);
    stub.restarts = static_cast<std::uint32_t>(it->second->restarts);
    records_.erase(it);
    retired_.emplace(oldest, stub);
    retired_fifo_.push_back(oldest);
    ++stats_.retired;
    bump("submission.retired");
    if (config_.retired_stub_cap > 0) {
      while (retired_fifo_.size() > config_.retired_stub_cap) {
        retired_.erase(retired_fifo_.front());
        retired_fifo_.pop_front();
      }
    }
  }
}

std::size_t AppSubmissionService::shed_queued(int below_priority) {
  std::size_t dropped = 0;
  {
    std::lock_guard lk(mu_);
    const std::vector<FairShareEntry> victims =
        queue_.shed_below(below_priority);
    for (const FairShareEntry& victim : victims) {
      const auto rec = records_.at(victim.app);
      evict_queued_locked(*rec, "shed: priority below cutoff",
                          &SubmissionStats::shed, "submission.shed");
      note_terminal_locked(rec);
    }
    dropped = victims.size();
    if (dropped > 0) {
      common::log_info("submission", "shed ", dropped,
                       " queued submissions below priority ",
                       below_priority);
    }
  }
  if (dropped > 0) cv_.notify_all();
  return dropped;
}

FaultTolerance AppSubmissionService::wrap_hooks(FaultTolerance hooks) {
  if (!config_.breaker.enabled) return hooks;
  // on_failure: every reported host failure feeds the breaker (task
  // errors on a live host do not -- a flaky task must not quarantine a
  // healthy machine).
  hooks.on_failure = [this, inner = std::move(hooks.on_failure)](
                         const RescheduleRequest& request) {
    if (inner) inner(request);
    if (request.kind == RescheduleRequest::Kind::kHostFailure) {
      breaker_.record_failure(request.host);
    }
  };
  // host_alive: a quarantined host reads as dead, so in-gang fault
  // guards refuse it and recovery excludes it even while the flapping
  // host happens to answer probes.
  hooks.host_alive = [this, inner = std::move(hooks.host_alive)](
                         common::HostId host) {
    if (breaker_.quarantined(host)) return false;
    return inner ? inner(host) : true;
  };
  return hooks;
}

bool AppSubmissionService::replan_for_restart(AppRecord& rec,
                                              const std::string& why) {
  common::ScopedSpan span("app_restart", "submission");
  if (span.active()) {
    span.arg("app", rec.app.value());
    span.arg("restart", rec.restarts + 1);
    span.arg("reason", why);
  }

  std::lock_guard lk(mu_);
  // Quarantine: hosts the health probe reports dead, hosts on sites
  // the quorum declared dead (D17), plus everything the circuit
  // breaker holds open.
  std::vector<common::HostId> excluded = breaker_.quarantined_hosts();
  for (const auto& row : rec.allocation.rows()) {
    const common::HostId host = row.primary_host();
    const bool dead = (health_probe_ && !health_probe_(host)) ||
                      dead_sites_.count(row.site) > 0;
    if (dead && std::find(excluded.begin(), excluded.end(), host) ==
                    excluded.end()) {
      excluded.push_back(host);
    }
  }

  // Release this app's commitments before re-admitting: the residual
  // capacity it re-checks against must not charge its own old plan.
  release_locked(rec);

  // Re-place only the *incomplete* subgraph (checkpointed tasks never
  // re-execute, so their rows only matter as parent-site transfer
  // anchors) and only rows whose host is quarantined.
  sched::SiteScheduler scheduler(local_site_, *directory_,
                                 config_.scheduler);
  std::size_t moved = 0;
  for (const TaskId task : rec.request.graph.topological_order()) {
    if (config_.checkpointing && checkpoints_.completed(rec.app, task)) {
      continue;
    }
    const common::HostId host = rec.allocation.entry(task).primary_host();
    if (std::find(excluded.begin(), excluded.end(), host) ==
        excluded.end()) {
      continue;
    }
    // The scheduler only knows the exclusion list, not liveness: a
    // whole-site outage leaves sibling hosts it would happily pick, so
    // probe each candidate and widen the quarantine until one is alive.
    auto replacement = scheduler.reschedule(rec.request.graph,
                                            rec.allocation, task, excluded);
    while (replacement &&
           ((health_probe_ && !health_probe_(replacement->primary_host())) ||
            dead_sites_.count(replacement->site) > 0)) {
      excluded.push_back(replacement->primary_host());
      replacement = scheduler.reschedule(rec.request.graph, rec.allocation,
                                         task, excluded);
    }
    if (!replacement) {
      rec.error = "failover replan: no feasible host for task " +
                  std::to_string(task.value()) + " (" + why + ")";
      if (span.active()) span.arg("outcome", "no_feasible_host");
      return false;
    }
    rec.allocation.replace(*replacement);
    ++moved;
  }

  // Residual-capacity re-admission over the surviving plan.
  rec.admission =
      sched::check_qos(rec.request.graph, rec.allocation, *directory_,
                       rec.request.qos, occupancy_);
  if (!rec.admission.admitted) {
    rec.error = "failover replan: QoS re-admission refused, slack " +
                std::to_string(rec.admission.slack_s) + "s (" + why + ")";
    if (span.active()) span.arg("outcome", "readmission_refused");
    return false;
  }
  charge_locked(rec);

  ++rec.restarts;
  ++stats_.restarts;
  bump("submission.restarts");
  if (span.active()) {
    span.arg("outcome", "restarting");
    span.arg("tasks_moved", moved);
    span.arg("excluded", excluded.size());
  }
  common::log_info("submission", "app ", rec.app.value(), " restart ",
                   rec.restarts, ": ", moved, " tasks re-placed, ",
                   excluded.size(), " hosts quarantined (", why, ")");
  return true;
}

void AppSubmissionService::worker_loop() {
  for (;;) {
    std::shared_ptr<AppRecord> rec;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [&] {
        return shutdown_ || (!paused_ && queued_count_ > 0);
      });
      if (queued_count_ == 0) {
        if (shutdown_) return;
        continue;
      }
      // Stride grant: the sharded queue picks the lowest (user pass,
      // seq) in O(shards + log users); grant bookkeeping stays under
      // mu_ so the grant index is a total order.
      const std::optional<FairShareEntry> entry = queue_.pop();
      if (!entry) continue;
      --queued_count_;
      rec = records_.at(entry->app);
      rec->state = SubmissionState::kRunning;
      rec->grant_index = next_grant_++;
      ++running_;
      if (rec->counted_queued) {
        ++stats_.queued_then_admitted;
        bump("submission.queued_then_admitted");
      }
      common::MetricsRegistry::global()
          .gauge("submission.running")
          .set(static_cast<double>(running_));
    }

    EngineConfig engine_config = config_.engine;
    engine_config.seed = rec->request.seed;
    ExecutionEngine engine(*registry_, engine_config);
    CheckpointStore* checkpoint =
        config_.checkpointing ? &checkpoints_ : nullptr;

    RunResult result;
    std::string error;
    double restart_backoff = config_.restart_backoff_s;
    for (;;) {
      FaultTolerance hooks;
      const FaultTolerance* hooks_ptr = nullptr;
      if (fault_hooks_) {
        // Rebuilt per attempt: the factory's closures see the replanned
        // allocation (stable address inside the record).
        hooks = wrap_hooks(fault_hooks_(rec->request.graph,
                                        rec->allocation));
        hooks_ptr = &hooks;
      }

      error.clear();
      {
        common::ScopedSpan run_span("app_run", "submission");
        if (run_span.active()) {
          run_span.rename("run:" + rec->request.graph.name());
          run_span.arg("app", rec->app.value());
          run_span.arg("user", rec->request.user);
          run_span.arg("grant", rec->grant_index);
          if (rec->restarts > 0) run_span.arg("restart", rec->restarts);
        }
        try {
          result = engine.execute(rec->request.graph, rec->allocation,
                                  feedback_, nullptr, hooks_ptr, rec->app,
                                  checkpoint);
        } catch (const std::exception& e) {
          error = e.what();
        }
        if (run_span.active()) {
          run_span.arg("outcome", error.empty() ? "completed" : "failed");
        }
      }
      if (error.empty() ||
          rec->restarts >= static_cast<std::size_t>(
                               std::max(config_.max_restarts, 0))) {
        break;
      }
      if (!replan_for_restart(*rec, error)) {
        error = rec->error;  // the replan's refusal reason is terminal
        break;
      }

      // Exponential backoff with deterministic jitter seeded from
      // (engine seed, app, restart attempt): lets the fault window pass
      // and de-correlates simultaneous failovers without global state.
      double nap = restart_backoff;
      if (config_.restart_backoff_jitter > 0.0) {
        common::Rng jitter(engine_config.seed ^
                           (static_cast<std::uint64_t>(rec->app.value())
                            << 32) ^
                           (0x9E3779B97F4A7C15ull * rec->restarts));
        nap *= 1.0 + config_.restart_backoff_jitter *
                         (jitter.uniform() - 0.5);
      }
      if (nap > 0.0) {
        if (hooks.sleep) {
          hooks.sleep(nap);
        } else {
          std::this_thread::sleep_for(std::chrono::duration<double>(nap));
        }
      }
      restart_backoff *= config_.restart_backoff_multiplier;
    }

    {
      std::lock_guard lk(mu_);
      release_locked(*rec);
      --running_;
      if (error.empty()) {
        rec->result = std::move(result);
        rec->state = SubmissionState::kCompleted;
        ++stats_.completed;
        bump("submission.completed");
      } else {
        rec->error = std::move(error);
        rec->state = SubmissionState::kFailed;
        ++stats_.failed;
        bump("submission.failed");
        common::log_info("submission", "app ", rec->app.value(),
                         " failed: ", rec->error);
      }
      common::MetricsRegistry::global()
          .gauge("submission.running")
          .set(static_cast<double>(running_));
      note_terminal_locked(rec);
    }
    // Terminal either way: the frontier snapshot is no longer needed.
    checkpoints_.drop_app(rec->app);
    cv_.notify_all();
  }
}

SubmissionStatus AppSubmissionService::snapshot_locked(
    const AppRecord& rec) const {
  SubmissionStatus status;
  status.app = rec.app;
  status.state = rec.state;
  status.user = rec.request.user;
  status.admission = rec.admission;
  status.queue_eta_s = rec.queue_eta_s;
  status.allocation = rec.allocation;
  status.grant_index = rec.grant_index;
  status.restarts = rec.restarts;
  status.result = rec.result;
  status.error = rec.error;
  return status;
}

SubmissionStatus AppSubmissionService::wait(common::AppId app) const {
  std::unique_lock lk(mu_);
  const auto it = records_.find(app);
  if (it == records_.end()) {
    // Retired submissions are terminal by construction: the stub is the
    // final answer.
    const auto rit = retired_.find(app);
    if (rit == retired_.end()) {
      throw common::NotFoundError("unknown submission ticket");
    }
    SubmissionStatus status;
    status.app = app;
    status.state = rit->second.state;
    status.grant_index = rit->second.grant_index;
    status.restarts = rit->second.restarts;
    status.retired = true;
    return status;
  }
  const auto rec = it->second;
  cv_.wait(lk, [&] { return is_terminal(rec->state); });
  return snapshot_locked(*rec);
}

SubmissionStatus AppSubmissionService::status(common::AppId app) const {
  std::lock_guard lk(mu_);
  const auto it = records_.find(app);
  if (it == records_.end()) {
    const auto rit = retired_.find(app);
    if (rit == retired_.end()) {
      throw common::NotFoundError("unknown submission ticket");
    }
    SubmissionStatus status;
    status.app = app;
    status.state = rit->second.state;
    status.grant_index = rit->second.grant_index;
    status.restarts = rit->second.restarts;
    status.retired = true;
    return status;
  }
  return snapshot_locked(*it->second);
}

void AppSubmissionService::resume() {
  {
    std::lock_guard lk(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void AppSubmissionService::pause() {
  std::lock_guard lk(mu_);
  paused_ = true;
}

void AppSubmissionService::drain() const {
  std::unique_lock lk(mu_);
  cv_.wait(lk, [&] { return queued_count_ == 0 && running_ == 0; });
}

SubmissionStats AppSubmissionService::stats() const {
  std::lock_guard lk(mu_);
  SubmissionStats out = stats_;
  out.running = running_;
  out.queue_depth = queued_count_;
  out.records_retained = records_.size();
  return out;
}

}  // namespace vdce::rt
