#include "runtime/submission.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/trace.hpp"

namespace vdce::rt {

namespace {

[[nodiscard]] bool is_terminal(SubmissionState state) {
  return state == SubmissionState::kCompleted ||
         state == SubmissionState::kRejected ||
         state == SubmissionState::kFailed;
}

void bump(const char* name) {
  common::MetricsRegistry::global().counter(name).add(1);
}

}  // namespace

HostCircuitBreaker::HostCircuitBreaker(CircuitBreakerConfig config)
    : config_(config) {}

void HostCircuitBreaker::set_clock(std::function<double()> clock) {
  std::lock_guard lk(mu_);
  clock_ = std::move(clock);
}

void HostCircuitBreaker::set_on_open(
    std::function<void(common::HostId)> callback) {
  std::lock_guard lk(mu_);
  on_open_ = std::move(callback);
}

double HostCircuitBreaker::now() const {
  // mu_ held by every caller.
  if (clock_) return clock_();
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void HostCircuitBreaker::refresh_locked(Entry& entry, double t) const {
  if (config_.decay_half_life_s > 0.0 && t > entry.updated_at) {
    entry.score *= std::exp2(-(t - entry.updated_at) /
                             config_.decay_half_life_s);
  }
  entry.updated_at = std::max(entry.updated_at, t);
  if (entry.open && entry.score < config_.close_threshold) {
    entry.open = false;
  }
}

bool HostCircuitBreaker::record_failure(common::HostId host) {
  bool opened = false;
  std::function<void(common::HostId)> on_open;
  {
    std::lock_guard lk(mu_);
    if (!config_.enabled) return false;
    Entry& entry = entries_[host];
    refresh_locked(entry, now());
    entry.score += 1.0;
    if (!entry.open && entry.score >= config_.open_threshold) {
      entry.open = true;
      opened = true;
      trips_.fetch_add(1, std::memory_order_relaxed);
      on_open = on_open_;
    }
  }
  // Outside the lock: the callback takes the service lock (counter and
  // forecaster bookkeeping) and the service lock may be held while
  // consulting quarantined().
  if (opened && on_open) on_open(host);
  return opened;
}

bool HostCircuitBreaker::quarantined(common::HostId host) {
  std::lock_guard lk(mu_);
  if (!config_.enabled) return false;
  const auto it = entries_.find(host);
  if (it == entries_.end()) return false;
  refresh_locked(it->second, now());
  return it->second.open;
}

std::vector<common::HostId> HostCircuitBreaker::quarantined_hosts() {
  std::lock_guard lk(mu_);
  std::vector<common::HostId> out;
  if (!config_.enabled) return out;
  const double t = now();
  for (auto& [host, entry] : entries_) {
    refresh_locked(entry, t);
    if (entry.open) out.push_back(host);
  }
  return out;
}

double HostCircuitBreaker::score(common::HostId host) {
  std::lock_guard lk(mu_);
  const auto it = entries_.find(host);
  if (it == entries_.end()) return 0.0;
  refresh_locked(it->second, now());
  return it->second.score;
}

std::uint64_t HostCircuitBreaker::trips() const {
  return trips_.load(std::memory_order_relaxed);
}

const char* to_string(SubmissionState state) {
  switch (state) {
    case SubmissionState::kQueued:
      return "queued";
    case SubmissionState::kRunning:
      return "running";
    case SubmissionState::kCompleted:
      return "completed";
    case SubmissionState::kRejected:
      return "rejected";
    case SubmissionState::kFailed:
      return "failed";
  }
  return "unknown";
}

/// Everything the service tracks about one submission.  Owned by a
/// shared_ptr so waiters and workers may hold it across unlocks; the
/// graph/allocation members keep stable addresses for the run's
/// FaultTolerance closures.
struct AppSubmissionService::AppRecord {
  SubmissionRequest request;
  common::AppId app;
  SubmissionState state = SubmissionState::kQueued;
  sched::QosAdmission admission;
  sched::AllocationTable allocation;
  double queue_eta_s = 0.0;
  std::size_t grant_index = 0;
  std::size_t restarts = 0;   // failover restarts consumed
  std::uint64_t seq = 0;      // global submission order (FIFO tie-break)
  bool counted_queued = false;
  bool charged = false;
  sched::HostOccupancy charge;  // exactly what charge_locked added
  RunResult result;
  std::string error;
};

AppSubmissionService::AppSubmissionService(
    SiteId local_site, sched::SiteDirectory& directory,
    const tasklib::TaskRegistry& registry, AppSubmissionConfig config)
    : local_site_(local_site),
      directory_(&directory),
      registry_(&registry),
      config_(config),
      breaker_(config.breaker),
      paused_(config.start_paused) {
  config_.slots = std::max<std::size_t>(config_.slots, 1);
  // An open transition version-bumps every registered forecaster via
  // forget(host): the prediction cache's epoch moves, so Predict scores
  // computed while the flapping host looked healthy are unservable.
  breaker_.set_on_open([this](common::HostId host) {
    std::lock_guard lk(mu_);
    ++stats_.breaker_trips;
    bump("submission.breaker_trips");
    for (predict::LoadForecaster* f : forecasters_) f->forget(host);
    common::log_info("submission", "circuit breaker OPEN for host ",
                     host.value(), " (flapping)");
    if (common::trace_enabled()) {
      common::trace_instant("breaker_open", "submission",
                            {{"host", std::to_string(host.value())}});
    }
  });
  workers_.reserve(config_.slots);
  for (std::size_t i = 0; i < config_.slots; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

AppSubmissionService::~AppSubmissionService() {
  {
    std::lock_guard lk(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  workers_.clear();  // joins; workers drain the ready queue first
}

void AppSubmissionService::add_forecaster(
    predict::LoadForecaster* forecaster) {
  std::lock_guard lk(mu_);
  forecasters_.push_back(forecaster);
}

common::AppId AppSubmissionService::submit(SubmissionRequest request) {
  request.graph.validate();
  auto rec = std::make_shared<AppRecord>();
  rec->request = std::move(request);

  std::lock_guard lk(mu_);
  if (shutdown_) {
    throw common::StateError("submission service is shut down");
  }
  rec->app = common::AppId{next_ticket_++};
  rec->seq = next_seq_++;
  ++stats_.submitted;
  bump("submission.submitted");
  records_.emplace(rec->app, rec);

  common::ScopedSpan span("submit", "submission");
  if (span.active()) {
    span.rename("submit:" + rec->request.graph.name());
    span.arg("app", rec->app.value());
    span.arg("user", rec->request.user);
  }

  // Figure 4: a per-submission Site Scheduler places the AFG against
  // the directory's current view (serialised under mu_, so admission
  // bookkeeping is deterministic in submission order).
  try {
    sched::SiteScheduler scheduler(local_site_, *directory_,
                                   config_.scheduler);
    rec->allocation = scheduler.schedule(rec->request.graph);
  } catch (const std::exception& e) {
    rec->state = SubmissionState::kRejected;
    rec->error = std::string("scheduling failed: ") + e.what();
    ++stats_.rejected;
    bump("submission.rejected");
    if (span.active()) span.arg("outcome", "rejected");
    cv_.notify_all();
    return rec->app;
  }

  // Residual-capacity QoS admission: charge every already-admitted,
  // not-yet-finished application's predicted host occupancy.
  rec->admission = sched::check_qos(rec->request.graph, rec->allocation,
                                    *directory_, rec->request.qos,
                                    occupancy_);
  if (!rec->admission.admitted) {
    rec->state = SubmissionState::kRejected;
    rec->error = "QoS deadline unmet: slack " +
                 std::to_string(rec->admission.slack_s) + "s";
    ++stats_.rejected;
    bump("submission.rejected");
    if (span.active()) span.arg("outcome", "rejected");
    cv_.notify_all();
    return rec->app;
  }
  if (ready_.size() >= config_.max_queue) {
    rec->state = SubmissionState::kRejected;
    rec->error = "ready queue full (backpressure)";
    ++stats_.rejected;
    bump("submission.rejected");
    bump("submission.backpressure");
    if (span.active()) span.arg("outcome", "backpressure");
    cv_.notify_all();
    return rec->app;
  }

  charge_locked(*rec);
  // New fair-share users join at the current grant virtual time, not
  // at zero, so a latecomer cannot claim a historical backlog.
  if (!shares_.contains(rec->request.user)) {
    shares_[rec->request.user].pass = grant_pass_;
  }

  const bool immediate =
      !paused_ && ready_.empty() && running_ < config_.slots;
  if (immediate) {
    ++stats_.admitted;
    bump("submission.admitted");
    if (span.active()) span.arg("outcome", "admitted");
  } else {
    // Queue-with-ETA: predicted drain time of everything ahead, spread
    // over the slots.
    double pending_pred = 0.0;
    for (const common::AppId id : ready_) {
      pending_pred += records_.at(id)->admission.predicted_makespan_s;
    }
    for (const auto& [_, other] : records_) {
      if (other->state == SubmissionState::kRunning) {
        pending_pred += other->admission.predicted_makespan_s;
      }
    }
    rec->queue_eta_s = pending_pred / static_cast<double>(config_.slots);
    rec->counted_queued = true;
    ++stats_.queued;
    bump("submission.queued");
    if (span.active()) {
      span.arg("outcome", "queued");
      span.arg("eta_s", rec->queue_eta_s);
    }
  }
  ready_.push_back(rec->app);
  common::log_info("submission", "app ", rec->app.value(), " '",
                   rec->request.graph.name(), "' user ",
                   rec->request.user, ": ",
                   immediate ? "admitted" : "queued", ", slack ",
                   rec->admission.slack_s, "s");
  cv_.notify_all();
  return rec->app;
}

std::shared_ptr<AppSubmissionService::AppRecord>
AppSubmissionService::pick_next_locked() {
  // Stride scheduling: grant the queued submission whose user has the
  // lowest pass value; ties break on global submission order.  Each
  // grant advances the user's pass by 1/weight, so users receive
  // grants proportionally to their weights under contention.
  std::size_t best = 0;
  double best_pass = std::numeric_limits<double>::infinity();
  std::uint64_t best_seq = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t i = 0; i < ready_.size(); ++i) {
    const AppRecord& rec = *records_.at(ready_[i]);
    const double pass = shares_.at(rec.request.user).pass;
    if (pass < best_pass ||
        (pass == best_pass && rec.seq < best_seq)) {
      best = i;
      best_pass = pass;
      best_seq = rec.seq;
    }
  }
  auto rec = records_.at(ready_[best]);
  ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(best));

  UserShare& share = shares_.at(rec->request.user);
  grant_pass_ = share.pass;
  share.pass += 1.0 / std::max(rec->request.weight, 1e-9);

  rec->state = SubmissionState::kRunning;
  rec->grant_index = next_grant_++;
  ++running_;
  if (rec->counted_queued) {
    ++stats_.queued_then_admitted;
    bump("submission.queued_then_admitted");
  }
  common::MetricsRegistry::global()
      .gauge("submission.running")
      .set(static_cast<double>(running_));
  return rec;
}

void AppSubmissionService::charge_locked(AppRecord& record) {
  record.charge = record.allocation.host_occupancy();
  for (const auto& [host, busy] : record.charge) {
    occupancy_[host] += busy;
  }
  if (config_.admitted_load_bias > 0.0) {
    for (const auto& row : record.allocation.rows()) {
      for (predict::LoadForecaster* f : forecasters_) {
        f->add_load_bias(row.primary_host(), config_.admitted_load_bias);
      }
    }
  }
  record.charged = true;
}

void AppSubmissionService::release_locked(AppRecord& record) {
  if (!record.charged) return;
  for (const auto& [host, busy] : record.charge) {
    auto it = occupancy_.find(host);
    if (it == occupancy_.end()) continue;
    it->second -= busy;
    if (it->second <= 1e-9) occupancy_.erase(it);
  }
  if (config_.admitted_load_bias > 0.0) {
    for (const auto& row : record.allocation.rows()) {
      for (predict::LoadForecaster* f : forecasters_) {
        f->add_load_bias(row.primary_host(),
                         -config_.admitted_load_bias);
      }
    }
  }
  record.charged = false;
}

FaultTolerance AppSubmissionService::wrap_hooks(FaultTolerance hooks) {
  if (!config_.breaker.enabled) return hooks;
  // on_failure: every reported host failure feeds the breaker (task
  // errors on a live host do not -- a flaky task must not quarantine a
  // healthy machine).
  hooks.on_failure = [this, inner = std::move(hooks.on_failure)](
                         const RescheduleRequest& request) {
    if (inner) inner(request);
    if (request.kind == RescheduleRequest::Kind::kHostFailure) {
      breaker_.record_failure(request.host);
    }
  };
  // host_alive: a quarantined host reads as dead, so in-gang fault
  // guards refuse it and recovery excludes it even while the flapping
  // host happens to answer probes.
  hooks.host_alive = [this, inner = std::move(hooks.host_alive)](
                         common::HostId host) {
    if (breaker_.quarantined(host)) return false;
    return inner ? inner(host) : true;
  };
  return hooks;
}

bool AppSubmissionService::replan_for_restart(AppRecord& rec,
                                              const std::string& why) {
  common::ScopedSpan span("app_restart", "submission");
  if (span.active()) {
    span.arg("app", rec.app.value());
    span.arg("restart", rec.restarts + 1);
    span.arg("reason", why);
  }

  std::lock_guard lk(mu_);
  // Quarantine: hosts the health probe reports dead plus everything the
  // circuit breaker holds open.
  std::vector<common::HostId> excluded = breaker_.quarantined_hosts();
  for (const auto& row : rec.allocation.rows()) {
    const common::HostId host = row.primary_host();
    const bool dead = health_probe_ && !health_probe_(host);
    if (dead && std::find(excluded.begin(), excluded.end(), host) ==
                    excluded.end()) {
      excluded.push_back(host);
    }
  }

  // Release this app's commitments before re-admitting: the residual
  // capacity it re-checks against must not charge its own old plan.
  release_locked(rec);

  // Re-place only the *incomplete* subgraph (checkpointed tasks never
  // re-execute, so their rows only matter as parent-site transfer
  // anchors) and only rows whose host is quarantined.
  sched::SiteScheduler scheduler(local_site_, *directory_,
                                 config_.scheduler);
  std::size_t moved = 0;
  for (const TaskId task : rec.request.graph.topological_order()) {
    if (config_.checkpointing && checkpoints_.completed(rec.app, task)) {
      continue;
    }
    const common::HostId host = rec.allocation.entry(task).primary_host();
    if (std::find(excluded.begin(), excluded.end(), host) ==
        excluded.end()) {
      continue;
    }
    // The scheduler only knows the exclusion list, not liveness: a
    // whole-site outage leaves sibling hosts it would happily pick, so
    // probe each candidate and widen the quarantine until one is alive.
    auto replacement = scheduler.reschedule(rec.request.graph,
                                            rec.allocation, task, excluded);
    while (replacement && health_probe_ &&
           !health_probe_(replacement->primary_host())) {
      excluded.push_back(replacement->primary_host());
      replacement = scheduler.reschedule(rec.request.graph, rec.allocation,
                                         task, excluded);
    }
    if (!replacement) {
      rec.error = "failover replan: no feasible host for task " +
                  std::to_string(task.value()) + " (" + why + ")";
      if (span.active()) span.arg("outcome", "no_feasible_host");
      return false;
    }
    rec.allocation.replace(*replacement);
    ++moved;
  }

  // Residual-capacity re-admission over the surviving plan.
  rec.admission =
      sched::check_qos(rec.request.graph, rec.allocation, *directory_,
                       rec.request.qos, occupancy_);
  if (!rec.admission.admitted) {
    rec.error = "failover replan: QoS re-admission refused, slack " +
                std::to_string(rec.admission.slack_s) + "s (" + why + ")";
    if (span.active()) span.arg("outcome", "readmission_refused");
    return false;
  }
  charge_locked(rec);

  ++rec.restarts;
  ++stats_.restarts;
  bump("submission.restarts");
  if (span.active()) {
    span.arg("outcome", "restarting");
    span.arg("tasks_moved", moved);
    span.arg("excluded", excluded.size());
  }
  common::log_info("submission", "app ", rec.app.value(), " restart ",
                   rec.restarts, ": ", moved, " tasks re-placed, ",
                   excluded.size(), " hosts quarantined (", why, ")");
  return true;
}

void AppSubmissionService::worker_loop() {
  for (;;) {
    std::shared_ptr<AppRecord> rec;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [&] {
        return shutdown_ || (!paused_ && !ready_.empty());
      });
      if (ready_.empty()) {
        if (shutdown_) return;
        continue;
      }
      rec = pick_next_locked();
    }

    EngineConfig engine_config = config_.engine;
    engine_config.seed = rec->request.seed;
    ExecutionEngine engine(*registry_, engine_config);
    CheckpointStore* checkpoint =
        config_.checkpointing ? &checkpoints_ : nullptr;

    RunResult result;
    std::string error;
    double restart_backoff = config_.restart_backoff_s;
    for (;;) {
      FaultTolerance hooks;
      const FaultTolerance* hooks_ptr = nullptr;
      if (fault_hooks_) {
        // Rebuilt per attempt: the factory's closures see the replanned
        // allocation (stable address inside the record).
        hooks = wrap_hooks(fault_hooks_(rec->request.graph,
                                        rec->allocation));
        hooks_ptr = &hooks;
      }

      error.clear();
      {
        common::ScopedSpan run_span("app_run", "submission");
        if (run_span.active()) {
          run_span.rename("run:" + rec->request.graph.name());
          run_span.arg("app", rec->app.value());
          run_span.arg("user", rec->request.user);
          run_span.arg("grant", rec->grant_index);
          if (rec->restarts > 0) run_span.arg("restart", rec->restarts);
        }
        try {
          result = engine.execute(rec->request.graph, rec->allocation,
                                  feedback_, nullptr, hooks_ptr, rec->app,
                                  checkpoint);
        } catch (const std::exception& e) {
          error = e.what();
        }
        if (run_span.active()) {
          run_span.arg("outcome", error.empty() ? "completed" : "failed");
        }
      }
      if (error.empty() ||
          rec->restarts >= static_cast<std::size_t>(
                               std::max(config_.max_restarts, 0))) {
        break;
      }
      if (!replan_for_restart(*rec, error)) {
        error = rec->error;  // the replan's refusal reason is terminal
        break;
      }

      // Exponential backoff with deterministic jitter seeded from
      // (engine seed, app, restart attempt): lets the fault window pass
      // and de-correlates simultaneous failovers without global state.
      double nap = restart_backoff;
      if (config_.restart_backoff_jitter > 0.0) {
        common::Rng jitter(engine_config.seed ^
                           (static_cast<std::uint64_t>(rec->app.value())
                            << 32) ^
                           (0x9E3779B97F4A7C15ull * rec->restarts));
        nap *= 1.0 + config_.restart_backoff_jitter *
                         (jitter.uniform() - 0.5);
      }
      if (nap > 0.0) {
        if (hooks.sleep) {
          hooks.sleep(nap);
        } else {
          std::this_thread::sleep_for(std::chrono::duration<double>(nap));
        }
      }
      restart_backoff *= config_.restart_backoff_multiplier;
    }

    {
      std::lock_guard lk(mu_);
      release_locked(*rec);
      --running_;
      if (error.empty()) {
        rec->result = std::move(result);
        rec->state = SubmissionState::kCompleted;
        ++stats_.completed;
        bump("submission.completed");
      } else {
        rec->error = std::move(error);
        rec->state = SubmissionState::kFailed;
        ++stats_.failed;
        bump("submission.failed");
        common::log_info("submission", "app ", rec->app.value(),
                         " failed: ", rec->error);
      }
      common::MetricsRegistry::global()
          .gauge("submission.running")
          .set(static_cast<double>(running_));
    }
    // Terminal either way: the frontier snapshot is no longer needed.
    checkpoints_.drop_app(rec->app);
    cv_.notify_all();
  }
}

SubmissionStatus AppSubmissionService::snapshot_locked(
    const AppRecord& rec) const {
  SubmissionStatus status;
  status.app = rec.app;
  status.state = rec.state;
  status.user = rec.request.user;
  status.admission = rec.admission;
  status.queue_eta_s = rec.queue_eta_s;
  status.allocation = rec.allocation;
  status.grant_index = rec.grant_index;
  status.restarts = rec.restarts;
  status.result = rec.result;
  status.error = rec.error;
  return status;
}

SubmissionStatus AppSubmissionService::wait(common::AppId app) const {
  std::unique_lock lk(mu_);
  const auto it = records_.find(app);
  if (it == records_.end()) {
    throw common::NotFoundError("unknown submission ticket");
  }
  const auto rec = it->second;
  cv_.wait(lk, [&] { return is_terminal(rec->state); });
  return snapshot_locked(*rec);
}

SubmissionStatus AppSubmissionService::status(common::AppId app) const {
  std::lock_guard lk(mu_);
  const auto it = records_.find(app);
  if (it == records_.end()) {
    throw common::NotFoundError("unknown submission ticket");
  }
  return snapshot_locked(*it->second);
}

void AppSubmissionService::resume() {
  {
    std::lock_guard lk(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void AppSubmissionService::drain() const {
  std::unique_lock lk(mu_);
  cv_.wait(lk, [&] { return ready_.empty() && running_ == 0; });
}

SubmissionStats AppSubmissionService::stats() const {
  std::lock_guard lk(mu_);
  SubmissionStats out = stats_;
  out.running = running_;
  out.queue_depth = ready_.size();
  return out;
}

}  // namespace vdce::rt
