#include "runtime/control_manager.hpp"

#include "common/error.hpp"
#include "common/metrics.hpp"

namespace vdce::rt {

ControlManager::ControlManager(netsim::VirtualTestbed& testbed, SiteId site,
                               SiteManager& site_manager,
                               Duration monitor_period_s,
                               GroupManagerConfig group_config)
    : site_manager_(&site_manager) {
  for (const GroupId group : testbed.groups_in_site(site)) {
    group_managers_.emplace_back(testbed, group, monitor_period_s,
                                 group_config);
  }
}

void ControlManager::tick(TimePoint now) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (GroupManager& gm : group_managers_) {
    GroupTickOutput out = gm.tick(now);
    for (const WorkloadUpdate& u : out.workload_updates) {
      site_manager_->handle_workload(u);
    }
    for (const LivenessChange& c : out.liveness_changes) {
      site_manager_->handle_liveness(c);
    }
    for (const NetworkMeasurement& m : out.network_measurements) {
      site_manager_->handle_network(m);
    }
  }
}

void ControlManager::run_until(TimePoint from, TimePoint to,
                               Duration step_s) {
  common::expects(step_s > 0.0, "tick step must be positive");
  for (TimePoint t = from + step_s; t <= to + 1e-9; t += step_s) {
    tick(t);
  }
}

void ControlManager::report_task_failure(const RescheduleRequest& request) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++reschedule_requests_;
  common::MetricsRegistry::global()
      .counter("control.reschedule_requests")
      .add(1);
  if (request.kind != RescheduleRequest::Kind::kHostFailure) return;
  for (GroupManager& gm : group_managers_) {
    if (!gm.manages(request.host)) continue;
    if (const auto change =
            gm.report_task_failure(request.host, request.when)) {
      site_manager_->handle_liveness(*change);
    }
    return;
  }
}

ControlManagerStats ControlManager::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  ControlManagerStats total;
  for (const GroupManager& gm : group_managers_) {
    total.reports_received += gm.stats().reports_received;
    total.updates_forwarded += gm.stats().updates_forwarded;
    total.failures_detected += gm.stats().failures_detected;
    total.recoveries_detected += gm.stats().recoveries_detected;
  }
  total.reschedule_requests = reschedule_requests_;
  return total;
}

}  // namespace vdce::rt
