#include "runtime/control_manager.hpp"

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "runtime/wire.hpp"

namespace vdce::rt {

ControlManager::ControlManager(netsim::VirtualTestbed& testbed, SiteId site,
                               SiteManager& site_manager,
                               Duration monitor_period_s,
                               GroupManagerConfig group_config)
    : site_manager_(&site_manager),
      transport_(std::make_unique<LoopbackControlTransport>(
          static_cast<ControlSink&>(*this))) {
  for (const GroupId group : testbed.groups_in_site(site)) {
    group_managers_.emplace_back(testbed, group, monitor_period_s,
                                 group_config);
  }
}

void ControlManager::set_transport(
    std::unique_ptr<ControlTransport> transport) {
  common::expects(transport != nullptr, "control transport must be non-null");
  const std::lock_guard<std::mutex> lock(mutex_);
  transport_ = std::move(transport);
}

void ControlManager::tick(TimePoint now) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (GroupManager& gm : group_managers_) {
    GroupTickOutput out = gm.tick(now);
    // Every message crosses the transport in wire form; with the
    // default loopback the dispatch below lands back in on_workload /
    // on_liveness / on_network synchronously.
    for (const WorkloadUpdate& u : out.workload_updates) {
      transport_->publish(wire::encode(u));
    }
    for (const LivenessChange& c : out.liveness_changes) {
      transport_->publish(wire::encode(c));
    }
    for (const NetworkMeasurement& m : out.network_measurements) {
      transport_->publish(wire::encode(m));
    }
  }
}

void ControlManager::run_until(TimePoint from, TimePoint to,
                               Duration step_s) {
  common::expects(step_s > 0.0, "tick step must be positive");
  for (TimePoint t = from + step_s; t <= to + 1e-9; t += step_s) {
    tick(t);
  }
}

void ControlManager::report_task_failure(const RescheduleRequest& request) {
  const std::lock_guard<std::mutex> lock(mutex_);
  transport_->publish(wire::encode(request));
}

void ControlManager::on_workload(const WorkloadUpdate& update) {
  site_manager_->handle_workload(update);
}

void ControlManager::on_liveness(const LivenessChange& change) {
  site_manager_->handle_liveness(change);
}

void ControlManager::on_network(const NetworkMeasurement& measurement) {
  site_manager_->handle_network(measurement);
}

void ControlManager::on_reschedule(const RescheduleRequest& request) {
  ++reschedule_requests_;
  common::MetricsRegistry::global()
      .counter("control.reschedule_requests")
      .add(1);
  if (request.kind != RescheduleRequest::Kind::kHostFailure) return;
  for (GroupManager& gm : group_managers_) {
    if (!gm.manages(request.host)) continue;
    if (const auto change =
            gm.report_task_failure(request.host, request.when)) {
      site_manager_->handle_liveness(*change);
    }
    return;
  }
}

ControlManagerStats ControlManager::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  ControlManagerStats total;
  for (const GroupManager& gm : group_managers_) {
    total.reports_received += gm.stats().reports_received;
    total.updates_forwarded += gm.stats().updates_forwarded;
    total.failures_detected += gm.stats().failures_detected;
    total.recoveries_detected += gm.stats().recoveries_detected;
  }
  total.reschedule_requests = reschedule_requests_;
  total.control_messages_sent = transport_->stats().messages;
  total.control_bytes_sent = transport_->stats().bytes;
  return total;
}

}  // namespace vdce::rt
