#include "runtime/site_manager.hpp"

#include "common/log.hpp"

namespace vdce::rt {

SiteManager::SiteManager(SiteId site, repo::SiteRepository& repository,
                         predict::LoadForecaster& forecaster)
    : site_(site),
      repository_(&repository),
      forecaster_(&forecaster),
      predictor_(repository, &forecaster, &cache_) {}

void SiteManager::handle_workload(const WorkloadUpdate& update) {
  ++stats_.workload_updates;
  auto rec = repository_->resources().find(update.host);
  if (!rec) return;  // host was removed; stale update
  rec->dynamic_attrs.cpu_load = update.cpu_load;
  rec->dynamic_attrs.available_memory_mb = update.available_memory_mb;
  rec->dynamic_attrs.last_update = update.when;
  repository_->resources().update_dynamic(update.host, rec->dynamic_attrs);
  forecaster_->observe(update.host, update.cpu_load);
}

void SiteManager::handle_liveness(const LivenessChange& change) {
  ++stats_.liveness_changes;
  if (!repository_->resources().find(change.host)) return;
  repository_->resources().set_alive(change.host, change.alive, change.when);
  common::log_info("site_manager",
                   "host ", change.host.value(), " marked ",
                   change.alive ? "up" : "down", " at t=", change.when);
  if (!change.alive) forecaster_->forget(change.host);
}

void SiteManager::handle_network(const NetworkMeasurement& measurement) {
  ++stats_.network_measurements;
  repo::NetworkAttrs attrs;
  attrs.latency_s = measurement.latency_s;
  attrs.transfer_mb_per_s = measurement.transfer_mb_per_s;
  attrs.last_update = measurement.when;
  repository_->resources().update_group_network(measurement.group,
                                                measurement.group, attrs);
}

void SiteManager::record_task_time(const std::string& library_task,
                                   Duration elapsed_s) {
  stats_.task_times_recorded.fetch_add(1, std::memory_order_relaxed);
  repository_->tasks().record_measurement(library_task, elapsed_s);
}

repo::UserAccount SiteManager::login(const std::string& user,
                                     const std::string& password) {
  ++stats_.logins;
  return repository_->users().authenticate(user, password);
}

sched::HostSelectionMap SiteManager::host_selection_request(
    const afg::FlowGraph& graph, std::size_t threads) {
  stats_.host_selection_requests.fetch_add(1, std::memory_order_relaxed);
  return sched::run_host_selection(graph, site_, predictor_, threads);
}

sched::HostSelection SiteManager::reschedule_request(
    const afg::TaskNode& node, const std::vector<HostId>& excluded) {
  stats_.reschedule_requests.fetch_add(1, std::memory_order_relaxed);
  return sched::run_host_reselection(node, site_, predictor_, excluded);
}

std::map<HostId, std::vector<sched::AllocationEntry>>
SiteManager::distribute_allocation(const sched::AllocationTable& table) {
  std::map<HostId, std::vector<sched::AllocationEntry>> portions;
  for (const sched::AllocationEntry& row : table.rows()) {
    if (row.site != site_) continue;
    for (const HostId host : row.hosts) {
      portions[host].push_back(row);
      ++stats_.allocation_rows_distributed;
    }
  }
  return portions;
}

}  // namespace vdce::rt
