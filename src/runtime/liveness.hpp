// Quorum liveness directory (design D17).
//
// D14 left site-death a single point of judgment: one watchdog timer
// missing one heartbeat deadline declared the site dead, so a slow
// coordinator link or a transient partition triggered false failovers.
// The LivenessDirectory replaces that verdict with a SWIM-style state
// machine per site:
//
//     alive --(witness suspicion)--> suspect --(quorum | unrefuted
//     deadline | first-hand death)--> dead
//
// Evidence comes from WITNESSES: the watchdog's heartbeat timer is one,
// every peer site daemon is another (they gossip-probe each other and
// report through peer-health digests, refutations, and indirect
// ping-req probes).  Death is declared only when
//
//   * `quorum` distinct witnesses concur (deaths_quorum),
//   * or a suspicion sits unrefuted past `suspicion_timeout_s`
//     (deaths_timeout -- the degenerate single-watchdog deployment
//     still converges),
//   * or first-hand evidence arrives (a reaped child process, an EOF on
//     an authenticated heartbeat connection: deaths_conclusive).
//
// Every piece of evidence carries the INCARNATION it is about; evidence
// about any other incarnation is discarded (fencing: a stale daemon
// limping back cannot vouch for -- or be blamed as -- its successor).
// A refutation from a higher incarnation cancels suspicion outright.
//
// The directory is clock-injectable (tests drive virtual time), fully
// thread-safe, and never calls back into its callers, so callers may
// hold their own locks across calls.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/ids.hpp"

namespace vdce::rt {

using common::SiteId;

enum class SiteLiveness : std::uint8_t {
  kAlive = 0,
  kSuspect = 1,
  kDead = 2,
};

[[nodiscard]] const char* to_string(SiteLiveness state);

struct LivenessConfig {
  /// Distinct witnesses whose concurring suspicion confirms a death.
  /// 1 reproduces the old single-timer behaviour (the watchdog's own
  /// vote is immediately decisive).
  int quorum = 2;
  /// A suspicion left unrefuted this long becomes a death even below
  /// quorum -- the liveness backstop for deployments with no peers
  /// left to vote.
  double suspicion_timeout_s = 1.0;
  /// Digest entries older than this are too stale to refute with.
  double freshness_s = 0.5;
};

/// Point-in-time liveness snapshot of one site.
struct SiteLivenessStatus {
  SiteLiveness state = SiteLiveness::kAlive;
  std::uint32_t incarnation = 0;
  /// Witnesses currently voting the site dead.
  std::size_t witnesses = 0;
  /// Steady seconds when the site entered suspect (0 when not).
  double suspect_since_s = 0.0;
  /// Reason attached to the last state transition.
  std::string reason;
};

/// Counters since construction (mirrors the liveness.* metrics).
struct LivenessStats {
  std::uint64_t suspects = 0;
  std::uint64_t refutations = 0;
  std::uint64_t deaths_quorum = 0;
  std::uint64_t deaths_timeout = 0;
  std::uint64_t deaths_conclusive = 0;
  std::uint64_t false_alarm_recoveries = 0;
};

/// Multi-witness per-site liveness state machines (D17).
class LivenessDirectory {
 public:
  explicit LivenessDirectory(LivenessConfig config = {});

  /// The watchdog's own witness identity (its heartbeat-deadline vote).
  /// Distinct from every real site and from SiteId::invalid().
  [[nodiscard]] static SiteId watchdog_witness() {
    return SiteId(0xFFFFFFFEu);
  }

  [[nodiscard]] const LivenessConfig& config() const { return config_; }

  /// Replaces the steady clock (tests drive virtual time).
  void set_clock(std::function<double()> clock);

  /// (Re)registers a site at `incarnation`: state alive, votes cleared.
  /// The watchdog calls this at every (re)launch; evidence about any
  /// other incarnation is ignored from then on.
  void track(SiteId site, std::uint32_t incarnation);

  /// First-hand proof of life (an authenticated heartbeat).  Clears
  /// every suspicion vote; a suspect site recovers to alive
  /// (false_alarm_recoveries).  Evidence about a past incarnation is
  /// dropped; a HIGHER incarnation re-tracks (even out of dead -- the
  /// successor process is a different liveness subject).
  void direct_alive(SiteId site, std::uint32_t incarnation);

  /// One witness votes the site dead.  alive -> suspect on the first
  /// vote; quorum concurring witnesses -> dead.  Idempotent per
  /// witness.  Returns the resulting state.
  SiteLiveness suspect(SiteId site, std::uint32_t incarnation, SiteId witness,
                       const std::string& why);

  /// One witness withdraws (or pre-empts) its vote: fresh second-hand
  /// evidence the site is alive.  Extends the suspicion deadline but
  /// does NOT flip suspect back to alive -- only first-hand heartbeats
  /// do.  A refutation from a HIGHER incarnation cancels the suspicion
  /// outright (the site restarted and announced itself).  Returns the
  /// resulting state.
  SiteLiveness refute(SiteId site, std::uint32_t incarnation, SiteId witness);

  /// First-hand death (reaped child, heartbeat-connection EOF): dead
  /// immediately, no quorum needed.  Returns the resulting state.
  SiteLiveness conclusive_dead(SiteId site, std::uint32_t incarnation,
                               const std::string& why);

  /// Expires unrefuted suspicions; returns the sites that just turned
  /// dead (each reported exactly once).
  std::vector<SiteId> poll();

  [[nodiscard]] SiteLiveness state(SiteId site) const;
  [[nodiscard]] SiteLivenessStatus status(SiteId site) const;
  [[nodiscard]] LivenessStats stats() const;

 private:
  struct Entry {
    SiteLiveness state = SiteLiveness::kAlive;
    std::uint32_t incarnation = 0;
    std::set<SiteId> votes;
    double suspect_since_s = 0.0;
    /// Steady seconds of the last refutation (extends the deadline).
    double last_refutation_s = 0.0;
    std::string reason;
  };

  /// Transitions `e` to dead (lock held).
  void die_locked(SiteId site, Entry& e, const std::string& why,
                  std::uint64_t LivenessStats::*counter, const char* metric);

  LivenessConfig config_;
  std::function<double()> clock_;
  mutable std::mutex mu_;
  std::map<SiteId, Entry> entries_;
  LivenessStats stats_;
};

}  // namespace vdce::rt
