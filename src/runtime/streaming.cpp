#include "runtime/streaming.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <mutex>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "datamgr/broker.hpp"
#include "datamgr/frame.hpp"
#include "runtime/checkpoint.hpp"

namespace vdce::rt {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t fnv1a(std::uint64_t h, std::span<const std::byte> bytes) {
  for (const std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001B3ull;
  }
  return h;
}

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ull;

}  // namespace

StreamingEngine::StreamingEngine(const tasklib::TaskRegistry& registry,
                                 StreamingConfig config)
    : registry_(&registry), config_(std::move(config)) {}

StreamRunResult StreamingEngine::execute(const afg::FlowGraph& graph,
                                         const sched::AllocationTable& alloc,
                                         const FaultTolerance* ft,
                                         common::AppId app,
                                         CheckpointStore* checkpoint) {
  graph.validate();
  if (!app.valid()) app = common::AppId(next_app_.fetch_add(1));
  const bool recovery_on = ft != nullptr && static_cast<bool>(ft->reschedule);
  const bool guarded = ft != nullptr && static_cast<bool>(ft->host_alive);
  const bool windowed = checkpoint != nullptr && config_.checkpoint_window > 0;

  auto& metrics = common::MetricsRegistry::global();
  auto& m_emitted = metrics.counter("streaming.frames_emitted");
  auto& m_skipped = metrics.counter("streaming.frames_skipped");
  auto& m_rolled_back = metrics.counter("streaming.frames_rolled_back");
  auto& m_resumed = metrics.counter("streaming.frames_resumed");
  auto& m_restarts = metrics.counter("streaming.restarts");
  auto& m_windows = metrics.counter("streaming.windows_captured");

  const std::vector<TaskId> topo = graph.topological_order();

  // Stage placements; rewritten between attempts when hosts die.
  std::map<TaskId, HostId> hosts;
  for (const TaskId t : topo) hosts[t] = alloc.entry(t).primary_host();

  // Sink accounting persists ACROSS attempts: a sink whose host
  // survived a mid-stream failure keeps its watermark in memory and
  // skips the re-flowing frames below it.
  struct SinkState {
    SinkStreamResult result;
    bool host_died = false;  // roll back to the durable window
  };
  std::map<TaskId, SinkState> sinks;
  for (const TaskId t : graph.exit_tasks()) {
    SinkState& st = sinks[t];
    st.result.task = t;
    st.result.label = graph.task(t).label;
    st.result.digest = kFnvOffset;
  }

  // Durable sink-state wire image (the per-window checkpoint payload):
  //   u64 watermark (== frames_emitted)   u64 digest   u64 bytes
  //   u32 retained-output count, then each output length-prefixed.
  const auto encode_sink = [&](const SinkStreamResult& r) {
    common::WireWriter w;
    w.write_u64(r.frames_emitted);
    w.write_u64(r.digest);
    w.write_u64(r.bytes_emitted);
    const std::uint32_t kept =
        config_.collect_outputs ? static_cast<std::uint32_t>(r.outputs.size())
                                : 0;
    w.write_u32(kept);
    for (std::uint32_t i = 0; i < kept; ++i) w.write_bytes(r.outputs[i]);
    return dm::FramePool::global().copy_of(w.bytes());
  };
  const auto decode_sink = [](const dm::FrameView& fv, SinkStreamResult& r) {
    common::WireReader rd(fv.bytes());
    r.frames_emitted = rd.read_u64();
    r.digest = rd.read_u64();
    r.bytes_emitted = rd.read_u64();
    r.outputs.clear();
    const std::uint32_t kept = rd.read_u32();
    for (std::uint32_t i = 0; i < kept; ++i) {
      r.outputs.push_back(rd.read_bytes());
    }
  };

  StreamRunResult run;
  run.app = app;
  const auto t_start = Clock::now();

  // Per-frame latency samples: sources stamp frame births, sinks
  // resolve them at emission.
  std::mutex lat_mu;
  std::map<std::uint64_t, Clock::time_point> born;

  dm::ChannelBroker broker(dm::TransportKind::kInProcess);
  std::vector<HostId> excluded;
  int attempt = 1;

  for (;;) {
    // ---- resume point: reconcile sink state with the durable windows.
    std::uint64_t resume_k = 0;
    if (windowed || !sinks.empty()) {
      std::uint64_t min_durable = std::numeric_limits<std::uint64_t>::max();
      for (auto& [t, st] : sinks) {
        SinkStreamResult durable;
        durable.task = t;
        durable.label = st.result.label;
        durable.digest = kFnvOffset;
        std::uint64_t captured_windows = st.result.windows_captured;
        std::uint64_t skipped = st.result.frames_skipped;
        std::uint64_t rolled = st.result.frames_rolled_back;
        if (windowed) {
          if (const auto entry = checkpoint->replay(app, t)) {
            decode_sink(entry->frame, durable);
          }
        }
        if (st.host_died) {
          // The sink itself died: its in-memory stream state is gone;
          // restart from the last durable window and re-emit the tail.
          const std::uint64_t lost =
              st.result.frames_emitted - durable.frames_emitted;
          st.result = durable;
          st.result.windows_captured = captured_windows;
          st.result.frames_skipped = skipped;
          st.result.frames_rolled_back = rolled + lost;
          m_rolled_back.add(lost);
          st.host_died = false;
        } else if (durable.frames_emitted > st.result.frames_emitted) {
          // Fresh execute() resuming an app the store already holds.
          st.result = durable;
          st.result.windows_captured = captured_windows;
          st.result.frames_skipped = skipped;
          st.result.frames_rolled_back = rolled;
        }
        min_durable = std::min(min_durable, durable.frames_emitted);
      }
      resume_k = sinks.empty() ? 0 : min_durable;
    }
    if (attempt > 1) {
      run.frames_resumed += resume_k;
      m_resumed.add(resume_k);
      if (resume_k > 0) {
        common::log_info("streaming", "app ", app.value(),
                         ": resuming from checkpoint window at frame ",
                         resume_k);
      }
    }
    {
      std::lock_guard lk(lat_mu);
      born.clear();
    }

    // ---- wire the pipeline: one bounded ring per AFG link, consumer
    // ends registered first so the producer claims never block.
    std::map<std::pair<TaskId, TaskId>, std::shared_ptr<dm::RingChannel>>
        rings;
    for (const TaskId t : topo) {
      for (const TaskId p : graph.ordered_parents(t)) {
        rings[{p, t}] = broker.open_stream_receive(
            dm::LinkKey{app, p, t}, config_.channel_capacity);
      }
    }
    for (const auto& [key, ring] : rings) {
      (void)broker.open_stream_send(dm::LinkKey{app, key.first, key.second});
    }

    // ---- first failure wins; everyone else unwinds off the aborted
    // rings.
    std::atomic<bool> failed{false};
    std::mutex fail_mu;
    TaskId failed_task;
    HostId failed_host;
    std::string fail_what;
    const auto report_failure = [&](TaskId t, HostId h,
                                    const std::string& what) {
      {
        std::lock_guard lk(fail_mu);
        if (!failed.load(std::memory_order_relaxed)) {
          failed.store(true, std::memory_order_relaxed);
          failed_task = t;
          failed_host = h;
          fail_what = what;
        }
      }
      broker.clear_app(app);  // abort every ring: unpark the pipeline
    };

    std::mutex tally_mu;  // guards run.stage_frames / run.source_frames

    const auto stage_main = [&](TaskId t) {
      const afg::TaskNode& node = graph.task(t);
      std::vector<std::shared_ptr<dm::RingChannel>> in_rings;
      for (const TaskId p : graph.ordered_parents(t)) {
        in_rings.push_back(rings.at({p, t}));
      }
      std::vector<std::shared_ptr<dm::RingChannel>> out_rings;
      for (const TaskId c : graph.children(t)) {
        out_rings.push_back(rings.at({t, c}));
      }
      const bool is_source = in_rings.empty();
      SinkState* sink = nullptr;
      if (const auto it = sinks.find(t); it != sinks.end()) {
        sink = &it->second;
      }

      std::uint64_t k = resume_k;
      std::uint64_t processed = 0;
      try {
        for (;;) {
          if (is_source) {
            if (config_.frames != 0 && k >= config_.frames) break;
            if (stop_.load(std::memory_order_relaxed)) break;
          }
          if (guarded && !ft->host_alive(hosts[t])) {
            if (sink != nullptr) sink->host_died = true;
            report_failure(t, hosts[t],
                           "host " + std::to_string(hosts[t].value()) +
                               " died mid-stream");
            return;
          }
          // One window per parent, in input-port order — the same
          // input vector the batch engine would assemble.
          std::vector<tasklib::Payload> inputs;
          inputs.reserve(in_rings.size());
          bool eos = false;
          for (const auto& in : in_rings) {
            auto fv = in->pop_for(config_.recv_timeout_s);
            if (!fv) {
              eos = true;
              break;
            }
            inputs.push_back(tasklib::Payload::from_wire(fv->to_vector()));
          }
          if (eos) break;

          tasklib::TaskContext ctx;
          ctx.input_size = node.props.input_size;
          common::Rng rng(
              stream_frame_seed(config_.seed, k) ^
              (static_cast<std::uint64_t>(app.value()) << 32) ^ t.value());
          ctx.rng = &rng;
          tasklib::Payload out =
              registry_->run(node.library_task, inputs, ctx);
          ++processed;

          if (is_source && config_.track_latency) {
            std::lock_guard lk(lat_mu);
            born.emplace(k, Clock::now());
          }
          if (sink != nullptr) {
            SinkStreamResult& r = sink->result;
            if (k < r.frames_emitted) {
              // A frame below the watermark re-flowed after a resume:
              // already counted, never emit twice.
              ++r.frames_skipped;
              m_skipped.add(1);
            } else {
              const std::vector<std::byte> wire = out.to_wire();
              r.digest = fnv1a(r.digest, wire);
              r.bytes_emitted += wire.size();
              ++r.frames_emitted;
              m_emitted.add(1);
              if (config_.collect_outputs) r.outputs.push_back(wire);
              if (config_.track_latency) {
                std::lock_guard lk(lat_mu);
                if (const auto it = born.find(k); it != born.end()) {
                  run.sink_latencies_s.push_back(
                      std::chrono::duration<double>(Clock::now() - it->second)
                          .count());
                  born.erase(it);
                }
              }
              if (config_.on_sink_frame) config_.on_sink_frame(t, k);
              if (windowed &&
                  r.frames_emitted % config_.checkpoint_window == 0) {
                checkpoint->record(
                    app, t,
                    static_cast<int>(r.frames_emitted /
                                     config_.checkpoint_window),
                    hosts[t], encode_sink(r), 0.0);
                ++r.windows_captured;
                m_windows.add(1);
              }
            }
          } else {
            // Encode once into a pooled frame; fan-out shares the slab
            // by refcount, and a full downstream ring parks us here —
            // the backpressure that keeps memory flat.
            dm::Frame frame =
                dm::FramePool::global().allocate(out.wire_size());
            out.write_wire(frame.span());
            const dm::FrameView view = frame.view();
            for (const auto& o : out_rings) o->push(view);
          }
          ++k;
        }
        // Clean end of this stage's stream: retire from every
        // downstream ring so EOS drains through the pipeline.
        for (const auto& o : out_rings) o->close_send();
      } catch (const common::VdceError& e) {
        // Either this stage genuinely failed (compute threw, receive
        // deadline) or it was unparked off a ring another stage's
        // failure aborted; report_failure keeps only the first cause.
        report_failure(t, hosts[t], e.what());
      }
      std::lock_guard lk(tally_mu);
      run.stage_frames[t] += processed;
      if (is_source) run.source_frames += processed;
    };

    std::vector<std::thread> stages;
    stages.reserve(topo.size());
    for (const TaskId t : topo) stages.emplace_back(stage_main, t);
    for (std::thread& th : stages) th.join();

    for (const auto& [key, ring] : rings) {
      const dm::RingChannelStats rs = ring->stats();
      run.max_ring_occupancy = std::max(run.max_ring_occupancy, rs.high_water);
      run.producer_parks += rs.producer_parks;
    }

    if (!failed.load(std::memory_order_relaxed)) {
      broker.clear_app(app);  // drop the drained registrations
      break;
    }

    const std::string failed_label = graph.task(failed_task).label;
    if (!recovery_on || attempt >= config_.max_attempts) {
      run.elapsed_s =
          std::chrono::duration<double>(Clock::now() - t_start).count();
      throw common::StateError("streaming task '" + failed_label +
                               "' failed: " + fail_what);
    }
    if (ft->on_failure) {
      RescheduleRequest req;
      req.app = app;
      req.task = failed_task;
      req.host = failed_host;
      req.kind = RescheduleRequest::Kind::kHostFailure;
      req.reason = fail_what;
      ft->on_failure(req);
    }
    if (std::find(excluded.begin(), excluded.end(), failed_host) ==
        excluded.end()) {
      excluded.push_back(failed_host);
    }
    // Re-place every stage stranded on a dead host (the failing one,
    // plus any other casualty of the same fault window).
    for (auto& [t, h] : hosts) {
      const bool dead = guarded ? !ft->host_alive(h) : h == failed_host;
      if (!dead) continue;
      if (std::find(excluded.begin(), excluded.end(), h) == excluded.end()) {
        excluded.push_back(h);
      }
      const auto replacement = ft->reschedule(graph.task(t), excluded);
      if (!replacement) {
        run.elapsed_s =
            std::chrono::duration<double>(Clock::now() - t_start).count();
        throw common::StateError("no feasible host left for streaming task '" +
                                 graph.task(t).label + "'");
      }
      h = replacement->primary_host();
      ++run.reschedules;
    }
    if (config_.retry_backoff_s > 0.0) {
      if (ft->sleep) {
        ft->sleep(config_.retry_backoff_s);
      } else {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(config_.retry_backoff_s));
      }
    }
    ++attempt;
    ++run.restarts;
    m_restarts.add(1);
    common::log_info("streaming", "app ", app.value(), ": stage '",
                     failed_label, "' failed (", fail_what, "); restarting (",
                     attempt, "/", config_.max_attempts, ")");
  }

  for (const auto& [t, st] : sinks) run.sinks[t] = st.result;
  run.elapsed_s =
      std::chrono::duration<double>(Clock::now() - t_start).count();
  return run;
}

}  // namespace vdce::rt
