#include "runtime/group_manager.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace vdce::rt {

GroupManager::GroupManager(netsim::VirtualTestbed& testbed, GroupId group,
                           Duration monitor_period_s,
                           GroupManagerConfig config)
    : testbed_(&testbed), group_(group), config_(config) {
  common::expects(config.echo_period_s > 0.0,
                  "echo period must be positive");
  for (const HostId host : testbed.hosts_in_group(group)) {
    monitors_.emplace_back(testbed, host, monitor_period_s);
    tracking_.emplace(
        host, HostTracking{common::SlidingWindowStats(config_.window), -1.0,
                           true});
  }
}

GroupTickOutput GroupManager::tick(TimePoint now) {
  GroupTickOutput out;
  std::uint64_t received_this_tick = 0;

  // 1. Collect due monitor reports and run the forwarding filter.
  for (Monitor& monitor : monitors_) {
    const auto report = monitor.tick(now);
    if (!report) continue;
    ++stats_.reports_received;
    ++received_this_tick;

    HostTracking& tr = tracking_.at(report->host);
    // CI width from the *previous* window, before this measurement.
    const double halfwidth = tr.window.confidence_halfwidth(config_.ci_z);
    tr.window.add(report->cpu_load);

    bool forward = true;
    if (config_.ci_filter && tr.last_forwarded_load >= 0.0) {
      forward = std::abs(report->cpu_load - tr.last_forwarded_load) >
                halfwidth;
    }
    if (forward) {
      tr.last_forwarded_load = report->cpu_load;
      out.workload_updates.push_back(WorkloadUpdate{
          report->host, report->when, report->cpu_load,
          report->available_memory_mb});
      ++stats_.updates_forwarded;
    }
  }
  if (received_this_tick > 0) {
    auto& metrics = common::MetricsRegistry::global();
    metrics.counter("monitor.reports_received").add(received_this_tick);
    metrics.counter("monitor.updates_forwarded")
        .add(out.workload_updates.size());
    metrics.counter("monitor.updates_suppressed")
        .add(received_this_tick - out.workload_updates.size());
  }

  // 2. Echo (keep-alive) round.
  if (now >= next_echo_) {
    while (next_echo_ <= now) next_echo_ += config_.echo_period_s;
    ++stats_.echo_rounds;

    for (auto& [host, tr] : tracking_) {
      const bool alive = testbed_->is_alive(host, now);
      if (alive != tr.believed_alive) {
        tr.believed_alive = alive;
        out.liveness_changes.push_back(LivenessChange{host, now, alive});
        if (alive) {
          ++stats_.recoveries_detected;
        } else {
          ++stats_.failures_detected;
        }
        if (common::trace_enabled()) {
          common::trace_instant(
              "liveness_change", "monitor",
              {{"host", std::to_string(host.value())},
               {"alive", alive ? "true" : "false"}});
        }
        common::MetricsRegistry::global()
            .counter(alive ? "monitor.recoveries_detected"
                           : "monitor.failures_detected")
            .add(1);
      }
    }

    // Echo round-trips double as intra-group network measurement.
    const auto lan = testbed_->lan_attrs(group_);
    out.network_measurements.push_back(NetworkMeasurement{
        group_, now, lan.latency_s, lan.transfer_mb_per_s});
  }

  return out;
}

std::optional<LivenessChange> GroupManager::report_task_failure(
    HostId host, TimePoint when) {
  const auto it = tracking_.find(host);
  if (it == tracking_.end()) return std::nullopt;
  if (!it->second.believed_alive) return std::nullopt;  // already known down
  it->second.believed_alive = false;
  ++stats_.failures_detected;
  if (common::trace_enabled()) {
    common::trace_instant("task_failure_report", "monitor",
                          {{"host", std::to_string(host.value())}});
  }
  common::MetricsRegistry::global()
      .counter("monitor.failures_detected")
      .add(1);
  return LivenessChange{host, when, false};
}

std::vector<HostId> GroupManager::hosts_believed_alive() const {
  std::vector<HostId> out;
  for (const auto& [host, tr] : tracking_) {
    if (tr.believed_alive) out.push_back(host);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace vdce::rt
