#include "repository/task_db.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace vdce::repo {

void TaskPerformanceDb::register_task(const TaskPerformanceRecord& record) {
  std::lock_guard lk(mu_);
  version_.fetch_add(1, std::memory_order_release);
  tasks_[record.task_name] = record;
}

TaskPerformanceRecord TaskPerformanceDb::get(
    const std::string& task_name) const {
  std::lock_guard lk(mu_);
  const auto it = tasks_.find(task_name);
  if (it == tasks_.end()) {
    throw common::NotFoundError("unknown task: " + task_name);
  }
  return it->second;
}

std::optional<TaskPerformanceRecord> TaskPerformanceDb::find(
    const std::string& task_name) const {
  std::lock_guard lk(mu_);
  const auto it = tasks_.find(task_name);
  if (it == tasks_.end()) return std::nullopt;
  return it->second;
}

bool TaskPerformanceDb::contains(const std::string& task_name) const {
  std::lock_guard lk(mu_);
  return tasks_.contains(task_name);
}

std::vector<std::string> TaskPerformanceDb::task_names() const {
  std::lock_guard lk(mu_);
  std::vector<std::string> out;
  out.reserve(tasks_.size());
  for (const auto& [name, _] : tasks_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t TaskPerformanceDb::size() const {
  std::lock_guard lk(mu_);
  return tasks_.size();
}

void TaskPerformanceDb::set_power_weight(const std::string& task_name,
                                         HostId host, double weight) {
  common::expects(weight > 0.0, "power weight must be positive");
  std::lock_guard lk(mu_);
  version_.fetch_add(1, std::memory_order_release);
  host_weights_[task_name][host] = weight;
}

void TaskPerformanceDb::set_arch_weight(const std::string& task_name,
                                        ArchType arch, double weight) {
  common::expects(weight > 0.0, "power weight must be positive");
  std::lock_guard lk(mu_);
  version_.fetch_add(1, std::memory_order_release);
  arch_weights_[task_name][static_cast<int>(arch)] = weight;
}

double TaskPerformanceDb::power_weight(const std::string& task_name,
                                       HostId host, ArchType arch) const {
  std::lock_guard lk(mu_);
  if (const auto ht = host_weights_.find(task_name);
      ht != host_weights_.end()) {
    if (const auto hw = ht->second.find(host); hw != ht->second.end()) {
      return hw->second;
    }
  }
  if (const auto at = arch_weights_.find(task_name);
      at != arch_weights_.end()) {
    if (const auto aw = at->second.find(static_cast<int>(arch));
        aw != at->second.end()) {
      return aw->second;
    }
  }
  return 1.0;
}

TaskWeightTable TaskPerformanceDb::weight_table(
    const std::string& task_name) const {
  std::lock_guard lk(mu_);
  TaskWeightTable out;
  if (const auto ht = host_weights_.find(task_name);
      ht != host_weights_.end()) {
    out.host_weights = ht->second;
  }
  if (const auto at = arch_weights_.find(task_name);
      at != arch_weights_.end()) {
    out.arch_weights = at->second;
  }
  return out;
}

void TaskPerformanceDb::record_measurement(const std::string& task_name,
                                           Duration elapsed_s) {
  std::lock_guard lk(mu_);
  const auto it = tasks_.find(task_name);
  if (it == tasks_.end()) {
    throw common::NotFoundError("unknown task: " + task_name);
  }
  auto& hist = it->second.measured_history;
  hist.push_back(elapsed_s);
  if (hist.size() > kHistoryCapacity) {
    hist.erase(hist.begin(),
               hist.begin() +
                   static_cast<std::ptrdiff_t>(hist.size() - kHistoryCapacity));
  }
}

std::vector<std::tuple<std::string, HostId, double>>
TaskPerformanceDb::all_host_weights() const {
  std::lock_guard lk(mu_);
  std::vector<std::tuple<std::string, HostId, double>> out;
  for (const auto& [task, weights] : host_weights_) {
    for (const auto& [host, w] : weights) out.emplace_back(task, host, w);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::tuple<std::string, ArchType, double>>
TaskPerformanceDb::all_arch_weights() const {
  std::lock_guard lk(mu_);
  std::vector<std::tuple<std::string, ArchType, double>> out;
  for (const auto& [task, weights] : arch_weights_) {
    for (const auto& [arch, w] : weights) {
      out.emplace_back(task, static_cast<ArchType>(arch), w);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace vdce::repo
