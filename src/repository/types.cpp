#include "repository/types.hpp"

#include "common/error.hpp"

namespace vdce::repo {

std::string to_string(ArchType a) {
  switch (a) {
    case ArchType::kSparc:   return "sparc";
    case ArchType::kIntel:   return "intel";
    case ArchType::kAlpha:   return "alpha";
    case ArchType::kPowerPc: return "powerpc";
    case ArchType::kMips:    return "mips";
  }
  return "unknown";
}

std::string to_string(OsType o) {
  switch (o) {
    case OsType::kSolaris: return "solaris";
    case OsType::kLinux:   return "linux";
    case OsType::kOsf1:    return "osf1";
    case OsType::kAix:     return "aix";
    case OsType::kIrix:    return "irix";
  }
  return "unknown";
}

ArchType arch_from_string(const std::string& s) {
  if (s == "sparc") return ArchType::kSparc;
  if (s == "intel") return ArchType::kIntel;
  if (s == "alpha") return ArchType::kAlpha;
  if (s == "powerpc") return ArchType::kPowerPc;
  if (s == "mips") return ArchType::kMips;
  throw common::ParseError("unknown architecture type: " + s);
}

OsType os_from_string(const std::string& s) {
  if (s == "solaris") return OsType::kSolaris;
  if (s == "linux") return OsType::kLinux;
  if (s == "osf1") return OsType::kOsf1;
  if (s == "aix") return OsType::kAix;
  if (s == "irix") return OsType::kIrix;
  throw common::ParseError("unknown OS type: " + s);
}

}  // namespace vdce::repo
