// Task-performance database.
//
// "The task-performance database provides performance characteristics
//  for each task in the system, and is used to predict the performance
//  of the task on a given resource.  Each task implementation is
//  specified by several parameters such as computation size,
//  communication size, required memory size, etc."  (Section 2)
//
// It also stores the per-(task, resource) computing-power weights the
// prediction functions need ("Trial runs are required to obtain the
// computing power weights of processors for each task", Section 2.2.1)
// and the measured execution-time history the Site Manager feeds back
// after every run.
#pragma once

#include <atomic>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "repository/types.hpp"

namespace vdce::repo {

/// Snapshot of every computing-power weight registered for one task:
/// host-specific trial-run weights plus per-architecture fallbacks.
/// Lets a hot loop resolve weights without re-walking the string-keyed
/// database maps under their lock for every (task, host) pair.
struct TaskWeightTable {
  std::unordered_map<HostId, double> host_weights;
  std::unordered_map<int, double> arch_weights;

  /// Same resolution order as TaskPerformanceDb::power_weight:
  /// host-specific first, then architecture fallback, then 1.0.
  [[nodiscard]] double resolve(HostId host, ArchType arch) const {
    if (const auto hw = host_weights.find(host); hw != host_weights.end()) {
      return hw->second;
    }
    if (const auto aw = arch_weights.find(static_cast<int>(arch));
        aw != arch_weights.end()) {
      return aw->second;
    }
    return 1.0;
  }
};

/// Thread-safe store of task performance characteristics.
class TaskPerformanceDb {
 public:
  /// Maximum retained measured-history entries per task.
  static constexpr std::size_t kHistoryCapacity = 32;

  /// Registers (or overwrites) a task's characteristics.
  void register_task(const TaskPerformanceRecord& record);

  [[nodiscard]] TaskPerformanceRecord get(const std::string& task_name) const;
  [[nodiscard]] std::optional<TaskPerformanceRecord> find(
      const std::string& task_name) const;
  [[nodiscard]] bool contains(const std::string& task_name) const;
  [[nodiscard]] std::vector<std::string> task_names() const;
  [[nodiscard]] std::size_t size() const;

  /// Sets the computing-power weight of a specific host for a task:
  /// predicted dedicated time on the host = base_time / weight.
  /// Weight 2.0 means "twice as fast as the base processor for this
  /// task".
  void set_power_weight(const std::string& task_name, HostId host,
                        double weight);

  /// Sets a per-architecture fallback weight used when no host-specific
  /// trial run exists.
  void set_arch_weight(const std::string& task_name, ArchType arch,
                       double weight);

  /// Resolves the weight for (task, host, arch): host-specific first,
  /// then architecture fallback, then 1.0.
  [[nodiscard]] double power_weight(const std::string& task_name, HostId host,
                                    ArchType arch) const;

  /// One-shot snapshot of all of a task's weights (for per-graph
  /// prefetching in the scheduling hot path).
  [[nodiscard]] TaskWeightTable weight_table(
      const std::string& task_name) const;

  /// Monotonic counter bumped by every mutation that can change a
  /// Predict() result (task registration, weight changes).  Feeds the
  /// PredictionCache epoch.  record_measurement() does not bump it:
  /// the measured history is not a Predict() input.
  [[nodiscard]] std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// Appends a newly measured execution time ("After an application
  /// execution is completed, the newly measured execution time of each
  /// application task is stored in the task-performance database").
  /// Bounded to kHistoryCapacity entries.  Throws NotFoundError for an
  /// unregistered task.
  void record_measurement(const std::string& task_name, Duration elapsed_s);

  /// Exposes every (task, host) weight for persistence.
  [[nodiscard]] std::vector<std::tuple<std::string, HostId, double>>
  all_host_weights() const;
  [[nodiscard]] std::vector<std::tuple<std::string, ArchType, double>>
  all_arch_weights() const;

 private:
  mutable std::mutex mu_;
  std::atomic<std::uint64_t> version_{0};
  std::unordered_map<std::string, TaskPerformanceRecord> tasks_;
  // Key: task name -> host id -> weight.
  std::unordered_map<std::string, std::unordered_map<HostId, double>>
      host_weights_;
  // Key: task name -> arch -> weight.
  std::unordered_map<std::string, std::unordered_map<int, double>>
      arch_weights_;
};

}  // namespace vdce::repo
