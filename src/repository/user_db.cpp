#include "repository/user_db.hpp"

#include "common/error.hpp"

namespace vdce::repo {

std::uint64_t UserAccountsDb::hash_password(const std::string& password,
                                            std::uint64_t salt) {
  // FNV-1a over salt bytes then password bytes.
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint8_t b) {
    h ^= b;
    h *= 1099511628211ull;
  };
  for (int i = 0; i < 8; ++i) mix(static_cast<std::uint8_t>(salt >> (8 * i)));
  for (char c : password) mix(static_cast<std::uint8_t>(c));
  return h;
}

UserId UserAccountsDb::add_user(const std::string& user_name,
                                const std::string& password, int priority,
                                const std::string& access_domain) {
  std::lock_guard lk(mu_);
  if (accounts_.contains(user_name)) {
    throw common::StateError("user already exists: " + user_name);
  }
  UserAccount acct;
  acct.user_name = user_name;
  acct.user_id = UserId(next_id_++);
  acct.priority = priority;
  acct.access_domain = access_domain;
  // Deterministic per-user salt: derived from name so persistence tests
  // are stable; uniqueness across users is what matters for the check.
  acct.salt = hash_password(user_name, 0x5A17ull);
  acct.password_hash = hash_password(password, acct.salt);
  const UserId id = acct.user_id;
  accounts_.emplace(user_name, std::move(acct));
  return id;
}

UserAccount UserAccountsDb::authenticate(const std::string& user_name,
                                         const std::string& password) const {
  std::lock_guard lk(mu_);
  const auto it = accounts_.find(user_name);
  if (it == accounts_.end()) {
    throw common::AuthError("unknown user: " + user_name);
  }
  const UserAccount& acct = it->second;
  if (hash_password(password, acct.salt) != acct.password_hash) {
    throw common::AuthError("bad password for user: " + user_name);
  }
  return acct;
}

std::optional<UserAccount> UserAccountsDb::find(
    const std::string& user_name) const {
  std::lock_guard lk(mu_);
  const auto it = accounts_.find(user_name);
  if (it == accounts_.end()) return std::nullopt;
  return it->second;
}

void UserAccountsDb::set_password(const std::string& user_name,
                                  const std::string& password) {
  std::lock_guard lk(mu_);
  const auto it = accounts_.find(user_name);
  if (it == accounts_.end()) {
    throw common::NotFoundError("unknown user: " + user_name);
  }
  it->second.password_hash = hash_password(password, it->second.salt);
}

void UserAccountsDb::remove_user(const std::string& user_name) {
  std::lock_guard lk(mu_);
  if (accounts_.erase(user_name) == 0) {
    throw common::NotFoundError("unknown user: " + user_name);
  }
}

std::size_t UserAccountsDb::size() const {
  std::lock_guard lk(mu_);
  return accounts_.size();
}

std::vector<UserAccount> UserAccountsDb::all() const {
  std::lock_guard lk(mu_);
  std::vector<UserAccount> out;
  out.reserve(accounts_.size());
  for (const auto& [_, acct] : accounts_) out.push_back(acct);
  return out;
}

void UserAccountsDb::restore(const UserAccount& account) {
  std::lock_guard lk(mu_);
  accounts_[account.user_name] = account;
  next_id_ = std::max(next_id_, account.user_id.value() + 1);
}

}  // namespace vdce::repo
