// Record types stored in the site repository.
//
// The paper (Section 2) defines four databases per VDCE site:
//   user-accounts, resource-performance, task-performance and
//   task-constraints.  These are their row types.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/ids.hpp"

namespace vdce::repo {

using common::Duration;
using common::GroupId;
using common::HostId;
using common::SiteId;
using common::TimePoint;
using common::UserId;

/// Processor architecture of a VDCE host (the paper's "architecture
/// type" static attribute; values reflect the mid-90s testbed mix).
enum class ArchType : std::uint8_t {
  kSparc,
  kIntel,
  kAlpha,
  kPowerPc,
  kMips,
};

/// Operating system of a VDCE host.
enum class OsType : std::uint8_t {
  kSolaris,
  kLinux,
  kOsf1,
  kAix,
  kIrix,
};

[[nodiscard]] std::string to_string(ArchType a);
[[nodiscard]] std::string to_string(OsType o);
[[nodiscard]] ArchType arch_from_string(const std::string& s);
[[nodiscard]] OsType os_from_string(const std::string& s);

/// The paper's 5-tuple user account: user name, password, user ID,
/// priority, and access-domain type.
struct UserAccount {
  std::string user_name;
  /// Salted hash of the password (never the plaintext).  The hash is a
  /// non-cryptographic stand-in for the prototype's password check.
  std::uint64_t password_hash = 0;
  std::uint64_t salt = 0;
  UserId user_id;
  int priority = 0;
  /// Access-domain type: which parts of the VDCE the user may schedule
  /// onto ("local" = own site only, "wan" = all sites).
  std::string access_domain = "local";
};

/// Static host attributes, stored once at initial configuration.
struct HostStaticAttrs {
  std::string host_name;
  std::string ip_address;
  ArchType arch = ArchType::kSparc;
  OsType os = OsType::kSolaris;
  double total_memory_mb = 0.0;
  SiteId site;
  GroupId group;
};

/// Dynamic host attributes, updated periodically by the monitors.
struct HostDynamicAttrs {
  /// Current CPU load: number of runnable processes competing for the
  /// CPU (a Unix load-average style figure; 0 = idle).
  double cpu_load = 0.0;
  double available_memory_mb = 0.0;
  /// False once the Group Manager marks the host "down".
  bool alive = true;
  TimePoint last_update = 0.0;
};

/// A resource-performance database row: one registered host.
struct HostRecord {
  HostId host;
  HostStaticAttrs static_attrs;
  HostDynamicAttrs dynamic_attrs;
};

/// Measured network parameters between two groups (or two sites).
struct NetworkAttrs {
  Duration latency_s = 0.0;       // one-way latency, seconds
  double transfer_mb_per_s = 0.0; // sustained transfer rate
  TimePoint last_update = 0.0;
};

/// A task-performance database row: performance characteristics of one
/// library task.
struct TaskPerformanceRecord {
  std::string task_name;
  /// Execution time of the task on the dedicated base processor for unit
  /// size input (the paper's MeasuredTime(task, R_base)).
  Duration base_time_s = 0.0;
  /// How computation scales with the problem size parameter (flop count
  /// per unit size; used by the netsim cost model).
  double computation_size = 1.0;
  /// Output volume produced per unit input size, in MB.
  double communication_size_mb = 1.0;
  /// Memory requirement for unit size input, MB.
  double memory_req_mb = 1.0;
  /// Recently measured execution times (newest last), fed back by the
  /// Site Manager after each run.
  std::vector<Duration> measured_history;
};

/// A task-constraints database row: where the executable for a task
/// lives on one host (its absolute path).  A missing row means the host
/// cannot run the task.
struct TaskConstraint {
  std::string task_name;
  HostId host;
  std::string executable_path;
};

}  // namespace vdce::repo
