// Resource-performance database.
//
// "The resource-performance database provides the resource (machine and
//  network) attributes/parameters ... a) static attributes stored once
//  during the initial configuration ... b) dynamic attributes that are
//  updated periodically, such as recent load measurement and available
//  memory size."  (Section 2)
//
// Hosts are registered with their static attributes; Monitor daemons
// (through the Group Manager and Site Manager) push dynamic updates.
// Failure detection marks hosts "down", which excludes them from
// scheduling until they come back.
#pragma once

#include <atomic>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "repository/types.hpp"

namespace vdce::repo {

/// Thread-safe store of host and network performance attributes.
class ResourcePerformanceDb {
 public:
  /// Registers a host; returns its id.  Throws StateError on duplicate
  /// host name.
  HostId register_host(const HostStaticAttrs& attrs);

  /// Removes a host (the paper's "resource is ... removed from the
  /// VDCE").  Throws NotFoundError.
  void remove_host(HostId host);

  /// Updates a host's dynamic attributes (load, memory, timestamp).
  void update_dynamic(HostId host, const HostDynamicAttrs& dyn);

  /// Marks the host down/up; down hosts keep their attributes but are
  /// excluded from `alive_hosts()`.
  void set_alive(HostId host, bool alive, TimePoint when);

  [[nodiscard]] HostRecord get(HostId host) const;
  [[nodiscard]] std::optional<HostRecord> find(HostId host) const;
  [[nodiscard]] std::optional<HostRecord> find_by_name(
      const std::string& host_name) const;

  [[nodiscard]] std::vector<HostRecord> all_hosts() const;
  [[nodiscard]] std::vector<HostRecord> alive_hosts() const;
  [[nodiscard]] std::vector<HostRecord> hosts_in_site(SiteId site) const;
  [[nodiscard]] std::vector<HostRecord> hosts_in_group(GroupId group) const;

  /// Records measured network parameters between two groups.  The pair is
  /// symmetric: (a,b) and (b,a) refer to the same link.
  void update_group_network(GroupId a, GroupId b, const NetworkAttrs& attrs);
  [[nodiscard]] std::optional<NetworkAttrs> group_network(GroupId a,
                                                          GroupId b) const;

  /// Records measured WAN parameters between two sites (symmetric).
  void update_site_network(SiteId a, SiteId b, const NetworkAttrs& attrs);
  [[nodiscard]] std::optional<NetworkAttrs> site_network(SiteId a,
                                                         SiteId b) const;

  [[nodiscard]] std::size_t size() const;

  /// Restores a persisted record verbatim (used by repository load).
  void restore(const HostRecord& record);

  /// Monotonic counter bumped by every host mutation that can change a
  /// Predict() result (registration, removal, dynamic update, liveness,
  /// restore).  Feeds the PredictionCache epoch so cached predictions
  /// never outlive the monitoring data behind them.  Network-link
  /// updates do not bump it: Predict() reads host attributes only.
  [[nodiscard]] std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

 private:
  [[nodiscard]] static std::uint64_t pair_key(std::uint32_t a,
                                              std::uint32_t b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  mutable std::mutex mu_;
  std::atomic<std::uint64_t> version_{0};
  std::unordered_map<HostId, HostRecord> hosts_;
  std::unordered_map<std::string, HostId> by_name_;
  std::unordered_map<std::uint64_t, NetworkAttrs> group_links_;
  std::unordered_map<std::uint64_t, NetworkAttrs> site_links_;
  std::uint32_t next_id_ = 0;
};

}  // namespace vdce::repo
