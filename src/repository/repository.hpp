// The site repository: the per-site "web-based storage environment".
//
// "Site repository, the web-based storage environment within a VDCE
//  site, consists of four different databases."  (Section 2)
//
// SiteRepository aggregates the four databases and provides the
// line-oriented text persistence the Site Manager uses ("The Site
// Manager stores/updates the relevant VDCE database with the received
// values").
#pragma once

#include <filesystem>
#include <string>

#include "repository/constraint_db.hpp"
#include "repository/resource_db.hpp"
#include "repository/task_db.hpp"
#include "repository/user_db.hpp"

namespace vdce::repo {

/// All four site databases behind one handle.
class SiteRepository {
 public:
  explicit SiteRepository(SiteId site) : site_(site) {}

  [[nodiscard]] SiteId site() const { return site_; }

  [[nodiscard]] UserAccountsDb& users() { return users_; }
  [[nodiscard]] const UserAccountsDb& users() const { return users_; }

  [[nodiscard]] ResourcePerformanceDb& resources() { return resources_; }
  [[nodiscard]] const ResourcePerformanceDb& resources() const {
    return resources_;
  }

  [[nodiscard]] TaskPerformanceDb& tasks() { return tasks_; }
  [[nodiscard]] const TaskPerformanceDb& tasks() const { return tasks_; }

  [[nodiscard]] TaskConstraintsDb& constraints() { return constraints_; }
  [[nodiscard]] const TaskConstraintsDb& constraints() const {
    return constraints_;
  }

  /// Writes all four databases into `dir` (users.db, resources.db,
  /// tasks.db, constraints.db).  Creates the directory if needed.
  void save(const std::filesystem::path& dir) const;

  /// Reads a repository previously written by save() into this object
  /// (existing records with the same keys are overwritten).  Throws
  /// ParseError on malformed content, NotFoundError if a file is missing.
  void load(const std::filesystem::path& dir);

 private:
  SiteId site_;
  UserAccountsDb users_;
  ResourcePerformanceDb resources_;
  TaskPerformanceDb tasks_;
  TaskConstraintsDb constraints_;
};

}  // namespace vdce::repo
