// User-accounts database: authentication for the VDCE site.
//
// "User-accounts database is used to handle the user authentication.
//  Each VDCE user account is represented by a 5-tuple: user name,
//  password, user ID, priority, and access domain type."  (Section 2)
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "repository/types.hpp"

namespace vdce::repo {

/// Thread-safe user-accounts store.  Passwords are stored salted+hashed;
/// the hash is FNV-1a based — adequate for reproducing the prototype's
/// login check, documented as not cryptographically strong.
class UserAccountsDb {
 public:
  /// Creates an account; returns its assigned UserId.
  /// Throws StateError if the user name already exists.
  UserId add_user(const std::string& user_name, const std::string& password,
                  int priority, const std::string& access_domain);

  /// Checks a name/password pair; returns the account on success.
  /// Throws AuthError on unknown user or wrong password.
  [[nodiscard]] UserAccount authenticate(const std::string& user_name,
                                         const std::string& password) const;

  /// Looks up an account without authenticating.
  [[nodiscard]] std::optional<UserAccount> find(
      const std::string& user_name) const;

  /// Changes an existing user's password.  Throws NotFoundError.
  void set_password(const std::string& user_name,
                    const std::string& password);

  void remove_user(const std::string& user_name);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::vector<UserAccount> all() const;

  /// Restores a persisted account verbatim (used by repository load).
  void restore(const UserAccount& account);

  /// Salted password hash, exposed for persistence round-trips.
  [[nodiscard]] static std::uint64_t hash_password(const std::string& password,
                                                   std::uint64_t salt);

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, UserAccount> accounts_;
  std::uint32_t next_id_ = 1;
};

}  // namespace vdce::repo
