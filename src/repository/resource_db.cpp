#include "repository/resource_db.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace vdce::repo {

HostId ResourcePerformanceDb::register_host(const HostStaticAttrs& attrs) {
  std::lock_guard lk(mu_);
  version_.fetch_add(1, std::memory_order_release);
  if (by_name_.contains(attrs.host_name)) {
    throw common::StateError("host already registered: " + attrs.host_name);
  }
  const HostId id{next_id_++};
  HostRecord rec;
  rec.host = id;
  rec.static_attrs = attrs;
  rec.dynamic_attrs.available_memory_mb = attrs.total_memory_mb;
  hosts_.emplace(id, std::move(rec));
  by_name_.emplace(attrs.host_name, id);
  return id;
}

void ResourcePerformanceDb::remove_host(HostId host) {
  std::lock_guard lk(mu_);
  version_.fetch_add(1, std::memory_order_release);
  const auto it = hosts_.find(host);
  if (it == hosts_.end()) throw common::NotFoundError("unknown host id");
  by_name_.erase(it->second.static_attrs.host_name);
  hosts_.erase(it);
}

void ResourcePerformanceDb::update_dynamic(HostId host,
                                           const HostDynamicAttrs& dyn) {
  std::lock_guard lk(mu_);
  version_.fetch_add(1, std::memory_order_release);
  const auto it = hosts_.find(host);
  if (it == hosts_.end()) throw common::NotFoundError("unknown host id");
  it->second.dynamic_attrs = dyn;
}

void ResourcePerformanceDb::set_alive(HostId host, bool alive,
                                      TimePoint when) {
  std::lock_guard lk(mu_);
  version_.fetch_add(1, std::memory_order_release);
  const auto it = hosts_.find(host);
  if (it == hosts_.end()) throw common::NotFoundError("unknown host id");
  it->second.dynamic_attrs.alive = alive;
  it->second.dynamic_attrs.last_update = when;
}

HostRecord ResourcePerformanceDb::get(HostId host) const {
  std::lock_guard lk(mu_);
  const auto it = hosts_.find(host);
  if (it == hosts_.end()) throw common::NotFoundError("unknown host id");
  return it->second;
}

std::optional<HostRecord> ResourcePerformanceDb::find(HostId host) const {
  std::lock_guard lk(mu_);
  const auto it = hosts_.find(host);
  if (it == hosts_.end()) return std::nullopt;
  return it->second;
}

std::optional<HostRecord> ResourcePerformanceDb::find_by_name(
    const std::string& host_name) const {
  std::lock_guard lk(mu_);
  const auto it = by_name_.find(host_name);
  if (it == by_name_.end()) return std::nullopt;
  return hosts_.at(it->second);
}

std::vector<HostRecord> ResourcePerformanceDb::all_hosts() const {
  std::lock_guard lk(mu_);
  std::vector<HostRecord> out;
  out.reserve(hosts_.size());
  for (const auto& [_, rec] : hosts_) out.push_back(rec);
  std::sort(out.begin(), out.end(),
            [](const HostRecord& a, const HostRecord& b) {
              return a.host < b.host;
            });
  return out;
}

std::vector<HostRecord> ResourcePerformanceDb::alive_hosts() const {
  auto out = all_hosts();
  std::erase_if(out,
                [](const HostRecord& r) { return !r.dynamic_attrs.alive; });
  return out;
}

std::vector<HostRecord> ResourcePerformanceDb::hosts_in_site(
    SiteId site) const {
  auto out = all_hosts();
  std::erase_if(out, [site](const HostRecord& r) {
    return r.static_attrs.site != site;
  });
  return out;
}

std::vector<HostRecord> ResourcePerformanceDb::hosts_in_group(
    GroupId group) const {
  auto out = all_hosts();
  std::erase_if(out, [group](const HostRecord& r) {
    return r.static_attrs.group != group;
  });
  return out;
}

void ResourcePerformanceDb::update_group_network(GroupId a, GroupId b,
                                                 const NetworkAttrs& attrs) {
  std::lock_guard lk(mu_);
  group_links_[pair_key(a.value(), b.value())] = attrs;
}

std::optional<NetworkAttrs> ResourcePerformanceDb::group_network(
    GroupId a, GroupId b) const {
  std::lock_guard lk(mu_);
  const auto it = group_links_.find(pair_key(a.value(), b.value()));
  if (it == group_links_.end()) return std::nullopt;
  return it->second;
}

void ResourcePerformanceDb::update_site_network(SiteId a, SiteId b,
                                                const NetworkAttrs& attrs) {
  std::lock_guard lk(mu_);
  site_links_[pair_key(a.value(), b.value())] = attrs;
}

std::optional<NetworkAttrs> ResourcePerformanceDb::site_network(
    SiteId a, SiteId b) const {
  std::lock_guard lk(mu_);
  const auto it = site_links_.find(pair_key(a.value(), b.value()));
  if (it == site_links_.end()) return std::nullopt;
  return it->second;
}

std::size_t ResourcePerformanceDb::size() const {
  std::lock_guard lk(mu_);
  return hosts_.size();
}

void ResourcePerformanceDb::restore(const HostRecord& record) {
  std::lock_guard lk(mu_);
  version_.fetch_add(1, std::memory_order_release);
  hosts_[record.host] = record;
  by_name_[record.static_attrs.host_name] = record.host;
  next_id_ = std::max(next_id_, record.host.value() + 1);
}

}  // namespace vdce::repo
