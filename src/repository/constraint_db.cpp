#include "repository/constraint_db.hpp"

#include <algorithm>

namespace vdce::repo {

void TaskConstraintsDb::set_location(const std::string& task_name, HostId host,
                                     const std::string& path) {
  std::lock_guard lk(mu_);
  rows_[task_name][host] = path;
}

void TaskConstraintsDb::clear_location(const std::string& task_name,
                                       HostId host) {
  std::lock_guard lk(mu_);
  const auto it = rows_.find(task_name);
  if (it == rows_.end()) return;
  it->second.erase(host);
  if (it->second.empty()) rows_.erase(it);
}

std::optional<std::string> TaskConstraintsDb::location(
    const std::string& task_name, HostId host) const {
  std::lock_guard lk(mu_);
  const auto it = rows_.find(task_name);
  if (it == rows_.end()) return std::nullopt;
  const auto hit = it->second.find(host);
  if (hit == it->second.end()) return std::nullopt;
  return hit->second;
}

bool TaskConstraintsDb::can_run(const std::string& task_name,
                                HostId host) const {
  return location(task_name, host).has_value();
}

std::vector<HostId> TaskConstraintsDb::hosts_for(
    const std::string& task_name) const {
  std::lock_guard lk(mu_);
  std::vector<HostId> out;
  const auto it = rows_.find(task_name);
  if (it != rows_.end()) {
    out.reserve(it->second.size());
    for (const auto& [host, _] : it->second) out.push_back(host);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void TaskConstraintsDb::remove_host(HostId host) {
  std::lock_guard lk(mu_);
  for (auto it = rows_.begin(); it != rows_.end();) {
    it->second.erase(host);
    if (it->second.empty()) {
      it = rows_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<TaskConstraint> TaskConstraintsDb::all() const {
  std::lock_guard lk(mu_);
  std::vector<TaskConstraint> out;
  for (const auto& [task, hosts] : rows_) {
    for (const auto& [host, path] : hosts) {
      out.push_back(TaskConstraint{task, host, path});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TaskConstraint& a, const TaskConstraint& b) {
              return std::tie(a.task_name, a.host) <
                     std::tie(b.task_name, b.host);
            });
  return out;
}

std::size_t TaskConstraintsDb::size() const {
  std::lock_guard lk(mu_);
  std::size_t n = 0;
  for (const auto& [_, hosts] : rows_) n += hosts.size();
  return n;
}

}  // namespace vdce::repo
