// Task-constraints database.
//
// "In order to find locations of a task's executables, VDCE stores
//  location information of each task (i.e., the absolute path of the
//  task executable) for each host ... Due to specific library
//  requirements, some task executables may reside only on some of the
//  hosts."  (Section 2)
//
// A host with no row for a task cannot be selected to run that task; the
// Host Selection Algorithm filters its candidate set through this
// database.
#pragma once

#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "repository/types.hpp"

namespace vdce::repo {

/// Thread-safe store of task executable locations.
class TaskConstraintsDb {
 public:
  /// Declares that `task_name`'s executable lives at `path` on `host`.
  void set_location(const std::string& task_name, HostId host,
                    const std::string& path);

  /// Removes the executable of `task_name` from `host`; no-op if absent.
  void clear_location(const std::string& task_name, HostId host);

  /// The executable path, if the host can run the task.
  [[nodiscard]] std::optional<std::string> location(
      const std::string& task_name, HostId host) const;

  /// True if `host` may run `task_name`.
  [[nodiscard]] bool can_run(const std::string& task_name, HostId host) const;

  /// All hosts able to run the task (sorted by id).
  [[nodiscard]] std::vector<HostId> hosts_for(
      const std::string& task_name) const;

  /// Removes every row for `host` (host decommissioned).
  void remove_host(HostId host);

  /// All rows, for persistence.
  [[nodiscard]] std::vector<TaskConstraint> all() const;

  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  // task name -> host -> path
  std::unordered_map<std::string, std::unordered_map<HostId, std::string>>
      rows_;
};

}  // namespace vdce::repo
