#include "repository/repository.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace vdce::repo {
namespace {

using common::NotFoundError;
using common::ParseError;
using common::parse_double;
using common::parse_uint;
using common::split;
using common::trim;

// Persistence uses one record per line, tab-separated fields.  Strings
// are stored raw (task/user/host names never contain tabs by
// construction; we reject them at the API boundary if they do).
constexpr char kSep = '\t';

void check_no_tab(const std::string& s) {
  if (s.find(kSep) != std::string::npos) {
    throw ParseError("field contains a tab character: '" + s + "'");
  }
}

std::ofstream open_out(const std::filesystem::path& p) {
  std::ofstream out(p);
  if (!out) throw NotFoundError("cannot write " + p.string());
  return out;
}

std::ifstream open_in(const std::filesystem::path& p) {
  std::ifstream in(p);
  if (!in) throw NotFoundError("cannot read " + p.string());
  return in;
}

}  // namespace

void SiteRepository::save(const std::filesystem::path& dir) const {
  std::filesystem::create_directories(dir);

  {
    auto out = open_out(dir / "users.db");
    for (const auto& u : users_.all()) {
      check_no_tab(u.user_name);
      check_no_tab(u.access_domain);
      out << u.user_name << kSep << u.password_hash << kSep << u.salt << kSep
          << u.user_id.value() << kSep << u.priority << kSep
          << u.access_domain << '\n';
    }
  }
  {
    auto out = open_out(dir / "resources.db");
    out.precision(17);
    for (const auto& r : resources_.all_hosts()) {
      check_no_tab(r.static_attrs.host_name);
      out << "host" << kSep << r.host.value() << kSep
          << r.static_attrs.host_name << kSep << r.static_attrs.ip_address
          << kSep << to_string(r.static_attrs.arch) << kSep
          << to_string(r.static_attrs.os) << kSep
          << r.static_attrs.total_memory_mb << kSep
          << r.static_attrs.site.value() << kSep
          << r.static_attrs.group.value() << kSep << r.dynamic_attrs.cpu_load
          << kSep << r.dynamic_attrs.available_memory_mb << kSep
          << (r.dynamic_attrs.alive ? 1 : 0) << kSep
          << r.dynamic_attrs.last_update << '\n';
    }
  }
  {
    auto out = open_out(dir / "tasks.db");
    out.precision(17);
    for (const auto& name : tasks_.task_names()) {
      const auto rec = tasks_.get(name);
      check_no_tab(rec.task_name);
      out << "task" << kSep << rec.task_name << kSep << rec.base_time_s
          << kSep << rec.computation_size << kSep
          << rec.communication_size_mb << kSep << rec.memory_req_mb;
      for (double h : rec.measured_history) out << kSep << h;
      out << '\n';
    }
    for (const auto& [task, host, w] : tasks_.all_host_weights()) {
      out << "hostweight" << kSep << task << kSep << host.value() << kSep << w
          << '\n';
    }
    for (const auto& [task, arch, w] : tasks_.all_arch_weights()) {
      out << "archweight" << kSep << task << kSep << to_string(arch) << kSep
          << w << '\n';
    }
  }
  {
    auto out = open_out(dir / "constraints.db");
    for (const auto& c : constraints_.all()) {
      check_no_tab(c.task_name);
      check_no_tab(c.executable_path);
      out << c.task_name << kSep << c.host.value() << kSep
          << c.executable_path << '\n';
    }
  }
}

void SiteRepository::load(const std::filesystem::path& dir) {

  {
    auto in = open_in(dir / "users.db");
    std::string line;
    while (std::getline(in, line)) {
      if (trim(line).empty()) continue;
      const auto f = split(line, kSep);
      if (f.size() != 6) throw ParseError("bad users.db row: " + line);
      UserAccount u;
      u.user_name = f[0];
      u.password_hash = parse_uint(f[1], "users.db password_hash");
      u.salt = parse_uint(f[2], "users.db salt");
      u.user_id = UserId(static_cast<std::uint32_t>(
          parse_uint(f[3], "users.db user_id")));
      u.priority = static_cast<int>(parse_double(f[4], "users.db priority"));
      u.access_domain = f[5];
      users_.restore(u);
    }
  }
  {
    auto in = open_in(dir / "resources.db");
    std::string line;
    while (std::getline(in, line)) {
      if (trim(line).empty()) continue;
      const auto f = split(line, kSep);
      if (f.empty() || f[0] != "host" || f.size() != 13) {
        throw ParseError("bad resources.db row: " + line);
      }
      HostRecord r;
      r.host = HostId(
          static_cast<std::uint32_t>(parse_uint(f[1], "resources.db host")));
      r.static_attrs.host_name = f[2];
      r.static_attrs.ip_address = f[3];
      r.static_attrs.arch = arch_from_string(f[4]);
      r.static_attrs.os = os_from_string(f[5]);
      r.static_attrs.total_memory_mb =
          parse_double(f[6], "resources.db total_memory");
      r.static_attrs.site = SiteId(
          static_cast<std::uint32_t>(parse_uint(f[7], "resources.db site")));
      r.static_attrs.group = GroupId(
          static_cast<std::uint32_t>(parse_uint(f[8], "resources.db group")));
      r.dynamic_attrs.cpu_load = parse_double(f[9], "resources.db load");
      r.dynamic_attrs.available_memory_mb =
          parse_double(f[10], "resources.db avail_memory");
      r.dynamic_attrs.alive = parse_uint(f[11], "resources.db alive") != 0;
      r.dynamic_attrs.last_update =
          parse_double(f[12], "resources.db last_update");
      resources_.restore(r);
    }
  }
  {
    auto in = open_in(dir / "tasks.db");
    std::string line;
    while (std::getline(in, line)) {
      if (trim(line).empty()) continue;
      const auto f = split(line, kSep);
      if (f.empty()) continue;
      if (f[0] == "task") {
        if (f.size() < 6) throw ParseError("bad tasks.db row: " + line);
        TaskPerformanceRecord rec;
        rec.task_name = f[1];
        rec.base_time_s = parse_double(f[2], "tasks.db base_time");
        rec.computation_size = parse_double(f[3], "tasks.db comp_size");
        rec.communication_size_mb = parse_double(f[4], "tasks.db comm_size");
        rec.memory_req_mb = parse_double(f[5], "tasks.db mem_req");
        for (std::size_t i = 6; i < f.size(); ++i) {
          rec.measured_history.push_back(
              parse_double(f[i], "tasks.db history"));
        }
        tasks_.register_task(rec);
      } else if (f[0] == "hostweight") {
        if (f.size() != 4) throw ParseError("bad tasks.db row: " + line);
        tasks_.set_power_weight(
            f[1],
            HostId(static_cast<std::uint32_t>(
                parse_uint(f[2], "tasks.db host"))),
            parse_double(f[3], "tasks.db weight"));
      } else if (f[0] == "archweight") {
        if (f.size() != 4) throw ParseError("bad tasks.db row: " + line);
        tasks_.set_arch_weight(f[1], arch_from_string(f[2]),
                                    parse_double(f[3], "tasks.db weight"));
      } else {
        throw ParseError("bad tasks.db row: " + line);
      }
    }
  }
  {
    auto in = open_in(dir / "constraints.db");
    std::string line;
    while (std::getline(in, line)) {
      if (trim(line).empty()) continue;
      const auto f = split(line, kSep);
      if (f.size() != 3) throw ParseError("bad constraints.db row: " + line);
      constraints_.set_location(
          f[0],
          HostId(static_cast<std::uint32_t>(
              parse_uint(f[1], "constraints.db host"))),
          f[2]);
    }
  }
}

}  // namespace vdce::repo
