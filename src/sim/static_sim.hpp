// Static execution simulation: the makespan of a scheduled application.
//
// Given an AFG and a resource allocation table, replays the execution
// against the virtual testbed's ground truth: per-host serialisation
// (one task at a time per machine), inter-task transfer times over the
// modelled links, and load-dependent execution times.  No failures and
// no rescheduling — this is the measurement instrument for comparing
// scheduling policies (experiment F4/F5).
#pragma once

#include <string>
#include <vector>

#include "afg/graph.hpp"
#include "netsim/testbed.hpp"
#include "scheduler/allocation.hpp"

namespace vdce::sim {

using common::Duration;
using common::HostId;
using common::SiteId;
using common::TaskId;
using common::TimePoint;

/// One simulated task execution.
struct SimTaskRecord {
  TaskId task;
  std::string label;
  std::string library_task;
  HostId host;          // primary host
  SiteId site;
  TimePoint data_ready = 0.0;  // all inputs arrived
  TimePoint start = 0.0;       // host free and data ready
  TimePoint finish = 0.0;
  Duration exec_s = 0.0;
  /// How many placements this task needed (1 = no rescheduling; used by
  /// the dynamic simulator which shares this record type).
  int attempts = 1;
};

/// Result of one simulated run.
struct SimResult {
  std::vector<SimTaskRecord> records;
  Duration makespan_s = 0.0;
  std::size_t reschedules = 0;
  std::size_t failures_hit = 0;

  [[nodiscard]] const SimTaskRecord& record(TaskId task) const;
};

/// One application of a joint multi-application replay.
struct SimJob {
  const afg::FlowGraph* graph = nullptr;
  const sched::AllocationTable* allocation = nullptr;
  TimePoint submit_at = 0.0;
};

/// Deterministic static execution simulator.
class StaticSimulator {
 public:
  /// `testbed` supplies ground truth; `task_db` the task cost records.
  /// Both must outlive the simulator.
  StaticSimulator(netsim::VirtualTestbed& testbed,
                  const repo::TaskPerformanceDb& task_db);

  /// Replays `graph` under `allocation` starting at `start_at`.
  [[nodiscard]] SimResult run(const afg::FlowGraph& graph,
                              const sched::AllocationTable& allocation,
                              TimePoint start_at = 0.0);

  /// Joint replay of several applications sharing the testbed ("a site
  /// can be a local site for some of the applications and ... a remote
  /// site for some of the others running in the VDCE system"): tasks of
  /// different applications contend for the same hosts (FCFS per
  /// machine).  Returns one result per job, index-aligned.
  [[nodiscard]] std::vector<SimResult> run_many(
      const std::vector<SimJob>& jobs);

 private:
  netsim::VirtualTestbed* testbed_;
  const repo::TaskPerformanceDb* task_db_;
};

}  // namespace vdce::sim
