#include "sim/static_sim.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/error.hpp"

namespace vdce::sim {

const SimTaskRecord& SimResult::record(TaskId task) const {
  const auto it = std::find_if(
      records.begin(), records.end(),
      [task](const SimTaskRecord& r) { return r.task == task; });
  if (it == records.end()) {
    throw common::NotFoundError("no simulation record for task");
  }
  return *it;
}

StaticSimulator::StaticSimulator(netsim::VirtualTestbed& testbed,
                                 const repo::TaskPerformanceDb& task_db)
    : testbed_(&testbed), task_db_(&task_db) {}

SimResult StaticSimulator::run(const afg::FlowGraph& graph,
                               const sched::AllocationTable& allocation,
                               TimePoint start_at) {
  return run_many({SimJob{&graph, &allocation, start_at}}).front();
}

std::vector<SimResult> StaticSimulator::run_many(
    const std::vector<SimJob>& jobs) {
  common::expects(!jobs.empty(), "run_many needs at least one job");
  for (const SimJob& job : jobs) {
    common::expects(job.graph != nullptr && job.allocation != nullptr,
                    "job graph/allocation must be set");
    job.graph->validate();
  }

  // Composite key: (job index, task id).
  struct Key {
    std::size_t job;
    TaskId task;
    bool operator==(const Key& other) const {
      return job == other.job && task == other.task;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::size_t>{}(k.job) * 1000003u ^
             std::hash<TaskId>{}(k.task);
    }
  };

  struct Pending {
    Key key;
    TimePoint data_ready;
  };

  std::unordered_map<Key, std::size_t, KeyHash> waiting_parents;
  std::unordered_map<Key, TimePoint, KeyHash> finish_time;
  std::unordered_map<HostId, TimePoint> host_free;
  std::vector<Pending> ready;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    for (const afg::TaskNode& n : jobs[j].graph->tasks()) {
      const Key key{j, n.id};
      waiting_parents[key] = jobs[j].graph->parents(n.id).size();
      if (waiting_parents[key] == 0) {
        ready.push_back(Pending{key, jobs[j].submit_at});
      }
    }
  }

  std::vector<SimResult> results(jobs.size());

  const auto start_of = [&](const Pending& p) {
    TimePoint s = p.data_ready;
    for (const HostId h :
         jobs[p.key.job].allocation->entry(p.key.task).hosts) {
      const auto it = host_free.find(h);
      if (it != host_free.end()) s = std::max(s, it->second);
    }
    return s;
  };

  while (!ready.empty()) {
    // Earliest feasible start first (FCFS per host); ties by job then
    // task id.
    const auto best = std::min_element(
        ready.begin(), ready.end(), [&](const Pending& a, const Pending& b) {
          const TimePoint sa = start_of(a);
          const TimePoint sb = start_of(b);
          if (sa != sb) return sa < sb;
          if (a.key.job != b.key.job) return a.key.job < b.key.job;
          return a.key.task < b.key.task;
        });
    const Pending pending = *best;
    ready.erase(best);

    const SimJob& job = jobs[pending.key.job];
    const afg::TaskNode& node = job.graph->task(pending.key.task);
    const sched::AllocationEntry& entry =
        job.allocation->entry(pending.key.task);
    const auto rec = task_db_->get(node.library_task);

    TimePoint start = pending.data_ready;
    for (const HostId h : entry.hosts) {
      const auto it = host_free.find(h);
      if (it != host_free.end()) start = std::max(start, it->second);
    }

    // Parallel tasks: the slowest assigned machine bounds the
    // per-processor share (matching the prediction model).
    Duration exec = 0.0;
    for (const HostId h : entry.hosts) {
      exec = std::max(exec, testbed_->execution_time_at(
                                rec, node.props.input_size, h, start));
    }
    exec /= static_cast<double>(entry.hosts.size());

    const TimePoint finish = start + exec;
    for (const HostId h : entry.hosts) host_free[h] = finish;
    finish_time[pending.key] = finish;
    SimResult& result = results[pending.key.job];
    result.makespan_s = std::max(result.makespan_s, finish - job.submit_at);

    SimTaskRecord out;
    out.task = pending.key.task;
    out.label = node.label;
    out.library_task = node.library_task;
    out.host = entry.primary_host();
    out.site = entry.site;
    out.data_ready = pending.data_ready;
    out.start = start;
    out.finish = finish;
    out.exec_s = exec;
    result.records.push_back(out);

    // Release children: data arrives after the producer's output
    // transfer to the child's host.
    for (const TaskId child : job.graph->children(pending.key.task)) {
      const Key child_key{pending.key.job, child};
      if (--waiting_parents[child_key] != 0) continue;
      TimePoint data_ready = job.submit_at;
      for (const TaskId parent : job.graph->parents(child)) {
        const Duration transfer = testbed_->transfer_time(
            job.allocation->entry(parent).primary_host(),
            job.allocation->entry(child).primary_host(),
            job.graph->link(parent, child).transfer_mb);
        data_ready = std::max(
            data_ready,
            finish_time.at(Key{pending.key.job, parent}) + transfer);
      }
      ready.push_back(Pending{child_key, data_ready});
    }
  }

  for (SimResult& result : results) {
    std::sort(result.records.begin(), result.records.end(),
              [](const SimTaskRecord& a, const SimTaskRecord& b) {
                if (a.start != b.start) return a.start < b.start;
                return a.task < b.task;
              });
  }
  return results;
}

}  // namespace vdce::sim
