#include "sim/workloads.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace vdce::sim {

using afg::FlowGraph;
using afg::TaskProperties;
using common::TaskId;

std::string to_string(GraphFamily family) {
  switch (family) {
    case GraphFamily::kChain:       return "chain";
    case GraphFamily::kForkJoin:    return "fork_join";
    case GraphFamily::kLayered:     return "layered";
    case GraphFamily::kInTree:      return "in_tree";
    case GraphFamily::kIndependent: return "independent";
  }
  return "?";
}

namespace {

/// synth_compute accepts at most 8 inputs.
constexpr std::size_t kMaxFanIn = 8;

TaskProperties random_props(const SyntheticGraphParams& p, common::Rng& rng) {
  TaskProperties props;
  props.input_size = rng.uniform(p.min_input_size, p.max_input_size);
  return props;
}

double random_mb(const SyntheticGraphParams& p, common::Rng& rng) {
  return rng.uniform(p.min_transfer_mb, p.max_transfer_mb);
}

FlowGraph make_chain(const SyntheticGraphParams& p, common::Rng& rng) {
  FlowGraph g("chain_" + std::to_string(p.size));
  const std::size_t n = std::max<std::size_t>(2, p.size);
  std::vector<TaskId> ids;
  ids.push_back(g.add_task("synth_source", "n0", random_props(p, rng)));
  for (std::size_t i = 1; i + 1 < n; ++i) {
    ids.push_back(g.add_task("synth_compute", "n" + std::to_string(i),
                             random_props(p, rng)));
  }
  ids.push_back(g.add_task("synth_sink", "n" + std::to_string(n - 1),
                           random_props(p, rng)));
  for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
    g.add_link(ids[i], ids[i + 1], random_mb(p, rng));
  }
  return g;
}

FlowGraph make_fork_join(const SyntheticGraphParams& p, common::Rng& rng) {
  FlowGraph g("fork_join_" + std::to_string(p.size));
  const std::size_t width = std::max<std::size_t>(1, p.size);
  const TaskId src = g.add_task("synth_source", "src", random_props(p, rng));
  // synth_sink takes at most 8 inputs: chain sinks when wider.
  std::vector<TaskId> mid;
  for (std::size_t i = 0; i < width; ++i) {
    const TaskId t = g.add_task("synth_compute", "w" + std::to_string(i),
                                random_props(p, rng));
    g.add_link(src, t, random_mb(p, rng));
    mid.push_back(t);
  }
  // Reduce in groups of <= 8 until one sink remains.
  std::size_t round = 0;
  while (mid.size() > 1) {
    std::vector<TaskId> next;
    for (std::size_t i = 0; i < mid.size(); i += kMaxFanIn) {
      const std::size_t hi = std::min(mid.size(), i + kMaxFanIn);
      const bool last = (hi - i) == mid.size();
      const TaskId t =
          g.add_task(last ? "synth_sink" : "synth_compute",
                     "r" + std::to_string(round) + "_" + std::to_string(i),
                     random_props(p, rng));
      for (std::size_t j = i; j < hi; ++j) {
        g.add_link(mid[j], t, random_mb(p, rng));
      }
      next.push_back(t);
    }
    mid = std::move(next);
    ++round;
  }
  return g;
}

FlowGraph make_layered(const SyntheticGraphParams& p, common::Rng& rng) {
  FlowGraph g("layered_" + std::to_string(p.size) + "x" +
              std::to_string(p.width));
  const std::size_t layers = std::max<std::size_t>(2, p.size);
  const std::size_t width = std::max<std::size_t>(1, p.width);

  std::vector<std::vector<TaskId>> layer_ids(layers);
  for (std::size_t l = 0; l < layers; ++l) {
    for (std::size_t w = 0; w < width; ++w) {
      const std::string name = (l == 0) ? "synth_source" : "synth_compute";
      layer_ids[l].push_back(
          g.add_task(name,
                     "l" + std::to_string(l) + "_" + std::to_string(w),
                     random_props(p, rng)));
    }
  }
  // Guaranteed parent + random extras, capped at the library fan-in.
  for (std::size_t l = 1; l < layers; ++l) {
    for (std::size_t w = 0; w < width; ++w) {
      const TaskId node = layer_ids[l][w];
      std::vector<std::size_t> parents;
      parents.push_back(rng.uniform_int(width));
      for (std::size_t q = 0; q < width && parents.size() < kMaxFanIn; ++q) {
        if (q != parents.front() && rng.bernoulli(p.edge_probability)) {
          parents.push_back(q);
        }
      }
      std::sort(parents.begin(), parents.end());
      parents.erase(std::unique(parents.begin(), parents.end()),
                    parents.end());
      for (const std::size_t q : parents) {
        g.add_link(layer_ids[l - 1][q], node, random_mb(p, rng));
      }
    }
  }
  // One sink collecting up to 8 nodes of the last layer.
  const TaskId sink = g.add_task("synth_sink", "sink", random_props(p, rng));
  for (std::size_t w = 0; w < std::min(width, kMaxFanIn); ++w) {
    g.add_link(layer_ids[layers - 1][w], sink, random_mb(p, rng));
  }
  return g;
}

FlowGraph make_in_tree(const SyntheticGraphParams& p, common::Rng& rng) {
  FlowGraph g("in_tree_" + std::to_string(p.size));
  const std::size_t depth = std::max<std::size_t>(1, p.size);
  constexpr std::size_t kArity = 4;

  // Leaves at the deepest level, reduced kArity at a time.
  std::size_t leaves = 1;
  for (std::size_t d = 0; d < depth; ++d) leaves *= kArity;
  leaves = std::min<std::size_t>(leaves, 256);

  std::vector<TaskId> level;
  for (std::size_t i = 0; i < leaves; ++i) {
    level.push_back(g.add_task("synth_source", "leaf" + std::to_string(i),
                               random_props(p, rng)));
  }
  std::size_t round = 0;
  while (level.size() > 1) {
    std::vector<TaskId> next;
    for (std::size_t i = 0; i < level.size(); i += kArity) {
      const std::size_t hi = std::min(level.size(), i + kArity);
      const bool last = (hi - i) == level.size() && level.size() <= kArity;
      const TaskId t =
          g.add_task(last ? "synth_sink" : "synth_compute",
                     "t" + std::to_string(round) + "_" + std::to_string(i),
                     random_props(p, rng));
      for (std::size_t j = i; j < hi; ++j) {
        g.add_link(level[j], t, random_mb(p, rng));
      }
      next.push_back(t);
    }
    level = std::move(next);
    ++round;
  }
  return g;
}

FlowGraph make_independent(const SyntheticGraphParams& p, common::Rng& rng) {
  FlowGraph g("independent_" + std::to_string(p.size));
  const std::size_t n = std::max<std::size_t>(1, p.size);
  for (std::size_t i = 0; i < n; ++i) {
    const TaskId src = g.add_task(
        "synth_source", "s" + std::to_string(i), random_props(p, rng));
    const TaskId work = g.add_task(
        "synth_compute", "c" + std::to_string(i), random_props(p, rng));
    g.add_link(src, work, random_mb(p, rng));
  }
  return g;
}

}  // namespace

FlowGraph make_synthetic_graph(const SyntheticGraphParams& params,
                               common::Rng& rng) {
  switch (params.family) {
    case GraphFamily::kChain:       return make_chain(params, rng);
    case GraphFamily::kForkJoin:    return make_fork_join(params, rng);
    case GraphFamily::kLayered:     return make_layered(params, rng);
    case GraphFamily::kInTree:      return make_in_tree(params, rng);
    case GraphFamily::kIndependent: return make_independent(params, rng);
  }
  throw common::StateError("unknown graph family");
}

FlowGraph make_linear_solver_graph(double matrix_scale) {
  // x = A^-1 b with PA = LU:  x = U^-1 (L^-1 (P b)).
  FlowGraph g("linear_solver");
  TaskProperties mat;
  mat.input_size = matrix_scale;

  const TaskId a = g.add_task("matrix_generate", "A", mat);
  const TaskId b = g.add_task("vector_generate", "b", mat);
  const TaskId lu = g.add_task("lu_decomposition", "LU", mat);
  const TaskId low = g.add_task("lu_lower", "L", mat);
  const TaskId up = g.add_task("lu_upper", "U", mat);
  const TaskId li = g.add_task("matrix_inversion", "L_inv", mat);
  const TaskId ui = g.add_task("matrix_inversion", "U_inv", mat);
  const TaskId pb = g.add_task("permute_vector", "Pb", mat);
  const TaskId y = g.add_task("matrix_vector_multiply", "y", mat);
  const TaskId x = g.add_task("matrix_vector_multiply", "x", mat);
  const TaskId res = g.add_task("residual_check", "residual", mat);

  const double mat_mb = 0.008 * matrix_scale;
  const double vec_mb = 0.0003 * matrix_scale;

  g.add_link(a, lu, mat_mb);
  g.add_link(lu, low, mat_mb);
  g.add_link(lu, up, mat_mb);
  g.add_link(low, li, mat_mb);
  g.add_link(up, ui, mat_mb);
  // permute_vector(LU, b)
  g.add_link(lu, pb, mat_mb);
  g.add_link(b, pb, vec_mb);
  // y = L_inv * Pb
  g.add_link(li, y, mat_mb);
  g.add_link(pb, y, vec_mb);
  // x = U_inv * y
  g.add_link(ui, x, mat_mb);
  g.add_link(y, x, vec_mb);
  // residual_check(A, x, b)
  g.add_link(a, res, mat_mb);
  g.add_link(x, res, vec_mb);
  g.add_link(b, res, vec_mb);
  return g;
}

FlowGraph make_c3i_graph(double scenario_scale) {
  FlowGraph g("c3i_surveillance");
  TaskProperties props;
  props.input_size = scenario_scale;

  const TaskId ingest = g.add_task("sensor_ingest", "ingest", props);
  const TaskId detect = g.add_task("target_detect", "detect", props);
  const TaskId track = g.add_task("track_filter", "track", props);
  const TaskId rank = g.add_task("threat_rank", "rank", props);
  const TaskId display = g.add_task("c3i_display", "display", props);

  g.add_link(ingest, detect, 0.01 * scenario_scale);
  g.add_link(detect, track, 0.005 * scenario_scale);
  g.add_link(track, rank, 0.001 * scenario_scale);
  g.add_link(rank, display, 0.0005 * scenario_scale);
  g.add_link(track, display, 0.001 * scenario_scale);
  return g;
}

FlowGraph make_fourier_graph(double signal_scale) {
  FlowGraph g("fourier_analysis");
  TaskProperties props;
  props.input_size = signal_scale;

  const TaskId s1 = g.add_task("signal_generate", "sig1", props);
  const TaskId s2 = g.add_task("signal_generate", "sig2", props);
  const TaskId sp1 = g.add_task("power_spectrum", "spec1", props);
  const TaskId sp2 = g.add_task("power_spectrum", "spec2", props);
  const TaskId conv = g.add_task("convolve", "conv", props);
  const TaskId sink = g.add_task("synth_sink", "collect", props);

  const double sig_mb = 0.002 * signal_scale;
  g.add_link(s1, sp1, sig_mb);
  g.add_link(s2, sp2, sig_mb);
  g.add_link(s1, conv, sig_mb);
  g.add_link(s2, conv, sig_mb);
  g.add_link(sp1, sink, sig_mb);
  g.add_link(sp2, sink, sig_mb);
  g.add_link(conv, sink, sig_mb);
  return g;
}

}  // namespace vdce::sim
