// Dynamic execution simulation: the full VDCE runtime loop at simulated
// time.
//
// Extends the static replay with the Control Manager behaviours of
// Section 2.3.1:
//   * the monitoring fabric (Monitors -> Group Managers -> Site
//     Managers) ticks periodically, keeping the repositories and load
//     forecasts current;
//   * the Application Controller's load guard: a task whose machine is
//     above the load threshold (at start or at any control tick while
//     running) is terminated and a rescheduling request is issued;
//   * failure handling: a host that dies mid-execution kills its task;
//     the Group Manager detects the failure at its next echo round,
//     marks the host down, and the task is rescheduled on the surviving
//     machines.
//
// Rescheduling re-runs the prediction-driven host choice over every
// registered site's *current* repository view, so what the benches
// measure is exactly the value of the paper's monitoring + rescheduling
// machinery (experiment E9).
#pragma once

#include <limits>

#include "runtime/control_manager.hpp"
#include "scheduler/allocation.hpp"
#include "sim/static_sim.hpp"

namespace vdce::sim {

/// Dynamic simulation tunables.
struct DynamicSimConfig {
  /// Control-plane tick (monitor/GM/SM advance), seconds.
  common::Duration tick_s = 1.0;
  /// Application Controller load threshold; infinity disables the
  /// guard.
  double load_threshold = std::numeric_limits<double>::infinity();
  /// Scheduler round-trip charged on every rescheduling.
  common::Duration reschedule_overhead_s = 1.0;
  /// Delay between a host dying and the Group Manager's echo round
  /// noticing (half an echo period on average; configured explicitly so
  /// the failure experiments can sweep it).
  common::Duration failure_detection_delay_s = 2.0;
  /// A task is abandoned (run fails) after this many placements.
  int max_attempts = 8;
};

/// The per-site control plane handed to the simulator.
struct SiteRuntime {
  rt::SiteManager* site_manager = nullptr;
  rt::ControlManager* control_manager = nullptr;
};

/// Event-driven dynamic simulator.
class DynamicSimulator {
 public:
  /// All pointers must outlive the simulator.
  DynamicSimulator(netsim::VirtualTestbed& testbed,
                   const repo::TaskPerformanceDb& task_db,
                   std::vector<SiteRuntime> sites,
                   DynamicSimConfig config = {});

  /// Runs `graph` under `allocation` starting at `start_at`.  Throws
  /// SchedulingError if a task exhausts max_attempts or no feasible
  /// host survives.
  [[nodiscard]] SimResult run(const afg::FlowGraph& graph,
                              const sched::AllocationTable& allocation,
                              TimePoint start_at = 0.0);

 private:
  netsim::VirtualTestbed* testbed_;
  const repo::TaskPerformanceDb* task_db_;
  std::vector<SiteRuntime> sites_;
  DynamicSimConfig config_;
};

}  // namespace vdce::sim
