#include "sim/dynamic_sim.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "common/error.hpp"
#include "common/log.hpp"
#include "predict/predictor.hpp"
#include "scheduler/eligibility.hpp"
#include "scheduler/scheduler_iface.hpp"

namespace vdce::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

DynamicSimulator::DynamicSimulator(netsim::VirtualTestbed& testbed,
                                   const repo::TaskPerformanceDb& task_db,
                                   std::vector<SiteRuntime> sites,
                                   DynamicSimConfig config)
    : testbed_(&testbed),
      task_db_(&task_db),
      sites_(std::move(sites)),
      config_(config) {
  common::expects(!sites_.empty(), "dynamic simulation needs >= 1 site");
  for (const SiteRuntime& s : sites_) {
    common::expects(s.site_manager != nullptr && s.control_manager != nullptr,
                    "site runtime pointers must be set");
  }
}

SimResult DynamicSimulator::run(const afg::FlowGraph& graph,
                                const sched::AllocationTable& allocation,
                                TimePoint start_at) {
  graph.validate();

  enum class Status { kWaiting, kReady, kRunning, kDone };

  struct TaskState {
    Status status = Status::kWaiting;
    std::size_t waiting_parents = 0;
    TimePoint data_ready = 0.0;
    std::vector<HostId> hosts;
    SiteId site;
    TimePoint start = 0.0;
    /// Next event for a running task: completion, failure-triggered
    /// requeue, or (checked separately) threshold kill at a tick.
    TimePoint event_time = kInf;
    bool event_is_failure = false;
    TimePoint finish = 0.0;
    Duration exec = 0.0;
    int attempts = 0;
    std::unordered_set<HostId> excluded;  // hosts this task must avoid
  };

  std::unordered_map<TaskId, TaskState> states;
  for (const afg::TaskNode& n : graph.tasks()) {
    TaskState st;
    st.waiting_parents = graph.parents(n.id).size();
    const sched::AllocationEntry& entry = allocation.entry(n.id);
    st.hosts = entry.hosts;
    st.site = entry.site;
    if (st.waiting_parents == 0) {
      st.status = Status::kReady;
      st.data_ready = start_at;
    }
    states.emplace(n.id, std::move(st));
  }

  std::unordered_map<HostId, TimePoint> host_free;
  std::unordered_map<TaskId, TimePoint> done_at;
  SimResult result;

  // Re-places one task on the best currently-believed-alive machine
  // across every site, excluding `excluded` hosts.  Mirrors the Host
  // Selection Algorithm against the *current* repository views.
  const auto replace_hosts = [&](const afg::TaskNode& node,
                                 const std::unordered_set<HostId>& excluded)
      -> std::optional<std::pair<std::vector<HostId>, SiteId>> {
    const unsigned want = node.props.mode == afg::ComputeMode::kParallel
                              ? node.props.num_processors
                              : 1u;
    double best_score = kInf;
    std::vector<HostId> best_hosts;
    SiteId best_site = SiteId::invalid();
    for (const SiteRuntime& sr : sites_) {
      rt::SiteManager& sm = *sr.site_manager;
      const predict::PerformancePredictor predictor(sm.repository(),
                                                    &sm.forecaster());
      std::vector<std::pair<double, HostId>> scored;
      for (const HostId h :
           sched::eligible_hosts(sm.repository(), node, sm.site())) {
        if (excluded.contains(h)) continue;
        scored.emplace_back(
            predictor.predict(node.library_task, node.props.input_size, h),
            h);
      }
      std::sort(scored.begin(), scored.end());
      if (scored.size() < want) continue;
      const double score = scored[want - 1].first / static_cast<double>(want);
      if (score < best_score) {
        best_score = score;
        best_site = sm.site();
        best_hosts.clear();
        for (unsigned i = 0; i < want; ++i) {
          best_hosts.push_back(scored[i].second);
        }
      }
    }
    if (!best_site.valid()) return std::nullopt;
    return std::make_pair(std::move(best_hosts), best_site);
  };

  // Requeues a task after a kill/refusal at time `when`.
  const auto reschedule_task = [&](TaskId id, TimePoint when,
                                   const char* why) {
    TaskState& st = states.at(id);
    const afg::TaskNode& node = graph.task(id);
    ++result.reschedules;
    common::log_debug("dynamic_sim", "rescheduling ", node.label, " at t=",
                      when, " (", why, ")");
    if (st.attempts >= config_.max_attempts) {
      throw sched::SchedulingError("task " + node.label + " exceeded " +
                                   std::to_string(config_.max_attempts) +
                                   " placement attempts");
    }
    const auto placement = replace_hosts(node, st.excluded);
    if (!placement) {
      throw sched::SchedulingError("no surviving feasible host for task " +
                                   node.label);
    }
    st.hosts = placement->first;
    st.site = placement->second;
    st.status = Status::kReady;
    // Inputs are re-sent from the (completed) parents to the new host.
    TimePoint data_ready = when + config_.reschedule_overhead_s;
    for (const TaskId parent : graph.parents(id)) {
      const Duration transfer = testbed_->transfer_time(
          states.at(parent).hosts.front(), st.hosts.front(),
          graph.link(parent, id).transfer_mb);
      data_ready = std::max(data_ready,
                            when + config_.reschedule_overhead_s + transfer);
    }
    st.data_ready = data_ready;
    st.event_time = kInf;
  };

  // Tries to move one ready task into the running state.
  const auto start_task = [&](TaskId id) {
    TaskState& st = states.at(id);
    const afg::TaskNode& node = graph.task(id);
    ++st.attempts;

    TimePoint start = st.data_ready;
    for (const HostId h : st.hosts) {
      const auto it = host_free.find(h);
      if (it != host_free.end()) start = std::max(start, it->second);
    }

    const HostId primary = st.hosts.front();

    // Application Controller guards at task startup.
    if (!testbed_->is_alive(primary, start)) {
      ++result.failures_hit;
      st.excluded.insert(primary);
      reschedule_task(id, start + config_.failure_detection_delay_s,
                      "host dead at start");
      return;
    }
    const double load_now = testbed_->true_load(primary, start);
    if (load_now > config_.load_threshold) {
      st.excluded.insert(primary);
      reschedule_task(id, start, "load above threshold at start");
      return;
    }

    const auto rec = task_db_->get(node.library_task);
    Duration exec = 0.0;
    for (const HostId h : st.hosts) {
      exec = std::max(exec, testbed_->execution_time_at(
                                rec, node.props.input_size, h, start));
    }
    exec /= static_cast<double>(st.hosts.size());
    const TimePoint finish = start + exec;

    st.status = Status::kRunning;
    st.start = start;
    st.exec = exec;
    st.finish = finish;
    st.event_is_failure = false;
    st.event_time = finish;

    // Will any assigned host die mid-run?
    for (const HostId h : st.hosts) {
      for (TimePoint probe = start; probe < finish;
           probe += config_.tick_s) {
        if (!testbed_->is_alive(h, probe)) {
          st.event_is_failure = true;
          st.event_time = probe + config_.failure_detection_delay_s;
          st.excluded.insert(h);
          break;
        }
      }
      if (st.event_is_failure) break;
    }

    for (const HostId h : st.hosts) host_free[h] = finish;
  };

  TimePoint next_tick = start_at + config_.tick_s;
  std::size_t done_count = 0;
  const std::size_t total = graph.task_count();
  TimePoint now = start_at;

  // Start the initially-ready tasks.
  for (const afg::TaskNode& n : graph.tasks()) {
    if (states.at(n.id).status == Status::kReady) start_task(n.id);
  }

  while (done_count < total) {
    // Next event: earliest running-task event vs next control tick.
    TimePoint next_event = kInf;
    TaskId next_task = TaskId::invalid();
    for (const auto& [id, st] : states) {
      if (st.status != Status::kRunning) continue;
      if (st.event_time < next_event ||
          (st.event_time == next_event && id < next_task)) {
        next_event = st.event_time;
        next_task = id;
      }
    }
    // Also consider ready tasks waiting for their data_ready moment.
    for (const auto& [id, st] : states) {
      if (st.status != Status::kReady) continue;
      if (st.data_ready < next_event ||
          (st.data_ready == next_event && id < next_task)) {
        next_event = st.data_ready;
        next_task = id;
      }
    }

    if (next_event == kInf && next_tick == kInf) {
      throw common::StateError("dynamic simulation stalled");
    }

    if (next_tick <= next_event) {
      now = next_tick;
      next_tick += config_.tick_s;
      // Advance every site's control plane.
      for (const SiteRuntime& sr : sites_) sr.control_manager->tick(now);
      // Application Controllers' in-flight threshold checks.
      if (config_.load_threshold != kInf) {
        for (auto& [id, st] : states) {
          if (st.status != Status::kRunning) continue;
          if (now <= st.start || now >= st.event_time) continue;
          const double load =
              testbed_->true_load(st.hosts.front(), now);
          if (load > config_.load_threshold) {
            st.excluded.insert(st.hosts.front());
            st.status = Status::kReady;  // terminated by the controller
            for (const HostId h : st.hosts) {
              host_free[h] = std::min(host_free[h], now);
            }
            reschedule_task(id, now, "load above threshold while running");
          }
        }
      }
      continue;
    }

    now = next_event;
    TaskState& st = states.at(next_task);

    if (st.status == Status::kReady) {
      start_task(next_task);
      continue;
    }

    // Running-task event.
    if (st.event_is_failure) {
      ++result.failures_hit;
      st.status = Status::kReady;
      for (const HostId h : st.hosts) {
        host_free[h] = std::min(host_free[h], now);
      }
      reschedule_task(next_task, now, "host failed while running");
      continue;
    }

    // Successful completion.
    st.status = Status::kDone;
    ++done_count;
    done_at[next_task] = st.finish;
    result.makespan_s = std::max(result.makespan_s, st.finish - start_at);

    const afg::TaskNode& node = graph.task(next_task);
    SimTaskRecord rec;
    rec.task = next_task;
    rec.label = node.label;
    rec.library_task = node.library_task;
    rec.host = st.hosts.front();
    rec.site = st.site;
    rec.data_ready = st.data_ready;
    rec.start = st.start;
    rec.finish = st.finish;
    rec.exec_s = st.exec;
    rec.attempts = st.attempts;
    result.records.push_back(rec);

    // Feed the measured time back ("the newly measured execution time of
    // each application task is stored in the task-performance
    // database").
    for (const SiteRuntime& sr : sites_) {
      if (sr.site_manager->site() == st.site) {
        sr.site_manager->record_task_time(node.library_task, st.exec);
      }
    }

    // Release children.
    for (const TaskId child : graph.children(next_task)) {
      TaskState& cs = states.at(child);
      if (--cs.waiting_parents != 0) continue;
      TimePoint data_ready = now;
      for (const TaskId parent : graph.parents(child)) {
        const Duration transfer = testbed_->transfer_time(
            states.at(parent).hosts.front(), cs.hosts.front(),
            graph.link(parent, child).transfer_mb);
        data_ready = std::max(data_ready, done_at.at(parent) + transfer);
      }
      cs.status = Status::kReady;
      cs.data_ready = data_ready;
    }
  }

  std::sort(result.records.begin(), result.records.end(),
            [](const SimTaskRecord& a, const SimTaskRecord& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.task < b.task;
            });
  return result;
}

}  // namespace vdce::sim
