// Workload generators: the application flow graphs the experiments run.
//
// Two kinds: the paper's concrete applications (the Figure 3 Linear
// Equation Solver and a C3I surveillance pipeline built from the task
// libraries) and parameterised synthetic graph families (chains,
// fork-joins, layered random DAGs, reduction trees) for the scheduling
// sweeps.
#pragma once

#include <cstdint>

#include "afg/graph.hpp"
#include "common/rng.hpp"

namespace vdce::sim {

/// Synthetic DAG shapes.
enum class GraphFamily : std::uint8_t {
  kChain,        // source -> compute -> ... -> sink
  kForkJoin,     // source -> W computes -> sink
  kLayered,      // L layers x W width, random inter-layer edges
  kInTree,       // reduction tree: leaves -> ... -> root
  kIndependent,  // N disconnected source -> sink pairs
};

[[nodiscard]] std::string to_string(GraphFamily family);

/// Parameters of a synthetic graph.
struct SyntheticGraphParams {
  GraphFamily family = GraphFamily::kLayered;
  /// Total size knob: nodes along the main dimension (chain length,
  /// fork width, layer count, tree depth, pair count).
  std::size_t size = 4;
  /// Width of each layer (layered family only).
  std::size_t width = 4;
  /// Probability of each possible inter-layer edge beyond the
  /// guaranteed one (layered family only).
  double edge_probability = 0.3;
  /// Range of per-task input_size properties.
  double min_input_size = 0.5;
  double max_input_size = 2.0;
  /// Range of link transfer sizes, MB.
  double min_transfer_mb = 0.1;
  double max_transfer_mb = 4.0;
};

/// Builds a synthetic AFG over the synthetic task library.
/// Deterministic for a given rng state.
[[nodiscard]] afg::FlowGraph make_synthetic_graph(
    const SyntheticGraphParams& params, common::Rng& rng);

/// The Figure 3 application: a Linear Equation Solver (Ax = b via LU
/// decomposition, triangular-factor inversions and multiplications),
/// ending in a residual check.  `matrix_scale` is the input_size of the
/// generator tasks (matrix order = 32 * matrix_scale).
[[nodiscard]] afg::FlowGraph make_linear_solver_graph(
    double matrix_scale = 1.0);

/// A C3I surveillance pipeline: sensor ingest -> detection -> tracking
/// -> threat ranking -> display, the C3I library's canonical chain.
/// `scenario_scale` is the ingest task's input_size (scan count = 16 *
/// scenario_scale).
[[nodiscard]] afg::FlowGraph make_c3i_graph(double scenario_scale = 1.0);

/// A Fourier analysis application: two generated signals, their spectra
/// and their convolution, reduced by a sink.
[[nodiscard]] afg::FlowGraph make_fourier_graph(double signal_scale = 1.0);

}  // namespace vdce::sim
