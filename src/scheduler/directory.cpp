#include "scheduler/directory.hpp"

#include "common/error.hpp"

namespace vdce::sched {

void RepositoryDirectory::add_site(SiteId site,
                                   const repo::SiteRepository* repository,
                                   const predict::LoadForecaster* forecaster) {
  common::expects(repository != nullptr, "repository must not be null");
  if (sites_.contains(site)) {
    throw common::StateError("site already registered in directory");
  }
  auto cache = std::make_unique<predict::PredictionCache>();
  predict::PerformancePredictor predictor(*repository, forecaster,
                                          cache.get());
  sites_.emplace(site,
                 Entry{repository, std::move(cache), std::move(predictor)});
}

std::vector<SiteId> RepositoryDirectory::sites() const {
  std::vector<SiteId> out;
  out.reserve(sites_.size());
  for (const auto& [id, _] : sites_) out.push_back(id);
  return out;
}

const RepositoryDirectory::Entry& RepositoryDirectory::entry(
    SiteId site) const {
  const auto it = sites_.find(site);
  if (it == sites_.end()) {
    throw common::NotFoundError("unknown site in directory");
  }
  return it->second;
}

Duration RepositoryDirectory::site_distance(SiteId a, SiteId b) const {
  if (a == b) return 0.0;
  // Any site's repository knows the WAN map; use the first registered.
  const auto link = entry(sites_.begin()->first)
                        .repository->resources()
                        .site_network(a, b);
  if (!link) {
    throw common::NotFoundError("no WAN link between the sites");
  }
  return link->latency_s;
}

Duration RepositoryDirectory::transfer_time(SiteId a, SiteId b,
                                            double mb) const {
  if (a == b) return 0.0;
  const auto link = entry(sites_.begin()->first)
                        .repository->resources()
                        .site_network(a, b);
  if (!link) {
    throw common::NotFoundError("no WAN link between the sites");
  }
  return link->latency_s + mb / link->transfer_mb_per_s;
}

HostSelectionMap RepositoryDirectory::host_selection(
    SiteId site, const afg::FlowGraph& graph, std::size_t threads) {
  return run_host_selection(graph, site, entry(site).predictor, threads);
}

HostSelection RepositoryDirectory::host_reselection(
    SiteId site, const afg::TaskNode& node,
    const std::vector<HostId>& excluded) {
  return run_host_reselection(node, site, entry(site).predictor, excluded);
}

Duration estimate_host_transfer(const repo::SiteRepository& repository,
                                HostId from, HostId to, double mb) {
  if (from == to) return 0.0;
  const auto a = repository.resources().get(from);
  const auto b = repository.resources().get(to);

  const auto lan = [&](common::GroupId g) -> repo::NetworkAttrs {
    if (const auto attrs = repository.resources().group_network(g, g)) {
      return *attrs;
    }
    repo::NetworkAttrs fallback;  // typical LAN when unmeasured
    fallback.latency_s = 0.0005;
    fallback.transfer_mb_per_s = 10.0;
    return fallback;
  };

  const auto ga = lan(a.static_attrs.group);
  if (a.static_attrs.group == b.static_attrs.group) {
    return ga.latency_s + mb / ga.transfer_mb_per_s;
  }
  const auto gb = lan(b.static_attrs.group);
  if (a.static_attrs.site == b.static_attrs.site) {
    const double bw =
        std::min(ga.transfer_mb_per_s, gb.transfer_mb_per_s);
    return ga.latency_s + gb.latency_s + mb / bw;
  }
  Duration wan = 0.0;
  if (const auto link = repository.resources().site_network(
          a.static_attrs.site, b.static_attrs.site)) {
    wan = link->latency_s + mb / link->transfer_mb_per_s;
  }
  return ga.latency_s + gb.latency_s + wan;
}

Duration RepositoryDirectory::host_transfer_time(HostId from, HostId to,
                                                 double mb) const {
  common::expects(!sites_.empty(), "directory has no sites");
  return estimate_host_transfer(*sites_.begin()->second.repository, from,
                                to, mb);
}

Duration RepositoryDirectory::base_time(
    const std::string& library_task) const {
  common::expects(!sites_.empty(), "directory has no sites");
  return sites_.begin()->second.repository->tasks().get(library_task)
      .base_time_s;
}

const predict::PerformancePredictor& RepositoryDirectory::predictor(
    SiteId site) const {
  return entry(site).predictor;
}

const predict::PredictionCache& RepositoryDirectory::prediction_cache(
    SiteId site) const {
  return *entry(site).cache;
}

}  // namespace vdce::sched
