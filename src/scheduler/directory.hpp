// Site directory: how the local Application Scheduler reaches the rest
// of the VDCE.
//
// "VDCE provides distributed scheduling in a wide-area system, in which
//  each site consists of its own Application Scheduler running on the
//  VDCE server."  (Section 2.2.1)
//
// The Site Scheduler Algorithm needs three remote capabilities: the set
// of reachable sites with their WAN distances, a way to run the Host
// Selection Algorithm at a site (the paper multicasts the AFG and each
// site answers), and the inter-site transfer-time estimate.  The
// interface decouples the algorithm from the transport: the library
// ships a repository-backed implementation; the runtime module routes
// the same calls through Site Manager messages.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "afg/graph.hpp"
#include "predict/prediction_cache.hpp"
#include "predict/predictor.hpp"
#include "scheduler/host_selection.hpp"

namespace vdce::sched {

/// Access to the distributed scheduling fabric.
class SiteDirectory {
 public:
  virtual ~SiteDirectory() = default;

  /// All sites (the local one included).
  [[nodiscard]] virtual std::vector<SiteId> sites() const = 0;

  /// WAN distance between two sites (one-way latency, seconds); 0 for
  /// a == b.  Used by the k-nearest-site selection.
  [[nodiscard]] virtual Duration site_distance(SiteId a, SiteId b) const = 0;

  /// Estimated time to move `mb` megabytes between two sites; 0 for
  /// a == b.
  [[nodiscard]] virtual Duration transfer_time(SiteId a, SiteId b,
                                               double mb) const = 0;

  /// "Multicast the AFG" to a site: runs the Host Selection Algorithm
  /// there and returns the (machine, prediction) pairs.  `threads` is
  /// the scoring parallelism the answering site may use (1 = serial).
  /// Must be safe to call concurrently for different sites (the Site
  /// Scheduler fans the multicast out on the shared thread pool).
  [[nodiscard]] virtual HostSelectionMap host_selection(
      SiteId site, const afg::FlowGraph& graph, std::size_t threads = 1) = 0;

  /// Single-task re-placement request (the fault-tolerance path): runs
  /// host selection for `node` alone at `site`, skipping every host in
  /// `excluded`.  Must be safe to call concurrently with host_selection
  /// (a reschedule can race an unrelated application's placement).
  [[nodiscard]] virtual HostSelection host_reselection(
      SiteId site, const afg::TaskNode& node,
      const std::vector<HostId>& excluded) = 0;

  /// Base-processor execution time for unit input of a library task
  /// (the level computation's cost source).  Throws NotFoundError for
  /// an unknown task.
  [[nodiscard]] virtual Duration base_time(
      const std::string& library_task) const = 0;

  /// Estimated time to move `mb` megabytes between two specific hosts
  /// (0 on the same host; LAN within a site; WAN across sites).  Used
  /// by the queue-aware scheduler extension.
  [[nodiscard]] virtual Duration host_transfer_time(HostId from, HostId to,
                                                    double mb) const = 0;
};

/// Shared host-to-host transfer estimate from one repository's resource
/// and network records.
[[nodiscard]] Duration estimate_host_transfer(
    const repo::SiteRepository& repository, HostId from, HostId to,
    double mb);

/// Repository-backed directory: holds every site's repository/predictor
/// in-process (used by the simulator and the benches).
class RepositoryDirectory final : public SiteDirectory {
 public:
  /// Registers one site.  Both pointers must outlive the directory.
  void add_site(SiteId site, const repo::SiteRepository* repository,
                const predict::LoadForecaster* forecaster = nullptr);

  [[nodiscard]] std::vector<SiteId> sites() const override;
  [[nodiscard]] Duration site_distance(SiteId a, SiteId b) const override;
  [[nodiscard]] Duration transfer_time(SiteId a, SiteId b,
                                       double mb) const override;
  [[nodiscard]] HostSelectionMap host_selection(
      SiteId site, const afg::FlowGraph& graph,
      std::size_t threads = 1) override;
  [[nodiscard]] HostSelection host_reselection(
      SiteId site, const afg::TaskNode& node,
      const std::vector<HostId>& excluded) override;
  [[nodiscard]] Duration base_time(
      const std::string& library_task) const override;
  [[nodiscard]] Duration host_transfer_time(HostId from, HostId to,
                                            double mb) const override;

  /// The predictor bound to one site.
  [[nodiscard]] const predict::PerformancePredictor& predictor(
      SiteId site) const;

  /// The prediction cache bound to one site (for hit-rate reporting).
  [[nodiscard]] const predict::PredictionCache& prediction_cache(
      SiteId site) const;

 private:
  struct Entry {
    const repo::SiteRepository* repository;
    std::unique_ptr<predict::PredictionCache> cache;
    predict::PerformancePredictor predictor;
  };
  [[nodiscard]] const Entry& entry(SiteId site) const;

  std::map<SiteId, Entry> sites_;
};

}  // namespace vdce::sched
