#include "scheduler/host_selection.hpp"

#include <algorithm>

#include "scheduler/eligibility.hpp"

namespace vdce::sched {

HostSelectionMap run_host_selection(
    const afg::FlowGraph& graph, common::SiteId site,
    const predict::PerformancePredictor& predictor) {
  const repo::SiteRepository& repository = predictor.repository();
  HostSelectionMap out;
  out.reserve(graph.task_count());

  for (const afg::TaskNode& node : graph.tasks()) {
    const auto candidates = eligible_hosts(repository, node, site);
    HostSelection selection;

    if (!candidates.empty()) {
      // Evaluate Predict(task_i, R) for every eligible resource.
      std::vector<std::pair<Duration, HostId>> scored;
      scored.reserve(candidates.size());
      for (const HostId host : candidates) {
        scored.emplace_back(
            predictor.predict(node.library_task, node.props.input_size, host),
            host);
      }
      std::sort(scored.begin(), scored.end());
      selection.scored = scored;

      const unsigned want = node.props.mode == afg::ComputeMode::kParallel
                                ? node.props.num_processors
                                : 1u;
      if (scored.size() >= want) {
        for (unsigned i = 0; i < want; ++i) {
          selection.hosts.push_back(scored[i].second);
        }
        // Sequential: the best host's prediction.  Parallel: the slowest
        // selected machine bounds the per-processor share.
        selection.predicted_s =
            scored[want - 1].first / static_cast<double>(want);
      }
      // else: the site cannot offer enough machines -> infeasible.
    }
    out.emplace(node.id, std::move(selection));
  }
  return out;
}

}  // namespace vdce::sched
