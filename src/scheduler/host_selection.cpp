#include "scheduler/host_selection.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "predict/prediction_cache.hpp"
#include "scheduler/eligibility.hpp"

namespace vdce::sched {

namespace {

// Minimum candidate hosts per parallel chunk: below this, scoring one
// host is far cheaper than handing the chunk to a pool worker.
constexpr std::size_t kScoringGrain = 16;

}  // namespace

HostSelectionMap run_host_selection(
    const afg::FlowGraph& graph, common::SiteId site,
    const predict::PerformancePredictor& predictor, std::size_t threads) {
  const repo::SiteRepository& repository = predictor.repository();
  HostSelectionMap out;
  out.reserve(graph.task_count());

  // Prediction-cache provenance: the counter delta across this Host
  // Selection round says how many of its Predict() evaluations were
  // served from the memo table versus computed fresh.
  common::ScopedSpan hs_span("host_selection", "scheduler");
  predict::PredictionCacheStats cache_before;
  if (hs_span.active()) {
    hs_span.rename("host_selection:site" + std::to_string(site.value()));
    hs_span.arg("site", site.value());
    hs_span.arg("tasks", graph.task_count());
    if (predictor.cache() != nullptr) {
      cache_before = predictor.cache()->stats();
    }
  }

  // One resource-database snapshot for the whole graph (already sorted
  // by host id) instead of a locked full-table walk per task.
  const std::vector<repo::HostRecord> site_hosts =
      site.valid() ? repository.resources().hosts_in_site(site)
                   : repository.resources().all_hosts();

  // Per-graph prefetch of each distinct library task's record and
  // weight table: the scoring loop below stops paying string-keyed
  // repository lookups per (task, host) pair.
  std::unordered_map<std::string, predict::PreparedTask> prepared;

  const std::size_t helpers = threads > 1 ? threads - 1 : 0;
  common::ThreadPool& pool = common::ThreadPool::shared();

  std::vector<const repo::HostRecord*> candidates;
  candidates.reserve(site_hosts.size());
  for (const afg::TaskNode& node : graph.tasks()) {
    candidates.clear();
    for (const repo::HostRecord& host : site_hosts) {
      if (host_matches(host, node, repository)) candidates.push_back(&host);
    }
    HostSelection selection;

    if (!candidates.empty()) {
      auto [it, inserted] = prepared.try_emplace(node.library_task);
      if (inserted) it->second = predictor.prepare(node.library_task);
      const predict::PreparedTask& task = it->second;

      // Evaluate Predict(task_i, R) for every eligible resource.  Each
      // result is written by index, so the scored vector is identical
      // to the serial loop's regardless of execution order.
      std::vector<std::pair<Duration, HostId>> scored(candidates.size());
      pool.parallel_for(
          0, candidates.size(), kScoringGrain,
          [&](std::size_t i) {
            scored[i] = {
                predictor
                    .predict_detailed(task, node.props.input_size,
                                      *candidates[i])
                    .time_s,
                candidates[i]->host};
          },
          helpers);
      std::sort(scored.begin(), scored.end());

      const unsigned want = node.props.mode == afg::ComputeMode::kParallel
                                ? node.props.num_processors
                                : 1u;
      if (scored.size() >= want) {
        selection.hosts.reserve(want);
        for (unsigned i = 0; i < want; ++i) {
          selection.hosts.push_back(scored[i].second);
        }
        // Sequential: the best host's prediction.  Parallel: the slowest
        // selected machine bounds the per-processor share.
        selection.predicted_s =
            scored[want - 1].first / static_cast<double>(want);
      }
      // else: the site cannot offer enough machines -> infeasible.
      selection.scored = std::move(scored);
    }
    out.emplace(node.id, std::move(selection));
  }
  static common::Counter& m_rounds =
      common::MetricsRegistry::global().counter(
          "scheduler.host_selection_rounds");
  m_rounds.add(1);
  // Cache provenance is a tracing feature: stats() quiesces every
  // shard, which would serialise the concurrent multicast rounds, so
  // the snapshot (and the hit-rate gauge it feeds) is only taken when a
  // recorder is installed.
  if (hs_span.active() && predictor.cache() != nullptr) {
    const predict::PredictionCacheStats after = predictor.cache()->stats();
    hs_span.arg("cache_hits", after.hits - cache_before.hits);
    hs_span.arg("cache_misses", after.misses - cache_before.misses);
    common::MetricsRegistry::global()
        .gauge("scheduler.cache_hit_rate")
        .set(after.lookups > 0 ? static_cast<double>(after.hits) /
                                     static_cast<double>(after.lookups)
                               : 0.0);
  }
  return out;
}

HostSelection run_host_reselection(
    const afg::TaskNode& node, common::SiteId site,
    const predict::PerformancePredictor& predictor,
    const std::vector<common::HostId>& excluded) {
  const repo::SiteRepository& repository = predictor.repository();
  const std::vector<repo::HostRecord> site_hosts =
      site.valid() ? repository.resources().hosts_in_site(site)
                   : repository.resources().all_hosts();

  const auto is_excluded = [&](common::HostId host) {
    return std::find(excluded.begin(), excluded.end(), host) !=
           excluded.end();
  };

  HostSelection selection;
  std::vector<std::pair<Duration, HostId>> scored;
  scored.reserve(site_hosts.size());
  std::optional<predict::PreparedTask> prepared;
  for (const repo::HostRecord& host : site_hosts) {
    if (is_excluded(host.host)) continue;
    if (!host_matches(host, node, repository)) continue;
    if (!prepared) prepared = predictor.prepare(node.library_task);
    scored.emplace_back(
        predictor.predict_detailed(*prepared, node.props.input_size, host)
            .time_s,
        host.host);
  }
  std::sort(scored.begin(), scored.end());

  const unsigned want = node.props.mode == afg::ComputeMode::kParallel
                            ? node.props.num_processors
                            : 1u;
  if (scored.size() >= want) {
    selection.hosts.reserve(want);
    for (unsigned i = 0; i < want; ++i) {
      selection.hosts.push_back(scored[i].second);
    }
    selection.predicted_s = scored[want - 1].first / static_cast<double>(want);
  }
  selection.scored = std::move(scored);
  return selection;
}

}  // namespace vdce::sched
