// The resource allocation table.
//
// "After the best schedule of the whole application is determined by the
//  local site and a set of remote sites, the resource allocation table
//  is generated and transferred to the Site Manager ... the Site Manager
//  multicasts it to the Group Managers that will be involved in the
//  execution.  If a machine in a group is assigned for a task execution,
//  the Group Manager sends an execution request message and related
//  parts of the resource allocation table to the Application Controller
//  of the machine."  (Sections 2.2.1, 2.3.1)
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.hpp"
#include "common/ids.hpp"

namespace vdce::sched {

using common::Duration;
using common::GroupId;
using common::HostId;
using common::SiteId;
using common::TaskId;

/// One row of the resource allocation table.
struct AllocationEntry {
  TaskId task;
  std::string task_label;
  std::string library_task;
  /// The assigned machine(s); one for sequential tasks, num_processors
  /// for parallel tasks (all within one site, per Section 2.2.1).
  std::vector<HostId> hosts;
  SiteId site;
  /// The predicted execution time the schedule decision was based on.
  Duration predicted_s = 0.0;

  [[nodiscard]] HostId primary_host() const { return hosts.front(); }
};

/// The complete mapping of an application's tasks to resources.
class AllocationTable {
 public:
  AllocationTable() = default;
  explicit AllocationTable(std::string app_name)
      : app_name_(std::move(app_name)) {}

  [[nodiscard]] const std::string& app_name() const { return app_name_; }

  /// Adds a row; throws StateError if the task is already allocated.
  void add(AllocationEntry entry);

  /// Replaces an existing row (dynamic rescheduling).  Throws
  /// NotFoundError if the task has no row yet.
  void replace(AllocationEntry entry);

  [[nodiscard]] const AllocationEntry& entry(TaskId task) const;
  [[nodiscard]] bool contains(TaskId task) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// All rows, ordered by task id (deterministic iteration).
  [[nodiscard]] std::vector<AllocationEntry> rows() const;

  /// The "related portion" for one host: rows whose host set includes
  /// `host`.
  [[nodiscard]] std::vector<AllocationEntry> portion_for_host(
      HostId host) const;

  /// Sites involved in the execution (sorted, unique).
  [[nodiscard]] std::vector<SiteId> sites_involved() const;
  /// Hosts involved in the execution (sorted, unique).
  [[nodiscard]] std::vector<HostId> hosts_involved() const;

  /// Sum of predicted times (a crude schedule-cost figure; the real
  /// makespan comes from the simulator/runtime).
  [[nodiscard]] Duration total_predicted() const;

  /// Predicted busy seconds each host owes this application: the sum of
  /// predicted_s over every row placed on the host.  The submission
  /// service charges this against residual capacity when admitting
  /// further applications (see sched::check_qos's occupancy overload).
  [[nodiscard]] std::unordered_map<HostId, Duration> host_occupancy() const;

 private:
  std::string app_name_;
  std::unordered_map<TaskId, AllocationEntry> entries_;
};

}  // namespace vdce::sched
