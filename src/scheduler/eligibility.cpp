#include "scheduler/eligibility.hpp"

namespace vdce::sched {

bool host_matches(const repo::HostRecord& host, const afg::TaskNode& node,
                  const repo::SiteRepository& repository) {
  if (!host.dynamic_attrs.alive) return false;
  if (node.props.preferred_arch &&
      host.static_attrs.arch != *node.props.preferred_arch) {
    return false;
  }
  if (node.props.preferred_os &&
      host.static_attrs.os != *node.props.preferred_os) {
    return false;
  }
  return repository.constraints().can_run(node.library_task, host.host);
}

std::vector<common::HostId> eligible_hosts(
    const repo::SiteRepository& repository, const afg::TaskNode& node,
    common::SiteId site) {
  std::vector<common::HostId> out;
  for (const repo::HostRecord& host : repository.resources().all_hosts()) {
    if (site.valid() && host.static_attrs.site != site) continue;
    if (host_matches(host, node, repository)) out.push_back(host.host);
  }
  return out;
}

bool is_eligible(const repo::SiteRepository& repository,
                 const afg::TaskNode& node, common::HostId host) {
  const auto rec = repository.resources().find(host);
  if (!rec) return false;
  return host_matches(*rec, node, repository);
}

}  // namespace vdce::sched
