#include "scheduler/qos.hpp"

#include <algorithm>
#include <unordered_map>

namespace vdce::sched {

Duration predicted_makespan(const afg::FlowGraph& graph,
                            const AllocationTable& allocation,
                            const SiteDirectory& directory,
                            const HostOccupancy& busy) {
  graph.validate();

  // Hosts start busy until their committed time (residual capacity).
  std::unordered_map<HostId, Duration> host_free(busy.begin(), busy.end());
  std::unordered_map<TaskId, Duration> finish;
  Duration makespan = 0.0;

  // Topological sweep: every parent is finished before its children
  // are visited, so one pass suffices.
  for (const TaskId id : graph.topological_order()) {
    const AllocationEntry& entry = allocation.entry(id);

    Duration data_ready = 0.0;
    for (const TaskId p : graph.parents(id)) {
      const Duration transfer = directory.host_transfer_time(
          allocation.entry(p).primary_host(), entry.primary_host(),
          graph.link(p, id).transfer_mb);
      data_ready = std::max(data_ready, finish.at(p) + transfer);
    }

    Duration start = data_ready;
    for (const HostId h : entry.hosts) {
      const auto it = host_free.find(h);
      if (it != host_free.end()) start = std::max(start, it->second);
    }
    const Duration end = start + entry.predicted_s;
    finish[id] = end;
    for (const HostId h : entry.hosts) host_free[h] = end;
    makespan = std::max(makespan, end);
  }
  return makespan;
}

Duration predicted_makespan(const afg::FlowGraph& graph,
                            const AllocationTable& allocation,
                            const SiteDirectory& directory) {
  return predicted_makespan(graph, allocation, directory, HostOccupancy{});
}

QosAdmission check_qos(const afg::FlowGraph& graph,
                       const AllocationTable& allocation,
                       const SiteDirectory& directory,
                       const QosRequirement& qos,
                       const HostOccupancy& busy) {
  QosAdmission admission;
  admission.predicted_makespan_s =
      predicted_makespan(graph, allocation, directory, busy);
  admission.slack_s = qos.deadline_s - admission.predicted_makespan_s;
  admission.admitted = admission.slack_s >= 0.0;
  return admission;
}

QosAdmission check_qos(const afg::FlowGraph& graph,
                       const AllocationTable& allocation,
                       const SiteDirectory& directory,
                       const QosRequirement& qos) {
  return check_qos(graph, allocation, directory, qos, HostOccupancy{});
}

}  // namespace vdce::sched
