#include "scheduler/qos.hpp"

#include <algorithm>
#include <unordered_map>

namespace vdce::sched {

Duration predicted_makespan(const afg::FlowGraph& graph,
                            const AllocationTable& allocation,
                            const SiteDirectory& directory,
                            const HostOccupancy& busy) {
  graph.validate();

  // Hosts start busy until their committed time (residual capacity).
  std::unordered_map<HostId, Duration> host_free(busy.begin(), busy.end());
  std::unordered_map<TaskId, Duration> finish;
  Duration makespan = 0.0;

  // Topological sweep: every parent is finished before its children
  // are visited, so one pass suffices.
  for (const TaskId id : graph.topological_order()) {
    const AllocationEntry& entry = allocation.entry(id);

    Duration data_ready = 0.0;
    for (const TaskId p : graph.parents(id)) {
      const Duration transfer = directory.host_transfer_time(
          allocation.entry(p).primary_host(), entry.primary_host(),
          graph.link(p, id).transfer_mb);
      data_ready = std::max(data_ready, finish.at(p) + transfer);
    }

    Duration start = data_ready;
    for (const HostId h : entry.hosts) {
      const auto it = host_free.find(h);
      if (it != host_free.end()) start = std::max(start, it->second);
    }
    const Duration end = start + entry.predicted_s;
    finish[id] = end;
    for (const HostId h : entry.hosts) host_free[h] = end;
    makespan = std::max(makespan, end);
  }
  return makespan;
}

Duration predicted_makespan(const afg::FlowGraph& graph,
                            const AllocationTable& allocation,
                            const SiteDirectory& directory) {
  return predicted_makespan(graph, allocation, directory, HostOccupancy{});
}

QosAdmission check_qos(const afg::FlowGraph& graph,
                       const AllocationTable& allocation,
                       const SiteDirectory& directory,
                       const QosRequirement& qos,
                       const HostOccupancy& busy) {
  QosAdmission admission;
  admission.predicted_makespan_s =
      predicted_makespan(graph, allocation, directory, busy);
  admission.slack_s = qos.deadline_s - admission.predicted_makespan_s;
  admission.admitted = admission.slack_s >= 0.0;
  return admission;
}

QosAdmission check_qos(const afg::FlowGraph& graph,
                       const AllocationTable& allocation,
                       const SiteDirectory& directory,
                       const QosRequirement& qos) {
  return check_qos(graph, allocation, directory, qos, HostOccupancy{});
}

std::vector<QosAdmission> check_qos_batch(
    const std::vector<QosBatchItem>& items, const SiteDirectory& directory,
    const HostOccupancy& busy) {
  // One availability baseline for the whole burst; each item's sweep
  // patches only the hosts its allocation touches and restores them
  // afterwards, so the per-item cost is independent of how many hosts
  // the environment (or the backlog) spans.
  std::unordered_map<HostId, Duration> host_free(busy.begin(), busy.end());
  // Saved (host, previous availability) pairs; kMissing marks a host
  // the baseline did not contain before this item.
  constexpr Duration kMissing = -1.0;
  std::vector<std::pair<HostId, Duration>> saved;
  std::unordered_map<TaskId, Duration> finish;

  std::vector<QosAdmission> admissions;
  admissions.reserve(items.size());
  for (const QosBatchItem& item : items) {
    const afg::FlowGraph& graph = *item.graph;
    const AllocationTable& allocation = *item.allocation;
    graph.validate();
    saved.clear();
    finish.clear();

    Duration makespan = 0.0;
    for (const TaskId id : graph.topological_order()) {
      const AllocationEntry& entry = allocation.entry(id);

      Duration data_ready = 0.0;
      for (const TaskId p : graph.parents(id)) {
        const Duration transfer = directory.host_transfer_time(
            allocation.entry(p).primary_host(), entry.primary_host(),
            graph.link(p, id).transfer_mb);
        data_ready = std::max(data_ready, finish.at(p) + transfer);
      }

      Duration start = data_ready;
      for (const HostId h : entry.hosts) {
        const auto it = host_free.find(h);
        if (it != host_free.end()) start = std::max(start, it->second);
      }
      const Duration end = start + entry.predicted_s;
      finish[id] = end;
      for (const HostId h : entry.hosts) {
        const auto [it, inserted] = host_free.try_emplace(h, end);
        if (inserted) {
          saved.emplace_back(h, kMissing);
        } else {
          saved.emplace_back(h, it->second);
          it->second = end;
        }
      }
      makespan = std::max(makespan, end);
    }

    // Restore the baseline (reverse order, so a host touched twice
    // ends back at its pre-item value).
    for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
      if (it->second == kMissing) {
        host_free.erase(it->first);
      } else {
        host_free[it->first] = it->second;
      }
    }

    QosAdmission admission;
    admission.predicted_makespan_s = makespan;
    admission.slack_s = item.qos.deadline_s - makespan;
    admission.admitted = admission.slack_s >= 0.0;
    admissions.push_back(admission);

    // Charge the admitted item's predicted host-seconds into the
    // baseline before the next item is evaluated: within the burst,
    // residual capacity is never promised twice.
    if (admission.admitted) {
      for (const auto& [host, busy_s] : allocation.host_occupancy()) {
        host_free[host] += busy_s;
      }
    }
  }
  return admissions;
}

}  // namespace vdce::sched
