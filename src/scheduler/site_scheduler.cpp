#include "scheduler/site_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"

namespace vdce::sched {

SiteScheduler::SiteScheduler(SiteId local_site, SiteDirectory& directory,
                             SiteSchedulerConfig config)
    : local_site_(local_site), directory_(&directory), config_(config) {}

std::vector<SiteId> SiteScheduler::select_nearest_sites() const {
  // Step 2: the k nearest remote sites by WAN distance.  Only k of N
  // sites survive, so a partial sort suffices.
  const std::vector<SiteId> all = directory_->sites();
  std::vector<SiteId> remotes;
  remotes.reserve(all.size());
  for (const SiteId s : all) {
    if (s != local_site_) remotes.push_back(s);
  }
  const std::size_t k = std::min(config_.k_nearest, remotes.size());
  std::partial_sort(remotes.begin(),
                    remotes.begin() + static_cast<std::ptrdiff_t>(k),
                    remotes.end(),
                    [&](SiteId a, SiteId b) {
                      const Duration da =
                          directory_->site_distance(local_site_, a);
                      const Duration db =
                          directory_->site_distance(local_site_, b);
                      if (da != db) return da < db;
                      return a < b;
                    });
  remotes.resize(k);
  return remotes;
}

AllocationTable SiteScheduler::schedule(const afg::FlowGraph& graph) {
  graph.validate();

  common::ScopedSpan sched_span("schedule", "scheduler");
  if (sched_span.active()) {
    sched_span.rename("schedule:" + graph.name());
    sched_span.arg("tasks", graph.task_count());
  }
  // Instruments resolved once per process (registry references are
  // stable): the registry's mutex+map walk stays off the hot path.
  static common::Counter& m_schedules =
      common::MetricsRegistry::global().counter("scheduler.schedules");
  static common::Counter& m_placed =
      common::MetricsRegistry::global().counter("scheduler.tasks_placed");
  m_schedules.add(1);

  // Steps 2-5: consult the local site plus the k nearest remotes.
  consulted_.clear();
  consulted_.push_back(local_site_);
  for (const SiteId s : select_nearest_sites()) consulted_.push_back(s);
  if (sched_span.active()) {
    sched_span.arg("sites_consulted", consulted_.size());
  }

  // Steps 3-5: the AFG multicast.  Each consulted site's Host Selection
  // round is independent, so the rounds fan out across the shared pool
  // (the calling thread participates); answers land by index, which
  // keeps the gathered offers identical to the serial consultation.
  const std::size_t helpers = config_.threads > 1 ? config_.threads - 1 : 0;
  std::vector<HostSelectionMap> offers(consulted_.size());
  common::ThreadPool::shared().parallel_for(
      0, consulted_.size(), 1,
      [&](std::size_t i) {
        common::ScopedSpan consult_span("site_consult", "scheduler");
        if (consult_span.active()) {
          consult_span.rename("site:" + std::to_string(consulted_[i].value()));
          consult_span.arg("site", consulted_[i].value());
          consult_span.arg("local", consulted_[i] == local_site_ ? 1 : 0);
        }
        offers[i] =
            directory_->host_selection(consulted_[i], graph, config_.threads);
      },
      helpers);

  // Levels from base-processor computation costs (Section 2.2), fixed
  // before the scheduling loop runs.
  const auto levels = afg::compute_levels(graph, [&](const afg::TaskNode& n) {
    return directory_->base_time(n.library_task) * n.props.input_size;
  });

  // Priority of a ready task under the configured policy.
  const auto better = [&](TaskId a, TaskId b) {
    switch (config_.priority) {
      case PriorityPolicy::kLevel: {
        const double la = levels.at(a);
        const double lb = levels.at(b);
        if (la != lb) return la > lb;
        return a < b;
      }
      case PriorityPolicy::kFifo:
        return a < b;
      case PriorityPolicy::kRandomized: {
        const auto h = [](TaskId t) {
          std::uint64_t x = t.value() * 0x9E3779B97F4A7C15ull + 1;
          x ^= x >> 29;
          x *= 0xBF58476D1CE4E5B9ull;
          x ^= x >> 32;
          return x;
        };
        const auto ha = h(a);
        const auto hb = h(b);
        if (ha != hb) return ha < hb;
        return a < b;
      }
    }
    return a < b;
  };

  // Step 6: ready set bookkeeping.
  std::unordered_map<TaskId, std::size_t> unscheduled_parents;
  for (const afg::TaskNode& n : graph.tasks()) {
    unscheduled_parents[n.id] = graph.parents(n.id).size();
  }
  // Priority heap over the ready set: `better` is a strict total order
  // (every policy tie-breaks on the task id), so popping the heap top
  // selects exactly the task the old linear min-scan picked, in O(log n).
  const auto heap_after = [&](TaskId a, TaskId b) { return better(b, a); };
  std::priority_queue<TaskId, std::vector<TaskId>, decltype(heap_after)>
      ready(heap_after);
  for (const TaskId id : graph.entry_tasks()) ready.push(id);

  AllocationTable table(graph.name());
  // Queue-aware extension: estimated-completion-time bookkeeping.
  // host_free[h] = when h finishes its committed work; finish_est[t] =
  // estimated finish of an already-placed task.  A candidate's cost is
  // its estimated completion max(host_free, data_ready) + predicted, so
  // sequential chains are not penalised while parallel siblings spread.
  std::unordered_map<HostId, Duration> host_free;
  std::unordered_map<TaskId, Duration> finish_est;

  // Step 7: schedule ready tasks in priority order.
  while (!ready.empty()) {
    const TaskId task = ready.top();
    ready.pop();
    const afg::TaskNode& node = graph.task(task);

    // Does the task consume input files from its parents?
    const auto parents = graph.parents(task);
    bool needs_inputs = false;
    for (const TaskId p : parents) {
      if (graph.link(p, task).transfer_mb > 0.0) {
        needs_inputs = true;
        break;
      }
    }

    SiteId best_site = SiteId::invalid();
    Duration best_cost = std::numeric_limits<double>::infinity();
    std::vector<HostId> best_hosts;
    Duration best_predicted = 0.0;

    const bool parallel = node.props.mode == afg::ComputeMode::kParallel;

    for (std::size_t si = 0; si < consulted_.size(); ++si) {
      const SiteId s = consulted_[si];
      const HostSelection& offer = offers[si].at(task);
      if (!offer.feasible()) continue;

      Duration transfer_cost = 0.0;
      if (needs_inputs && config_.transfer_aware) {
        // Sum the transfer of every parent's output into site s.
        for (const TaskId p : parents) {
          const SiteId parent_site = table.entry(p).site;
          transfer_cost += directory_->transfer_time(
              parent_site, s, graph.link(p, task).transfer_mb);
        }
      }

      if (config_.queue_aware && !parallel) {
        // Estimated completion on every candidate host, with the input
        // arrival time evaluated per host (intra-site LAN included).
        for (const auto& [predicted, host] : offer.scored) {
          Duration data_ready = 0.0;
          for (const TaskId p : parents) {
            Duration arrival = finish_est.at(p);
            if (config_.transfer_aware) {
              arrival += directory_->host_transfer_time(
                  table.entry(p).primary_host(), host,
                  graph.link(p, task).transfer_mb);
            }
            data_ready = std::max(data_ready, arrival);
          }
          const auto free_it = host_free.find(host);
          const Duration start = std::max(
              data_ready, free_it == host_free.end() ? 0.0 : free_it->second);
          const Duration cost = start + predicted;
          if (cost < best_cost) {
            best_cost = cost;
            best_site = s;
            best_hosts = {host};
            best_predicted = predicted;
          }
        }
      } else {
        const Duration cost = offer.predicted_s + transfer_cost;
        // Tie-break: prefer the local site, then the lower site id (the
        // iteration order of consulted_ starts with the local site).
        if (cost < best_cost) {
          best_cost = cost;
          best_site = s;
          best_hosts = offer.hosts;
          best_predicted = offer.predicted_s;
        }
      }
    }

    if (!best_site.valid()) {
      throw SchedulingError("no feasible resource for task '" + node.label +
                            "' (" + node.library_task + ") in the " +
                            std::to_string(consulted_.size()) +
                            " consulted site(s)");
    }

    if (config_.queue_aware) {
      // Completion estimate for this task under the chosen placement.
      Duration data_ready = 0.0;
      for (const TaskId p : parents) {
        Duration arrival = finish_est.at(p);
        if (config_.transfer_aware) {
          arrival += directory_->host_transfer_time(
              table.entry(p).primary_host(), best_hosts.front(),
              graph.link(p, task).transfer_mb);
        }
        data_ready = std::max(data_ready, arrival);
      }
      Duration start = data_ready;
      for (const HostId h : best_hosts) {
        const auto free_it = host_free.find(h);
        if (free_it != host_free.end()) {
          start = std::max(start, free_it->second);
        }
      }
      const Duration finish = start + best_predicted;
      finish_est[task] = finish;
      for (const HostId h : best_hosts) host_free[h] = finish;
    }

    if (common::trace_enabled()) {
      common::trace_instant(
          "placed", "scheduler",
          {{"task", node.label},
           {"site", std::to_string(best_site.value())},
           {"host", std::to_string(best_hosts.front().value())},
           {"predicted_s", std::to_string(best_predicted)},
           {"cost_s", std::to_string(best_cost)}});
    }
    m_placed.add(1);

    AllocationEntry entry;
    entry.task = task;
    entry.task_label = node.label;
    entry.library_task = node.library_task;
    entry.hosts = best_hosts;
    entry.site = best_site;
    entry.predicted_s = best_predicted;
    table.add(std::move(entry));

    // Release children whose parents are now all scheduled.
    for (const TaskId child : graph.children(task)) {
      if (--unscheduled_parents[child] == 0) ready.push(child);
    }
  }

  return table;
}

std::optional<AllocationEntry> SiteScheduler::reschedule(
    const afg::FlowGraph& graph, const AllocationTable& allocation,
    TaskId task, const std::vector<HostId>& excluded) const {
  const afg::TaskNode& node = graph.task(task);

  common::ScopedSpan resched_span("reschedule", "scheduler");
  if (resched_span.active()) {
    resched_span.rename("reschedule:" + node.label);
    resched_span.arg("excluded_hosts", excluded.size());
  }
  static common::Counter& m_reschedules =
      common::MetricsRegistry::global().counter(
          "scheduler.reschedule_requests");
  m_reschedules.add(1);

  // Same consultation set as schedule(), rebuilt locally so concurrent
  // reschedules (and a racing schedule() pass) never share state.
  std::vector<SiteId> consulted;
  consulted.push_back(local_site_);
  for (const SiteId s : select_nearest_sites()) consulted.push_back(s);

  const auto parents = graph.parents(task);

  SiteId best_site = SiteId::invalid();
  Duration best_cost = std::numeric_limits<double>::infinity();
  std::vector<HostId> best_hosts;
  Duration best_predicted = 0.0;

  for (const SiteId s : consulted) {
    const HostSelection offer =
        directory_->host_reselection(s, node, excluded);
    if (!offer.feasible()) continue;

    Duration transfer_cost = 0.0;
    if (config_.transfer_aware) {
      // The parents already ran (or are placed): their outputs must
      // reach the replacement site from wherever they were allocated.
      for (const TaskId p : parents) {
        const double mb = graph.link(p, task).transfer_mb;
        if (mb > 0.0) {
          transfer_cost +=
              directory_->transfer_time(allocation.entry(p).site, s, mb);
        }
      }
    }

    const Duration cost = offer.predicted_s + transfer_cost;
    if (cost < best_cost) {
      best_cost = cost;
      best_site = s;
      best_hosts = offer.hosts;
      best_predicted = offer.predicted_s;
    }
  }

  if (!best_site.valid()) {
    if (resched_span.active()) resched_span.arg("outcome", "infeasible");
    return std::nullopt;
  }
  if (resched_span.active()) {
    resched_span.arg("outcome", "re_placed");
    resched_span.arg("site", best_site.value());
    resched_span.arg("host", best_hosts.front().value());
  }

  AllocationEntry entry;
  entry.task = task;
  entry.task_label = node.label;
  entry.library_task = node.library_task;
  entry.hosts = std::move(best_hosts);
  entry.site = best_site;
  entry.predicted_s = best_predicted;
  return entry;
}

}  // namespace vdce::sched
