// Common interface of every task-to-resource mapper (the VDCE site
// scheduler and the baseline policies the benches compare it against).
#pragma once

#include "afg/graph.hpp"
#include "common/error.hpp"
#include "scheduler/allocation.hpp"

namespace vdce::sched {

/// Raised when no feasible mapping exists for some task.
class SchedulingError : public common::VdceError {
 public:
  using VdceError::VdceError;
};

/// A task-to-resource mapping policy.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Maps every task of `graph` to resources.  Throws SchedulingError
  /// when some task cannot be placed.
  [[nodiscard]] virtual AllocationTable schedule(
      const afg::FlowGraph& graph) = 0;
};

}  // namespace vdce::sched
