// Application-level Quality of Service.
//
// "We provide an application-based scheduling framework that provides
//  and guarantees Quality-of-Service (QoS) of a given application."
//  (Section 2.2) and "The main goal of the VDCE project is to ...
//  [manage] the Quality of Service (QoS) requirements."  (Section 1)
//
// The QoS admission check estimates an allocation's makespan from the
// same information the scheduler used (per-task predictions + host
// serialisation + host-level transfer estimates) and admits the
// application only when the estimate meets the user's deadline.  The
// runtime's load guard and rescheduling then defend the admitted
// deadline against load changes (Section 2.3.1).
#pragma once

#include <optional>
#include <unordered_map>

#include "afg/graph.hpp"
#include "scheduler/directory.hpp"

namespace vdce::sched {

/// Predicted per-host busy time already committed to other admitted
/// applications (sum of AllocationTable::host_occupancy over them).
/// The residual-capacity admission check starts each host's
/// availability at its committed time instead of zero, so a shared
/// environment never promises the same host-seconds twice.
using HostOccupancy = std::unordered_map<HostId, Duration>;

/// A user's QoS requirement for one application run.
struct QosRequirement {
  /// Wall-clock deadline for the whole application, seconds.
  Duration deadline_s = 0.0;
};

/// The admission decision.
struct QosAdmission {
  bool admitted = false;
  /// The estimate the decision was based on.
  Duration predicted_makespan_s = 0.0;
  /// Slack (deadline - estimate); negative when rejected.
  Duration slack_s = 0.0;
};

/// Estimates the makespan of `allocation` for `graph`: an
/// estimated-completion-time sweep over the allocation with per-host
/// serialisation and host-level transfer estimates from `directory`.
/// This is the scheduler's view (predictions, not ground truth).
[[nodiscard]] Duration predicted_makespan(const afg::FlowGraph& graph,
                                          const AllocationTable& allocation,
                                          const SiteDirectory& directory);

/// Residual-capacity variant: every host starts busy until its
/// committed time in `busy` (predicted occupancy of already-admitted
/// applications).  With an empty map this is exactly the plain
/// estimator; adding occupancy can only delay tasks, never speed them
/// up (the makespan is monotone in `busy`).
[[nodiscard]] Duration predicted_makespan(const afg::FlowGraph& graph,
                                          const AllocationTable& allocation,
                                          const SiteDirectory& directory,
                                          const HostOccupancy& busy);

/// Admission check: estimate the makespan and compare to the deadline.
[[nodiscard]] QosAdmission check_qos(const afg::FlowGraph& graph,
                                     const AllocationTable& allocation,
                                     const SiteDirectory& directory,
                                     const QosRequirement& qos);

/// Residual-capacity admission: the estimate accounts for the predicted
/// host occupancy of already-admitted applications, so a deadline that
/// holds on an idle system can be (correctly) refused on a busy one.
[[nodiscard]] QosAdmission check_qos(const afg::FlowGraph& graph,
                                     const AllocationTable& allocation,
                                     const SiteDirectory& directory,
                                     const QosRequirement& qos,
                                     const HostOccupancy& busy);

/// One member of an arrival burst submitted for batched admission.
/// Both pointers must outlive the check_qos_batch call.
struct QosBatchItem {
  const afg::FlowGraph* graph = nullptr;
  const AllocationTable* allocation = nullptr;
  QosRequirement qos;
};

/// Batched residual-capacity admission: admits an entire arrival burst
/// against ONE occupancy snapshot instead of re-seeding a per-host
/// availability map from `busy` for every submission.  Semantics are
/// exactly the sequential loop
///
///   for each item:  check_qos(item, busy);  if admitted:
///                   busy += item.allocation->host_occupancy()
///
/// -- each admitted item's predicted host-seconds are charged before
/// the next item is evaluated, so the burst never promises the same
/// residual capacity twice -- but the availability baseline is built
/// once and patched per item (only the hosts an item touches are
/// saved and restored), which is what makes a 100k-submission burst
/// O(burst * graph) instead of O(burst * (graph + all-hosts)).
[[nodiscard]] std::vector<QosAdmission> check_qos_batch(
    const std::vector<QosBatchItem>& items, const SiteDirectory& directory,
    const HostOccupancy& busy);

}  // namespace vdce::sched
