// Application-level Quality of Service.
//
// "We provide an application-based scheduling framework that provides
//  and guarantees Quality-of-Service (QoS) of a given application."
//  (Section 2.2) and "The main goal of the VDCE project is to ...
//  [manage] the Quality of Service (QoS) requirements."  (Section 1)
//
// The QoS admission check estimates an allocation's makespan from the
// same information the scheduler used (per-task predictions + host
// serialisation + host-level transfer estimates) and admits the
// application only when the estimate meets the user's deadline.  The
// runtime's load guard and rescheduling then defend the admitted
// deadline against load changes (Section 2.3.1).
#pragma once

#include <optional>

#include "afg/graph.hpp"
#include "scheduler/directory.hpp"

namespace vdce::sched {

/// A user's QoS requirement for one application run.
struct QosRequirement {
  /// Wall-clock deadline for the whole application, seconds.
  Duration deadline_s = 0.0;
};

/// The admission decision.
struct QosAdmission {
  bool admitted = false;
  /// The estimate the decision was based on.
  Duration predicted_makespan_s = 0.0;
  /// Slack (deadline - estimate); negative when rejected.
  Duration slack_s = 0.0;
};

/// Estimates the makespan of `allocation` for `graph`: an
/// estimated-completion-time sweep over the allocation with per-host
/// serialisation and host-level transfer estimates from `directory`.
/// This is the scheduler's view (predictions, not ground truth).
[[nodiscard]] Duration predicted_makespan(const afg::FlowGraph& graph,
                                          const AllocationTable& allocation,
                                          const SiteDirectory& directory);

/// Admission check: estimate the makespan and compare to the deadline.
[[nodiscard]] QosAdmission check_qos(const afg::FlowGraph& graph,
                                     const AllocationTable& allocation,
                                     const SiteDirectory& directory,
                                     const QosRequirement& qos);

}  // namespace vdce::sched
