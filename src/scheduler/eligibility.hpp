// Host eligibility: the hardware/software requirement filter.
//
// "The schedule decision is based on the task specifications (i.e.,
//  hardware/software requirements) in the application flow graph,
//  locations and the configurations of the resources, and up-to-date
//  resource loads."  (Section 1)
//
// A host is eligible for a task when it is alive, has the task's
// executable (task-constraints database), and matches the user's
// optional machine-type preferences from the Editor's property panel.
#pragma once

#include <vector>

#include "afg/graph.hpp"
#include "repository/repository.hpp"

namespace vdce::sched {

/// Hosts of `site` eligible to run `node` (any site when `site` is
/// invalid()), sorted by id.
[[nodiscard]] std::vector<common::HostId> eligible_hosts(
    const repo::SiteRepository& repository, const afg::TaskNode& node,
    common::SiteId site = common::SiteId::invalid());

/// True if one specific host is eligible for `node`.
[[nodiscard]] bool is_eligible(const repo::SiteRepository& repository,
                               const afg::TaskNode& node,
                               common::HostId host);

/// The eligibility predicate against an already-fetched host record
/// (lets a caller filter a single resource-database snapshot instead of
/// re-reading the database per task).  Ignores the record's site.
[[nodiscard]] bool host_matches(const repo::HostRecord& host,
                                const afg::TaskNode& node,
                                const repo::SiteRepository& repository);

}  // namespace vdce::sched
