// The Host Selection Algorithm (paper Figure 5).
//
//   1. Retrieve task-specific parameters of AFG tasks from the
//      task-performance database.
//   2. Retrieve resource-specific parameters of a set of resources from
//      the resource-performance database.
//   3. Set task_queue = { task_i | task_i in AFG }.
//   4. For each task_i in task_queue: evaluate Predict(task_i, R) for
//      every resource R in R_set and assign task_i to the resource
//      minimising it.
//
// Runs at every queried site against that site's repository.  For
// parallel tasks the extension of Section 2.2.1 applies: the algorithm
// "is updated to select the number of machines required within the
// site", keeping the whole parallel task inside one site so "the
// inter-site communication overhead for parallel tasks is removed".
#pragma once

#include <cstddef>
#include <optional>
#include <unordered_map>
#include <vector>

#include "afg/graph.hpp"
#include "predict/predictor.hpp"
#include "scheduler/allocation.hpp"

namespace vdce::sched {

/// One task's in-site mapping decision: the chosen machine(s) and the
/// predicted execution time (the pair each remote site reports back to
/// the local site).
struct HostSelection {
  std::vector<HostId> hosts;
  Duration predicted_s = 0.0;
  /// Every eligible in-site candidate with its prediction, ascending
  /// (the full ranking behind the pick).  The queue-aware scheduler
  /// extension re-ranks these against per-host committed time.
  std::vector<std::pair<Duration, HostId>> scored;

  [[nodiscard]] bool feasible() const { return !hosts.empty(); }
};

/// Host selection results for a whole AFG.
using HostSelectionMap = std::unordered_map<TaskId, HostSelection>;

/// Runs the Host Selection Algorithm for `graph` at site `site`, using
/// `predictor` (bound to that site's repository).  Tasks with no
/// eligible host in the site get an infeasible (empty) entry.
///
/// A parallel task with num_processors = p receives the p eligible hosts
/// with the smallest predicted times; its reported prediction is the
/// slowest selected host's time divided by p (linear speedup bounded by
/// the weakest machine, intra-site communication subsumed in the LAN).
///
/// `threads` > 1 scores the eligible hosts of each task on the shared
/// thread pool (the calling thread plus up to threads-1 helpers) when
/// there are enough candidates to cover the grain; results are written
/// by index, so the output is identical to the serial evaluation.
[[nodiscard]] HostSelectionMap run_host_selection(
    const afg::FlowGraph& graph, common::SiteId site,
    const predict::PerformancePredictor& predictor, std::size_t threads = 1);

/// Re-placement for one task (the Control Manager's fault-tolerance
/// path): runs the Figure-5 scoring for `node` alone, skipping every
/// host in `excluded` (typically the machine that failed or crossed the
/// load threshold).  Uses the same cache-backed predictor as
/// run_host_selection, so repeated reschedules against an unchanged
/// repository hit the memoised Predict() values.  Thread-safe for
/// concurrent calls with a thread-safe predictor.
[[nodiscard]] HostSelection run_host_reselection(
    const afg::TaskNode& node, common::SiteId site,
    const predict::PerformancePredictor& predictor,
    const std::vector<common::HostId>& excluded);

}  // namespace vdce::sched
