#include "scheduler/baselines.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "scheduler/eligibility.hpp"

namespace vdce::sched {

namespace {

/// Builds one allocation row for `node` on hosts within the site of
/// `anchor`, honouring parallel processor counts: the anchor host first,
/// then the site's other eligible hosts in id order.  Returns false when
/// the site cannot supply enough machines.
bool fill_entry(const repo::SiteRepository& repository,
                const predict::PerformancePredictor& predictor,
                const afg::TaskNode& node, HostId anchor,
                AllocationEntry& entry) {
  const SiteId site = repository.resources().get(anchor).static_attrs.site;
  const unsigned want = node.props.mode == afg::ComputeMode::kParallel
                            ? node.props.num_processors
                            : 1u;
  std::vector<HostId> chosen{anchor};
  if (want > 1) {
    for (const HostId h : eligible_hosts(repository, node, site)) {
      if (chosen.size() >= want) break;
      if (h != anchor) chosen.push_back(h);
    }
    if (chosen.size() < want) return false;
  }
  Duration slowest = 0.0;
  for (const HostId h : chosen) {
    slowest = std::max(slowest, predictor.predict(node.library_task,
                                                  node.props.input_size, h));
  }
  entry.task = node.id;
  entry.task_label = node.label;
  entry.library_task = node.library_task;
  entry.hosts = std::move(chosen);
  entry.site = site;
  entry.predicted_s = slowest / static_cast<double>(want);
  return true;
}

[[noreturn]] void infeasible(const afg::TaskNode& node) {
  throw SchedulingError("no feasible resource for task '" + node.label +
                        "' (" + node.library_task + ")");
}

}  // namespace

// ---------------------------------------------------------------- random

RandomScheduler::RandomScheduler(const repo::SiteRepository& repository,
                                 std::uint64_t seed)
    : repo_(&repository), predictor_(repository), rng_(seed) {}

AllocationTable RandomScheduler::schedule(const afg::FlowGraph& graph) {
  graph.validate();
  AllocationTable table(graph.name());
  for (const TaskId id : graph.topological_order()) {
    const afg::TaskNode& node = graph.task(id);
    auto candidates = eligible_hosts(*repo_, node);
    // Try random anchors until one yields a feasible (possibly
    // parallel) placement.
    AllocationEntry entry;
    bool placed = false;
    while (!candidates.empty()) {
      const std::size_t pick = rng_.uniform_int(candidates.size());
      if (fill_entry(*repo_, predictor_, node, candidates[pick], entry)) {
        placed = true;
        break;
      }
      candidates.erase(candidates.begin() +
                       static_cast<std::ptrdiff_t>(pick));
    }
    if (!placed) infeasible(node);
    table.add(std::move(entry));
  }
  return table;
}

// ----------------------------------------------------------- round robin

RoundRobinScheduler::RoundRobinScheduler(const repo::SiteRepository& repository)
    : repo_(&repository), predictor_(repository) {}

AllocationTable RoundRobinScheduler::schedule(const afg::FlowGraph& graph) {
  graph.validate();
  const auto all = repo_->resources().all_hosts();
  if (all.empty()) throw SchedulingError("no hosts registered");

  AllocationTable table(graph.name());
  for (const TaskId id : graph.topological_order()) {
    const afg::TaskNode& node = graph.task(id);
    AllocationEntry entry;
    bool placed = false;
    for (std::size_t tries = 0; tries < all.size(); ++tries) {
      const HostId anchor = all[cursor_ % all.size()].host;
      ++cursor_;
      if (!is_eligible(*repo_, node, anchor)) continue;
      if (fill_entry(*repo_, predictor_, node, anchor, entry)) {
        placed = true;
        break;
      }
    }
    if (!placed) infeasible(node);
    table.add(std::move(entry));
  }
  return table;
}

// ------------------------------------------------------------ local only

LocalOnlyScheduler::LocalOnlyScheduler(const repo::SiteRepository& repository,
                                       common::SiteId local_site)
    : repo_(&repository), predictor_(repository), local_site_(local_site) {}

AllocationTable LocalOnlyScheduler::schedule(const afg::FlowGraph& graph) {
  graph.validate();
  AllocationTable table(graph.name());
  for (const TaskId id : graph.topological_order()) {
    const afg::TaskNode& node = graph.task(id);
    Duration best = std::numeric_limits<double>::infinity();
    std::optional<HostId> best_host;
    for (const HostId h : eligible_hosts(*repo_, node, local_site_)) {
      const Duration t =
          predictor_.predict(node.library_task, node.props.input_size, h);
      if (t < best) {
        best = t;
        best_host = h;
      }
    }
    AllocationEntry entry;
    if (!best_host ||
        !fill_entry(*repo_, predictor_, node, *best_host, entry)) {
      infeasible(node);
    }
    table.add(std::move(entry));
  }
  return table;
}

// -------------------------------------------------------- min-min family

MinMinScheduler::MinMinScheduler(const repo::SiteRepository& repository,
                                 bool largest_first)
    : repo_(&repository),
      predictor_(repository),
      largest_first_(largest_first) {}

AllocationTable MinMinScheduler::schedule(const afg::FlowGraph& graph) {
  graph.validate();
  AllocationTable table(graph.name());

  std::unordered_map<TaskId, std::size_t> pending_parents;
  std::unordered_map<TaskId, Duration> task_finish;
  std::unordered_map<HostId, Duration> host_free;
  std::vector<TaskId> ready;
  for (const afg::TaskNode& n : graph.tasks()) {
    pending_parents[n.id] = graph.parents(n.id).size();
    if (pending_parents[n.id] == 0) ready.push_back(n.id);
  }

  while (!ready.empty()) {
    // For every ready task find its best host / completion time.
    struct Choice {
      TaskId task;
      HostId host;
      Duration start;
      Duration finish;
      Duration exec;
    };
    std::vector<Choice> best_per_task;
    for (const TaskId id : ready) {
      const afg::TaskNode& node = graph.task(id);
      Duration data_ready = 0.0;
      for (const TaskId p : graph.parents(id)) {
        data_ready = std::max(data_ready, task_finish.at(p));
      }
      Choice best{id, HostId::invalid(), 0.0,
                  std::numeric_limits<double>::infinity(), 0.0};
      for (const HostId h : eligible_hosts(*repo_, node)) {
        const Duration exec =
            predictor_.predict(node.library_task, node.props.input_size, h);
        const Duration start = std::max(data_ready, host_free[h]);
        if (start + exec < best.finish) {
          best = Choice{id, h, start, start + exec, exec};
        }
      }
      if (!best.host.valid()) infeasible(node);
      best_per_task.push_back(best);
    }

    // min-min picks the smallest completion; max-min the largest.
    const auto chosen = largest_first_
        ? std::max_element(best_per_task.begin(), best_per_task.end(),
                           [](const Choice& a, const Choice& b) {
                             return a.finish < b.finish;
                           })
        : std::min_element(best_per_task.begin(), best_per_task.end(),
                           [](const Choice& a, const Choice& b) {
                             return a.finish < b.finish;
                           });

    const afg::TaskNode& node = graph.task(chosen->task);
    AllocationEntry entry;
    if (!fill_entry(*repo_, predictor_, node, chosen->host, entry)) {
      infeasible(node);
    }
    table.add(entry);
    task_finish[chosen->task] = chosen->finish;
    host_free[chosen->host] = chosen->finish;

    std::erase(ready, chosen->task);
    for (const TaskId child : graph.children(chosen->task)) {
      if (--pending_parents[child] == 0) ready.push_back(child);
    }
  }
  return table;
}

}  // namespace vdce::sched
