#include "scheduler/allocation.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace vdce::sched {

void AllocationTable::add(AllocationEntry entry) {
  common::expects(!entry.hosts.empty(), "allocation entry needs >= 1 host");
  if (entries_.contains(entry.task)) {
    throw common::StateError("task already allocated: " + entry.task_label);
  }
  entries_.emplace(entry.task, std::move(entry));
}

void AllocationTable::replace(AllocationEntry entry) {
  common::expects(!entry.hosts.empty(), "allocation entry needs >= 1 host");
  const auto it = entries_.find(entry.task);
  if (it == entries_.end()) {
    throw common::NotFoundError("task not allocated: " + entry.task_label);
  }
  it->second = std::move(entry);
}

const AllocationEntry& AllocationTable::entry(TaskId task) const {
  const auto it = entries_.find(task);
  if (it == entries_.end()) {
    throw common::NotFoundError("task has no allocation row");
  }
  return it->second;
}

bool AllocationTable::contains(TaskId task) const {
  return entries_.contains(task);
}

std::vector<AllocationEntry> AllocationTable::rows() const {
  std::vector<AllocationEntry> out;
  out.reserve(entries_.size());
  for (const auto& [_, e] : entries_) out.push_back(e);
  std::sort(out.begin(), out.end(),
            [](const AllocationEntry& a, const AllocationEntry& b) {
              return a.task < b.task;
            });
  return out;
}

std::vector<AllocationEntry> AllocationTable::portion_for_host(
    HostId host) const {
  auto out = rows();
  std::erase_if(out, [host](const AllocationEntry& e) {
    return std::find(e.hosts.begin(), e.hosts.end(), host) == e.hosts.end();
  });
  return out;
}

std::vector<SiteId> AllocationTable::sites_involved() const {
  std::vector<SiteId> out;
  for (const auto& [_, e] : entries_) out.push_back(e.site);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<HostId> AllocationTable::hosts_involved() const {
  std::vector<HostId> out;
  for (const auto& [_, e] : entries_) {
    out.insert(out.end(), e.hosts.begin(), e.hosts.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Duration AllocationTable::total_predicted() const {
  Duration total = 0.0;
  for (const auto& [_, e] : entries_) total += e.predicted_s;
  return total;
}

std::unordered_map<HostId, Duration> AllocationTable::host_occupancy()
    const {
  std::unordered_map<HostId, Duration> busy;
  for (const auto& [_, e] : entries_) {
    for (const HostId h : e.hosts) busy[h] += e.predicted_s;
  }
  return busy;
}

}  // namespace vdce::sched
