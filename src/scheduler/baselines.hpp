// Baseline mapping policies the benches compare the VDCE site scheduler
// against (experiment F4 in DESIGN.md).
//
// * RandomScheduler     — uniform random eligible host (no prediction).
// * RoundRobinScheduler — rotate over eligible hosts (load-blind
//                         balance).
// * LocalOnlyScheduler  — the paper's algorithm restricted to the local
//                         site (k = 0): what a single-site system does.
// * MinMinScheduler     — classic min-min with completion-time tracking
//                         (prediction-aware, transfer-blind): among
//                         ready tasks pick the (task, host) pair with
//                         the smallest estimated completion time.
// * MaxMinScheduler     — max-min variant (longest task first).
//
// All baselines honour eligibility (liveness, constraints, user
// preferences) so comparisons isolate the *placement* policy.
#pragma once

#include "common/rng.hpp"
#include "predict/predictor.hpp"
#include "scheduler/scheduler_iface.hpp"

namespace vdce::sched {

/// Uniform random eligible placement.
class RandomScheduler final : public Scheduler {
 public:
  RandomScheduler(const repo::SiteRepository& repository, std::uint64_t seed);
  [[nodiscard]] AllocationTable schedule(const afg::FlowGraph& graph) override;

 private:
  const repo::SiteRepository* repo_;
  predict::PerformancePredictor predictor_;
  common::Rng rng_;
};

/// Rotating eligible placement.
class RoundRobinScheduler final : public Scheduler {
 public:
  explicit RoundRobinScheduler(const repo::SiteRepository& repository);
  [[nodiscard]] AllocationTable schedule(const afg::FlowGraph& graph) override;

 private:
  const repo::SiteRepository* repo_;
  predict::PerformancePredictor predictor_;
  std::size_t cursor_ = 0;
};

/// Best predicted host, local site only (k = 0 ablation).
class LocalOnlyScheduler final : public Scheduler {
 public:
  LocalOnlyScheduler(const repo::SiteRepository& repository,
                     common::SiteId local_site);
  [[nodiscard]] AllocationTable schedule(const afg::FlowGraph& graph) override;

 private:
  const repo::SiteRepository* repo_;
  predict::PerformancePredictor predictor_;
  common::SiteId local_site_;
};

/// Min-min / max-min list schedulers with per-host completion-time
/// tracking.
class MinMinScheduler final : public Scheduler {
 public:
  /// `largest_first` = false gives min-min, true gives max-min.
  MinMinScheduler(const repo::SiteRepository& repository, bool largest_first);
  [[nodiscard]] AllocationTable schedule(const afg::FlowGraph& graph) override;

 private:
  const repo::SiteRepository* repo_;
  predict::PerformancePredictor predictor_;
  bool largest_first_;
};

}  // namespace vdce::sched
