// The Site Scheduler Algorithm (paper Figure 4).
//
//   1. Receive application flow graph (AFG) from local Application
//      Editor.
//   2. Select k nearest VDCE neighbor sites for the local site.
//   3. Multicast the AFG to each selected remote site.
//   4. Call the Host Selection Algorithm (local + selected remotes).
//   5. Receive each site's (machine, predicted time) pairs.
//   6. ready_tasks = entry nodes.
//   7. For each ready task (highest level first):
//        entry task / no input files  -> site minimising Predict;
//        otherwise                    -> site minimising
//            sum over parents of transfer_time(S_parent, S_j) * file_size
//            + Predict(task_i, R_j).
//      Fill the allocation row, then release children whose parents are
//      all scheduled.
//
// Priorities are the levels of Section 2.2 ("the level of each node of
// an application flow graph is determined before the execution of the
// scheduling algorithm"), with computation costs taken from the
// task-performance database's base-processor times.
#pragma once

#include <cstddef>
#include <optional>

#include "afg/levels.hpp"
#include "scheduler/directory.hpp"
#include "scheduler/scheduler_iface.hpp"

namespace vdce::sched {

/// Priority policies (design ablation D2; the paper uses kLevel).
enum class PriorityPolicy : std::uint8_t {
  kLevel,   // descending level (the paper's heuristic)
  kFifo,    // graph insertion order
  kRandomized,  // arbitrary-but-deterministic order (id hash)
};

/// Tunables of the Site Scheduler Algorithm.
struct SiteSchedulerConfig {
  /// How many nearest remote sites receive the AFG multicast ("In order
  /// to decrease the search space for scheduling, only a subset of
  /// remote sites is selected").
  std::size_t k_nearest = 2;
  /// When false, the transfer-time term is dropped (ablation D4):
  /// sites are chosen on Predict alone.
  bool transfer_aware = true;
  PriorityPolicy priority = PriorityPolicy::kLevel;
  /// Extension (DESIGN.md D7): track per-host committed time during the
  /// scheduling pass and charge it when ranking candidates, so wide
  /// graphs spread instead of stacking on the single best-predicted
  /// machine.  The paper's algorithm (Figure 4/5) is queue-blind; this
  /// is the "not difficult to extend" direction it gestures at.
  bool queue_aware = false;
  /// Scheduling-side parallelism: the calling thread plus up to
  /// threads-1 workers of the shared pool run the Figure-4 multicast
  /// concurrently (one Host Selection round per consulted site) and
  /// parallelise Predict scoring inside each round.  1 = fully serial.
  /// The allocation produced is bit-identical for every value --
  /// parallelism changes wall-clock, never placements.
  std::size_t threads = 1;
};

/// The distributed application-level scheduler of one VDCE site.
class SiteScheduler final : public Scheduler {
 public:
  /// `local_site` is where the execution request arrived; `directory`
  /// must outlive the scheduler.
  SiteScheduler(SiteId local_site, SiteDirectory& directory,
                SiteSchedulerConfig config = {});

  /// Runs the Site Scheduler Algorithm on `graph`.  Throws
  /// SchedulingError when some task has no feasible resource anywhere in
  /// the selected sites.
  [[nodiscard]] AllocationTable schedule(const afg::FlowGraph& graph) override;

  /// Re-places one task of an already-scheduled application (the
  /// Control Manager's fault-tolerance entry point): consults the same
  /// site set as schedule() but runs Host Selection for `task` alone,
  /// skipping every host in `excluded` (the failed or overloaded
  /// machines).  Transfer costs are charged against the parents' sites
  /// in `allocation`, which must hold a row for every parent of `task`.
  /// Returns std::nullopt when no consulted site has a feasible host
  /// left.  Const and thread-safe: unlike schedule(), this never
  /// touches consulted_sites(), so a reschedule may race an unrelated
  /// application's scheduling pass.
  [[nodiscard]] std::optional<AllocationEntry> reschedule(
      const afg::FlowGraph& graph, const AllocationTable& allocation,
      TaskId task, const std::vector<HostId>& excluded) const;

  [[nodiscard]] const SiteSchedulerConfig& config() const { return config_; }

  /// The sites the last schedule() call consulted (local + k nearest).
  [[nodiscard]] const std::vector<SiteId>& consulted_sites() const {
    return consulted_;
  }

 private:
  [[nodiscard]] std::vector<SiteId> select_nearest_sites() const;

  SiteId local_site_;
  SiteDirectory* directory_;
  SiteSchedulerConfig config_;
  std::vector<SiteId> consulted_;
};

}  // namespace vdce::sched
