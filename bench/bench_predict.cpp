// E8: prediction accuracy.
//
// Measures the relative error of Predict(task, R) against the
// ground-truth execution time across hosts and tasks, and sweeps the
// load-forecasting method and window (design decision D5).
#include <cmath>
#include <iomanip>
#include <iostream>

#include "bench/harness.hpp"
#include "predict/predictor.hpp"

namespace {

using namespace vdce;

constexpr double kEvalTime = 60.0;

/// Mean |predicted - actual| / actual over every (task, host) pair.
double mean_relative_error(bench::Vdce& v,
                           const predict::PerformancePredictor& predictor,
                           const netsim::TestbedConfig& config) {
  double err = 0.0;
  std::size_t n = 0;
  for (const auto& task :
       {"lu_decomposition", "matrix_inversion", "fft_forward",
        "track_filter", "synth_compute", "convolve"}) {
    for (const auto host : v.testbed->all_hosts()) {
      if (!v.repositories[0]->constraints().can_run(task, host)) continue;
      const double predicted = predictor.predict(task, 1.0, host);
      netsim::VirtualTestbed universe(config);
      const double actual = universe.execution_time_at(
          v.repositories[0]->tasks().get(task), 1.0, host, kEvalTime);
      err += std::abs(predicted - actual) / actual;
      ++n;
    }
  }
  return err / static_cast<double>(n);
}

}  // namespace

int main() {
  bench::banner("E8a", "prediction error by information source");
  bench::header("configuration,mean_relative_error");

  netsim::RandomTestbedParams params;
  params.num_sites = 2;
  params.groups_per_site = 2;
  params.hosts_per_group = 4;
  const auto config = netsim::make_random_testbed(params, 808);

  {
    // Full model: trial-run weights + monitored load forecast.
    auto v = bench::bring_up(config, /*warm_up_s=*/kEvalTime);
    predict::PerformancePredictor p(*v.repositories[0],
                                    v.forecasters[0].get());
    std::cout << "weights+forecast," << std::fixed << std::setprecision(3)
              << mean_relative_error(v, p, config) << "\n";
  }
  {
    // No monitoring: repository loads stay at their t=0 defaults.
    auto v = bench::bring_up(config, /*warm_up_s=*/0.0);
    predict::PerformancePredictor p(*v.repositories[0]);
    std::cout << "weights,stale_load," << std::fixed << std::setprecision(3)
              << mean_relative_error(v, p, config) << "\n";
  }
  {
    // No weights either: strip every trial-run weight (weight = 1).
    auto v = bench::bring_up(config, /*warm_up_s=*/0.0);
    auto blank = std::make_unique<repo::SiteRepository>(common::SiteId(0));
    tasklib::builtin_registry().install_defaults(blank->tasks());
    // Copy host records but not weights.
    for (const auto& rec : v.repositories[0]->resources().all_hosts()) {
      blank->resources().restore(rec);
    }
    for (const auto& c : v.repositories[0]->constraints().all()) {
      blank->constraints().set_location(c.task_name, c.host,
                                        c.executable_path);
    }
    predict::PerformancePredictor p(*blank);
    std::cout << "no_weights,stale_load," << std::fixed
              << std::setprecision(3) << mean_relative_error(v, p, config)
              << "\n";
  }
  std::cout << "shape check: error grows as information is removed — the "
               "paper's 'combination of analytical modeling and "
               "measurements' is what makes Predict() usable.\n";

  bench::banner("E8b", "forecast method x window x monitor noise (D5)");
  bench::header("monitor_noise,method,window,mean_relative_error");
  // Extra multiplicative monitor noise on top of the testbed's ~3%:
  // cheap /proc sampling (clean) vs load-average style estimates
  // (noisy).
  for (const double extra_noise : {0.0, 0.5}) {
    for (const auto& [name, method] :
         {std::pair{"last_sample", common::ForecastMethod::kLastSample},
          std::pair{"window_mean", common::ForecastMethod::kWindowMean},
          std::pair{"ewma",
                    common::ForecastMethod::kExponentialSmoothing}}) {
      for (const std::size_t window : {2u, 8u, 32u}) {
        auto v = bench::bring_up(config, /*warm_up_s=*/0.0);
        predict::LoadForecaster forecaster(window, method);
        common::Rng noise_rng(777);
        // Feed the forecaster one measurement per second up to the
        // evaluation time; its sliding window keeps the newest `window`.
        for (double t = 1.0; t <= kEvalTime; t += 1.0) {
          for (const auto host : v.testbed->all_hosts()) {
            const double measured = v.testbed->measure_load(host, t);
            const double jitter =
                std::max(0.0, 1.0 + extra_noise * noise_rng.normal());
            forecaster.observe(host, measured * jitter);
          }
        }
        predict::PerformancePredictor p(*v.repositories[0], &forecaster);
        std::cout << extra_noise << "," << name << "," << window << ","
                  << std::fixed << std::setprecision(3)
                  << mean_relative_error(v, p, config) << "\n";
      }
    }
  }
  std::cout << "shape check: with clean monitors the newest sample is the "
               "best forecast (windows only add lag); with noisy monitors "
               "the ordering flips and windowed averaging wins — D5 is a "
               "noise/drift trade-off.\n";
  return 0;
}
