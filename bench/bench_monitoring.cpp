// F6 (paper Figure 6): the Resource Controller.
//
//   (a) monitoring traffic: confidence-interval-filtered forwarding vs
//       push-everything (design decision D1), with a CI width sweep and
//       the induced staleness (repo view vs truth);
//   (b) failure-detection latency vs the echo period.
#include <cmath>
#include <iomanip>
#include <iostream>

#include "bench/harness.hpp"

namespace {

using namespace vdce;

void traffic_experiment() {
  bench::banner("F6a", "CI-filtered monitoring traffic (D1)");
  bench::header(
      "ci_z,reports,forwarded,reduction_pct,mean_staleness_abs_load");

  for (const double ci_z : {0.0, 0.5, 1.0, 1.96, 3.0}) {
    rt::GroupManagerConfig config;
    config.ci_filter = ci_z > 0.0;
    config.ci_z = ci_z > 0.0 ? ci_z : 1.96;

    auto v = bench::bring_up(netsim::make_campus_testbed(33),
                             /*warm_up_s=*/0.0, config);
    // Run the control plane for 300 simulated seconds.
    v.warm_up(300.0);

    std::size_t reports = 0, forwarded = 0;
    for (const auto& cm : v.control_managers) {
      reports += cm->stats().reports_received;
      forwarded += cm->stats().updates_forwarded;
    }

    // Staleness: |repo view - truth| across hosts at the end.
    double staleness = 0.0;
    std::size_t n = 0;
    for (std::size_t s = 0; s < v.repositories.size(); ++s) {
      const auto site = common::SiteId(static_cast<std::uint32_t>(s));
      for (const auto& rec :
           v.repositories[s]->resources().hosts_in_site(site)) {
        const double truth = v.testbed->true_load(rec.host, 300.0);
        staleness += std::abs(rec.dynamic_attrs.cpu_load - truth);
        ++n;
      }
    }

    std::cout << std::fixed << std::setprecision(2) << ci_z << ","
              << reports << "," << forwarded << ","
              << std::setprecision(1)
              << 100.0 * (1.0 - static_cast<double>(forwarded) /
                                    static_cast<double>(reports))
              << "," << std::setprecision(3) << staleness / n << "\n";
  }
  std::cout << "shape check: wider CIs cut forwarded updates sharply while "
               "staleness grows only mildly — the paper's rationale for "
               "the filter.\n";
}

void failure_detection_experiment() {
  bench::banner("F6b", "failure detection latency vs echo period");
  bench::header("echo_period_s,mean_detection_latency_s,detected");

  for (const double echo : {0.5, 1.0, 2.0, 5.0, 10.0}) {
    rt::GroupManagerConfig config;
    config.echo_period_s = echo;

    double latency_total = 0.0;
    int detected = 0;
    constexpr int kTrials = 6;
    for (int trial = 0; trial < kTrials; ++trial) {
      auto v = bench::bring_up(netsim::make_campus_testbed(100 + trial),
                               /*warm_up_s=*/0.0, config,
                               /*monitor_period_s=*/1.0);
      // Fail one host at a pseudo-random time in (20, 30).
      const auto hosts = v.testbed->all_hosts();
      const auto victim = hosts[trial % hosts.size()];
      const double fail_at = 20.0 + 10.0 * trial / kTrials;
      v.testbed->fail_host(victim, fail_at, 1e6);

      // Tick with a fine step so detection times are sharp.
      const auto site = v.testbed->site_of(victim);
      auto& repository = *v.repositories[site.value()];
      double detected_at = -1.0;
      for (double t = 0.25; t <= 60.0; t += 0.25) {
        for (auto& cm : v.control_managers) cm->tick(t);
        if (detected_at < 0.0 &&
            !repository.resources().get(victim).dynamic_attrs.alive) {
          detected_at = t;
          break;
        }
      }
      if (detected_at >= 0.0) {
        ++detected;
        latency_total += detected_at - fail_at;
      }
    }
    std::cout << std::fixed << std::setprecision(2) << echo << ","
              << (detected > 0 ? latency_total / detected : -1.0) << ","
              << detected << "/" << kTrials << "\n";
  }
  std::cout << "shape check: mean detection latency tracks ~echo_period/2 "
               "(plus tick quantisation); every failure is detected.\n";
}

}  // namespace

int main() {
  traffic_experiment();
  failure_detection_experiment();
  return 0;
}
