// E18: chaos sweep (D12) -- application completion rate and wasted-work
// ratio as seeded fault schedules intensify, with checkpoint/restart
// failover enabled vs disabled.
//
// Each cell brings up a fresh campus VDCE, installs one generated
// ChaosSchedule (host crashes, a whole-site outage, partitions, gray
// hosts, receive-deadline storms), then drains a fixed serial workload
// while the live clock steps across the schedule's horizon.  Every
// library-task invocation is counted; wasted work is the invocations
// that exceeded one-per-task-of-a-completed-app.  With checkpointing a
// failover restart replays finished predecessors instead of re-running
// them, so the wasted-work ratio stays near the failure floor; without
// it every restart re-executes the whole prefix.
#include <atomic>
#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.hpp"
#include "common/error.hpp"
#include "netsim/chaos.hpp"
#include "runtime/submission.hpp"
#include "scheduler/qos.hpp"

namespace {

using namespace vdce;
using common::SiteId;

/// The workload unit: a six-stage pipeline, long enough that a failure
/// striking one stage leaves a completed prefix worth checkpointing.
afg::FlowGraph pipeline_graph(const std::string& name) {
  afg::FlowGraph g(name);
  const auto a = g.add_task("synth_source", "a");
  const auto b = g.add_task("synth_compute", "b");
  const auto c = g.add_task("synth_compute", "c");
  const auto d = g.add_task("synth_compute", "d");
  const auto e = g.add_task("synth_compute", "e");
  const auto f = g.add_task("synth_sink", "f");
  g.add_link(a, b, 0.05);
  g.add_link(b, c, 0.05);
  g.add_link(c, d, 0.05);
  g.add_link(d, e, 0.05);
  g.add_link(e, f, 0.05);
  return g;
}
constexpr std::size_t kTasksPerApp = 6;
constexpr std::size_t kApps = 12;

/// Shared chaos coupling for the task library: `crash_check` reports
/// whether a crash/outage window is live right now, and `trip_budget`
/// bounds how many mid-task crashes each application may suffer (reset
/// per submission).
struct ChaosCoupling {
  std::atomic<std::uint64_t> invocations{0};
  std::atomic<int> trip_budget{0};
  std::function<bool()> crash_check;
};

/// The builtin library with every task counted and slowed by 1 ms, and
/// the sink stage crash-coupled to the fault schedule: when the sink's
/// invocation lands inside a live crash/outage window, the "machine"
/// dies mid-task -- after the whole pipeline prefix already completed.
/// That is the case checkpointing exists for: on restart the prefix
/// replays instead of re-executing.  (Gang-start failures -- a stage's
/// host already dead at launch -- flow through the engine's pre-compute
/// guard and hit both modes identically.)
tasklib::TaskRegistry counting_registry(std::shared_ptr<ChaosCoupling> chaos) {
  tasklib::TaskRegistry registry;
  for (const auto& name : tasklib::builtin_registry().all_tasks()) {
    tasklib::LibraryEntry entry = tasklib::builtin_registry().get(name);
    const bool crashable = name == "synth_sink";
    entry.fn = [chaos, crashable, inner = entry.fn](
                   const std::vector<tasklib::Payload>& in,
                   const tasklib::TaskContext& ctx) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      chaos->invocations.fetch_add(1);
      if (crashable && chaos->crash_check && chaos->crash_check()) {
        if (chaos->trip_budget.fetch_sub(1) > 0) {
          throw common::StateError("chaos: machine crashed mid-task");
        }
        chaos->trip_budget.fetch_add(1);
      }
      return inner(in, ctx);
    };
    registry.add(std::move(entry));
  }
  return registry;
}

struct CellResult {
  double intensity = 0.0;
  bool checkpointing = false;
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t restarts = 0;
  std::uint64_t invocations = 0;
  std::uint64_t useful = 0;
  double wasted_ratio = 0.0;
  std::size_t chaos_events = 0;
};

CellResult run_cell(double intensity, bool checkpointing) {
  CellResult cell;
  cell.intensity = intensity;
  cell.checkpointing = checkpointing;

  auto v = bench::bring_up(netsim::make_campus_testbed(13));

  // One seeded schedule per intensity, identical across the two modes,
  // installed before any engine thread exists (windows are inert until
  // the atomic live clock enters them).
  // Bias the mix toward single-host crashes: partial-site failures are
  // where checkpointing pays (a whole-site outage at gang start kills
  // every stage before any prefix completes, so both modes re-run the
  // same work).
  netsim::ChaosScheduleConfig chaos_config;
  chaos_config.seed = 4242;
  chaos_config.intensity = intensity;
  chaos_config.horizon_s = 60.0;
  chaos_config.max_crashes = 8;
  chaos_config.max_site_outages = 1;
  chaos_config.max_gray_hosts = 2;
  const auto schedule =
      netsim::ChaosSchedule::generate(*v.testbed, chaos_config);
  schedule.apply(*v.testbed);
  cell.chaos_events = schedule.events().size();

  auto chaos = std::make_shared<ChaosCoupling>();
  chaos->crash_check = [&schedule, bed = v.testbed.get()] {
    const double t = bed->live_time();
    for (const auto& event : schedule.events()) {
      if ((event.kind == netsim::ChaosEventKind::kHostCrash ||
           event.kind == netsim::ChaosEventKind::kSiteOutage) &&
          t >= event.start && t < event.start + event.length) {
        return true;
      }
    }
    return false;
  };
  const auto registry = counting_registry(chaos);

  rt::AppSubmissionConfig config;
  config.slots = 1;  // serial drain: each app sees one clock position
  config.max_restarts = 3;
  config.checkpointing = checkpointing;
  config.restart_backoff_s = 0.001;
  config.engine.max_attempts = 1;  // no in-gang retry: failures escalate
  config.engine.recv_timeout_s = 5.0;
  rt::AppSubmissionService service(SiteId(0), v.repo_directory, registry,
                                   config);
  const auto probe = schedule.liveness_probe(*v.testbed, SiteId(0));
  service.set_health_probe(probe);
  service.set_fault_hooks(
      [&probe](const afg::FlowGraph&, const sched::AllocationTable&) {
        rt::FaultTolerance ft;
        ft.host_alive = probe;
        ft.sleep = [](double) {};  // failover backoff costs no wall-clock
        return ft;
      });

  // Step the live clock across the horizon: each submission lands at a
  // different point of the fault schedule.
  for (std::size_t i = 0; i < kApps; ++i) {
    v.testbed->set_live_time(chaos_config.horizon_s *
                             (static_cast<double>(i) + 0.5) /
                             static_cast<double>(kApps));
    chaos->trip_budget.store(1);  // at most one mid-task crash per app
    rt::SubmissionRequest request;
    request.graph = pipeline_graph("chaos-app-" + std::to_string(i));
    request.qos.deadline_s = 1e9;
    request.user = "chaos";
    request.seed = 1000 + i;
    const auto status = service.wait(service.submit(std::move(request)));
    if (status.state == rt::SubmissionState::kCompleted) {
      ++cell.completed;
    } else {
      ++cell.failed;
    }
    cell.restarts += status.restarts;
  }

  cell.invocations = chaos->invocations.load();
  cell.useful = cell.completed * kTasksPerApp;
  cell.wasted_ratio =
      cell.invocations == 0
          ? 0.0
          : static_cast<double>(cell.invocations - cell.useful) /
                static_cast<double>(cell.invocations);
  return cell;
}

std::string json_field(const CellResult& c) {
  std::ostringstream out;
  out << "    {\"intensity\": " << c.intensity << ", \"checkpointing\": "
      << (c.checkpointing ? "true" : "false")
      << ", \"completed\": " << c.completed << ", \"failed\": " << c.failed
      << ", \"restarts\": " << c.restarts
      << ", \"invocations\": " << c.invocations
      << ", \"useful\": " << c.useful << ", \"wasted_ratio\": " << std::fixed
      << std::setprecision(4) << c.wasted_ratio
      << ", \"chaos_events\": " << c.chaos_events << "}";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string summary_path =
      argc > 1 ? argv[1] : "bench_chaos_summary.json";

  bench::banner("E18",
                "chaos sweep: completion and wasted work vs fault "
                "intensity, with vs without checkpointing (D12)");
  bench::header(
      "intensity,mode,completed,failed,restarts,invocations,useful,"
      "wasted_ratio,chaos_events");

  std::vector<CellResult> cells;
  for (const double intensity : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    for (const bool checkpointing : {true, false}) {
      const CellResult cell = run_cell(intensity, checkpointing);
      cells.push_back(cell);
      std::cout << std::setprecision(2) << cell.intensity << ","
                << (cell.checkpointing ? "ckpt" : "nockpt") << ","
                << cell.completed << "," << cell.failed << ","
                << cell.restarts << "," << cell.invocations << ","
                << cell.useful << "," << std::fixed << std::setprecision(4)
                << cell.wasted_ratio << std::defaultfloat << ","
                << cell.chaos_events << "\n";
    }
  }

  std::ofstream summary(summary_path);
  summary << "{\n  \"experiment\": \"E18\",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    summary << json_field(cells[i]) << (i + 1 < cells.size() ? ",\n" : "\n");
  }
  summary << "  ]\n}\n";
  summary.close();

  std::cout << "\nInterpretation: at intensity 0 both modes finish every "
               "application with zero\nwaste.  As the fault schedule "
               "intensifies, failover restarts appear; with\ncheckpointing "
               "the replayed prefix keeps the wasted-work ratio near the "
               "failure\nfloor, while the no-checkpoint runs re-execute "
               "every completed predecessor on\neach restart and waste "
               "strictly more invocations.\nSummary JSON: "
            << summary_path << "\n";
  return 0;
}
