// Shared bring-up and reporting helpers for the experiment benches.
//
// Every bench prints labelled CSV-style rows (the "table" the paper
// would have contained) plus a short interpretation, so EXPERIMENTS.md
// can cite the output verbatim.
#pragma once

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "netsim/testbed.hpp"
#include "predict/forecaster.hpp"
#include "runtime/control_manager.hpp"
#include "runtime/site_manager.hpp"
#include "runtime/sm_directory.hpp"
#include "scheduler/directory.hpp"
#include "sim/dynamic_sim.hpp"
#include "tasklib/registry.hpp"

namespace vdce::bench {

/// One fully wired single-process VDCE over a virtual testbed (same
/// shape as examples/example_common.hpp, duplicated so the benches are
/// self-contained).
struct Vdce {
  std::unique_ptr<netsim::VirtualTestbed> testbed;
  std::vector<std::unique_ptr<repo::SiteRepository>> repositories;
  std::vector<std::unique_ptr<predict::LoadForecaster>> forecasters;
  std::vector<std::unique_ptr<rt::SiteManager>> site_managers;
  std::vector<std::unique_ptr<rt::ControlManager>> control_managers;
  rt::SiteManagerDirectory directory;
  sched::RepositoryDirectory repo_directory;
  std::vector<sim::SiteRuntime> runtimes;

  void warm_up(double until, double step = 1.0) {
    for (double t = step; t <= until + 1e-9; t += step) {
      for (auto& cm : control_managers) cm->tick(t);
    }
  }
};

inline Vdce bring_up(const netsim::TestbedConfig& config,
                     double warm_up_s = 10.0,
                     rt::GroupManagerConfig group_config = {},
                     double monitor_period_s = 1.0) {
  Vdce v;
  v.testbed = std::make_unique<netsim::VirtualTestbed>(config);
  for (const common::SiteId site : v.testbed->sites()) {
    auto repository = std::make_unique<repo::SiteRepository>(site);
    tasklib::builtin_registry().install_defaults(repository->tasks());
    v.testbed->populate_repository(*repository, site);
    auto forecaster = std::make_unique<predict::LoadForecaster>();
    auto manager = std::make_unique<rt::SiteManager>(site, *repository,
                                                     *forecaster);
    auto control = std::make_unique<rt::ControlManager>(
        *v.testbed, site, *manager, monitor_period_s, group_config);
    v.directory.add_site(*manager);
    v.repo_directory.add_site(site, repository.get(), forecaster.get());
    v.runtimes.push_back(sim::SiteRuntime{manager.get(), control.get()});
    v.repositories.push_back(std::move(repository));
    v.forecasters.push_back(std::move(forecaster));
    v.site_managers.push_back(std::move(manager));
    v.control_managers.push_back(std::move(control));
  }
  if (warm_up_s > 0.0) v.warm_up(warm_up_s);
  return v;
}

/// Prints an experiment banner.
inline void banner(const std::string& id, const std::string& title) {
  std::cout << "\n=== " << id << ": " << title << " ===\n";
}

/// Prints a CSV header row.
inline void header(const std::string& columns) {
  std::cout << columns << "\n";
}

}  // namespace vdce::bench
