// E15: runtime fault tolerance (D9) — makespan vs injected failure rate
// on the *live* execution engine (real threads + channels), not the
// dynamic simulator.
//
//   (a) k allocated hosts dead at startup: every affected task is
//       refused by its fault guard, re-placed through
//       SiteScheduler::reschedule and retried inside the gang;
//   (b) transient task-error rate sweep: failed tasks (and the
//       consumers their channel teardown takes down) are recovered
//       post-gang with channel re-setup and input replay.
#include <atomic>
#include <iomanip>
#include <iostream>
#include <memory>
#include <set>

#include "bench/harness.hpp"
#include "runtime/engine.hpp"
#include "scheduler/site_scheduler.hpp"

namespace {

using namespace vdce;
using common::HostId;
using common::SiteId;
using common::TaskId;

constexpr int kPairs = 12;
constexpr int kReps = 5;

/// kPairs independent source -> sink pipelines: wide enough that k
/// distinct dead hosts each hit a different task.
afg::FlowGraph pair_graph() {
  afg::FlowGraph g("fault-sweep");
  for (int i = 0; i < kPairs; ++i) {
    const auto src = g.add_task("synth_source", "src" + std::to_string(i));
    const auto sink = g.add_task("synth_sink", "snk" + std::to_string(i));
    g.add_link(src, sink, 0.1);
  }
  return g;
}

/// Distinct primary hosts of the allocation, in task order.
std::vector<HostId> distinct_primaries(
    const sched::AllocationTable& allocation) {
  std::vector<HostId> hosts;
  std::set<HostId> seen;
  for (const auto& row : allocation.rows()) {
    if (seen.insert(row.primary_host()).second) {
      hosts.push_back(row.primary_host());
    }
  }
  return hosts;
}

void dead_host_sweep() {
  bench::banner("E15a",
                "live-engine makespan vs dead allocated hosts (D9)");
  bench::header(
      "dead_hosts,mean_makespan_ms,inflation,recovered,reschedules");

  double baseline = 0.0;
  for (int dead = 0; dead <= 4; ++dead) {
    double makespan_ms = 0.0;
    std::size_t recovered = 0;
    std::size_t reschedules = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      auto v = bench::bring_up(netsim::make_campus_testbed(13));
      const auto graph = pair_graph();
      // Queue-aware so the 12 pipelines spread over distinct hosts and
      // each dead host hits a bounded slice of the application.
      sched::SiteScheduler scheduler(SiteId(0), v.directory,
                                     {.queue_aware = true});
      auto allocation = scheduler.schedule(graph);

      const auto primaries = distinct_primaries(allocation);
      for (int k = 0; k < dead && k < static_cast<int>(primaries.size());
           ++k) {
        v.testbed->fail_host(primaries[k], 50.0, 1e6);
      }
      v.testbed->set_live_time(60.0);

      rt::FaultTolerance ft;
      ft.host_alive = v.testbed->liveness_probe();
      ft.reschedule = [&](const afg::TaskNode& node,
                          const std::vector<HostId>& excluded) {
        return scheduler.reschedule(graph, allocation, node.id, excluded);
      };
      ft.on_failure = [&](const rt::RescheduleRequest& request) {
        for (auto& cm : v.control_managers) {
          cm->report_task_failure(request);
        }
      };

      rt::ExecutionEngine engine(tasklib::builtin_registry());
      const auto result =
          engine.execute(graph, allocation, nullptr, nullptr, &ft);
      makespan_ms += result.makespan_s * 1e3;
      recovered += result.failures_recovered;
      reschedules += result.reschedules;
    }
    makespan_ms /= kReps;
    if (dead == 0) baseline = makespan_ms;
    std::cout << dead << "," << std::fixed << std::setprecision(2)
              << makespan_ms << "," << std::setprecision(2)
              << makespan_ms / baseline << "," << std::setprecision(1)
              << static_cast<double>(recovered) / kReps << ","
              << static_cast<double>(reschedules) / kReps << "\n";
  }
  std::cout << "shape check: every run completes; recovered == tasks "
               "resident on dead hosts; cost is backoff-dominated (one "
               "10 ms round per reschedule wave, a second when the "
               "replacement is dead too -- reschedules > recovered), "
               "not proportional to application size.\n";
}

void transient_error_sweep() {
  bench::banner("E15b",
                "live-engine makespan vs transient task-error rate (D9)");
  bench::header("flaky_sources,mean_makespan_ms,inflation,recovered");

  constexpr int kHosts = 8;
  double baseline = 0.0;
  for (const int flaky : {0, 2, 4, 8}) {
    double makespan_ms = 0.0;
    std::size_t recovered = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      tasklib::TaskRegistry registry;
      tasklib::register_builtin_tasks(registry);
      for (int i = 0; i < flaky; ++i) {
        tasklib::LibraryEntry entry =
            tasklib::builtin_registry().get("synth_source");
        entry.name = "flaky_source_" + std::to_string(i);
        auto calls = std::make_shared<std::atomic<int>>(0);
        entry.fn = [calls, inner = entry.fn](
                       const std::vector<tasklib::Payload>& in,
                       const tasklib::TaskContext& ctx) {
          if (calls->fetch_add(1) == 0) {
            throw common::StateError("transient fault");
          }
          return inner(in, ctx);
        };
        registry.add(std::move(entry));
      }

      afg::FlowGraph g("flaky-sweep");
      sched::AllocationTable allocation("flaky-sweep");
      for (int i = 0; i < kPairs; ++i) {
        const std::string lib = i < flaky
                                    ? "flaky_source_" + std::to_string(i)
                                    : "synth_source";
        const auto src = g.add_task(lib, "src" + std::to_string(i));
        const auto sink =
            g.add_task("synth_sink", "snk" + std::to_string(i));
        g.add_link(src, sink, 0.1);
        for (const TaskId task : {src, sink}) {
          sched::AllocationEntry row;
          row.task = task;
          row.task_label = g.task(task).label;
          row.library_task = g.task(task).library_task;
          row.hosts = {HostId(task.value() % kHosts)};
          row.site = SiteId(0);
          allocation.add(row);
        }
      }

      rt::FaultTolerance ft;
      ft.reschedule = [](const afg::TaskNode&, const std::vector<HostId>&)
          -> std::optional<sched::AllocationEntry> { return std::nullopt; };

      rt::EngineConfig config;
      config.retry_backoff_s = 0.001;
      rt::ExecutionEngine engine(registry, config);
      const auto result =
          engine.execute(g, allocation, nullptr, nullptr, &ft);
      makespan_ms += result.makespan_s * 1e3;
      recovered += result.failures_recovered;
    }
    makespan_ms /= kReps;
    if (flaky == 0) baseline = makespan_ms;
    std::cout << flaky << "/" << kPairs << "," << std::fixed
              << std::setprecision(2) << makespan_ms << ","
              << std::setprecision(2) << makespan_ms / baseline << ","
              << std::setprecision(1)
              << static_cast<double>(recovered) / kReps << "\n";
  }
  std::cout << "shape check: recovered == 2x flaky sources (each failure "
               "takes its consumer's receive down too); makespan grows "
               "with the serial post-gang recovery pass but every run "
               "completes.\n";
}

}  // namespace

int main() {
  dead_host_sweep();
  transient_error_sweep();
  return 0;
}
