// E10: scheduler scalability.
//
// Wall-clock cost of the Site Scheduler Algorithm (including the host
// selection rounds at every consulted site) as the application and the
// testbed grow, plus the parallel fan-out sweeps: scheduling threads
// (concurrent AFG multicast + parallel Predict scoring) and
// PredictionCache hit rates under monitoring-update churn.
#include <benchmark/benchmark.h>

#include <string>

#include "bench/harness.hpp"
#include "common/trace.hpp"
#include "runtime/messages.hpp"
#include "scheduler/site_scheduler.hpp"
#include "sim/workloads.hpp"

namespace {

using namespace vdce;

void BM_ScheduleVsGraphSize(benchmark::State& state) {
  netsim::RandomTestbedParams params;
  params.num_sites = 4;
  params.groups_per_site = 2;
  params.hosts_per_group = 4;
  auto v = bench::bring_up(netsim::make_random_testbed(params, 11));

  common::Rng rng(1);
  sim::SyntheticGraphParams gp;
  gp.family = sim::GraphFamily::kLayered;
  gp.size = static_cast<std::size_t>(state.range(0));
  gp.width = 6;
  const auto graph = sim::make_synthetic_graph(gp, rng);
  state.SetLabel(std::to_string(graph.task_count()) + " tasks");

  sched::SiteScheduler scheduler(common::SiteId(0), v.directory,
                                 {.k_nearest = 3});
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.schedule(graph));
  }
}
BENCHMARK(BM_ScheduleVsGraphSize)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_ScheduleVsHostCount(benchmark::State& state) {
  netsim::RandomTestbedParams params;
  params.num_sites = 2;
  params.groups_per_site = 2;
  params.hosts_per_group = static_cast<std::size_t>(state.range(0));
  auto v = bench::bring_up(netsim::make_random_testbed(params, 12));
  state.SetLabel(std::to_string(v.testbed->host_count()) + " hosts");

  common::Rng rng(2);
  sim::SyntheticGraphParams gp;
  gp.family = sim::GraphFamily::kLayered;
  gp.size = 6;
  gp.width = 5;
  const auto graph = sim::make_synthetic_graph(gp, rng);

  sched::SiteScheduler scheduler(common::SiteId(0), v.directory,
                                 {.k_nearest = 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.schedule(graph));
  }
}
BENCHMARK(BM_ScheduleVsHostCount)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

// Args: (k sites consulted, scheduling threads).  The benchmark loop
// re-schedules the same graph, so after the first iteration the
// PredictionCache is warm: the steady state measures the multicast
// fan-out plus cached Predict lookups.
void BM_ScheduleVsSitesConsulted(benchmark::State& state) {
  netsim::RandomTestbedParams params;
  params.num_sites = 8;
  params.groups_per_site = 2;
  params.hosts_per_group = 3;
  auto v = bench::bring_up(netsim::make_random_testbed(params, 13));

  common::Rng rng(3);
  sim::SyntheticGraphParams gp;
  gp.family = sim::GraphFamily::kLayered;
  gp.size = 6;
  gp.width = 5;
  const auto graph = sim::make_synthetic_graph(gp, rng);

  sched::SiteScheduler scheduler(
      common::SiteId(0), v.directory,
      {.k_nearest = static_cast<std::size_t>(state.range(0)),
       .threads = static_cast<std::size_t>(state.range(1))});
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.schedule(graph));
  }
  state.SetLabel("k=" + std::to_string(state.range(0)) +
                 " threads=" + std::to_string(state.range(1)));
}
BENCHMARK(BM_ScheduleVsSitesConsulted)
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({3, 1})
    ->Args({7, 1})
    ->Args({7, 2})
    ->Args({7, 4})
    ->Args({7, 8});

// Args: (hosts per group, scoring threads).
void BM_HostSelectionOnly(benchmark::State& state) {
  netsim::RandomTestbedParams params;
  params.num_sites = 1;
  params.groups_per_site = 2;
  params.hosts_per_group = static_cast<std::size_t>(state.range(0));
  auto v = bench::bring_up(netsim::make_random_testbed(params, 14));

  common::Rng rng(4);
  sim::SyntheticGraphParams gp;
  gp.family = sim::GraphFamily::kLayered;
  gp.size = 4;
  gp.width = 4;
  const auto graph = sim::make_synthetic_graph(gp, rng);

  const auto threads = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        v.directory.host_selection(common::SiteId(0), graph, threads));
  }
  state.SetLabel(std::to_string(v.testbed->host_count()) + " hosts, " +
                 std::to_string(threads) + " threads");
}
BENCHMARK(BM_HostSelectionOnly)
    ->Args({4, 1})
    ->Args({16, 1})
    ->Args({64, 1})
    ->Args({64, 2})
    ->Args({64, 4})
    ->Args({64, 8});

// PredictionCache hit rate under monitoring churn.  Arg: how many local
// hosts receive a workload update between consecutive schedule() calls
// (every update bumps the epoch, invalidating the whole site's cached
// predictions).  Counters report the end-of-run hit rate.
void BM_ScheduleCacheChurn(benchmark::State& state) {
  netsim::RandomTestbedParams params;
  params.num_sites = 4;
  params.groups_per_site = 2;
  params.hosts_per_group = 4;
  auto v = bench::bring_up(netsim::make_random_testbed(params, 15));

  common::Rng rng(5);
  sim::SyntheticGraphParams gp;
  gp.family = sim::GraphFamily::kLayered;
  gp.size = 6;
  gp.width = 5;
  const auto graph = sim::make_synthetic_graph(gp, rng);

  const auto updates = static_cast<std::size_t>(state.range(0));
  const auto local_hosts =
      v.repositories[0]->resources().hosts_in_site(common::SiteId(0));

  sched::SiteScheduler scheduler(common::SiteId(0), v.directory,
                                 {.k_nearest = 3, .threads = 4});
  double t = 100.0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < updates && i < local_hosts.size(); ++i) {
      rt::WorkloadUpdate update;
      update.host = local_hosts[i].host;
      update.cpu_load = rng.uniform(0.0, 2.0);
      update.available_memory_mb =
          local_hosts[i].static_attrs.total_memory_mb;
      update.when = (t += 1.0);
      v.site_managers[0]->handle_workload(update);
    }
    benchmark::DoNotOptimize(scheduler.schedule(graph));
  }

  predict::PredictionCacheStats totals;
  for (const auto& sm : v.site_managers) {
    const auto s = sm->prediction_cache().stats();
    totals.lookups += s.lookups;
    totals.hits += s.hits;
    totals.invalidations += s.invalidations;
  }
  state.counters["hit_rate"] =
      totals.lookups == 0
          ? 0.0
          : static_cast<double>(totals.hits) /
                static_cast<double>(totals.lookups);
  state.counters["invalidations"] = static_cast<double>(totals.invalidations);
  state.SetLabel(std::to_string(updates) + " updates/schedule");
}
BENCHMARK(BM_ScheduleCacheChurn)->Arg(0)->Arg(1)->Arg(8);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): a TraceSession wrapping the
// benchmark run records every schedule()/host_selection round as spans
// when VDCE_TRACE names an output file (E16 measures its overhead).
int main(int argc, char** argv) {
  vdce::common::TraceSession trace_session;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
